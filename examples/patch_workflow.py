"""The full developer loop: detect → locate → patch → re-audit.

Owl's purpose is "assisting developers to identify and patch side-channel
vulnerabilities" (the paper's opening sentence).  This example walks that
loop on a lookup-table kernel:

1. Owl flags the secret-indexed load and renders the control-flow graph
   with the leaking block highlighted (DOT output a developer can render);
2. the kernel is patched with each §IX countermeasure from
   :mod:`repro.countermeasures`;
3. the patched versions are re-audited, including under a realistic
   cache-line attacker model (``offset_granularity=64``), and the overhead
   of each fix is measured;
4. the audits run through a persistent campaign store and the regression
   diff classifies every leak across versions — the same machinery as
   ``owl run --store`` / ``owl diff``.

Run:  python examples/patch_workflow.py
"""

import tempfile

import numpy as np

from repro import Owl, OwlConfig, kernel
from repro.adcfg.export import to_dot
from repro.countermeasures import masked_lookup, striped_lookup
from repro.gpusim import Device
from repro.gpusim.events import MemoryAccessEvent
from repro.host import CudaRuntime
from repro.store import TraceStore, diff_reports
from repro.tracing import TraceRecorder

TABLE = np.arange(500, 564, dtype=np.int64)


@kernel()
def vulnerable_kernel(k, table, data, out):
    k.block("entry")
    tid = k.global_tid()
    secret = k.load(data, tid)
    k.block("lookup")
    k.store(out, tid, k.load(table, secret % 64))


@kernel()
def masked_patch(k, table, data, out):
    k.block("entry")
    tid = k.global_tid()
    secret = k.load(data, tid)
    k.block("lookup")
    k.store(out, tid, masked_lookup(k, table, secret % 64))


@kernel()
def striped_patch(k, table, data, out):
    k.block("entry")
    tid = k.global_tid()
    secret = k.load(data, tid)
    k.block("lookup")
    k.store(out, tid, striped_lookup(k, table, secret % 64, stripe_width=8))


def make_program(kern):
    def program(rt, secret):
        table = rt.cudaMalloc(64, label="table")
        rt.cudaMemcpyHtoD(table, TABLE)
        data = rt.cudaMalloc(32, label="data")
        rt.cudaMemcpyHtoD(data, np.full(32, secret))
        out = rt.cudaMalloc(32, label="out")
        rt.cuLaunchKernel(kern, 1, 32, table, data, out)
    return program


def accesses(program):
    device = Device()
    count = [0]
    device.subscribe(lambda e: count.__setitem__(0, count[0] + 1)
                     if isinstance(e, MemoryAccessEvent) else None)
    program(CudaRuntime(device), 3)
    return count[0]


def audit(name, program, granularity=1, store=None):
    config = OwlConfig(fixed_runs=30, random_runs=30, quantify=True,
                       offset_granularity=granularity)
    owl = Owl(program, name=name, config=config)
    return owl.detect(inputs=[3, 60],
                      random_input=lambda rng: int(rng.integers(0, 64)),
                      store=store)


def main():
    store = TraceStore(tempfile.mkdtemp(prefix="owl-store-"))

    print("== Step 1: detect and locate ==\n")
    vulnerable = make_program(vulnerable_kernel)
    result = audit("vulnerable", vulnerable, store=store)
    for leak in result.report.leaks:
        print("  " + leak.render())

    leaking_blocks = {leak.block for leak in result.report.leaks}
    graph = TraceRecorder().record(vulnerable, 3).invocations[0].adcfg
    dot = to_dot(graph, leaking_blocks=leaking_blocks)
    print("\nControl-flow graph with the leak highlighted "
          "(render with `dot -Tpng`):\n")
    print("\n".join("  " + line for line in dot.splitlines()))

    print("\n== Step 2+3: patch and re-audit ==\n")
    baseline_cost = accesses(vulnerable)
    patched_reports = {}
    for name, kern, granularity, model in (
            ("masked sweep", masked_patch, 1, "byte-level attacker"),
            ("scatter-gather", striped_patch, 64, "cache-line attacker")):
        program = make_program(kern)
        patched = audit(name, program, granularity=granularity, store=store)
        patched_reports[name] = patched.report
        verdict = ("clean" if not patched.report.has_leaks
                   else f"{len(patched.report.leaks)} leaks")
        cost = accesses(program)
        print(f"  {name:16s} under a {model:20s}: {verdict}  "
              f"({cost / baseline_cost:.1f}x memory traffic)")

    print("\nThe masked sweep is airtight at any attacker resolution; "
          "scatter-gather trades 7x less overhead for a documented "
          "residual (index mod 8) that only a byte-level probe can see.")

    print("\n== Step 4: regression diff across versions ==\n")
    # every audit above was persisted in the campaign store; the diff is
    # what `owl diff vulnerable "masked sweep" --store DIR` computes
    diff = diff_reports(result.report, patched_reports["masked sweep"])
    print("\n".join("  " + line for line in diff.render().splitlines()))
    assert diff.is_clean_fix, "masked sweep should fix every leak"
    print(f"\nStore now holds {len(store)} artifacts under {store.root} — "
          "a warm `owl run --store` re-run reuses all of them.")


if __name__ == "__main__":
    main()
