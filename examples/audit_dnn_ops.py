"""Audit a deep-learning framework's CUDA ops (the PyTorch scenario).

The paper's most interesting PyTorch findings were *not* in the math:
most numeric kernels are constant-observable; the leaks hide in host-side
optimisations (serialization's zero-tensor fast path, printing's
formatting heuristics) and in index gathers (nll_loss).  Meanwhile
``max_pool2d`` — leaky on CPU — is silent on the GPU because intra-warp
divergence is predicated.

This example sweeps every minitorch op plus serialization and
``Tensor.__repr__`` and prints the per-function verdicts.

Run:  python examples/audit_dnn_ops.py
"""

import numpy as np

from repro import Owl, OwlConfig
from repro.apps.minitorch import (
    OP_NAMES,
    make_op_program,
    make_random_input,
    serialize_program,
    tensor_repr_program,
)
from repro.apps.minitorch.ops import fixed_op_input
from repro.apps.minitorch.serialize import serialize_random_input
from repro.apps.minitorch.tensor import repr_random_input

#: nllloss/crossentropy's gather leak is subtle; the paper-scale run count
#: is what pushes it over the significance threshold.
CONFIG = OwlConfig(fixed_runs=100, random_runs=100)


def verdict(result):
    counts = result.report.counts()
    if not result.report.has_leaks:
        return "clean"
    parts = []
    for key, label in (("kernel", "kernel"), ("data_flow", "data-flow"),
                       ("control_flow", "control-flow")):
        if counts[key]:
            parts.append(f"{counts[key]} {label}")
    return "LEAKS: " + ", ".join(parts)


def main():
    rng = np.random.default_rng(0)
    print("== Owl on minitorch (PyTorch stand-in), 100+100 runs ==\n")

    rows = []
    for op in OP_NAMES:
        generate = make_random_input(op)
        inputs = [fixed_op_input(op), generate(rng)]
        if op == "conv2d":
            # include a sparse tensor so the fast-path optimisation shows
            inputs = [np.zeros(64), fixed_op_input(op)]
        owl = Owl(make_op_program(op), name=op, config=CONFIG)
        rows.append((op, owl.detect(inputs=inputs, random_input=generate)))

    owl = Owl(tensor_repr_program, name="Tensor.__repr__", config=CONFIG)
    rows.append(("Tensor.__repr__", owl.detect(
        inputs=[np.linspace(-2, 2, 64), np.linspace(-2, 2, 64) * 10_000],
        random_input=repr_random_input)))

    owl = Owl(serialize_program, name="serialize", config=CONFIG)
    rows.append(("serialize", owl.detect(
        inputs=[np.zeros(64), np.linspace(-2, 2, 64)],
        random_input=serialize_random_input)))

    for name, result in rows:
        print(f"  {name:18s} {verdict(result)}")

    print("\nDetails for the leaky functions:")
    for name, result in rows:
        for leak in result.report.leaks:
            print(f"  {name:18s} {leak.render()}")

    print("\nNote how maxpool2d is clean: its CPU twin leaks timing, but "
          "predicated execution hides intra-warp control flow — the "
          "paper's §VIII-B case study.")


if __name__ == "__main__":
    main()
