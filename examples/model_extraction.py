"""Model extraction via kernel leakage — the MLaaS scenario.

The paper motivates GPU side channels with model extraction attacks:
"differences between kernels are relatively distinguishable to the
attacker ... some sensitive information such as hyperparameters of DNN
models is still susceptible to leakage" (§IV-A).

Two roles in this demo:

* the **auditor** runs Owl against a model-serving endpoint whose secret
  is the architecture, and gets kernel leaks (which activation kernels
  run) plus data-flow leaks (layer widths via the linear kernel's access
  footprint);
* the **attacker** shows why that matters: each architecture in the zoo is
  recovered exactly from the kernel-launch trace alone.

Run:  python examples/model_extraction.py
"""

import numpy as np

from repro import Owl, OwlConfig
from repro.apps.minitorch.model import (
    ARCHITECTURE_ZOO,
    Sequential,
    extract_architecture,
    model_serving_program,
    random_architecture,
)


def main():
    print("== Auditing a model-serving endpoint (secret = architecture) ==\n")
    owl = Owl(model_serving_program, name="mlaas",
              config=OwlConfig(fixed_runs=20, random_runs=20, quantify=True))
    result = owl.detect(inputs=[0, 2], random_input=random_architecture)

    print("Kernel leaks (layer types):")
    for leak in result.report.kernel_leaks:
        print("  " + leak.render())
    print("\nData-flow leaks (layer widths through access footprints):")
    for leak in result.report.data_flow_leaks[:4]:
        print("  " + leak.render())
    more = len(result.report.data_flow_leaks) - 4
    if more > 0:
        print(f"  ... and {more} more in the same kernel")

    print("\n== The attacker's side: extraction from launch traces ==\n")
    query = np.linspace(-1.0, 1.0, 16)
    for index, layers in enumerate(ARCHITECTURE_ZOO):
        model = Sequential(layers)
        recovered = extract_architecture(model, query)
        status = "recovered exactly" if recovered == model.architecture \
            else "MISMATCH"
        print(f"  model {index}: {' -> '.join(model.architecture)}")
        print(f"            trace says: {' -> '.join(recovered)}  "
              f"[{status}]")

    print("\nEvery architecture is distinguishable from its kernel "
          "sequence — the coarse-grained kernel leakage the paper warns "
          "about, and the reason serving hidden models on shared GPUs "
          "needs obfuscation (cf. NeurObfuscator, §IX).")


if __name__ == "__main__":
    main()
