"""Audit GPU crypto: AES T-tables and RSA square-and-multiply.

Reproduces the paper's libgpucrypto findings end to end:

1. Owl flags every AES T-table lookup as data-flow leakage and the RSA
   exponent branch as control-flow leakage;
2. the patched variants (register-resident AES substitution, Montgomery
   ladder) come back clean;
3. as a demonstration that the RSA control-flow leak is *exploitable*, the
   private exponent is recovered bit-for-bit from the warp's basic-block
   trace alone — the observation our threat model grants the attacker.

Run:  python examples/audit_crypto.py
"""

import numpy as np

from repro import Owl, OwlConfig
from repro.apps.libgpucrypto import (
    aes_program,
    aes_program_ct,
    random_exponent,
    random_key,
    rsa_program,
    rsa_program_ct,
)
from repro.gpusim import Device
from repro.gpusim.events import BasicBlockEvent
from repro.host import CudaRuntime

CONFIG = OwlConfig(fixed_runs=40, random_runs=40)


def audit(name, program, inputs, random_input):
    owl = Owl(program, name=name, config=CONFIG)
    result = owl.detect(inputs=inputs, random_input=random_input)
    counts = result.report.counts()
    if result.leak_free_by_filtering:
        verdict = "clean (all probe inputs trace-identical)"
    elif not result.report.has_leaks:
        verdict = "clean (differences were not input-dependent)"
    else:
        verdict = (f"{counts['kernel']} kernel / {counts['data_flow']} "
                   f"data-flow / {counts['control_flow']} control-flow leaks")
    print(f"{name:24s} -> {verdict}")
    return result


def recover_rsa_key_from_trace(exponent):
    """Reconstruct the private exponent from warp-level control flow."""
    device = Device()
    labels = []
    device.subscribe(
        lambda e: labels.append(e.label)
        if isinstance(e, BasicBlockEvent)
        and (e.block_id, e.warp_id) == (0, 0) else None)
    rsa_program(CudaRuntime(device), exponent)

    bits = []
    for i, label in enumerate(labels):
        if label == "square":
            took_multiply = i + 1 < len(labels) and labels[i + 1] == "multiply"
            bits.append(1 if took_multiply else 0)
    return int("".join(map(str, bits)), 2)


def main():
    print("== Owl on libgpucrypto ==")
    aes = audit("AES (T-tables)", aes_program,
                [bytes(range(16)), bytes(range(1, 17))], random_key)
    audit("AES (bitsliced patch)", aes_program_ct,
          [bytes(range(16)), bytes(range(1, 17))], random_key)
    rsa = audit("RSA (square&multiply)", rsa_program,
                [0x6ACF8231, 0x7FD4C9A7], random_exponent)
    audit("RSA (Montgomery ladder)", rsa_program_ct,
          [0x6ACF8231, 0x7FD4C9A7], random_exponent)

    print("\nAES leak locations (first five):")
    for leak in aes.report.data_flow_leaks[:5]:
        print("  " + leak.render())

    print("\nRSA leak locations:")
    for leak in rsa.report.control_flow_leaks:
        print("  " + leak.render())

    secret = 0b1011001110101
    recovered = recover_rsa_key_from_trace(secret)
    print(f"\nExploit demo: secret exponent {bin(secret)}")
    print(f"  recovered from the warp block trace: {bin(recovered)}")
    print(f"  exact match: {recovered == secret}")


if __name__ == "__main__":
    main()
