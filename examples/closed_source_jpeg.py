"""Audit a closed-source codec (the nvJPEG scenario).

Owl never needs source code: it works from binary-level traces (kernel
launches, warp basic blocks, memory addresses).  Here we treat the nvjpeg
stand-in as a black box — only its ``encode``/``decode`` entry points are
touched — and reproduce the paper's finding that the *encoder* leaks image
content through its entropy-coding stage while the *decoder* is clean.

Run:  python examples/closed_source_jpeg.py
"""

import numpy as np

from repro import Owl, OwlConfig
from repro.apps.nvjpeg import (
    decode_program,
    encode_program,
    random_image,
    synthetic_image,
)

CONFIG = OwlConfig(fixed_runs=40, random_runs=40)
IMAGE_SIDE = 16


def main():
    probe_images = [synthetic_image(IMAGE_SIDE, IMAGE_SIDE, seed=1),
                    synthetic_image(IMAGE_SIDE, IMAGE_SIDE, seed=2)]

    def fresh_image(rng):
        return random_image(rng, IMAGE_SIDE, IMAGE_SIDE)

    print("== Owl on the closed-source codec (trace-only analysis) ==\n")

    encode = Owl(encode_program, name="nvjpeg encode",
                 config=CONFIG).detect(inputs=probe_images,
                                       random_input=fresh_image)
    print(encode.report.render())

    print()
    decode = Owl(decode_program, name="nvjpeg decode",
                 config=CONFIG).detect(inputs=probe_images,
                                       random_input=fresh_image)
    if decode.leak_free_by_filtering:
        print("nvjpeg decode: all probe images produced identical traces — "
              "no potential leakage (matches the paper: decoding is "
              "constant-observable for fixed-size images)")
    else:
        print(decode.report.render())

    leaky_kernels = {leak.kernel_name for leak in encode.report.leaks}
    print(f"\nEvery encoder leak localises to: {sorted(leaky_kernels)}")
    print("The colour-conversion, DCT, and quantisation kernels are clean; "
          "the entropy coder's run-length scanning and magnitude-category "
          "loops are what expose the image.  A vendor could patch exactly "
          "that stage — the kind of actionable finding the paper disclosed "
          "to NVIDIA.")


if __name__ == "__main__":
    main()
