"""Scalability study: how trace size grows with thread count (Fig. 5).

Sweeps the three workloads whose growth patterns the paper contrasts —
``Tensor.__repr__`` (fixed threads), the dummy S-box program (bounded
addresses), and nvjpeg encoding (unbounded addresses) — and renders an
ASCII version of Fig. 5, plus the DATA-style per-thread baseline showing
what Owl's A-DCFG aggregation saves.

Run:  python examples/scalability_study.py
"""

import numpy as np

from repro.apps.dummy import dummy_program
from repro.apps.minitorch import tensor_repr_program
from repro.apps.nvjpeg import synthetic_image
from repro.apps.nvjpeg.encoder import encode_program
from repro.baselines.data_tool import per_thread_memory_bytes
from repro.tracing import TraceRecorder


def sweep():
    recorder = TraceRecorder()
    rng = np.random.default_rng(0)
    series = {}

    sizes = [128, 512, 2048, 8192, 32768]
    series["dummy (saturating)"] = [
        (n, recorder.record(dummy_program,
                            rng.integers(0, 256, n)).adcfg_bytes())
        for n in sizes]
    series["Tensor.__repr__ (fixed threads)"] = [
        (n, recorder.record(tensor_repr_program,
                            rng.standard_normal(n)).adcfg_bytes())
        for n in sizes]
    series["nvjpeg encode (linear)"] = [
        (side * side,
         recorder.record(encode_program,
                         synthetic_image(side, side, seed=1)).adcfg_bytes())
        for side in (8, 16, 32, 48, 64)]
    series["DATA per-thread (dummy)"] = [
        (n, per_thread_memory_bytes(dummy_program,
                                    rng.integers(0, 256, n)))
        for n in sizes]
    return series


def ascii_plot(name, points, width=50):
    print(f"\n{name}")
    top = max(size for _x, size in points)
    for x, size in points:
        bar = "#" * max(1, int(width * size / top))
        print(f"  {x:>7,} threads/px | {bar} {size / 1024:.1f} KiB")


def main():
    print("== Trace-size growth by input size (Fig. 5) ==")
    series = sweep()
    for name, points in series.items():
        ascii_plot(name, points)

    dummy_last = series["dummy (saturating)"][-1][1]
    data_last = series["DATA per-thread (dummy)"][-1][1]
    print(f"\nAt 32k threads the per-thread representation is "
          f"{data_last / dummy_last:.0f}x larger than Owl's A-DCFG — the "
          "aggregation is what makes thread-intensive CUDA programs "
          "analysable at all.")


if __name__ == "__main__":
    main()
