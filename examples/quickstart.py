"""Quickstart: detect a planted side channel in 60 lines.

We write a small CUDA-style kernel with one secret-dependent table lookup
(a data-flow leak) and one secret-dependent branch (a control-flow leak),
then point Owl at it.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Owl, OwlConfig, kernel


# --- the program under test -------------------------------------------------
#
# A kernel is a Python function executed per warp; `k` exposes the SIMT
# surface (thread ids, branches, loads/stores).  This one mimics a toy
# cipher: every thread mixes its plaintext byte with the shared secret.

@kernel()
def toy_cipher(k, table, secret_buf, plaintext, ciphertext):
    k.block("entry")
    tid = k.global_tid()
    secret = k.load(secret_buf, 0)                 # shared secret byte
    byte = k.load(plaintext, tid)                  # thread-indexed: benign
    mixed = k.load(table, (byte + secret) % 256)   # secret-indexed: LEAKS
    branch = k.branch(secret % 2 == 0)             # secret branch: LEAKS
    for _ in branch.then("even_path"):
        k.store(ciphertext, tid, mixed)
    for _ in branch.otherwise("odd_path"):
        k.store(ciphertext, tid, mixed ^ 0xFF)
    k.block("exit")


def toy_program(rt, secret):
    """The host side: allocate, upload, launch — like a CUDA main()."""
    table = rt.constMalloc(256, label="sbox")
    rt.cudaMemcpyHtoD(table, np.arange(256))
    secret_buf = rt.cudaMalloc(1, label="secret")
    rt.cudaMemcpyHtoD(secret_buf, np.array([secret]))
    plaintext = rt.cudaMalloc(64, label="plaintext")
    rt.cudaMemcpyHtoD(plaintext, np.arange(64) % 256)
    ciphertext = rt.cudaMalloc(64, label="ciphertext")
    rt.cuLaunchKernel(toy_cipher, 2, 32, table, secret_buf, plaintext,
                      ciphertext)


def main():
    owl = Owl(toy_program, name="toy_cipher",
              config=OwlConfig(fixed_runs=40, random_runs=40))

    result = owl.detect(
        inputs=[7, 42],                                   # probe inputs
        random_input=lambda rng: int(rng.integers(0, 256)))

    print(f"input classes found by filtering: "
          f"{result.filter_result.num_classes}")
    print(result.report.render())
    print()
    print("Reading the report: the data-flow leak points at the exact "
          "memory instruction (block 'entry', the table load), and the "
          "control-flow leaks point at the blocks the secret branch "
          "steers. The thread-indexed plaintext load is NOT flagged.")


if __name__ == "__main__":
    main()
