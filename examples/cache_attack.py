"""From detection to exploitation: a cache attack on the flagged AES leak.

Owl's report says the T-table lookups are data-flow leaks.  So what?  This
example answers with the attack the paper cites as its motivating GPU AES
break (Jiang et al. [6]): observing only which *cache lines* of each
T-table the victim touches, the attacker eliminates key-byte candidates
until each byte's line class remains — 5 of 8 bits per byte, 80 of the 128
key bits, from a few dozen encryptions.

The demo also shows the timing channel: single-block encryption latency
(modelled cycles through the L1/L2 hierarchy) varies with the key for the
leaky kernel and is exactly constant for the bitsliced patch.

Run:  python examples/cache_attack.py
"""

import numpy as np

from repro.apps.libgpucrypto import aes_program_ct
from repro.attacks import (
    aes_single_block_program,
    collect_observations,
    recover_key_classes,
    timing_distinguisher,
    true_key_classes,
)

SECRET_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def main():
    print("== Cache-line elimination attack on T-table AES ==\n")
    print(f"victim key (hidden from the attacker): {SECRET_KEY.hex()}\n")

    observations = collect_observations(SECRET_KEY, 40,
                                        np.random.default_rng(0))
    for count in (1, 5, 10, 20, 40):
        survivors = recover_key_classes(observations[:count])
        mean = np.mean([len(s) for s in survivors])
        print(f"  after {count:>2} traces: "
              f"{mean:6.1f} candidates per key byte")

    survivors = recover_key_classes(observations)
    assert survivors == true_key_classes(SECRET_KEY)
    recovered_bits = "".join(f"{min(s) >> 3:05b}" for s in survivors)
    actual_bits = "".join(f"{b >> 3:05b}" for b in SECRET_KEY)
    print(f"\nrecovered top-5-bit classes match the key: "
          f"{recovered_bits == actual_bits}")
    print(f"bits recovered: 80 of 128 "
          f"(the rest fall to a second-round attack or brute force: "
          f"2^48 remaining)")

    print("\n== Timing channel (modelled L1/L2 cycles) ==\n")
    plaintext = bytes(range(16))
    keys = [SECRET_KEY, bytes(range(16)), b"\x5a" * 16]
    leaky = timing_distinguisher(aes_single_block_program,
                                 [(key, plaintext) for key in keys])
    patched = timing_distinguisher(aes_program_ct, keys)
    for (key, _pt), cycles in leaky.items():
        print(f"  leaky AES, key {key[:4].hex()}...: {cycles} cycles")
    print(f"  -> {len(set(leaky.values()))} distinct timings "
          f"(key-dependent cache collisions)")
    print(f"  patched AES: {len(set(patched.values()))} distinct timing "
          f"across the same keys (constant-observable)")


if __name__ == "__main__":
    main()
