"""Shared helpers for the paper-reproduction benchmarks.

Every ``bench_*`` file regenerates one table or figure from the paper's
evaluation (§VIII).  Benchmarks print their table to stdout (run with
``pytest benchmarks/ --benchmark-only -s`` to see them live) and also write
it under ``benchmarks/results/`` so EXPERIMENTS.md can reference stable
artefacts.

``OWL_BENCH_RUNS`` scales the fixed/random execution counts (default 30;
the paper uses 100 — set ``OWL_BENCH_RUNS=100`` for the full protocol).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Sequence

RESULTS_DIR = Path(__file__).parent / "results"


def bench_runs(default: int = 30) -> int:
    """Fixed/random run count for the leakage analyses."""
    return int(os.environ.get("OWL_BENCH_RUNS", default))


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width table rendering for terminal + artefact output."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows
              else len(h)
              for i, h in enumerate(headers)]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w)
                               for cell, w in zip(row, widths)))
    return "\n".join(lines)


def emit_table(name: str, title: str, headers: Sequence[str],
               rows: Sequence[Sequence[object]]) -> str:
    """Print the table and persist it under benchmarks/results/."""
    text = render_table(title, headers, rows)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    return text
