"""KS-vs-MI cross-validation across the Table-III workloads (extension).

Two claims ride on the second detector modality (``analyzer="mi"``):

* **coverage** — on every Table-III workload, the MI detector flags every
  leak the KS detector flags (the ``ks_only`` disagreement list is empty;
  ``mi_only`` findings are allowed and reported, not failed);
* **exploitability calibration** — the MI scores are not just detection
  re-labelled: coarsening the observation granularity degrades the mean
  MI bits at the AES T-table leaks *and* the key bits the cache-line
  elimination attack (``repro.attacks.aes_recovery``) actually recovers,
  in the same order (Spearman rank correlation ≥ 0.9).

Artefacts: ``results/mi_crossval.txt`` (per-workload agreement table),
``results/mi_crossval_disagreements.json`` (structured disagreement rows
for CI upload), ``results/mi_keyrecovery.txt`` (the correlation sweep).

Run modes match the other benches: ``pytest bench_mi_crossval.py
--benchmark-only -s`` for the full sweep, ``python bench_mi_crossval.py
--smoke`` for a quick CI pass (crypto + representative torch workloads
only).  ``OWL_BENCH_RUNS`` scales the run counts.
"""

from __future__ import annotations

import json
import math
import sys

import numpy as np

from _bench_utils import RESULTS_DIR, bench_runs, emit_table
from repro.apps.registry import workloads
from repro.attacks.aes_recovery import (
    ENTRIES_PER_LINE,
    POSITIONS_PER_TABLE,
    collect_observations,
)
from repro.core import Owl, OwlConfig

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")  # FIPS-197 key

#: observation granularities for the calibration sweep: cache line,
#: quarter table, half table, whole table (T tables are 2048 bytes)
GRANULARITIES = (64, 256, 1024, 2048)

#: quick-mode workload subset: both crypto pairs plus the torch ops with
#: planted kernel/data-flow leaks and one clean op
SMOKE_WORKLOADS = ("aes", "aes-ct", "rsa", "rsa-ct", "serialize",
                   "tensor-repr", "torch-relu")


def detect_both(workload, runs):
    program, fixed_inputs, random_input = workloads()[workload]
    config = OwlConfig(fixed_runs=runs, random_runs=runs, analyzer="both",
                       always_analyze=True)
    owl = Owl(program, name=workload, config=config)
    return owl.detect(inputs=fixed_inputs(), random_input=random_input)


# ----------------------------------------------------------------------
# coverage: the cross-validation sweep
# ----------------------------------------------------------------------

def crossval_sweep(names, runs):
    """{workload: cross_validation section} for analyzer="both" runs."""
    sections = {}
    for name in names:
        report = detect_both(name, runs).report
        sections[name] = report.cross_validation or {
            "agreements": 0, "ks_only": [], "mi_only": []}
    return sections


def report_crossval(sections, runs):
    rows = []
    disagreements = {}
    for name, section in sections.items():
        rows.append((name, section["agreements"],
                     len(section["ks_only"]), len(section["mi_only"])))
        if section["ks_only"] or section["mi_only"]:
            disagreements[name] = {"ks_only": section["ks_only"],
                                   "mi_only": section["mi_only"]}
    emit_table("mi_crossval",
               f"KS-vs-MI cross-validation ({runs}+{runs} runs)",
               ["Workload", "Agreements", "KS-only", "MI-only"], rows)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "mi_crossval_disagreements.json").write_text(
        json.dumps(disagreements, indent=2, sort_keys=True) + "\n")


def assert_mi_covers_ks(sections):
    uncovered = {name: section["ks_only"]
                 for name, section in sections.items()
                 if section["ks_only"]}
    assert not uncovered, (
        f"MI detector missed KS-flagged leaks: {uncovered}")


# ----------------------------------------------------------------------
# calibration: MI bits vs recovered key bits across granularities
# ----------------------------------------------------------------------

def recovered_key_bits(observations, granularity):
    """Mean key bits per byte the elimination attack extracts when the
    attacker's observations are coarsened to *granularity* bytes."""
    survivors = [set(range(256)) for _ in range(16)]
    for table_index, positions in POSITIONS_PER_TABLE.items():
        for observation in observations:
            lines = {offset // granularity * granularity
                     for offset in observation.table_lines[table_index]}
            for position in positions:
                pt_byte = observation.plaintext[position]
                survivors[position] = {
                    candidate for candidate in survivors[position]
                    if ((pt_byte ^ candidate) * ENTRIES_PER_LINE)
                    // granularity * granularity in lines}
    return float(np.mean([math.log2(256 / len(s)) if s else 8.0
                          for s in survivors]))


def mean_mi_bits(granularity, runs):
    """Mean ``mi_bits`` over the AES leaks at this analysis granularity
    (0.0 when nothing is flagged — the whole-table observer sees no
    leak, and the attack recovers nothing)."""
    program, fixed_inputs, random_input = workloads()["aes"]
    config = OwlConfig(fixed_runs=runs, random_runs=runs, analyzer="mi",
                       offset_granularity=granularity, always_analyze=True)
    owl = Owl(program, name="aes", config=config)
    report = owl.detect(inputs=fixed_inputs(),
                        random_input=random_input).report
    scores = [leak.mi_bits for leak in report.leaks]
    return float(np.mean(scores)) if scores else 0.0


def spearman(xs, ys):
    """Spearman rank correlation with average ranks for ties."""

    def ranks(values):
        order = np.argsort(values, kind="stable")
        ranked = np.empty(len(values))
        sorted_values = np.asarray(values)[order]
        position = 0
        while position < len(values):
            tied = position
            while tied + 1 < len(values) and \
                    sorted_values[tied + 1] == sorted_values[position]:
                tied += 1
            ranked[order[position:tied + 1]] = (position + tied) / 2.0
            position = tied + 1
        return ranked

    rx, ry = ranks(xs), ranks(ys)
    rx -= rx.mean()
    ry -= ry.mean()
    denominator = math.sqrt(float((rx ** 2).sum() * (ry ** 2).sum()))
    return float((rx * ry).sum()) / denominator if denominator else 0.0


def calibration_sweep(runs, traces=40):
    observations = collect_observations(KEY, traces,
                                        np.random.default_rng(3))
    mi_scores, key_bits = [], []
    for granularity in GRANULARITIES:
        mi_scores.append(mean_mi_bits(granularity, runs))
        key_bits.append(recovered_key_bits(observations, granularity))
    return mi_scores, key_bits


def report_calibration(mi_scores, key_bits, correlation, runs):
    rows = [(granularity, f"{mi:.4f}", f"{bits:.2f}")
            for granularity, mi, bits in zip(GRANULARITIES, mi_scores,
                                             key_bits)]
    rows.append(("Spearman", f"{correlation:.3f}", ""))
    emit_table("mi_keyrecovery",
               f"MI bits vs recovered AES key bits per observation "
               f"granularity ({runs}+{runs} runs)",
               ["Granularity B", "Mean MI bits", "Key bits/byte"], rows)


# ----------------------------------------------------------------------
# drivers
# ----------------------------------------------------------------------

def run(smoke: bool) -> None:
    runs = bench_runs(8 if smoke else 30)
    names = SMOKE_WORKLOADS if smoke else sorted(workloads())
    sections = crossval_sweep(names, runs)
    report_crossval(sections, runs)
    assert_mi_covers_ks(sections)

    mi_scores, key_bits = calibration_sweep(runs)
    correlation = spearman(mi_scores, key_bits)
    report_calibration(mi_scores, key_bits, correlation, runs)
    # line-granular analysis must flag the T-table leaks at all
    assert mi_scores[0] > 0.0, mi_scores
    # and the scores must rank the attack surface like the attack does
    assert correlation >= 0.9, (mi_scores, key_bits, correlation)


def test_mi_crossval(benchmark):
    benchmark.pedantic(run, args=(False,), rounds=1, iterations=1)


if __name__ == "__main__":
    sys.exit(run(smoke="--smoke" in sys.argv[1:]))
