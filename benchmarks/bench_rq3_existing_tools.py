"""RQ3 (§VIII-D): are existing tools applicable to CUDA applications?

The paper evaluates DATA (dynamic, Pin-based) and haybale-pitchfork
(LLVM-IR symbolic execution) on CUDA workloads and reports:

* DATA can surface *kernel leaks* (they originate in host control flow)
  but cannot observe anything inside the GPU;
* pitchfork floods the report with false positives — thread-id-indexed
  accesses and predication-safe branches — because it models neither
  threadIdx nor predicated execution.

This bench measures both failure modes against Owl's results on the same
programs and prints the comparison.
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import bench_runs, emit_table
from repro.apps.libgpucrypto import aes_program, random_key
from repro.apps.minitorch import make_op_program, serialize_program
from repro.apps.minitorch.ops import fixed_op_input, make_random_input
from repro.apps.minitorch.serialize import serialize_random_input
from repro.baselines import data_tool_analyze, pitchfork_analyze
from repro.core import Owl, OwlConfig


def run_comparison(runs):
    config = OwlConfig(fixed_runs=runs, random_runs=runs)

    owl_aes = Owl(aes_program, name="aes", config=config).detect(
        inputs=[bytes(range(16)), bytes(range(1, 17))],
        random_input=random_key)
    owl_serialize = Owl(serialize_program, name="serialize",
                        config=config).detect(
        inputs=[np.zeros(64), np.ones(64)],
        random_input=serialize_random_input)
    generate = make_random_input("maxpool2d")
    owl_maxpool = Owl(make_op_program("maxpool2d"), name="maxpool2d",
                      config=config).detect(
        inputs=[fixed_op_input("maxpool2d"),
                generate(np.random.default_rng(0))],
        random_input=generate)

    data_aes = data_tool_analyze(aes_program,
                                 [bytes(range(16)), bytes(range(1, 17))])
    data_serialize = data_tool_analyze(serialize_program,
                                       [np.zeros(64), np.ones(64)])

    pf_aes = pitchfork_analyze(aes_program, bytes(range(16)),
                               secret_labels={"aes.round_keys"})
    pf_maxpool = pitchfork_analyze(make_op_program("maxpool2d"),
                                   fixed_op_input("maxpool2d"),
                                   secret_labels={"maxpool2d.x"})
    return (owl_aes, owl_serialize, owl_maxpool, data_aes, data_serialize,
            pf_aes, pf_maxpool)


def test_rq3_existing_tools(benchmark):
    runs = bench_runs()
    (owl_aes, owl_serialize, owl_maxpool, data_aes, data_serialize,
     pf_aes, pf_maxpool) = benchmark.pedantic(
        run_comparison, args=(runs,), rounds=1, iterations=1)

    rows = [
        ("AES device DF leaks", len(owl_aes.report.data_flow_leaks),
         "0 (blind)", f"{len(pf_aes.memory_findings)} (noisy)"),
        ("AES tid-only false positives", 0, "n/a",
         len(pf_aes.tid_false_positives)),
        ("serialize kernel leaks", len(owl_serialize.report.kernel_leaks),
         len(data_serialize.kernel_differences), "n/a"),
        ("maxpool2d CF reports (truth: 0)",
         len(owl_maxpool.report.control_flow_leaks), "0 (blind)",
         len(pf_maxpool.control_findings)),
    ]
    emit_table("rq3", "RQ3: existing tools on CUDA applications "
               "(Owl vs DATA vs pitchfork)",
               ["Metric", "Owl", "DATA", "pitchfork"], rows)

    # DATA: sees the serialization kernel leak, nothing in AES
    assert data_serialize.kernel_differences
    assert not data_aes.found_kernel_leak
    assert not data_aes.can_see_device_leaks

    # Owl: sees the device leaks DATA misses
    assert owl_aes.report.data_flow_leaks
    assert owl_serialize.report.kernel_leaks

    # pitchfork: flags far more than Owl on AES, including pure-tid noise,
    # and invents control-flow findings where predication hides everything
    assert len(pf_aes.findings) > len(owl_aes.report.leaks)
    assert pf_aes.tid_false_positives
    assert owl_maxpool.report.control_flow_leaks == []
    assert pf_maxpool.control_findings
