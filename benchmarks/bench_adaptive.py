"""Adaptive early stopping across the Table-III workloads (extension).

Two claims ride on the group-sequential replica scheduler
(``OwlConfig(adaptive=True)``, DESIGN.md §15):

* **equivalence** — on every Table-III workload, the adaptive run flags
  exactly the same leak set (locations *and* kinds, under both
  detectors) as the classic full-budget run at the paper's 100+100
  replica protocol;
* **speedup** — stopping at the earliest decisive look pays: the median
  end-to-end speedup over the workload suite is ≥ 2x, with the
  per-workload replicas saved reported alongside (a workload whose
  evidence stays near-threshold legitimately runs its whole budget —
  the scheduler's forced fallback — and lands near 1x).

Artefact: ``results/adaptive.txt`` — per-workload wall clocks, speedup,
rounds executed, replicas recorded/saved, and the stopping outcome.

Run modes match the other benches: ``pytest bench_adaptive.py
--benchmark-only -s`` for the full 21-workload sweep at 100+100 runs,
``python bench_adaptive.py --smoke`` for a quick CI pass (decisive +
clean representative workloads at a reduced budget).  ``OWL_BENCH_RUNS``
scales the run counts.
"""

from __future__ import annotations

import statistics
import sys
import time

from _bench_utils import bench_runs, emit_table
from repro.apps.registry import workloads
from repro.core import Owl, OwlConfig

#: quick-mode subset: a decisively leaky workload (stops at the second
#: look) and a decisively clean one (its empty evidence is futile
#: immediately)
SMOKE_WORKLOADS = ("aes", "dummy")


def detect(workload: str, runs: int, adaptive: bool):
    """One e2e detection; returns (wall seconds, OwlResult)."""
    program, fixed_inputs, random_input = workloads()[workload]
    config = OwlConfig(fixed_runs=runs, random_runs=runs, analyzer="both",
                       always_analyze=True, adaptive=adaptive)
    owl = Owl(program, name=workload, config=config)
    started = time.perf_counter()
    result = owl.detect(inputs=fixed_inputs(), random_input=random_input)
    return time.perf_counter() - started, result


def leak_set(report):
    """The identity the equivalence claim compares: what leaked, where."""
    return {(leak.leak_type.value, leak.kernel_name, leak.block, leak.instr)
            for leak in report.leaks}


def sweep(names, runs):
    """Per-workload (classic seconds, adaptive seconds, result pair)."""
    measurements = {}
    for name in names:
        classic_s, classic = detect(name, runs, adaptive=False)
        adaptive_s, adaptive = detect(name, runs, adaptive=True)
        measurements[name] = (classic_s, adaptive_s, classic, adaptive)
    return measurements


def report(measurements, runs):
    rows = []
    speedups = []
    for name, (classic_s, adaptive_s, _classic, result) in sorted(
            measurements.items()):
        summary = result.adaptive
        speedup = classic_s / adaptive_s
        speedups.append(speedup)
        recorded = (f"{summary.fixed_recorded}+{summary.random_recorded}"
                    if summary is not None else f"{runs}+{runs}")
        saved = summary.replicas_saved if summary is not None else 0
        looks = summary.rounds_executed if summary is not None else 0
        outcome = summary.outcome if summary is not None else "filtered"
        rows.append((name, f"{classic_s:.3f}", f"{adaptive_s:.3f}",
                     f"{speedup:.2f}x", looks, recorded, saved, outcome))
    median = statistics.median(speedups)
    rows.append(("median", "", "", f"{median:.2f}x", "", "", "", ""))
    emit_table(
        "adaptive",
        f"Adaptive early stopping vs full budget ({runs}+{runs} runs, "
        "analyzer=both)",
        ["Workload", "Full s", "Adaptive s", "Speedup", "Looks",
         "Recorded", "Saved", "Outcome"],
        rows)
    return median


def assert_equivalence(measurements):
    """The adaptive run must flag the identical leak set everywhere."""
    mismatched = {}
    for name, (_cs, _as, classic, adaptive) in measurements.items():
        full, early = leak_set(classic.report), leak_set(adaptive.report)
        if full != early:
            mismatched[name] = {"missed": sorted(full - early),
                                "extra": sorted(early - full)}
    assert not mismatched, (
        f"adaptive leak sets diverge from full budget: {mismatched}")


def run(smoke: bool) -> None:
    # smoke still needs ≥3 looks (16 → 32 → budget) for an early stop to
    # be possible at all; below ~33 runs the schedule degenerates to
    # [16, budget] and the final look is the only decisive one
    runs = bench_runs(64 if smoke else 100)
    names = SMOKE_WORKLOADS if smoke else sorted(workloads())
    measurements = sweep(names, runs)
    median = report(measurements, runs)
    assert_equivalence(measurements)
    # smoke keeps the equivalence bar but not the speedup bar: shared CI
    # runners are too noisy to gate merges on a wall-clock ratio
    if smoke:
        return
    assert median >= 2.0, median


def test_adaptive(benchmark):
    benchmark.pedantic(run, args=(False,), rounds=1, iterations=1)


if __name__ == "__main__":
    sys.exit(run(smoke="--smoke" in sys.argv[1:]))
