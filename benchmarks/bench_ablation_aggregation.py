"""Ablation: A-DCFG aggregation vs DATA-style per-thread traces.

§IV's scalability argument: recording one trace per thread makes memory
grow linearly in the thread count, while folding warps into one A-DCFG
de-duplicates control flow and repeated addresses.  This ablation sweeps
the dummy workload's thread count and measures both representations, plus
the analysis-side cost (one Myers diff per thread for DATA vs one graph
comparison for Owl).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from _bench_utils import emit_table
from repro.apps.dummy import dummy_program, fixed_input
from repro.baselines.data_tool import record_per_thread
from repro.tracing import TraceRecorder

THREAD_SWEEP = (128, 512, 2048, 8192)


def measure():
    recorder = TraceRecorder()
    rows = []
    for n in THREAD_SWEEP:
        secret = fixed_input(n)
        owl_trace = recorder.record(dummy_program, secret)
        per_thread = record_per_thread(dummy_program, secret)

        started = time.perf_counter()
        other = record_per_thread(dummy_program, fixed_input(n, value=9))
        per_thread.diff_against(other)
        data_diff_seconds = time.perf_counter() - started

        started = time.perf_counter()
        other_owl = recorder.record(dummy_program, fixed_input(n, value=9))
        _ = owl_trace == other_owl
        owl_diff_seconds = time.perf_counter() - started

        rows.append({
            "threads": n,
            "owl_bytes": owl_trace.adcfg_bytes(),
            "data_bytes": per_thread.memory_bytes(),
            "owl_diff_s": owl_diff_seconds,
            "data_diff_s": data_diff_seconds,
        })
    return rows


def test_ablation_aggregation(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    emit_table(
        "ablation_aggregation",
        "Ablation: A-DCFG aggregation vs per-thread traces (dummy workload)",
        ["Threads", "Owl A-DCFG bytes", "Per-thread bytes",
         "ratio", "Owl diff s", "DATA diff s"],
        [(r["threads"], r["owl_bytes"], r["data_bytes"],
          f"{r['data_bytes'] / r['owl_bytes']:.1f}x",
          f"{r['owl_diff_s']:.4f}", f"{r['data_diff_s']:.4f}")
         for r in rows])

    first, last = rows[0], rows[-1]
    thread_growth = last["threads"] / first["threads"]

    # per-thread memory tracks the thread count...
    data_growth = last["data_bytes"] / first["data_bytes"]
    assert data_growth > 0.5 * thread_growth
    # ...while the A-DCFG saturates
    owl_growth = last["owl_bytes"] / first["owl_bytes"]
    assert owl_growth < 0.1 * thread_growth
    # and the gap at scale is at least an order of magnitude
    assert last["data_bytes"] > 10 * last["owl_bytes"]
