"""Ablation: fixed-input repetition vs naive trace differencing.

Owl re-executes the program with *fixed* inputs to learn which trace
variation is nondeterministic, then demands that fixed-vs-random
differences be statistically significant.  The naive alternative — diff
two traces and report every difference, the failure mode the paper
attributes to deterministic-observation tools — false-positives on any
program with internal randomness.  This ablation measures both strategies
on a noisy-but-leak-free program and on a noisy-and-leaky program.
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import bench_runs, emit_table
from repro.core import Owl, OwlConfig
from repro.core.evidence import Evidence
from repro.core.leakage import LeakageAnalyzer
from repro.gpusim import kernel
from repro.tracing import TraceRecorder

TABLE = 64


@kernel()
def noisy_clean_kernel(k, data, noise_idx, table, out):
    k.block("entry")
    tid = k.global_tid()
    secret = k.load(data, tid)
    idx = k.load(noise_idx, tid)
    k.load(table, idx % TABLE)     # nondeterministic, input-independent
    k.store(out, tid, secret)
    k.block("exit")


@kernel()
def noisy_leaky_kernel(k, data, noise_idx, table, out):
    k.block("entry")
    tid = k.global_tid()
    secret = k.load(data, tid)
    idx = k.load(noise_idx, tid)
    k.load(table, idx % TABLE)     # noise access
    k.load(table, secret % TABLE)  # genuine leak
    k.store(out, tid, secret)
    k.block("exit")


#: seeded noise stream: random per run, reproducible across bench runs
_NOISE_RNG = np.random.default_rng(4321)


def make_program(kern):
    def program(rt, secret):
        rng = _NOISE_RNG
        data = rt.cudaMalloc(32, label="data")
        rt.cudaMemcpyHtoD(data, np.full(32, secret))
        noise_idx = rt.cudaMalloc(32, label="noise_idx")
        rt.cudaMemcpyHtoD(noise_idx, rng.integers(0, TABLE, 32))
        table = rt.cudaMalloc(TABLE, label="table")
        rt.cudaMemcpyHtoD(table, np.arange(TABLE))
        out = rt.cudaMalloc(32, label="out")
        rt.cuLaunchKernel(kern, 1, 32, data, noise_idx, table, out)
    return program


def naive_differencing_flags(program):
    """The strawman: one trace per input, report any difference."""
    recorder = TraceRecorder()
    return recorder.record(program, 3) != recorder.record(program, 9)


def owl_flags(program, runs):
    owl = Owl(program, name="ablation",
              config=OwlConfig(fixed_runs=runs, random_runs=runs))
    result = owl.detect(
        inputs=[3, 9], random_input=lambda rng: int(rng.integers(0, TABLE)))
    return result.report.has_leaks


def run_ablation(runs):
    clean = make_program(noisy_clean_kernel)
    leaky = make_program(noisy_leaky_kernel)
    return {
        ("clean", "naive"): naive_differencing_flags(clean),
        ("clean", "owl"): owl_flags(clean, runs),
        ("leaky", "naive"): naive_differencing_flags(leaky),
        ("leaky", "owl"): owl_flags(leaky, runs),
    }


def test_ablation_nondeterminism(benchmark):
    runs = bench_runs()
    flags = benchmark.pedantic(run_ablation, args=(runs,), rounds=1,
                               iterations=1)

    emit_table(
        "ablation_nondeterminism",
        "Ablation: fixed-input repetition vs naive differencing",
        ["Program (truth)", "Naive diff flags", "Owl flags"],
        [("noisy, leak-free (no leak)", flags[("clean", "naive")],
          flags[("clean", "owl")]),
         ("noisy, leaky (leak)", flags[("leaky", "naive")],
          flags[("leaky", "owl")])])

    # naive differencing false-positives on the leak-free noisy program
    assert flags[("clean", "naive")] is True
    # Owl's distribution testing filters the noise...
    assert flags[("clean", "owl")] is False
    # ...without losing the genuine leak
    assert flags[("leaky", "owl")] is True
    assert flags[("leaky", "naive")] is True
