"""Perf-regression gate for the trace hot path and the detection service.

Re-measures the end-to-end ``Owl.detect`` rows of
``bench_trace_hotpath.py`` and the multi-tenant amortisation row of
``bench_service_throughput.py`` at their full-mode parameters and
compares each speedup against the committed artefacts
(``benchmarks/results/trace_hotpath.txt`` and
``benchmarks/results/service_throughput.txt``).  A row that loses more
than ``TOLERANCE`` of its committed speedup fails the check — catching
changes that quietly re-serialise the replica path, fatten the per-run
cost, or bloat the service scheduler's per-unit overhead — while staying
robust to the noise of shared CI runners (record-row timings in the
microsecond range are *not* gated; only the e2e ratios are).

Usage::

    python benchmarks/check_perf_regression.py            # measure + compare
    python benchmarks/check_perf_regression.py --reps 3   # damp noise more

Exit status 0 when every gated row holds, 1 on regression, 2 when the
committed artefact is missing or unparsable (run the full bench first).
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Dict

from bench_service_throughput import service_speedup
from bench_trace_hotpath import (
    ADAPTIVE_DETECT_RUNS, REPLICA_DETECT_RUNS, detect_seconds)

RESULTS = Path(__file__).parent / "results"
HOTPATH_ARTIFACT = RESULTS / "trace_hotpath.txt"
SERVICE_ARTIFACT = RESULTS / "service_throughput.txt"

#: fraction of the committed speedup a row may lose before the gate fails
TOLERANCE = 0.25

#: gated row → (committed artefact, re-measurement at full-mode params)
GATED_ROWS = {
    "AES detect (e2e)": (HOTPATH_ARTIFACT, lambda reps: (
        detect_seconds(False, False, 8, reps=reps),
        detect_seconds(True, False, 8, reps=reps))),
    "AES detect (cohort e2e)": (HOTPATH_ARTIFACT, lambda reps: (
        detect_seconds(True, False, 8, reps=reps),
        detect_seconds(True, True, 8, reps=reps))),
    "AES detect (replica e2e)": (HOTPATH_ARTIFACT, lambda reps: (
        detect_seconds(True, False, REPLICA_DETECT_RUNS, reps=reps),
        detect_seconds(True, True, REPLICA_DETECT_RUNS,
                       replica_batch=True, replica_dedup=True, reps=reps))),
    # catches the dual-detector path losing its shared-fold amortisation
    # and drifting toward the cost of two separate campaigns
    "AES detect (both e2e)": (HOTPATH_ARTIFACT, lambda reps: (
        detect_seconds(True, True, 8, analyzer="ks", reps=reps)
        + detect_seconds(True, True, 8, analyzer="mi", reps=reps),
        detect_seconds(True, True, 8, analyzer="both", reps=reps))),
    # catches the adaptive scheduler losing its early stop (or its
    # interim looks growing expensive enough to eat the saved replicas)
    "AES detect (adaptive e2e)": (HOTPATH_ARTIFACT, lambda reps: (
        detect_seconds(True, True, ADAPTIVE_DETECT_RUNS, replica_batch=True,
                       reps=reps),
        detect_seconds(True, True, ADAPTIVE_DETECT_RUNS, replica_batch=True,
                       adaptive=True, reps=reps))),
    "service multi-tenant (e2e)": (SERVICE_ARTIFACT, lambda reps: (
        service_speedup(workers=0, reps=reps))),
}

_ROW = re.compile(r"^(?P<name>.+?)\s{2,}[\d.]+\s+[\d.]+\s+"
                  r"(?P<speedup>[\d.]+)x\s*$")


def committed_speedups(text: str) -> Dict[str, float]:
    """Parse {row name: speedup} out of the committed artefact table."""
    speedups = {}
    for line in text.splitlines():
        match = _ROW.match(line)
        if match:
            speedups[match.group("name").strip()] = float(
                match.group("speedup"))
    return speedups


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=2,
                        help="best-of-N repetitions per measurement "
                             "(default: 2)")
    args = parser.parse_args(argv)

    committed = {}
    for artifact in {artifact for artifact, _measure in GATED_ROWS.values()}:
        if not artifact.exists():
            print(f"perf-regression: no committed artefact at {artifact}; "
                  "run the full bench first", file=sys.stderr)
            return 2
        committed.update(committed_speedups(artifact.read_text()))
    missing = sorted(set(GATED_ROWS) - set(committed))
    if missing:
        print(f"perf-regression: artefacts lack gated rows {missing}; "
              "regenerate them with the full benches", file=sys.stderr)
        return 2
    # every committed fast-path row must actually be a speedup: a ratio
    # below 1.0 means a default-on fast path ships slower than its
    # baseline, which is a bug in the artefact, not runner noise
    slow = sorted(name for name, speedup in committed.items()
                  if speedup < 1.0)
    if slow:
        print(f"perf-regression: committed artefact rows below 1.0x "
              f"{slow}; a fast path must not ship slower than its "
              "baseline", file=sys.stderr)
        return 1

    failures = []
    for name, (_artifact, measure) in GATED_ROWS.items():
        baseline_s, fast_s = measure(args.reps)
        speedup = baseline_s / fast_s
        floor = committed[name] * (1 - TOLERANCE)
        verdict = "ok" if speedup >= floor else "REGRESSED"
        print(f"{name}: committed {committed[name]:.2f}x, "
              f"measured {speedup:.2f}x (floor {floor:.2f}x) [{verdict}]")
        if speedup < floor:
            failures.append(name)
    if failures:
        print(f"perf-regression: {len(failures)} row(s) regressed more "
              f"than {TOLERANCE:.0%}: {failures}", file=sys.stderr)
        return 1
    print("perf-regression: all gated rows within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
