"""Table IV: Owl's performance during analysis of the three applications.

Per function, the paper reports: per-trace size and collection time, the
number of traces and time of evidence collection, distribution-test time,
and the analysis' peak RAM and total time.  This bench regenerates every
column for a representative subset of each application (AES, RSA, four
minitorch functions, nvjpeg encode/decode).

Absolute numbers are not comparable to the paper's testbed (their traces
come from NVBit on an RTX A4000; ours from the simulator), but the cost
*structure* they highlight is asserted: trace collection dominates while
evidence merging and distribution testing are comparatively free, and the
crypto/codec workloads carry much heavier traces than the small framework
ops.
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import bench_runs, emit_table
from repro.apps.libgpucrypto import (
    aes_program,
    random_exponent,
    random_key,
    rsa_program,
)
from repro.apps.minitorch import (
    make_op_program,
    make_random_input,
    serialize_program,
    tensor_repr_program,
)
from repro.apps.minitorch.ops import fixed_op_input
from repro.apps.minitorch.serialize import serialize_random_input
from repro.apps.minitorch.tensor import repr_random_input
from repro.apps.nvjpeg import (
    decode_program,
    encode_program,
    random_image,
    synthetic_image,
)
from repro.core import Owl, OwlConfig

MINITORCH_OPS = ("maxpool2d", "conv2d", "linear", "mseloss")


def workloads():
    rng = np.random.default_rng(9)
    table = {
        "libgpucrypto/AES": (
            aes_program, [bytes(range(16)), bytes(range(1, 17))], random_key),
        "libgpucrypto/RSA": (
            rsa_program, [0x6ACF8231, 0x7FD4C9A7], random_exponent),
        "minitorch/Tensor.__repr__": (
            tensor_repr_program,
            [np.linspace(-2, 2, 64), np.linspace(-2, 2, 64) * 10_000],
            repr_random_input),
        "minitorch/serialize": (
            serialize_program, [np.zeros(64), np.linspace(-2, 2, 64)],
            serialize_random_input),
        "nvjpeg/encoding": (
            encode_program,
            [synthetic_image(16, 16, seed=1), synthetic_image(16, 16, seed=2)],
            lambda generator: random_image(generator, 16, 16)),
        "nvjpeg/decoding": (
            decode_program,
            [synthetic_image(16, 16, seed=1), synthetic_image(16, 16, seed=2)],
            lambda generator: random_image(generator, 16, 16)),
    }
    for op in MINITORCH_OPS:
        generate = make_random_input(op)
        table[f"minitorch/{op}"] = (
            make_op_program(op), [fixed_op_input(op), generate(rng)],
            generate)
    return table


def profile_all(runs):
    measurements = {}
    for name, (program, inputs, random_input) in workloads().items():
        # always_analyze: even functions whose two probe inputs happen to
        # trace identically go through the full 2N-run protocol, as every
        # Table IV row did in the paper
        config = OwlConfig(fixed_runs=runs, random_runs=runs,
                           measure_memory=True, always_analyze=True)
        owl = Owl(program, name=name, config=config)
        result = owl.detect(inputs=inputs, random_input=random_input)
        measurements[name] = result.stats
    return measurements


def test_table4_performance(benchmark):
    runs = bench_runs()
    stats = benchmark.pedantic(profile_all, args=(runs,), rounds=1,
                               iterations=1)

    rows = []
    for name, s in stats.items():
        rows.append((
            name,
            f"{s.avg_trace_bytes / 1024:.2f}",
            f"{s.avg_trace_seconds * 1000:.2f}",
            s.trace_count,
            f"{s.evidence_seconds:.3f}",
            f"{s.test_seconds * 1000:.2f}",
            f"{s.peak_ram_bytes / 1024 ** 2:.1f}",
            f"{s.total_seconds:.2f}",
        ))
    emit_table(
        "table4", f"Table IV: Owl performance ({runs}+{runs} runs)",
        ["Function", "Trace KB", "Trace ms", "Traces", "Evidence s",
         "Test ms", "RAM MB", "Total s"], rows)

    aes = stats["libgpucrypto/AES"]
    rsa = stats["libgpucrypto/RSA"]

    # every analysed workload actually collected its traces
    for name, s in stats.items():
        assert s.trace_count >= 2, name
        assert s.avg_trace_bytes > 0, name
        assert s.total_seconds > 0, name
        assert s.peak_ram_bytes > 0, name

    # trace collection dominates; the statistics are comparatively free —
    # the cost structure Table IV shows for every function
    for name, s in stats.items():
        if s.trace_count > 10:  # analysed (not filtered out early)
            assert s.evidence_seconds < s.trace_seconds_total, name
            assert s.test_seconds < s.trace_seconds_total, name

    # deviation from the paper: their RSA traces dwarf AES (250 MB vs
    # 19 MB) because bignum limbs live in memory; our toy modexp is
    # register-resident, so the crypto ordering flips (see EXPERIMENTS.md).
    # The coarser relation still holds: crypto/codec traces are much
    # heavier than the small framework ops.
    assert aes.avg_trace_bytes > 5 * stats["minitorch/serialize"].avg_trace_bytes
    assert stats["nvjpeg/encoding"].avg_trace_bytes \
        > 5 * stats["minitorch/mseloss"].avg_trace_bytes
    assert rsa.avg_trace_bytes > 0
