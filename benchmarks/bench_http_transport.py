"""Service transports head to head: unix socket vs HTTP/JSON front end.

Both transports are thin codecs over the same
:class:`~repro.service.api.ServiceAPI`, so they must return identical
payloads — this bench asserts that, then prices the difference.  The
HTTP front end pays request parsing, header framing and (for ``watch``)
chunked encoding per call; the JSON-lines socket pays one line each
way.  Two measurements:

* **light ops** — ``ping`` and ``status`` round trips per transport
  (connection per call, exactly how :class:`ServiceClient` works), as
  mean latency and ops/s;
* **campaign e2e** — submit → wait → results for one dummy campaign
  per transport, report bytes asserted identical across transports
  *and* to a direct in-process ``Owl.detect``.

Run modes:

* ``pytest benchmarks/bench_http_transport.py --benchmark-only -s`` —
  full measurement, asserts HTTP stays within 10x of the socket on
  light ops (generous: it is a per-request TCP handshake vs a unix
  connect, and correctness, not speed, is HTTP's job);
* ``python benchmarks/bench_http_transport.py --smoke`` — one quick
  pass for CI: identity checks only, no latency bar.
"""

from __future__ import annotations

import shutil
import socket
import sys
import tempfile
import threading
import time
from pathlib import Path

from _bench_utils import RESULTS_DIR, bench_runs, render_table
from repro.apps.registry import resolve
from repro.core import Owl, OwlConfig
from repro.service import CampaignScheduler, ServiceClient, ServiceConfig
from repro.service.server import serve_forever

WORKLOAD = "dummy"


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _config_dict(runs: int) -> dict:
    return {"fixed_runs": runs, "random_runs": runs, "seed": 7}


def _direct_report(runs: int, root: Path) -> str:
    program, fixed_inputs, random_input = resolve(WORKLOAD)
    owl = Owl(program, name=WORKLOAD, config=OwlConfig(**_config_dict(runs)))
    result = owl.detect(fixed_inputs(), random_input=random_input,
                        store=root / "direct")
    return result.report.to_json()


class _LiveService:
    """One scheduler + server thread on the given transport URL."""

    def __init__(self, root: Path, url: str, address) -> None:
        self.scheduler = CampaignScheduler(
            root / "store", root / "queue",
            ServiceConfig(workers=0, unit_runs=10, poll_seconds=0.005))
        self.client = ServiceClient(url)
        self.thread = threading.Thread(
            target=serve_forever, args=(self.scheduler, address),
            kwargs={"tick_seconds": 0.005}, daemon=True)
        self.thread.start()
        self.client.wait_until_up(timeout=30)

    def stop(self) -> None:
        try:
            self.client.shutdown()
        except OSError:
            pass
        self.thread.join(timeout=30)


def _service(root: Path, transport: str) -> _LiveService:
    if transport == "socket":
        path = root / "owl.sock"
        return _LiveService(root, f"unix://{path}", ("unix", str(path)))
    port = _free_port()
    return _LiveService(root, f"http://127.0.0.1:{port}",
                        ("http", ("127.0.0.1", port)))


def light_op_seconds(service: _LiveService, op: str, calls: int) -> float:
    """Total seconds for ``calls`` round trips of one light op."""
    hit = (service.client.ping if op == "ping"
           else service.client.overview)
    hit()  # prime: first call may race server startup caches
    started = time.perf_counter()
    for _ in range(calls):
        hit()
    return time.perf_counter() - started


def campaign_seconds(service: _LiveService, runs: int):
    """Submit → wait → results once; returns (seconds, report bytes)."""
    started = time.perf_counter()
    receipt = service.client.submit(WORKLOAD, config=_config_dict(runs))
    service.client.wait_for(receipt.campaign, timeout=600, poll=0.01)
    results = service.client.results(receipt.campaign)
    elapsed = time.perf_counter() - started
    assert results.complete, results
    return elapsed, results.report_json


def measure(smoke: bool = False):
    runs = bench_runs(4 if smoke else 20)
    calls = 20 if smoke else 200

    root = Path(tempfile.mkdtemp(prefix="owl-bench-http-"))
    light_rows, e2e_rows = [], []
    latency = {}
    reports = {}
    try:
        expected = _direct_report(runs, root)
        for transport in ("socket", "http"):
            service = _service(root / transport, transport)
            try:
                for op in ("ping", "status"):
                    total = light_op_seconds(service, op, calls)
                    latency[(transport, op)] = total / calls
                    light_rows.append(
                        [transport, op, calls,
                         f"{total / calls * 1e3:.3f}",
                         f"{calls / total:.0f}"])
                e2e_s, report_json = campaign_seconds(service, runs)
                reports[transport] = report_json
                e2e_rows.append([transport, f"{runs}+{runs}",
                                 f"{e2e_s:.3f}"])
            finally:
                service.stop()
        for transport, report_json in reports.items():
            assert report_json == expected, \
                f"{transport} report diverged from direct detect"
    finally:
        shutil.rmtree(root, ignore_errors=True)

    light = render_table(
        f"Service transport light-op round trips ({calls} calls, "
        f"connection per call)",
        ["transport", "op", "calls", "mean ms", "ops/s"], light_rows)
    e2e = render_table(
        f"Campaign e2e through each transport ({WORKLOAD})",
        ["transport", "runs", "e2e s"], e2e_rows)

    text = light + "\n\n" + e2e
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "http_transport.txt").write_text(text + "\n")
    return latency


def test_http_transport(benchmark=None):
    latency = measure()
    for op in ("ping", "status"):
        ratio = latency[("http", op)] / latency[("socket", op)]
        assert ratio < 10.0, \
            f"http {op} {ratio:.1f}x slower than the socket (cap 10x)"


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    latency = measure(smoke=smoke)
    if smoke:
        print("\nbit-identity checks passed (smoke mode: no latency bar)")
    else:
        ratio = latency[("http", "ping")] / latency[("socket", "ping")]
        print(f"\nbit-identity checks passed; http ping costs {ratio:.1f}x "
              f"a socket ping")
