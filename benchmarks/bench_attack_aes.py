"""Exploitability: from Owl's AES finding to key bits (extension).

Owl reports the T-table lookups as data-flow leaks; this bench closes the
loop by mounting the classic cache-line elimination attack against the
same kernel (the Jiang et al. attack the paper cites as its motivating
GPU AES break) and measuring:

* the elimination curve — surviving key candidates per byte vs traces;
* the endpoint — the true 8-candidate line class for all 16 bytes, i.e.
  5 of 8 bits per key byte (80/128 bits) from line-granular observation;
* the timing channel — single-block encryption cycles vary with the key
  for the leaky kernel and are constant for the patched one.
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import emit_table
from repro.apps.libgpucrypto import aes_program_ct
from repro.attacks import (
    aes_single_block_program,
    collect_observations,
    recover_key_classes,
    timing_distinguisher,
    true_key_classes,
)

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")  # FIPS-197 key
TRACE_CHECKPOINTS = (1, 2, 5, 10, 20, 40)


def run_attack():
    observations = collect_observations(KEY, max(TRACE_CHECKPOINTS),
                                        np.random.default_rng(3))
    curve = []
    for count in TRACE_CHECKPOINTS:
        survivors = recover_key_classes(observations[:count])
        mean_candidates = float(np.mean([len(s) for s in survivors]))
        solved = sum(1 for s, e in zip(survivors, true_key_classes(KEY))
                     if s == e)
        curve.append((count, mean_candidates, solved))
    final = recover_key_classes(observations)

    plaintext = bytes(range(16))
    keys = [KEY, bytes(range(16)), b"\x5a" * 16, bytes(range(1, 17))]
    leaky_timings = timing_distinguisher(
        aes_single_block_program, [(key, plaintext) for key in keys])
    patched_timings = timing_distinguisher(aes_program_ct, keys)
    return curve, final, leaky_timings, patched_timings


def test_attack_aes(benchmark):
    curve, final, leaky_timings, patched_timings = benchmark.pedantic(
        run_attack, rounds=1, iterations=1)

    rows = [(count, f"{mean_candidates:.1f}", f"{solved}/16")
            for count, mean_candidates, solved in curve]
    emit_table("attack_aes",
               "AES cache-line attack: candidate elimination vs traces "
               "(+ timing channel)",
               ["Traces", "mean candidates/byte", "bytes at line-class"],
               rows + [
                   ("timing: leaky distinct cycle counts",
                    len(set(leaky_timings.values())), ""),
                   ("timing: patched distinct cycle counts",
                    len(set(patched_timings.values())), ""),
               ])

    # elimination is monotone and converges to the 8-candidate class
    means = [mean for _c, mean, _s in curve]
    assert all(later <= earlier
               for earlier, later in zip(means, means[1:]))
    assert final == true_key_classes(KEY)
    assert curve[-1][2] == 16

    # the timing channel distinguishes keys only for the leaky kernel
    assert len(set(leaky_timings.values())) > 1
    assert len(set(patched_timings.values())) == 1
