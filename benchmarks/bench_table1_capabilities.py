"""Table I: side-channel detection capability matrix.

The paper's Table I scores eleven tools on four requirements: ① binary
analysis, ② diverse targets, ③ accurate leakage positioning, and
④ scalability.  The literature rows are fixed data transcribed from the
table; the three rows we actually *implement* — DATA, pitchfork, and Owl —
are scored by measurement against the same workloads, so the matrix's
bottom-right corner is reproduced rather than asserted.
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import emit_table
from repro.apps.libgpucrypto import aes_program, random_key
from repro.apps.minitorch import serialize_program
from repro.apps.minitorch.serialize import serialize_random_input
from repro.baselines import data_tool_analyze, pitchfork_analyze
from repro.baselines.data_tool import per_thread_memory_bytes
from repro.apps.dummy import dummy_program, fixed_input
from repro.core import Owl, OwlConfig
from repro.tracing import TraceRecorder

FULL, PARTIAL, NONE = "●", "◐", "○"

#: ①②③④ scores for the tools we do not reimplement (from the paper).
LITERATURE_ROWS = [
    ("Blazer", NONE, NONE, NONE, PARTIAL),
    ("CaSym", PARTIAL, NONE, NONE, NONE),
    ("CacheD", FULL, NONE, FULL, NONE),
    ("DATA", FULL, NONE, FULL, PARTIAL),
    ("CANAL", PARTIAL, NONE, PARTIAL, NONE),
    ("HyDiff", PARTIAL, PARTIAL, PARTIAL, NONE),
    ("MicroWalk", FULL, NONE, FULL, NONE),
    ("Microwalk-CI", NONE, NONE, FULL, NONE),
    ("Manifold-SCA", FULL, PARTIAL, NONE, NONE),
    ("CacheQL", FULL, PARTIAL, FULL, NONE),
]


def measure_owl_capabilities():
    """Score Owl's ②③④ by running it, not by assertion."""
    config = OwlConfig(fixed_runs=10, random_runs=10)
    # ② diverse targets: crypto (AES) and a framework op (serialization)
    aes = Owl(aes_program, name="aes", config=config).detect(
        inputs=[bytes(range(16)), bytes(range(1, 17))],
        random_input=random_key)
    serial = Owl(serialize_program, name="serialize", config=config).detect(
        inputs=[np.zeros(64), np.ones(64)],
        random_input=serialize_random_input)
    diverse = aes.report.has_leaks and serial.report.has_leaks
    # ③ positioning: leaks carry block + instruction locations
    positioned = all(leak.block for leak in aes.report.data_flow_leaks)
    # ④ scalability: trace size saturates as threads grow 16x
    recorder = TraceRecorder()
    small = recorder.record(dummy_program, fixed_input(512)).adcfg_bytes()
    large = recorder.record(dummy_program, fixed_input(8192)).adcfg_bytes()
    scalable = large < 2 * small
    return diverse, positioned, scalable


def measure_baseline_capabilities():
    """DATA's blindness and pitchfork's false positives, measured."""
    data_report = data_tool_analyze(
        aes_program, [bytes(range(16)), bytes(range(1, 17))])
    data_sees_device = data_report.found_kernel_leak  # False: host-only
    data_memory_512 = per_thread_memory_bytes(dummy_program, fixed_input(512))
    data_memory_8k = per_thread_memory_bytes(dummy_program, fixed_input(8192))
    data_scalable = data_memory_8k < 2 * data_memory_512  # False: linear

    pf_report = pitchfork_analyze(aes_program, bytes(range(16)),
                                  secret_labels={"aes.round_keys"})
    pf_positions_accurately = not pf_report.tid_false_positives  # False
    return data_sees_device, data_scalable, pf_positions_accurately


def test_table1_capabilities(benchmark):
    measured = benchmark.pedantic(
        lambda: (measure_owl_capabilities(), measure_baseline_capabilities()),
        rounds=1, iterations=1)
    (diverse, positioned, scalable), \
        (data_device, data_scalable, pf_positions) = measured

    # Owl must fully satisfy all four requirements
    assert diverse and positioned and scalable
    # DATA: blind in kernels, memory not scalable (measured, matching Table I)
    assert not data_device
    assert not data_scalable
    # pitchfork-class static analysis cannot position accurately on CUDA
    assert not pf_positions

    owl_row = ("Owl (measured)", FULL,
               FULL if diverse else NONE,
               FULL if positioned else NONE,
               FULL if scalable else NONE)
    measured_data_row = ("DATA (measured)", FULL, NONE,
                         FULL if data_device else PARTIAL,
                         PARTIAL if not data_scalable else FULL)
    measured_pf_row = ("pitchfork (measured)", PARTIAL, NONE,
                       FULL if pf_positions else NONE, NONE)

    emit_table(
        "table1", "Table I: side-channel leakage detection capabilities "
        "(● full / ◐ partial / ○ none)",
        ["Tool", "1 binary", "2 targets", "3 positioning", "4 scalability"],
        LITERATURE_ROWS + [measured_data_row, measured_pf_row, owl_row])
