"""Campaign store: cold vs. warm `Owl.detect` wall clock.

The store's value proposition is that the expensive phases (trace
recording, evidence collection) are paid once: a warm re-run loads
persisted artifacts, re-checks nothing it can prove cached, and returns
a bit-identical report.  This bench measures that on two workloads:

* **cold** — empty store, full recording + analysis + persistence;
* **warm (evidence)** — report reuse disabled, so the analysis re-runs
  over cached traces/evidence (the "new confidence level" scenario);
* **warm (report)** — straight report cache hit (the re-audit scenario).

Bit-identity of all three reports is asserted while timing.

Run modes:

* ``pytest benchmarks/bench_store_warm.py --benchmark-only -s`` — full
  measurement, asserts the warm speedup bar;
* ``python benchmarks/bench_store_warm.py --smoke`` — one quick pass for
  CI: records the timing artefact and checks bit-identity, no speedup
  bar (shared runners are too noisy to gate merges on a ratio).

``OWL_BENCH_RUNS`` scales the fixed/random run counts (default 30).
"""

from __future__ import annotations

import shutil
import sys
import tempfile
import time
from pathlib import Path

from _bench_utils import bench_runs, emit_table
from repro.apps.libgpucrypto import aes_program, random_key
from repro.core import Owl, OwlConfig
from repro.store import TraceStore

AES_INPUTS = [bytes(range(16)), bytes(range(1, 17))]

WORKLOADS = {
    "aes": (aes_program, AES_INPUTS, random_key),
}


def _dummy_workload():
    from repro.apps import dummy
    return (dummy.dummy_program,
            [dummy.fixed_input(), dummy.fixed_input(value=9)],
            dummy.random_input)


def timed_detect(name, program, inputs, random_input, runs,
                 store=None, reuse_report=True):
    config = OwlConfig(fixed_runs=runs, random_runs=runs)
    owl = Owl(program, name=name, config=config)
    started = time.perf_counter()
    result = owl.detect(inputs=inputs, random_input=random_input,
                        store=store, reuse_report=reuse_report)
    return time.perf_counter() - started, result


def measure(smoke: bool = False):
    runs = bench_runs(30 if not smoke else 6)
    workloads = dict(WORKLOADS)
    workloads["dummy"] = _dummy_workload()

    rows = []
    speedups = {}
    for name in sorted(workloads):
        program, inputs, random_input = workloads[name]
        root = Path(tempfile.mkdtemp(prefix="owl-bench-store-"))
        try:
            cold_s, cold = timed_detect(
                name, program, inputs, random_input, runs,
                store=TraceStore(root / "store"))
            warm_ev_s, warm_ev = timed_detect(
                name, program, inputs, random_input, runs,
                store=TraceStore(root / "store"), reuse_report=False)
            warm_rp_s, warm_rp = timed_detect(
                name, program, inputs, random_input, runs,
                store=TraceStore(root / "store"))

            assert warm_ev.report.to_json() == cold.report.to_json(), \
                f"{name}: warm evidence-path report diverged from cold"
            assert warm_rp.report.to_json() == cold.report.to_json(), \
                f"{name}: warm report-path report diverged from cold"
            assert warm_rp.stats.report_cache_hit
            assert warm_ev.stats.cached_runs == 2 * runs

            speedups[name] = (cold_s / warm_ev_s if warm_ev_s else 0.0,
                              cold_s / warm_rp_s if warm_rp_s else 0.0)
            rows.append([name, runs, f"{cold_s:.3f}", f"{warm_ev_s:.3f}",
                         f"{warm_rp_s:.3f}",
                         f"{speedups[name][0]:.2f}x",
                         f"{speedups[name][1]:.2f}x",
                         "identical"])
        finally:
            shutil.rmtree(root, ignore_errors=True)

    emit_table(
        "store_warm",
        f"Campaign store: cold vs warm detect wall clock "
        f"({runs}+{runs} runs)",
        ["workload", "runs", "cold s", "warm-evidence s", "warm-report s",
         "evidence speedup", "report speedup", "reports"],
        rows)
    return speedups


def test_store_warm_speedup(benchmark=None):
    speedups = measure()
    for name, (evidence_speedup, report_speedup) in speedups.items():
        # the warm evidence path skips all recording; even with analysis
        # re-run it must beat cold by a wide margin
        assert evidence_speedup > 2.0, \
            f"{name}: warm evidence path only {evidence_speedup:.2f}x"
        assert report_speedup > evidence_speedup, \
            f"{name}: report cache not faster than evidence cache"


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    measure(smoke=smoke)
    print("\nbit-identity checks passed" +
          (" (smoke mode: no speedup bars)" if smoke else ""))
