"""Ablation: pooled histograms vs strict per-run feature sampling.

DESIGN.md §6's third knob: the paper's pooled histograms count each lane
access as a sample, so correlated lanes (all 32 sharing one secret and one
random factor) over-disperse the pooled test and can false-positive on
run-level randomness; the strict mode samples each feature once per run —
calibrated by construction, but it must retain per-run graphs (O(runs)
memory) and run one KS test per feature coordinate (slower).

This ablation measures detection, false positives, memory, and test time
for both modes on the same workloads.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from _bench_utils import bench_runs, emit_table
from repro.core import Owl, OwlConfig
from repro.gpusim import kernel

TABLE = 64


@kernel()
def lookup_kernel(k, table, data, out):
    k.block("entry")
    tid = k.global_tid()
    k.store(out, tid, k.load(table, k.load(data, tid) % TABLE))


def leaky_program(rt, secret):
    table = rt.cudaMalloc(TABLE, label="table")
    rt.cudaMemcpyHtoD(table, np.arange(TABLE))
    data = rt.cudaMalloc(32, label="data")
    rt.cudaMemcpyHtoD(data, np.full(32, secret))
    out = rt.cudaMalloc(32, label="out")
    rt.cuLaunchKernel(lookup_kernel, 1, 32, table, data, out)


#: seeded rotation stream: random per run, reproducible across bench runs
_ROTATION_RNG = np.random.default_rng(424242)


def rotated_program(rt, secret):
    """Run-level randomness with 32x-correlated lanes (ground truth: clean)."""
    rotation = int(_ROTATION_RNG.integers(0, TABLE))
    table = rt.cudaMalloc(TABLE, label="table")
    rt.cudaMemcpyHtoD(table, np.roll(np.arange(TABLE), -rotation))
    data = rt.cudaMalloc(32, label="data")
    rt.cudaMemcpyHtoD(data, np.full(32, (secret - rotation) % TABLE))
    out = rt.cudaMalloc(32, label="out")
    rt.cuLaunchKernel(lookup_kernel, 1, 32, table, data, out)


def random_secret(rng):
    return int(rng.integers(0, TABLE))


def run_mode(program, sampling, runs):
    config = OwlConfig(fixed_runs=runs, random_runs=runs, sampling=sampling,
                       measure_memory=True)
    owl = Owl(program, name=sampling, config=config)
    started = time.perf_counter()
    result = owl.detect(inputs=[3, 40], random_input=random_secret)
    elapsed = time.perf_counter() - started
    return result, elapsed


def sweep(runs):
    out = {}
    for name, program in (("leaky", leaky_program),
                          ("rotated-clean", rotated_program)):
        for sampling in ("pooled", "per_run"):
            out[(name, sampling)] = run_mode(program, sampling, runs)
    return out


def test_ablation_sampling(benchmark):
    runs = bench_runs()
    results = benchmark.pedantic(sweep, args=(runs,), rounds=1, iterations=1)

    rows = []
    for (workload, sampling), (result, elapsed) in results.items():
        counts = result.report.counts()
        rows.append((workload, sampling,
                     "LEAKS" if result.report.has_leaks else "clean",
                     counts["data_flow"],
                     f"{result.stats.peak_ram_bytes / 1024:.0f} KiB",
                     f"{result.stats.test_seconds * 1000:.1f} ms"))
    emit_table("ablation_sampling",
               "Ablation: pooled vs per-run feature sampling",
               ["Workload (truth)", "Sampling", "Verdict", "DF leaks",
                "peak RAM", "test time"], rows)

    # both modes find the genuine leak
    assert results[("leaky", "pooled")][0].report.data_flow_leaks
    assert results[("leaky", "per_run")][0].report.data_flow_leaks
    # the correlated-lane randomness false-positives pooled mode (uncapped)
    # and is handled by per-run sampling
    assert results[("rotated-clean", "pooled")][0].report.has_leaks
    assert not results[("rotated-clean", "per_run")][0].report.has_leaks
    # the price: strict mode runs one KS test per feature coordinate
    # (peak-RAM readings are warm-up-order sensitive in-process, so the
    # asserted cost is the stable one: distribution-test time)
    pooled_test_s = results[("leaky", "pooled")][0].stats.test_seconds
    strict_test_s = results[("leaky", "per_run")][0].stats.test_seconds
    assert strict_test_s > 2 * pooled_test_s
