"""Table II: parameters of the experiment platform.

The paper's Table II lists the hardware/software stack (i9-12900, RTX
A4000, Ubuntu, CUDA 12.0).  Our platform is the simulator, so the table
reports the simulated device configuration plus the host Python stack —
the environmental facts a reader needs to situate the measurements.
"""

from __future__ import annotations

import platform
import sys

import numpy as np

from _bench_utils import emit_table
from repro.gpusim import Device, DeviceConfig


def gather_platform_rows():
    config = DeviceConfig()
    rows = [("Description", value) for value in ()]  # placeholder shape
    rows = list(config.describe().items())
    rows += [
        ("Host OS", platform.system()),
        ("Host kernel", platform.release()),
        ("Python", sys.version.split()[0]),
        ("NumPy", np.__version__),
        ("Substrate", "repro.gpusim SIMT simulator (in place of "
                      "NVBit + CUDA 12.0)"),
    ]
    return rows


def test_table2_platform(benchmark):
    rows = benchmark.pedantic(gather_platform_rows, rounds=1, iterations=1)
    table = dict(rows)
    # the simulated device must advertise the SIMT parameters the analysis
    # depends on
    assert table["Warp size"] == "32"
    assert table["Device ASLR"] == "disabled"
    assert "Simulated" in table["GPU (simulated)"]

    # a launch on the described device actually works
    device = Device(DeviceConfig())
    assert device.config.warp_size == 32

    emit_table("table2", "Table II: parameters of the experiment platform "
               "(simulated)", ["Description", "Value"], rows)
