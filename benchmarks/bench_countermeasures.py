"""Countermeasure verification (§IX): patch, re-audit, measure the cost.

The paper's countermeasure section surveys hiding secret-dependent access
patterns (masked/bitsliced lookups, GPU scatter-gather) and its related
work warns that randomisation-based defences (oblivious RAM) turn
deterministic detectors into false-positive machines.  This bench runs the
full patch-and-re-audit loop on a table-lookup workload:

* the naive lookup must be flagged;
* each §IX defence must come back clean under its intended attacker model;
* the randomised (rotated-table) defence must fool naive trace differencing
  but not Owl;
* the defences' overheads (traced memory accesses per run) are measured.
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import bench_runs, emit_table
from repro.core import Owl, OwlConfig
from repro.countermeasures import RotatedTable, masked_lookup, striped_lookup
from repro.gpusim import Device, kernel
from repro.gpusim.events import MemoryAccessEvent
from repro.host import CudaRuntime
from repro.tracing import TraceRecorder

TABLE = np.arange(100, 164, dtype=np.int64)
STRIPE = 8


@kernel()
def naive_kernel(k, table, data, out):
    k.block("entry")
    tid = k.global_tid()
    k.store(out, tid, k.load(table, k.load(data, tid) % 64))


@kernel()
def masked_kernel(k, table, data, out):
    k.block("entry")
    tid = k.global_tid()
    k.store(out, tid, masked_lookup(k, table, k.load(data, tid) % 64))


@kernel()
def striped_kernel(k, table, data, out):
    k.block("entry")
    tid = k.global_tid()
    k.store(out, tid, striped_lookup(k, table, k.load(data, tid) % 64,
                                     stripe_width=STRIPE))


def plain_program(kern):
    def program(rt, secret):
        table = rt.cudaMalloc(64, label="table")
        rt.cudaMemcpyHtoD(table, TABLE)
        data = rt.cudaMalloc(32, label="data")
        rt.cudaMemcpyHtoD(data, np.full(32, secret))
        out = rt.cudaMalloc(32, label="out")
        rt.cuLaunchKernel(kern, 1, 32, table, data, out)
    return program


#: seeded rotation stream: random per run, reproducible across bench runs
_ROTATION_RNG = np.random.default_rng(1337)


def rotated_program(rt, secret):
    table = RotatedTable(rt, TABLE, label="table", rng=_ROTATION_RNG)

    @kernel()
    def rotated_kernel(k, data, out):
        k.block("entry")
        tid = k.global_tid()
        k.store(out, tid, table.lookup(k, k.load(data, tid) % 64))

    data = rt.cudaMalloc(32, label="data")
    rt.cudaMemcpyHtoD(data, np.full(32, secret))
    out = rt.cudaMalloc(32, label="out")
    rt.cuLaunchKernel(rotated_kernel, 1, 32, data, out)


def accesses_per_run(program):
    device = Device()
    counter = {"n": 0}
    device.subscribe(lambda e: counter.__setitem__("n", counter["n"] + 1)
                     if isinstance(e, MemoryAccessEvent) else None)
    program(CudaRuntime(device), 3)
    return counter["n"]


def audit_all(runs):
    random_secret = lambda rng: int(rng.integers(0, 64))
    workloads = {
        "naive lookup": (plain_program(naive_kernel), {}, [3, 60]),
        "masked sweep": (plain_program(masked_kernel), {}, [3, 60]),
        "scatter-gather @ stripe res.": (
            plain_program(striped_kernel),
            {"offset_granularity": STRIPE * 8}, [3, 60]),
        "rotated table (ORAM-ish)": (
            rotated_program, {"sample_size_cap": runs}, [3, 60]),
    }
    results = {}
    for name, (program, extra, inputs) in workloads.items():
        config = OwlConfig(fixed_runs=runs, random_runs=runs, **extra)
        owl = Owl(program, name=name, config=config)
        result = owl.detect(inputs=inputs, random_input=random_secret)
        results[name] = (result, accesses_per_run(program))
    recorder = TraceRecorder()
    # repeated same-input runs: with per-run random rotations, some pair of
    # traces differs (any single pair could collide at 1/64), so a naive
    # trace differ reports a leak
    same_input_traces = [recorder.record(rotated_program, 3)
                         for _ in range(4)]
    naive_diff_flags_rotated = any(
        a != b for a, b in zip(same_input_traces, same_input_traces[1:]))
    return results, naive_diff_flags_rotated


def test_countermeasures(benchmark):
    runs = bench_runs()
    results, naive_diff_flags_rotated = benchmark.pedantic(
        audit_all, args=(runs,), rounds=1, iterations=1)

    rows = []
    for name, (result, accesses) in results.items():
        counts = result.report.counts()
        verdict = "LEAKS" if result.report.has_leaks else "clean"
        rows.append((name, verdict, counts["data_flow"], accesses,
                     f"{accesses / results['naive lookup'][1]:.1f}x"))
    rows.append(("rotated vs naive trace diff",
                 "falsely LEAKS" if naive_diff_flags_rotated else "clean",
                 "-", "-", "-"))
    emit_table("countermeasures",
               "Countermeasure audit: verdicts and traced-access overhead",
               ["Defence", "Owl verdict", "DF leaks", "accesses/run",
                "overhead"], rows)

    assert results["naive lookup"][0].report.has_leaks
    assert not results["masked sweep"][0].report.has_leaks
    assert not results["scatter-gather @ stripe res."][0].report.has_leaks
    assert not results["rotated table (ORAM-ish)"][0].report.has_leaks
    # the §III point: naive differencing is fooled by randomisation
    assert naive_diff_flags_rotated

    # cost ordering: masked sweep is the most expensive, scatter-gather
    # sits between it and the naive lookup
    naive_cost = results["naive lookup"][1]
    masked_cost = results["masked sweep"][1]
    striped_cost = results["scatter-gather @ stripe res."][1]
    assert masked_cost > striped_cost > naive_cost
