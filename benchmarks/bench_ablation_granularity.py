"""Ablation: attacker spatial resolution vs detected leakage.

The paper's threat model grants a noise-free byte-level observer (§IV-B).
Real attackers are coarser — cache-line probes resolve 64/128 bytes —
so this ablation sweeps Owl's ``offset_granularity`` over the AES workload
and over the scatter-gather countermeasure, measuring how detected leakage
(count and bits per observation) decays with attacker resolution.

Expected shape: AES's T-table leak survives cache-line granularity (the
basis of real T-table attacks) and dies once a granule covers a whole
table; scatter-gather is clean at stripe granularity while still leaking
its documented ``index mod stripe`` residue to a byte-level observer.
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import bench_runs, emit_table
from repro.apps.libgpucrypto import aes_program, random_key
from repro.core import Owl, OwlConfig
from repro.countermeasures import striped_lookup
from repro.gpusim import kernel

#: granularities in bytes: byte probe, cache-line probe, whole-table probe
GRANULARITIES = (1, 64, 256 * 8)

STRIPE_WIDTH = 8  # entries of 8 bytes: one 64-byte stripe


@kernel()
def striped_sbox_kernel(k, table, data, out):
    k.block("entry")
    tid = k.global_tid()
    secret = k.load(data, tid)
    k.store(out, tid,
            striped_lookup(k, table, secret % 64, stripe_width=STRIPE_WIDTH))


def striped_program(rt, secret):
    table = rt.cudaMalloc(64, label="table")
    rt.cudaMemcpyHtoD(table, np.arange(64))
    data = rt.cudaMalloc(32, label="data")
    rt.cudaMemcpyHtoD(data, np.full(32, secret))
    out = rt.cudaMalloc(32, label="out")
    rt.cuLaunchKernel(striped_sbox_kernel, 1, 32, table, data, out)


def sweep(runs):
    results = {}
    for granularity in GRANULARITIES:
        config = OwlConfig(fixed_runs=runs, random_runs=runs,
                           offset_granularity=granularity, quantify=True)
        results[("aes", granularity)] = Owl(
            aes_program, name="aes", config=config).detect(
            inputs=[bytes(range(16)), bytes(range(1, 17))],
            random_input=random_key)
    for granularity in (1, STRIPE_WIDTH * 8):
        config = OwlConfig(fixed_runs=runs, random_runs=runs,
                           offset_granularity=granularity, quantify=True)
        results[("scatter-gather", granularity)] = Owl(
            striped_program, name="sg", config=config).detect(
            inputs=[3, 60],
            random_input=lambda rng: int(rng.integers(0, 64)))
    return results


def test_ablation_granularity(benchmark):
    runs = bench_runs()
    results = benchmark.pedantic(sweep, args=(runs,), rounds=1, iterations=1)

    rows = []
    for (workload, granularity), result in results.items():
        df = result.report.data_flow_leaks
        max_bits = max((leak.bits for leak in df), default=0.0)
        rows.append((workload, granularity, len(df), f"{max_bits:.3f}"))
    emit_table("ablation_granularity",
               "Ablation: detected data-flow leakage vs attacker resolution",
               ["Workload", "Granularity (B)", "DF leaks",
                "max bits/obs"], rows)

    aes_fine = results[("aes", 1)].report.data_flow_leaks
    aes_line = results[("aes", 64)].report.data_flow_leaks
    aes_blind = results[("aes", 256 * 8)].report.data_flow_leaks
    # T-table attacks work at cache-line granularity; a table-sized granule
    # hides in-table variation entirely
    assert len(aes_fine) >= len(aes_line) > 0
    assert len(aes_blind) == 0

    sg_fine = results[("scatter-gather", 1)].report.data_flow_leaks
    sg_stripe = results[("scatter-gather", STRIPE_WIDTH * 8)]
    assert sg_fine  # the residual mod-stripe leak
    assert not sg_stripe.report.data_flow_leaks  # the scheme's guarantee

    # quantification decays with resolution too
    fine_bits = max(leak.bits for leak in aes_fine)
    assert fine_bits > 0.0
