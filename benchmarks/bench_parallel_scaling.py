"""Detection-time scaling of the worker-pool recording backend.

The §VIII-A protocol re-executes the program ~2N times; trace recording
dominates end-to-end cost (Table IV), so `detect` should scale with the
worker count until the recording cores run out.  This bench measures full
`Owl.detect` wall time on the AES workload at workers ∈ {1, 2, 4, 8} and
reports speedup over serial plus parallel efficiency (speedup / workers).

Two properties are asserted unconditionally: every worker count produces a
bit-identical leakage report (the pool must not change what is observed),
and the parallel runs keep per-trace cost accounting intact.  The ≥2×
speedup bar at 4 workers is asserted only when the host actually has ≥4
cores — on smaller machines the table still records the (honest) numbers,
with the core count stated in the artefact.
"""

from __future__ import annotations

import os
import time

from _bench_utils import RESULTS_DIR, bench_runs, emit_table
from repro.apps.libgpucrypto import aes_program, random_key
from repro.core import Owl, OwlConfig

WORKER_COUNTS = (1, 2, 4, 8)

AES_INPUTS = [bytes(range(16)), bytes(range(1, 17))]


def detect_once(workers: int, runs: int):
    config = OwlConfig(fixed_runs=runs, random_runs=runs, workers=workers,
                       always_analyze=True)
    owl = Owl(aes_program, name="libgpucrypto/AES", config=config)
    started = time.perf_counter()
    result = owl.detect(inputs=AES_INPUTS, random_input=random_key)
    return time.perf_counter() - started, result


def profile_all(runs: int):
    return {workers: detect_once(workers, runs)
            for workers in WORKER_COUNTS}


def test_parallel_scaling(benchmark):
    runs = bench_runs()
    measurements = benchmark.pedantic(profile_all, args=(runs,), rounds=1,
                                      iterations=1)
    cores = os.cpu_count() or 1

    serial_seconds, serial_result = measurements[1]
    rows = []
    speedups = {}
    for workers in WORKER_COUNTS:
        seconds, result = measurements[workers]
        speedup = serial_seconds / seconds
        speedups[workers] = speedup
        rows.append((
            workers,
            f"{seconds:.2f}",
            f"{speedup:.2f}x",
            f"{100.0 * speedup / workers:.0f}%",
            f"{result.stats.recording_parallelism:.2f}",
        ))
    emit_table(
        "parallel_scaling",
        f"Parallel scaling: AES detect ({runs}+{runs} runs, "
        f"{cores} CPU core{'s' if cores != 1 else ''})",
        ["Workers", "Detect s", "Speedup", "Efficiency", "Rec. overlap"],
        rows)
    # worker speedups are core-count-gated: on a host with fewer cores than
    # workers the extra processes only add dispatch overhead, so read the
    # speedup column against the core count in the title.  Per-trace CPU
    # cost reductions live in trace_hotpath.txt (columnar fast path), which
    # helps regardless of core count.
    note = ("\nNote: speedup is bounded by the host core count above; "
            "worker counts beyond it measure overhead, not scaling. "
            "Core-count-independent per-trace gains are tracked in "
            "trace_hotpath.txt.\n")
    with open(RESULTS_DIR / "parallel_scaling.txt", "a") as handle:
        handle.write(note)

    # the pool may move work, never change it: every worker count must
    # produce the same report bit for bit
    baseline = serial_result.report.to_json()
    for workers in WORKER_COUNTS[1:]:
        assert measurements[workers][1].report.to_json() == baseline, workers

    # per-trace accounting survives parallelism (the Table IV column keeps
    # meaning per-trace cost, not phase wall clock)
    for workers in WORKER_COUNTS:
        stats = measurements[workers][1].stats
        assert stats.trace_count == 2 + 2 * runs
        assert stats.trace_wall_seconds <= stats.total_seconds

    # the scaling bar only binds where the hardware can deliver it
    if cores >= 4:
        assert speedups[4] >= 2.0, speedups
    if cores >= 2:
        assert speedups[2] >= 1.3, speedups
