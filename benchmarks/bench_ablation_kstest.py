"""Ablation: KS test vs Welch's t-test (§VII-B's design choice).

The paper replaces prior work's Welch t-test with the two-sample KS test
because trace features need not be normally distributed.  This ablation
constructs feature histograms where the choice matters — equal-mean,
different-shape address distributions — and measures both tests' decisions
and calibration, then re-runs a real workload (AES) under both tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import bench_runs, emit_table
from repro.apps.libgpucrypto import aes_program, random_key
from repro.core import Owl, OwlConfig
from repro.core.kstest import ks_test_weighted, welch_t_test_weighted


def synthetic_cases(rng):
    """(name, hist_fixed, hist_random, truly_leaks) tuples."""
    base = {offset: 40 for offset in range(0, 256, 8)}
    shifted = {offset + 64: count for offset, count in base.items()}

    # equal means, different shapes: mass at the ends vs the middle
    bimodal = {0: 320, 248: 320}
    unimodal = {120: 320, 128: 320}

    noisy_a = {int(v): 1 for v in rng.integers(0, 256, 500)}
    noisy_b = {int(v): 1 for v in rng.integers(0, 256, 500)}

    return [
        ("identical", base, dict(base), False),
        ("mean shift", base, shifted, True),
        ("shape-only difference", bimodal, unimodal, True),
        ("same distribution, sampled", noisy_a, noisy_b, False),
    ]


def run_ablation(runs):
    rng = np.random.default_rng(17)
    decisions = []
    for name, fixed, random, leaks in synthetic_cases(rng):
        ks = ks_test_weighted(fixed, random)
        welch = welch_t_test_weighted(
            {float(k): v for k, v in fixed.items()},
            {float(k): v for k, v in random.items()})
        decisions.append((name, leaks, ks.rejected, welch.rejected))

    config_ks = OwlConfig(fixed_runs=runs, random_runs=runs, test="ks")
    config_welch = OwlConfig(fixed_runs=runs, random_runs=runs, test="welch")
    inputs = [bytes(range(16)), bytes(range(1, 17))]
    aes_ks = Owl(aes_program, name="aes", config=config_ks).detect(
        inputs=inputs, random_input=random_key)
    aes_welch = Owl(aes_program, name="aes", config=config_welch).detect(
        inputs=inputs, random_input=random_key)
    return decisions, aes_ks, aes_welch


def test_ablation_kstest(benchmark):
    runs = bench_runs()
    decisions, aes_ks, aes_welch = benchmark.pedantic(
        run_ablation, args=(runs,), rounds=1, iterations=1)

    rows = [(name, leaks, ks, welch)
            for name, leaks, ks, welch in decisions]
    rows.append(("AES DF leaks found", "many",
                 len(aes_ks.report.data_flow_leaks),
                 len(aes_welch.report.data_flow_leaks)))
    emit_table("ablation_kstest",
               "Ablation: KS vs Welch distribution tests",
               ["Case", "Ground truth leaks", "KS rejects",
                "Welch rejects"], rows)

    by_name = {name: (leaks, ks, welch)
               for name, leaks, ks, welch in decisions}

    # both agree on the easy cases
    assert by_name["identical"][1:] == (False, False)
    assert by_name["mean shift"][1:] == (True, True)
    # the decisive case: Welch cannot see a shape-only difference
    leaks, ks_rejects, welch_rejects = by_name["shape-only difference"]
    assert leaks and ks_rejects and not welch_rejects
    # neither should fire on resampling noise
    assert not by_name["same distribution, sampled"][1]

    # end-to-end: KS finds at least as many genuine AES leaks as Welch
    assert (len(aes_ks.report.data_flow_leaks)
            >= len(aes_welch.report.data_flow_leaks))
    assert aes_ks.report.data_flow_leaks
