"""Trace-recording hot path: per-event objects, columnar batches, cohorts.

Table IV attributes most of Owl's end-to-end cost to trace recording, and
profiling the object path shows why: every memory instruction allocates a
`MemoryAccessEvent`, and every one of its ~32 lane addresses takes a Python
round trip through the scalar normaliser.  The columnar path batches each
warp's accesses into arrays, normalises them with one ``np.searchsorted``
per batch, and bulk-folds the result into the A-DCFG.  The warp-cohort
engine then removes the remaining per-warp cost: the kernel body runs once
per *launch* over a ``(num_warps, 32)`` lane grid instead of once per warp
(DESIGN.md §10).

This bench times the ladder rungs on single-trace recording (AES and
RSA) and on a small end-to-end ``Owl.detect`` (AES):

* per-event objects vs columnar batches (both on the per-warp loop — the
  PR 2 comparison, asserted ≥3× on AES record);
* the columnar per-warp loop vs the cohort engine (the PR 4 comparison,
  asserted ≥2× on AES record);
* the pre-cohort columnar pipeline vs replica-cohort batching — every
  fixed/random repetition fused into one cohort grid, equal inputs
  recorded once (the PR 6 comparison, asserted ≥5× on AES detect e2e at
  64+64 runs);
* separate ks + mi campaigns vs one ``analyzer="both"`` run over a
  shared evidence fold (the PR 8 comparison, asserted ≥1.3×);
* the full-budget pipeline vs adaptive group-sequential early stopping
  at the same replica cap (the PR 9 comparison, asserted ≥2× on AES at
  the paper's 100-replica protocol);

and re-checks bit-identity of the traces while it is at it.

Run modes:

* ``pytest benchmarks/bench_trace_hotpath.py --benchmark-only -s`` — full
  measurement, asserts the speedup bars;
* ``python benchmarks/bench_trace_hotpath.py --smoke`` — one quick pass for
  CI: records the timing artefact and checks equality, no speedup bars
  (shared runners are too noisy to gate merges on a ratio).

``OWL_BENCH_RECORDS`` overrides the per-measurement record count.
"""

from __future__ import annotations

import os
import sys
import time

from _bench_utils import emit_table
from repro.apps.libgpucrypto import aes_program, random_key, rsa_program
from repro.core import Owl, OwlConfig
from repro.tracing.recorder import TraceRecorder

AES_INPUT = bytes(range(16))
RSA_INPUT = 0x6ACF8231

AES_INPUTS = [bytes(range(16)), bytes(range(1, 17))]

#: fixed/random run count of the replica-batching e2e row; pinned (not
#: scaled down in smoke mode) because replica batching amortises per-run
#: work, so the speedup is only meaningful at a realistic repetition count
#: (the paper records 100 repetitions per side)
REPLICA_DETECT_RUNS = 64

#: run count of the adaptive e2e row; pinned at the paper's replica
#: protocol because the saving is the *unrecorded* budget tail — at the
#: default look schedule AES stops at 32 replicas per side, so a 100-run
#: budget saves 68% of the recording where a 64-run budget saves 50%
ADAPTIVE_DETECT_RUNS = 100


def bench_records(default: int = 6) -> int:
    return int(os.environ.get("OWL_BENCH_RECORDS", default))


def seconds_per_record(program, value, columnar: bool, cohort: bool,
                       records: int, reps: int) -> float:
    """Best-of-*reps* mean recording time over *records* traces."""
    best = float("inf")
    for _ in range(reps):
        recorder = TraceRecorder(columnar=columnar, cohort=cohort)
        started = time.perf_counter()
        for _ in range(records):
            recorder.record(program, value)
        best = min(best, (time.perf_counter() - started) / records)
    return best


def detect_seconds(columnar: bool, cohort: bool, runs: int,
                   replica_batch: bool = False, replica_dedup: bool = False,
                   analyzer: str = "ks", adaptive: bool = False,
                   reps: int = 1) -> float:
    """Best-of-*reps* end-to-end ``Owl.detect`` wall clock."""
    best = float("inf")
    for _ in range(reps):
        config = OwlConfig(fixed_runs=runs, random_runs=runs,
                           columnar=columnar, cohort=cohort,
                           always_analyze=True, replica_batch=replica_batch,
                           replica_dedup=replica_dedup, analyzer=analyzer,
                           adaptive=adaptive)
        owl = Owl(aes_program, name="libgpucrypto/AES", config=config)
        started = time.perf_counter()
        owl.detect(inputs=AES_INPUTS, random_input=random_key)
        best = min(best, time.perf_counter() - started)
    return best


def profile(records: int, reps: int, detect_runs: int):
    """{row name: (baseline seconds, fast-path seconds)}.

    The object-vs-columnar rows pin ``cohort=False`` on both sides so they
    keep measuring exactly the PR 2 transport comparison; the cohort rows
    hold the columnar transport fixed and flip only the execution engine.
    """
    measurements = {}
    for name, program, value in (("AES record", aes_program, AES_INPUT),
                                 ("RSA record", rsa_program, RSA_INPUT)):
        measurements[name] = tuple(
            seconds_per_record(program, value, columnar, False, records,
                               reps)
            for columnar in (False, True))
        measurements[f"{name} (cohort)"] = tuple(
            seconds_per_record(program, value, True, cohort, records, reps)
            for cohort in (False, True))
    measurements["AES detect (e2e)"] = tuple(
        detect_seconds(columnar, False, detect_runs)
        for columnar in (False, True))
    measurements["AES detect (cohort e2e)"] = tuple(
        detect_seconds(True, cohort, detect_runs)
        for cohort in (False, True))
    # replica-cohort batching: the pre-cohort columnar pipeline vs fused
    # fixed/random replica cohorts with equal-input dedup (AES is a pure
    # function of its input, the documented dedup soundness envelope).
    # Repetition counts matter here — replica batching amortises per-run
    # costs — so this row pins its own run count (identical in smoke and
    # full mode, so the perf-regression check compares like with like)
    # and uses best-of-*reps* on both columns to damp machine noise.
    measurements["AES detect (replica e2e)"] = (
        detect_seconds(True, False, REPLICA_DETECT_RUNS, reps=reps),
        detect_seconds(True, True, REPLICA_DETECT_RUNS, replica_batch=True,
                       replica_dedup=True, reps=reps))
    # the dual-detector budget: analyzer="both" replays ONE recorded fold
    # under both batched tests, so running KS and MI together costs far
    # less than running the two detectors as separate campaigns.  The
    # baseline is the honest alternative — a ks-only detect plus an
    # mi-only detect, summed — against one both-run (PR 8's acceptance
    # bar, both ≤ 1.3x ks-only, is equivalent to this ratio ≥ ~1.5 when
    # the detectors cost alike; asserted ≥ 1.3 to leave noise headroom)
    measurements["AES detect (both e2e)"] = (
        detect_seconds(True, True, detect_runs, analyzer="ks", reps=reps)
        + detect_seconds(True, True, detect_runs, analyzer="mi", reps=reps),
        detect_seconds(True, True, detect_runs, analyzer="both", reps=reps))
    # adaptive early stopping: the full-budget pipeline vs the
    # group-sequential scheduler at the same run cap.  AES's leak is
    # decisive by the second look (32 replicas per side), so most of the
    # recording budget is never spent; run counts matter, so the row
    # pins ADAPTIVE_DETECT_RUNS (identical in smoke and full mode)
    measurements["AES detect (adaptive e2e)"] = (
        detect_seconds(True, True, ADAPTIVE_DETECT_RUNS, replica_batch=True,
                       reps=reps),
        detect_seconds(True, True, ADAPTIVE_DETECT_RUNS, replica_batch=True,
                       adaptive=True, reps=reps))
    return measurements


def check_equality() -> None:
    """All the rungs must produce byte-identical traces (belt and braces
    — the real coverage lives in tests/tracing/test_columnar.py,
    tests/tracing/test_cohort.py and tests/tracing/test_replica.py)."""
    for program, value in ((aes_program, AES_INPUT),
                           (rsa_program, RSA_INPUT)):
        reference = TraceRecorder(columnar=False, cohort=False).record(
            program, value)
        for columnar, cohort in ((True, False), (False, True), (True, True)):
            fast = TraceRecorder(columnar=columnar, cohort=cohort).record(
                program, value)
            assert fast.signature() == reference.signature(), (
                program, columnar, cohort)
    # replica-batched recording of repeated runs matches run-at-a-time
    from repro.tracing.replica import record_grouped
    values = [AES_INPUT, AES_INPUT, bytes(range(1, 17))]
    groups, _stats = record_grouped(aes_program, values, dedup=True)
    replica_sigs = [trace.signature()
                    for trace, count in groups for _ in range(count)]
    serial_sigs = [TraceRecorder().record(aes_program, value).signature()
                   for value in values]
    assert replica_sigs == serial_sigs


def report(measurements, records: int, smoke: bool):
    rows = []
    speedups = {}
    for name, (baseline_s, fast_s) in measurements.items():
        speedups[name] = baseline_s / fast_s
        rows.append((name, f"{baseline_s:.4f}", f"{fast_s:.4f}",
                     f"{speedups[name]:.2f}x"))
    mode = "smoke" if smoke else f"best-of-reps, {records} records"
    emit_table(
        "trace_hotpath",
        "Trace hot path: objects vs columnar, per-warp vs cohort "
        f"({mode})",
        ["Workload", "Baseline s", "Fast s", "Speedup"],
        rows)
    return speedups


def run(smoke: bool) -> None:
    check_equality()
    records = bench_records(2 if smoke else 6)
    reps = 1 if smoke else 3
    detect_runs = 2 if smoke else 8
    measurements = profile(records, reps, detect_runs)
    speedups = report(measurements, records, smoke)
    if smoke:
        return
    # the bar that justifies columnar-by-default
    assert speedups["AES record"] >= 3.0, speedups
    assert speedups["RSA record"] >= 1.2, speedups
    # recording dominates detect, so the end-to-end wall clock must move too
    assert speedups["AES detect (e2e)"] >= 1.5, speedups
    # the bar that justifies cohort-by-default, over the columnar baseline
    assert speedups["AES record (cohort)"] >= 2.0, speedups
    # the bar that justifies replica-batching-by-default: fused replica
    # cohorts + equal-input dedup vs the pre-cohort columnar pipeline
    assert speedups["AES detect (replica e2e)"] >= 5.0, speedups
    # the dual-detector budget: one both-run must clearly beat running
    # the ks and mi campaigns separately
    assert speedups["AES detect (both e2e)"] >= 1.3, speedups
    # the bar that justifies adaptive early stopping on a decisive leak
    assert speedups["AES detect (adaptive e2e)"] >= 2.0, speedups


def test_trace_hotpath(benchmark):
    benchmark.pedantic(run, args=(False,), rounds=1, iterations=1)


if __name__ == "__main__":
    sys.exit(run(smoke="--smoke" in sys.argv[1:]))
