"""Fig. 5: growth of Owl's trace size with input size.

The paper plots trace size against input size for three workloads with
three distinct growth patterns, plus the host-record series:

* ① fixed threads — ``Tensor.__repr__`` uses 32 threads whatever the input,
  so its trace size is constant;
* ② volatile threads, bounded addresses — the dummy S-box program
  saturates once every table entry has been touched;
* ③ volatile threads, unbounded addresses — nvjpeg encoding touches one
  pixel per thread, so the trace grows linearly;
* malloc/launch records — host-side, flat in the input size.

This bench regenerates all four series and asserts the growth-shape
relations (saturating vs linear vs constant vs flat).
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import emit_table
from repro.apps.dummy import dummy_program
from repro.apps.minitorch import tensor_repr_program
from repro.apps.nvjpeg import synthetic_image
from repro.apps.nvjpeg.encoder import encode_program
from repro.tracing import TraceRecorder

#: input sizes (elements / pixels) swept per workload
DUMMY_SIZES = (128, 512, 2048, 8192, 32768)
REPR_SIZES = (128, 512, 2048, 8192, 32768)
JPEG_SIDES = ((8, 8), (16, 16), (32, 32), (48, 48), (64, 64))


def sweep():
    recorder = TraceRecorder()
    rng = np.random.default_rng(0)
    series = {"dummy": [], "repr": [], "jpeg": [], "malloc": [], "launch": []}

    for n in DUMMY_SIZES:
        trace = recorder.record(dummy_program, rng.integers(0, 256, n))
        series["dummy"].append((n, trace.adcfg_bytes()))
        series["malloc"].append((n, trace.malloc_bytes()))
        series["launch"].append((n, trace.launch_bytes()))

    for n in REPR_SIZES:
        trace = recorder.record(tensor_repr_program, rng.standard_normal(n))
        series["repr"].append((n, trace.adcfg_bytes()))

    for height, width in JPEG_SIDES:
        image = synthetic_image(height, width, seed=1)
        trace = recorder.record(encode_program, image)
        series["jpeg"].append((height * width, trace.adcfg_bytes()))
    return series


def test_fig5_trace_growth(benchmark):
    series = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for name, points in series.items():
        for x, size in points:
            rows.append((name, x, size))
    emit_table("fig5", "Fig. 5: trace size (bytes) by input size",
               ["Series", "Input size", "Trace bytes"], rows)

    dummy = [size for _x, size in series["dummy"]]
    repr_sizes = [size for _x, size in series["repr"]]
    jpeg = [size for _x, size in series["jpeg"]]
    malloc = [size for _x, size in series["malloc"]]
    launch = [size for _x, size in series["launch"]]

    # ② dummy: early growth then plateau — late growth is a small fraction
    # of early growth despite a much larger thread delta
    early_growth = dummy[1] - dummy[0]
    late_growth = dummy[-1] - dummy[-2]
    assert early_growth > 0
    assert late_growth < 0.25 * early_growth
    assert dummy[-1] < 1.5 * dummy[2]

    # ① repr: constant trace size (fixed 32 threads)
    assert max(repr_sizes) - min(repr_sizes) <= 64  # near-constant bytes

    # ③ jpeg: linear-ish — doubling pixels keeps scaling the trace
    pixels = [x for x, _s in series["jpeg"]]
    ratio_first = jpeg[1] / jpeg[0]
    ratio_last = jpeg[-1] / jpeg[-2]
    assert jpeg[-1] > 5 * jpeg[0]
    assert ratio_last > 1.3  # still growing at the top of the sweep
    # growth tracks pixel count within a factor of ~2
    slope = (jpeg[-1] - jpeg[0]) / (pixels[-1] - pixels[0])
    assert slope > 0

    # host records: flat in input size
    assert len(set(malloc)) == 1
    assert len(set(launch)) == 1
