"""Detection service: multi-campaign throughput vs serial direct runs.

The service's throughput claim on a box with few cores is *amortisation*,
not parallelism: tenants submitting the same detection coalesce onto one
execution, and even distinct campaigns share phase-1 traces and blobs
through the content-addressed store.  This bench measures that end to
end:

* **serial baseline** — each tenant runs ``Owl.detect`` alone against its
  own fresh store (what N users running ``owl run`` separately pay);
* **service multi-tenant (e2e)** — the same N submissions through one
  :class:`~repro.service.scheduler.CampaignScheduler` (in-process
  execution, ``workers=0``), reports asserted byte-identical to the
  serial baseline's;
* **service fleet xK (e2e)** — the same batch dispatched to a real
  worker-process fleet (spawn cost and unit granularity included).

A second table isolates the store-layer write-amplification fix: full
manifest rewrites during one campaign, journaled (current) vs legacy
snapshot-per-put mode — O(runs) → O(1).

Run modes:

* ``pytest benchmarks/bench_service_throughput.py --benchmark-only -s``
  — full measurement, asserts the >=3x multi-tenant bar;
* ``python benchmarks/bench_service_throughput.py --smoke`` — one quick
  pass for CI: identity checks only, no speedup bar (shared runners are
  too noisy to gate merges on a ratio).

``OWL_BENCH_RUNS`` scales the run counts (default 30); the gated row is
re-measured by ``check_perf_regression.py``.
"""

from __future__ import annotations

import shutil
import sys
import tempfile
import time
from pathlib import Path

from _bench_utils import RESULTS_DIR, bench_runs, render_table
from repro.apps.registry import resolve
from repro.core import Owl, OwlConfig
from repro.service import CampaignScheduler, ServiceConfig, WorkerFleet
from repro.store import TraceStore

WORKLOAD = "aes"
TENANTS = 10


def _config_dict(runs: int) -> dict:
    return {"fixed_runs": runs, "random_runs": runs}


def serial_seconds(runs: int, tenants: int, root: Path):
    """N tenants each run a direct detect on a fresh private store."""
    program, fixed_inputs, random_input = resolve(WORKLOAD)
    started = time.perf_counter()
    report_json = None
    for tenant in range(tenants):
        owl = Owl(program, name=WORKLOAD,
                  config=OwlConfig(**_config_dict(runs)))
        result = owl.detect(fixed_inputs(), random_input=random_input,
                            store=root / f"tenant{tenant}")
        report_json = result.report.to_json()
    return time.perf_counter() - started, report_json


def service_seconds(runs: int, tenants: int, workers: int, root: Path,
                    expected_report: str):
    """The same N submissions through one scheduler (+ optional fleet)."""
    store_root = root / "store"
    queue_root = root / "queue"
    config = ServiceConfig(workers=workers, unit_runs=25,
                           lease_seconds=300.0, poll_seconds=0.005)
    fleet = None
    if workers > 0:
        fleet = WorkerFleet(queue_root, store_root, workers=workers,
                            poll_seconds=config.poll_seconds)
    started = time.perf_counter()
    scheduler = CampaignScheduler(store_root, queue_root, config,
                                  fleet=fleet)
    if fleet is not None:
        fleet.start()
    try:
        cids = [scheduler.submit(WORKLOAD, _config_dict(runs))
                for _ in range(tenants)]
        completed = scheduler.wait(cids, timeout=600)
        elapsed = time.perf_counter() - started
        assert completed, "service campaigns did not finish within 600s"
        for cid in cids:
            results = scheduler.results(cid)
            assert results["stage"] == "complete", results
            assert results["report_json"] == expected_report, \
                f"service report for {cid} diverged from direct detect"
    finally:
        if fleet is not None:
            scheduler.queue.request_stop()
            fleet.stop()
    return elapsed


def service_speedup(workers: int, reps: int = 1, runs=None,
                    tenants: int = TENANTS):
    """(serial_s, service_s) best-of-``reps`` — the regression-gate hook."""
    runs = bench_runs(30) if runs is None else runs
    serial_best = service_best = float("inf")
    for _ in range(reps):
        root = Path(tempfile.mkdtemp(prefix="owl-bench-service-"))
        try:
            serial_s, report_json = serial_seconds(runs, tenants, root)
            service_s = service_seconds(runs, tenants, workers,
                                        root / "svc", report_json)
            serial_best = min(serial_best, serial_s)
            service_best = min(service_best, service_s)
        finally:
            shutil.rmtree(root, ignore_errors=True)
    return serial_best, service_best


def manifest_write_counts(runs: int):
    """Full manifest rewrites during one campaign, journaled vs legacy."""
    program, fixed_inputs, random_input = resolve("dummy")
    rows = []
    counts = {}
    for mode, journal in (("journaled (current)", True),
                          ("legacy snapshot-per-put", False)):
        root = Path(tempfile.mkdtemp(prefix="owl-bench-manifest-"))
        try:
            store = TraceStore(root / "store", journal=journal)
            owl = Owl(program, name="dummy",
                      config=OwlConfig(**_config_dict(runs)))
            owl.detect(fixed_inputs(), random_input=random_input,
                       store=store)
            counts[mode] = store.manifest_saves
            rows.append([mode, runs, store.manifest_saves,
                         store.journal_appends, len(store)])
        finally:
            shutil.rmtree(root, ignore_errors=True)
    return rows, counts


def measure(smoke: bool = False):
    runs = bench_runs(6 if smoke else 30)
    tenants = 2 if smoke else TENANTS
    worker_counts = (2,) if smoke else (2, 4)

    root = Path(tempfile.mkdtemp(prefix="owl-bench-service-"))
    try:
        serial_s, report_json = serial_seconds(runs, tenants, root)
        rows = []
        speedups = {}
        scenarios = [("service multi-tenant (e2e)", 0)]
        scenarios += [(f"service fleet x{n} (e2e)", n)
                      for n in worker_counts]
        for scenario, workers in scenarios:
            service_s = service_seconds(runs, tenants, workers,
                                        root / f"svc-w{workers}",
                                        report_json)
            speedups[scenario] = serial_s / service_s if service_s else 0.0
            rows.append([scenario, f"{serial_s:.3f}", f"{service_s:.3f}",
                         f"{speedups[scenario]:.2f}x"])
    finally:
        shutil.rmtree(root, ignore_errors=True)

    throughput = render_table(
        f"Detection service: {tenants} tenants, {WORKLOAD} "
        f"({runs}+{runs} runs), serial direct runs vs one service",
        ["scenario", "serial s", "service s", "speedup"], rows)

    manifest_rows, manifest_counts = manifest_write_counts(runs)
    manifest = render_table(
        f"Store manifest write amplification during one campaign "
        f"({runs}+{runs} runs)",
        ["store mode", "runs", "manifest rewrites", "journal appends",
         "entries"], manifest_rows)

    text = throughput + "\n\n" + manifest
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "service_throughput.txt").write_text(text + "\n")
    return speedups, manifest_counts


def test_service_throughput(benchmark=None):
    speedups, manifest_counts = measure()
    headline = speedups["service multi-tenant (e2e)"]
    assert headline >= 3.0, \
        f"multi-tenant amortisation only {headline:.2f}x (need >=3x)"
    for scenario, speedup in speedups.items():
        assert speedup > 1.0, f"{scenario} slower than serial"
    journaled = manifest_counts["journaled (current)"]
    legacy = manifest_counts["legacy snapshot-per-put"]
    assert journaled <= 1, \
        f"journaled store rewrote the manifest {journaled} times"
    assert legacy >= 5 * max(journaled, 1), \
        "legacy mode no longer shows the amplification being fixed"


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    speedups, _counts = measure(smoke=smoke)
    if smoke:
        print("\nbit-identity checks passed (smoke mode: no speedup bars)")
    else:
        headline = speedups["service multi-tenant (e2e)"]
        print(f"\nbit-identity checks passed; multi-tenant amortisation "
              f"{headline:.2f}x")
