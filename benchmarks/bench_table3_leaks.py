"""Table III: leaks detected by Owl across the three applications.

Regenerates the paper's headline table — kernel / data-flow / control-flow
leak counts for Libgpucrypto (AES, RSA), the minitorch ops standing in for
PyTorch, and the nvjpeg codec.  Absolute counts differ from the paper's
(their substrate is real SASS; ours is the simulator), but the shape must
hold: AES/RSA leak data flow + a little control flow with zero kernel
leaks, the framework leaks via input-dependent kernel launches while most
numeric ops are clean, and nvjpeg leaks only in encoding.

Run with ``OWL_BENCH_RUNS=100`` for the paper's full 100+100 protocol
(the default 30+30 keeps the suite quick; ``nllloss``'s subtle gather leak
typically needs the full protocol to cross the significance threshold).
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import bench_runs, emit_table
from repro.apps.libgpucrypto import (
    aes_program,
    random_exponent,
    random_key,
    rsa_program,
)
from repro.apps.minitorch import (
    OP_NAMES,
    make_op_program,
    make_random_input,
    serialize_program,
    tensor_repr_program,
)
from repro.apps.minitorch.ops import fixed_op_input
from repro.apps.minitorch.serialize import serialize_random_input
from repro.apps.minitorch.tensor import repr_random_input
from repro.apps.nvjpeg import (
    decode_program,
    encode_program,
    random_image,
    synthetic_image,
)
from repro.core import Owl, OwlConfig


def detect(program, name, inputs, random_input, runs):
    config = OwlConfig(fixed_runs=runs, random_runs=runs)
    owl = Owl(program, name=name, config=config)
    return owl.detect(inputs=inputs, random_input=random_input)


def run_all(runs):
    rng = np.random.default_rng(3)
    results = {}

    results["libgpucrypto/AES"] = detect(
        aes_program, "aes", [bytes(range(16)), bytes(range(1, 17))],
        random_key, runs)
    results["libgpucrypto/RSA"] = detect(
        rsa_program, "rsa", [0x6ACF8231, 0x7FD4C9A7], random_exponent, runs)

    for op in OP_NAMES:
        generate = make_random_input(op)
        inputs = [fixed_op_input(op), generate(rng)]
        if op == "conv2d":
            inputs = [np.zeros(64), fixed_op_input(op)]
        results[f"minitorch/{op}"] = detect(
            make_op_program(op), op, inputs, generate, runs)
    results["minitorch/Tensor.__repr__"] = detect(
        tensor_repr_program, "repr",
        [np.linspace(-2, 2, 64), np.linspace(-2, 2, 64) * 10_000],
        repr_random_input, runs)
    results["minitorch/serialize"] = detect(
        serialize_program, "serialize",
        [np.zeros(64), np.linspace(-2, 2, 64)],
        serialize_random_input, runs)

    results["nvjpeg/encoding"] = detect(
        encode_program, "nvjpeg_encode",
        [synthetic_image(16, 16, seed=1), synthetic_image(16, 16, seed=2)],
        lambda generator: random_image(generator, 16, 16), runs)
    results["nvjpeg/decoding"] = detect(
        decode_program, "nvjpeg_decode",
        [synthetic_image(16, 16, seed=1), synthetic_image(16, 16, seed=2)],
        lambda generator: random_image(generator, 16, 16), runs)
    return results


def test_table3_leaks(benchmark):
    runs = bench_runs()
    results = benchmark.pedantic(run_all, args=(runs,), rounds=1,
                                 iterations=1)

    rows = []
    for name, result in results.items():
        counts = result.report.counts()
        rows.append((name, counts["kernel"], counts["data_flow"],
                     counts["control_flow"]))
    rows.append(("(paper) Libgpucrypto", "0/0", "66/69", "7/7"))
    rows.append(("(paper) PyTorch", "8/8", "8/11", "6/8"))
    rows.append(("(paper) nvJPEG enc/dec", "0 / 0", "45 / 0", "98 / 0"))
    emit_table("table3", f"Table III: leaks detected by Owl "
               f"({runs}+{runs} runs, alpha=0.95)",
               ["Program", "Kernel leaks", "D.F. leaks", "C.F. leaks"], rows)

    counts = {name: result.report.counts()
              for name, result in results.items()}

    # --- Libgpucrypto shape: data-flow dominated, no kernel leaks --------
    aes = counts["libgpucrypto/AES"]
    assert aes["data_flow"] >= 16 and aes["kernel"] == 0
    rsa = counts["libgpucrypto/RSA"]
    assert rsa["control_flow"] >= 1 and rsa["kernel"] == 0

    # --- minitorch shape: kernel leaks in the host-optimised paths,
    #     clean numeric kernels, predication-masked maxpool ---------------
    assert counts["minitorch/serialize"]["kernel"] == 1
    assert counts["minitorch/Tensor.__repr__"]["kernel"] == 1
    assert counts["minitorch/conv2d"]["kernel"] >= 1
    assert counts["minitorch/maxpool2d"]["control_flow"] == 0
    for clean in ("relu", "sigmoid", "tanh", "softmax", "avgpool2d",
                  "linear", "mseloss", "dropout"):
        clean_counts = counts[f"minitorch/{clean}"]
        assert sum(clean_counts.values()) == 0, (clean, clean_counts)

    # --- nvjpeg shape: encoding leaks CF+DF, decoding is silent ----------
    encode = counts["nvjpeg/encoding"]
    assert encode["control_flow"] >= 2
    assert encode["data_flow"] >= 1
    assert encode["kernel"] == 0
    decode = counts["nvjpeg/decoding"]
    assert sum(decode.values()) == 0
