"""The duplicates-removing phase: input equivalence classes."""

import numpy as np
import pytest

from repro.core.filtering import filter_traces
from repro.gpusim import kernel
from repro.tracing import TraceRecorder


@kernel()
def parity_kernel(k, data, out):
    k.block("entry")
    tid = k.global_tid()
    value = k.load(data, tid)
    br = k.branch(value % 2 == 0)
    for _ in br.then("even"):
        k.store(out, tid, 0)
    for _ in br.otherwise("odd"):
        k.store(out, tid, 1)
    k.block("exit")


def parity_program(rt, secret):
    data = rt.cudaMalloc(32, label="data")
    rt.cudaMemcpyHtoD(data, np.full(32, secret))
    out = rt.cudaMalloc(32, label="out")
    rt.cuLaunchKernel(parity_kernel, 1, 32, data, out)


@pytest.fixture
def traced(recorder):
    def trace_all(inputs):
        return recorder.record_many(parity_program, inputs)
    return trace_all


class TestClassGrouping:
    def test_parity_classes(self, traced):
        inputs = [2, 4, 3, 6, 5]
        result = filter_traces(inputs, traced(inputs))
        assert result.num_classes == 2
        sizes = sorted(cls.size for cls in result.classes)
        assert sizes == [2, 3]

    def test_representative_is_first_seen(self, traced):
        inputs = [2, 3, 4]
        result = filter_traces(inputs, traced(inputs))
        assert result.representatives() == [2, 3]

    def test_single_class_means_no_leak(self, traced):
        inputs = [2, 4, 6]
        result = filter_traces(inputs, traced(inputs))
        assert result.num_classes == 1
        assert not result.shows_potential_leakage

    def test_multiple_classes_flag_potential_leak(self, traced):
        inputs = [2, 3]
        result = filter_traces(inputs, traced(inputs))
        assert result.shows_potential_leakage

    def test_class_of_maps_members(self, traced):
        inputs = [2, 3, 4, 5]
        result = filter_traces(inputs, traced(inputs))
        assert result.class_of(0) is result.class_of(2)
        assert result.class_of(1) is result.class_of(3)
        assert result.class_of(0) is not result.class_of(1)

    def test_class_of_unknown_index(self, traced):
        result = filter_traces([2], traced([2]))
        with pytest.raises(KeyError):
            result.class_of(5)

    def test_length_mismatch_rejected(self, traced):
        with pytest.raises(ValueError):
            filter_traces([1, 2], traced([2]))

    def test_classes_keep_first_seen_order(self, traced):
        inputs = [3, 2, 5]
        result = filter_traces(inputs, traced(inputs))
        assert result.representatives() == [3, 2]

    def test_empty_inputs(self):
        result = filter_traces([], [])
        assert result.num_classes == 0
        assert not result.shows_potential_leakage
