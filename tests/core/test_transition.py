"""Control-flow transition matrices (eqs. 5–8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adcfg.graph import ADCFG, END_LABEL, START_LABEL
from repro.core.transition import all_transition_matrices, transition_matrix


def chain_graph():
    """START -> a -> b -> END, traversed twice."""
    graph = ADCFG("k@1")
    graph.edge(START_LABEL, "a").record(START_LABEL, 2)
    graph.edge("a", "b").record(START_LABEL, 2)
    graph.edge("b", END_LABEL).record("a", 2)
    graph.node("a").record_entry(2)
    graph.node("b").record_entry(2)
    return graph


def branch_graph():
    """a branches to b (3×) or c (1×); both rejoin at d."""
    graph = ADCFG("k@1")
    graph.edge(START_LABEL, "a").record(START_LABEL, 4)
    graph.edge("a", "b").record(START_LABEL, 3)
    graph.edge("a", "c").record(START_LABEL, 1)
    graph.edge("b", "d").record("a", 3)
    graph.edge("c", "d").record("a", 1)
    graph.edge("d", END_LABEL).record("b", 3)
    graph.edge("d", END_LABEL).record("c", 1)
    for label, entries in (("a", 4), ("b", 3), ("c", 1), ("d", 4)):
        graph.node(label).record_entry(entries)
    return graph


class TestConstruction:
    def test_chain_node_matrix(self):
        matrix = transition_matrix(chain_graph(), "a")
        assert matrix.sources == (START_LABEL,)
        assert matrix.destinations == ("b",)
        assert matrix.counts[0, 0] == 2

    def test_branch_source_matrix(self):
        matrix = transition_matrix(branch_graph(), "a")
        assert matrix.destinations == ("b", "c")
        assert list(matrix.o_vector) == [3, 1]
        assert list(matrix.i_vector) == [4]

    def test_join_node_matrix(self):
        matrix = transition_matrix(branch_graph(), "d")
        assert matrix.sources == ("b", "c")
        assert matrix.destinations == (END_LABEL,)
        assert list(matrix.i_vector) == [3, 1]

    def test_missing_node_raises(self):
        with pytest.raises(KeyError):
            transition_matrix(chain_graph(), "zzz")

    def test_all_matrices_cover_nodes(self):
        graph = chain_graph()
        labels = [m.label for m in all_transition_matrices(graph)]
        assert labels == sorted(graph.nodes)


class TestEquation7:
    def test_i_times_a_equals_o_chain(self):
        assert transition_matrix(chain_graph(), "a").verify_balance()

    def test_i_times_a_equals_o_branch(self):
        graph = branch_graph()
        for label in ("a", "d"):
            matrix = transition_matrix(graph, label)
            lhs = matrix.i_vector.astype(float) @ matrix.probabilities
            assert np.allclose(lhs, matrix.o_vector)

    def test_probabilities_rows_are_stochastic(self):
        matrix = transition_matrix(branch_graph(), "a")
        assert np.allclose(matrix.probabilities.sum(axis=1), 1.0)

    @given(counts=st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(1, 9)),
        min_size=1, max_size=9))
    @settings(max_examples=80, deadline=None)
    def test_property_feasible_solution_balances(self, counts):
        """Any observed (src, dst) pair multiset yields I·A = O."""
        srcs = ["s0", "s1", "s2"]
        dsts = ["d0", "d1", "d2"]
        graph = ADCFG("k@1")
        for src_i, dst_i, count in counts:
            graph.edge("n", dsts[dst_i]).record(srcs[src_i], count)
        graph.node("n")
        matrix = transition_matrix(graph, "n")
        assert matrix.verify_balance()
        assert matrix.counts.sum() == sum(c for _s, _d, c in counts)


class TestHistogram:
    def test_histogram_flattens_matrix(self):
        hist = transition_matrix(branch_graph(), "a").histogram()
        assert hist == {(START_LABEL, "b"): 3, (START_LABEL, "c"): 1}

    def test_histogram_omits_zero_cells(self):
        graph = ADCFG("k@1")
        graph.edge("n", "x").record("p", 1)
        graph.edge("n", "y").record("q", 1)
        graph.node("n")
        hist = transition_matrix(graph, "n").histogram()
        # (p, y) and (q, x) were never observed
        assert set(hist) == {("p", "x"), ("q", "y")}

    def test_loop_node_self_transitions(self):
        graph = ADCFG("k@1")
        graph.edge("loop", "loop").record("entry", 1)
        graph.edge("loop", "loop").record("loop", 4)
        graph.edge("loop", "exit").record("loop", 1)
        graph.node("loop")
        hist = transition_matrix(graph, "loop").histogram()
        assert hist[("loop", "loop")] == 4
        assert hist[("entry", "loop")] == 1
        assert hist[("loop", "exit")] == 1
