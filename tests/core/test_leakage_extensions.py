"""Analyzer extensions: attacker granularity and leak quantification."""

import numpy as np
import pytest

from repro.core import Owl, OwlConfig
from repro.core.leakage import LeakageAnalyzer, LeakageConfig
from repro.gpusim import kernel

TABLE = 256


@kernel()
def lookup_kernel(k, table, data, out):
    k.block("entry")
    tid = k.global_tid()
    secret = k.load(data, tid)
    k.store(out, tid, k.load(table, secret % TABLE))


def lookup_program(rt, secret):
    table = rt.cudaMalloc(TABLE, label="table")
    rt.cudaMemcpyHtoD(table, np.arange(TABLE))
    data = rt.cudaMalloc(32, label="data")
    rt.cudaMemcpyHtoD(data, np.full(32, secret))
    out = rt.cudaMalloc(32, label="out")
    rt.cuLaunchKernel(lookup_kernel, 1, 32, table, data, out)


def detect(config):
    owl = Owl(lookup_program, name="lookup", config=config)
    return owl.detect(inputs=[3, 99],
                      random_input=lambda rng: int(rng.integers(0, TABLE)))


class TestOffsetGranularity:
    def test_byte_attacker_sees_the_leak(self):
        result = detect(OwlConfig(fixed_runs=25, random_runs=25,
                                  offset_granularity=1))
        assert result.report.data_flow_leaks

    def test_cache_line_attacker_still_sees_it(self):
        """256 int64 entries span 32 cache lines: plenty of resolution."""
        result = detect(OwlConfig(fixed_runs=25, random_runs=25,
                                  offset_granularity=64))
        assert result.report.data_flow_leaks

    def test_whole_table_granularity_blinds_the_attacker(self):
        """At table-sized resolution every lookup hits the same 'address'."""
        result = detect(OwlConfig(fixed_runs=25, random_runs=25,
                                  offset_granularity=TABLE * 8))
        assert not result.report.data_flow_leaks

    def test_granularity_validation(self):
        with pytest.raises(ValueError):
            LeakageConfig(offset_granularity=0)

    def test_coarsening_preserves_total_counts(self):
        analyzer = LeakageAnalyzer(LeakageConfig(offset_granularity=64))
        counts = {("t", 0): 2, ("t", 8): 3, ("t", 64): 5, ("t", 200): 1}
        coarse = analyzer._coarsen(counts)
        assert sum(coarse.values()) == sum(counts.values())
        assert coarse == {("t", 0): 5, ("t", 64): 5, ("t", 192): 1}


class TestQuantification:
    def test_bits_default_zero(self):
        result = detect(OwlConfig(fixed_runs=25, random_runs=25))
        assert all(leak.bits == 0.0 for leak in result.report.leaks)

    def test_bits_populated_when_enabled(self):
        result = detect(OwlConfig(fixed_runs=25, random_runs=25,
                                  quantify=True))
        leaks = result.report.data_flow_leaks
        assert leaks
        # a fixed input concentrates on one address while random inputs
        # spread over 256: a strong (but < 1 bit) leak per observation
        assert all(0.3 < leak.bits <= 1.0 for leak in leaks)

    def test_bits_rendered_in_report(self):
        result = detect(OwlConfig(fixed_runs=25, random_runs=25,
                                  quantify=True))
        assert "bits/obs" in result.report.render()

    def test_one_sided_leaks_get_one_bit(self):
        @kernel()
        def branchy(k, data, out):
            k.block("entry")
            tid = k.global_tid()
            secret = k.load(data, tid)
            br = k.branch(secret > 100)
            for _ in br.then("high"):
                k.store(out, tid, 1)
            for _ in br.otherwise("low"):
                k.store(out, tid, 0)

        def program(rt, secret):
            data = rt.cudaMalloc(32, label="data")
            rt.cudaMemcpyHtoD(data, np.full(32, secret))
            out = rt.cudaMalloc(32, label="out")
            rt.cuLaunchKernel(branchy, 1, 32, data, out)

        # representative (first) input 200 -> 'high' only; random inputs
        # stay below 90 -> 'low' only: both blocks are one-sided
        owl = Owl(program, name="branchy",
                  config=OwlConfig(fixed_runs=25, random_runs=25,
                                   quantify=True))
        result = owl.detect(inputs=[200, 3],
                            random_input=lambda rng: int(rng.integers(0, 90)))
        one_sided = [leak for leak in result.report.control_flow_leaks
                     if "only under" in leak.detail]
        assert {leak.block for leak in one_sided} == {"high", "low"}
        assert all(leak.bits == 1.0 for leak in one_sided)
