"""Leakage quantification: entropy, JSD, and sample-complexity estimates."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quantify import (
    QuantifyError,
    entropy_bits,
    jensen_shannon_bits,
    leakage_bits_per_observation,
    observations_to_distinguish,
)

histograms = st.dictionaries(st.integers(0, 30), st.integers(1, 20),
                             min_size=1, max_size=10)


class TestEntropy:
    def test_point_mass_zero(self):
        assert entropy_bits({5: 100}) == 0.0

    def test_uniform_two_values_one_bit(self):
        assert entropy_bits({0: 10, 1: 10}) == pytest.approx(1.0)

    def test_uniform_n_values(self):
        hist = {value: 3 for value in range(8)}
        assert entropy_bits(hist) == pytest.approx(3.0)

    def test_weights_scale_invariant(self):
        assert entropy_bits({0: 1, 1: 3}) == pytest.approx(
            entropy_bits({0: 100, 1: 300}))

    def test_empty_rejected(self):
        with pytest.raises(QuantifyError):
            entropy_bits({})


class TestJensenShannon:
    def test_identical_distributions_zero_bits(self):
        hist = {0: 5, 8: 3, 16: 2}
        assert jensen_shannon_bits(hist, hist) == pytest.approx(0.0, abs=1e-12)

    def test_disjoint_distributions_one_bit(self):
        assert jensen_shannon_bits({0: 10}, {1: 10}) == pytest.approx(1.0)

    def test_partial_overlap_between(self):
        bits = jensen_shannon_bits({0: 1, 1: 1}, {1: 1, 2: 1})
        assert 0.0 < bits < 1.0

    def test_symmetry(self):
        p, q = {0: 3, 1: 1}, {0: 1, 2: 5}
        assert jensen_shannon_bits(p, q) == pytest.approx(
            jensen_shannon_bits(q, p))

    @given(p=histograms, q=histograms)
    @settings(max_examples=100, deadline=None)
    def test_property_bounded_and_symmetric(self, p, q):
        bits = jensen_shannon_bits(p, q)
        assert 0.0 <= bits <= 1.0
        assert bits == pytest.approx(jensen_shannon_bits(q, p), abs=1e-12)

    @given(p=histograms)
    @settings(max_examples=50, deadline=None)
    def test_property_self_divergence_zero(self, p):
        assert jensen_shannon_bits(p, p) == pytest.approx(0.0, abs=1e-12)


class TestSampleComplexity:
    def test_leak_free_needs_infinite_observations(self):
        assert observations_to_distinguish(0.0) == math.inf

    def test_full_bit_needs_one_observation(self):
        assert observations_to_distinguish(1.0) == pytest.approx(1.0)

    def test_weak_leak_needs_more(self):
        assert observations_to_distinguish(0.01) == pytest.approx(100.0)

    def test_alias(self):
        assert leakage_bits_per_observation({0: 1}, {1: 1}) == pytest.approx(1.0)
