"""The three leakage tests on synthetic programs with planted ground truth."""

import numpy as np
import pytest

from repro.core.evidence import Evidence
from repro.core.leakage import LeakageAnalyzer, LeakageConfig
from repro.core.report import LeakType
from repro.gpusim import kernel
from repro.tracing import TraceRecorder

TABLE_SIZE = 64


@kernel()
def planted_kernel(k, table, data, noise, out, mode):
    """mode selects which leak is planted:

    - "df": a secret-indexed table load (data-flow leak at instr 1);
    - "cf": a secret-dependent warp-uniform branch (control-flow leak);
    - "clean": thread-indexed accesses only;
    - any mode also loads nondeterministic *values* at fixed addresses.
    """
    k.block("entry")
    tid = k.global_tid()
    secret = k.load(data, tid)                      # instr 0: benign
    if mode == "df":
        value = k.load(table, secret % TABLE_SIZE)  # instr 1: leaky
    else:
        value = k.load(table, tid % TABLE_SIZE)     # instr 1: benign
    k.load(noise, tid % 8)                          # instr 2: noisy values
    if mode == "cf":
        br = k.branch(secret % 2 == 0)
        for _ in br.then("even"):
            k.store(out, tid, value)
        for _ in br.otherwise("odd"):
            k.store(out, tid, value + 1)
    else:
        k.store(out, tid, value)
    k.block("exit")


def make_program(mode, launch_extra_kernel_for=None):
    @kernel()
    def extra_kernel(k):
        k.block("entry")

    def program(rt, secret):
        rng = np.random.default_rng()  # true nondeterminism
        table = rt.cudaMalloc(TABLE_SIZE, label="table")
        rt.cudaMemcpyHtoD(table, np.arange(TABLE_SIZE))
        data = rt.cudaMalloc(32, label="data")
        rt.cudaMemcpyHtoD(data, np.full(32, secret))
        noise = rt.cudaMalloc(8, label="noise")
        rt.cudaMemcpyHtoD(noise, rng.integers(0, 100, 8))
        out = rt.cudaMalloc(32, label="out")
        rt.cuLaunchKernel(planted_kernel, 1, 32, table, data, noise, out,
                          mode)
        if launch_extra_kernel_for is not None \
                and launch_extra_kernel_for(secret):
            rt.cuLaunchKernel(extra_kernel, 1, 32)

    return program


def evidences(program, fixed_value, runs=40, seed=0):
    recorder = TraceRecorder()
    rng = np.random.default_rng(seed)
    fixed = Evidence.from_traces(
        recorder.record(program, fixed_value) for _ in range(runs))
    random = Evidence.from_traces(
        recorder.record(program, int(rng.integers(0, TABLE_SIZE)))
        for _ in range(runs))
    return fixed, random


@pytest.fixture(scope="module")
def analyzer():
    return LeakageAnalyzer()


class TestDataFlowLeak:
    def test_detects_secret_indexed_load(self, analyzer):
        fixed, random = evidences(make_program("df"), fixed_value=3)
        report = analyzer.analyze(fixed, random)
        df = report.data_flow_leaks
        assert len(df) == 1
        assert df[0].block == "entry"
        assert df[0].instr == 1  # exactly the table load

    def test_benign_and_noisy_instructions_pass(self, analyzer):
        fixed, random = evidences(make_program("df"), fixed_value=3)
        report = analyzer.analyze(fixed, random)
        flagged = {(l.block, l.instr) for l in report.data_flow_leaks}
        assert ("entry", 0) not in flagged  # tid-indexed secret load
        assert ("entry", 2) not in flagged  # nondeterministic values

    def test_clean_program_no_leaks(self, analyzer):
        fixed, random = evidences(make_program("clean"), fixed_value=3)
        report = analyzer.analyze(fixed, random)
        assert not report.has_leaks


class TestControlFlowLeak:
    def test_detects_secret_branch(self, analyzer):
        fixed, random = evidences(make_program("cf"), fixed_value=3)
        report = analyzer.analyze(fixed, random)
        cf_blocks = {l.block for l in report.control_flow_leaks}
        # fixed secret 3 is odd: 'even' appears only under random inputs,
        # and entry's transition matrix deviates
        assert "even" in cf_blocks
        assert "entry" in cf_blocks

    def test_no_false_kernel_leak(self, analyzer):
        fixed, random = evidences(make_program("cf"), fixed_value=3)
        assert analyzer.analyze(fixed, random).kernel_leaks == []


class TestKernelLeak:
    def test_detects_secret_dependent_launch(self, analyzer):
        program = make_program("clean",
                               launch_extra_kernel_for=lambda s: s >= 32)
        fixed, random = evidences(program, fixed_value=3)
        report = analyzer.analyze(fixed, random)
        assert len(report.kernel_leaks) == 1
        assert report.kernel_leaks[0].kernel_name == "extra_kernel"

    def test_nondeterministic_launch_is_filtered(self, analyzer):
        """An input-independent random launch appears in similar fractions
        of fixed and random runs: no kernel leak may be reported."""
        rng_holder = np.random.default_rng(123)
        program = make_program(
            "clean",
            launch_extra_kernel_for=lambda s: rng_holder.random() < 0.5)
        fixed, random = evidences(program, fixed_value=3, runs=60)
        report = analyzer.analyze(fixed, random)
        assert report.kernel_leaks == []


class TestConfig:
    def test_welch_mode_runs(self):
        analyzer = LeakageAnalyzer(LeakageConfig(test="welch"))
        fixed, random = evidences(make_program("df"), fixed_value=3)
        report = analyzer.analyze(fixed, random)
        assert isinstance(report.data_flow_leaks, list)

    def test_invalid_test_name(self):
        with pytest.raises(ValueError):
            LeakageConfig(test="chi2")

    def test_stricter_confidence_fewer_leaks(self):
        fixed, random = evidences(make_program("df"), fixed_value=3)
        loose = LeakageAnalyzer(LeakageConfig(confidence=0.8)).analyze(
            fixed, random)
        strict = LeakageAnalyzer(
            LeakageConfig(confidence=0.999999)).analyze(fixed, random)
        assert len(strict.leaks) <= len(loose.leaks)

    def test_report_counts_match_types(self):
        fixed, random = evidences(make_program("cf"), fixed_value=3)
        report = LeakageAnalyzer().analyze(fixed, random)
        counts = report.counts()
        assert counts["control_flow"] == len(report.of_type(
            LeakType.DEVICE_CONTROL_FLOW))
