"""Worker-pool trace recording: chunking, evidence merging, fallbacks."""

import numpy as np
import pytest

from repro.core.evidence import Evidence
from repro.core.parallel import (
    ChunkStats,
    TraceRecordingPool,
    chunk_slices,
    resolve_workers,
)
from repro.gpusim import kernel
from repro.tracing import TraceRecorder


@kernel()
def touch_kernel(k, data):
    k.block("entry")
    k.load(data, k.global_tid())


@kernel()
def extra_kernel(k, data):
    k.block("entry")
    k.load(data, k.global_tid())


def varying_program(rt, secret):
    """Launches touch always, extra only for large secrets — so different
    inputs yield different kernel sequences (exercises merge alignment)."""
    data = rt.cudaMalloc(32, label="data")
    rt.cudaMemcpyHtoD(data, np.full(32, secret))
    rt.cuLaunchKernel(touch_kernel, 1, 32, data)
    if secret >= 10:
        rt.cuLaunchKernel(extra_kernel, 1, 32, data)


class TestResolveWorkers:
    def test_int_passthrough(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(7) == 7

    def test_none_is_serial(self):
        assert resolve_workers(None) == 1

    def test_auto_uses_cores(self):
        assert resolve_workers("auto") >= 1

    def test_numeric_string(self):
        assert resolve_workers("3") == 3

    @pytest.mark.parametrize("bad", [0, -2, "several", 1.5, True])
    def test_invalid_specs_raise(self, bad):
        with pytest.raises(ValueError):
            resolve_workers(bad)


class TestChunkSlices:
    def test_covers_range_contiguously(self):
        slices = chunk_slices(10, 4)
        indices = [i for s in slices for i in range(s.start, s.stop)]
        assert indices == list(range(10))

    def test_balanced(self):
        sizes = [s.stop - s.start for s in chunk_slices(10, 4)]
        assert sizes == [3, 3, 2, 2]

    def test_more_chunks_than_items(self):
        assert chunk_slices(2, 8) == [slice(0, 1), slice(1, 2)]

    def test_empty(self):
        assert chunk_slices(0, 4) == []

    def test_single_chunk(self):
        assert chunk_slices(5, 1) == [slice(0, 5)]

    def test_deterministic(self):
        assert chunk_slices(17, 5) == chunk_slices(17, 5)

    @pytest.mark.parametrize("n,chunks", [(-1, 2), (4, 0)])
    def test_invalid_args_raise(self, n, chunks):
        with pytest.raises(ValueError):
            chunk_slices(n, chunks)


def _record_all(values):
    recorder = TraceRecorder()
    return [recorder.record(varying_program, v) for v in values]


class TestEvidenceMerge:
    """Chunked partial-evidence merging must equal the serial fold."""

    @pytest.mark.parametrize("keep_per_run", [False, True])
    @pytest.mark.parametrize("values", [
        [1, 1, 1, 1, 1, 1],          # identical sequences
        [1, 2, 3, 4, 5, 6],          # same sequence, different contents
        [1, 12, 2, 13, 3, 14],       # alternating kernel sequences
        [12, 12, 1, 1, 12, 12],      # slot inserted then absent then back
    ])
    def test_chunked_merge_matches_serial_fold(self, values, keep_per_run):
        traces = _record_all(values)
        serial = Evidence.from_traces(traces, keep_per_run=keep_per_run)

        for split in (1, 2, 4):
            chunks = np.array_split(np.arange(len(values)), split)
            partials = [
                Evidence.from_traces([_record_all(values)[i] for i in idx],
                                     keep_per_run=keep_per_run)
                for idx in chunks if len(idx)
            ]
            merged = partials[0]
            for partial in partials[1:]:
                merged.merge(partial)

            assert merged.num_runs == serial.num_runs
            assert merged.identity_sequence == serial.identity_sequence
            for got, want in zip(merged.slots, serial.slots):
                assert got.per_run_present == want.per_run_present
                assert got.adcfg == want.adcfg
                if keep_per_run:
                    assert len(got.per_run_graphs) == len(want.per_run_graphs)
                    for g, w in zip(got.per_run_graphs, want.per_run_graphs):
                        assert (g is None) == (w is None)
                        if g is not None:
                            assert g == w

    def test_mismatched_per_run_modes_raise(self):
        traces = _record_all([1, 1])
        with pytest.raises(ValueError):
            Evidence.from_traces(traces[:1]).merge(
                Evidence.from_traces(traces[1:], keep_per_run=True))

    def test_merge_returns_self_and_accumulates_runs(self):
        traces = _record_all([1, 2, 3])
        left = Evidence.from_traces(traces[:2])
        result = left.merge(Evidence.from_traces(traces[2:]))
        assert result is left
        assert left.num_runs == 3


class TestTraceRecordingPool:
    def test_pooled_traces_match_serial(self):
        values = [1, 2, 12, 13, 1, 12]
        serial_pool = TraceRecordingPool(varying_program, workers=1)
        parallel_pool = TraceRecordingPool(varying_program, workers=3)
        serial_traces, serial_stats = serial_pool.record_traces(values)
        parallel_traces, parallel_stats = parallel_pool.record_traces(values)
        assert ([t.signature() for t in serial_traces]
                == [t.signature() for t in parallel_traces])
        assert serial_stats.trace_count == parallel_stats.trace_count == 6
        assert serial_stats.trace_bytes_total == parallel_stats.trace_bytes_total

    @pytest.mark.parametrize("keep_per_run", [False, True])
    def test_pooled_evidence_matches_serial(self, keep_per_run):
        values = [1, 12, 2, 13, 3, 14]
        serial, _ = TraceRecordingPool(varying_program, workers=1) \
            .record_evidence(values, keep_per_run=keep_per_run)
        pooled, _ = TraceRecordingPool(varying_program, workers=3) \
            .record_evidence(values, keep_per_run=keep_per_run)
        assert pooled.num_runs == serial.num_runs
        assert pooled.identity_sequence == serial.identity_sequence
        for got, want in zip(pooled.slots, serial.slots):
            assert got.per_run_present == want.per_run_present
            assert got.adcfg == want.adcfg

    def test_unpicklable_program_falls_back_to_serial(self):
        state = {"calls": 0}

        def closure_program(rt, secret):  # closures cannot be pickled
            state["calls"] += 1
            varying_program(rt, secret)

        pool = TraceRecordingPool(closure_program, workers=4)
        traces, stats = pool.record_traces([1, 2, 3])
        assert state["calls"] == 3  # ran in-process
        assert stats.trace_count == 3
        assert len(traces) == 3

    def test_empty_batch(self):
        pool = TraceRecordingPool(varying_program, workers=2)
        evidence, stats = pool.record_evidence([])
        assert evidence.num_runs == 0
        assert stats.trace_count == 0

    def test_evidence_stats_cover_all_runs(self):
        pool = TraceRecordingPool(varying_program, workers=2)
        _evidence, stats = pool.record_evidence([1, 2, 3, 4])
        assert stats.trace_count == 4
        assert stats.trace_bytes_total > 0
        assert stats.trace_seconds_total > 0


class TestChunkStats:
    def test_absorb_sums_fields(self):
        a = ChunkStats(trace_count=2, trace_bytes_total=10,
                       trace_seconds_total=0.5, evidence_seconds=0.1)
        b = ChunkStats(trace_count=3, trace_bytes_total=20,
                       trace_seconds_total=0.25, evidence_seconds=0.2)
        a.absorb(b)
        assert a.trace_count == 5
        assert a.trace_bytes_total == 30
        assert a.trace_seconds_total == pytest.approx(0.75)
        assert a.evidence_seconds == pytest.approx(0.3)
