"""Cross-module invariants of the analysis pipeline (property-style)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.evidence import Evidence
from repro.core.kstest import ks_threshold
from repro.core.report import Leak, LeakType, LeakageReport
from repro.core.transition import transition_matrix
from repro.gpusim import kernel
from repro.tracing import TraceRecorder


@kernel()
def branchy_kernel(k, data, out):
    k.block("entry")
    tid = k.global_tid()
    value = k.load(data, tid)
    br = k.branch(value % 2 == 0)
    for _ in br.then("even"):
        k.store(out, tid, 0)
    for _ in br.otherwise("odd"):
        k.store(out, tid, 1)
    k.block("exit")


def branchy_program(rt, secret):
    data = rt.cudaMalloc(32, label="data")
    rt.cudaMemcpyHtoD(data, np.full(32, secret))
    out = rt.cudaMalloc(32, label="out")
    rt.cuLaunchKernel(branchy_kernel, 1, 32, data, out)


class TestEvidenceInvariants:
    def test_merging_n_identical_traces_scales_counts_linearly(self, recorder):
        trace = recorder.record(branchy_program, 2)
        for n in (1, 3, 7):
            evidence = Evidence.from_traces(
                recorder.record(branchy_program, 2) for _ in range(n))
            graph = evidence.slots[0].adcfg
            base = trace.invocations[0].adcfg
            for label, node in base.nodes.items():
                assert evidence.slots[0].adcfg.nodes[label].entries \
                    == n * node.entries
            for key, edge in base.edges.items():
                assert graph.edges[key].count == n * edge.count

    def test_evidence_merge_preserves_total_accesses(self, recorder):
        traces = [recorder.record(branchy_program, 2) for _ in range(4)]
        evidence = Evidence.from_traces(traces)
        merged_total = evidence.slots[0].adcfg.total_memory_accesses
        assert merged_total == sum(
            t.invocations[0].adcfg.total_memory_accesses for t in traces)

    def test_transition_balance_holds_after_merging(self, recorder):
        evidence = Evidence.from_traces(
            recorder.record(branchy_program, value)
            for value in (2, 3, 2, 5, 4))
        graph = evidence.slots[0].adcfg
        for label in graph.nodes:
            assert transition_matrix(graph, label).verify_balance()

    def test_run_count_bookkeeping(self, recorder):
        evidence = Evidence.from_traces(
            recorder.record(branchy_program, 2) for _ in range(6))
        assert evidence.num_runs == 6
        assert all(len(slot.per_run_present) == 6
                   for slot in evidence.slots)


class TestThresholdInvariants:
    @given(n=st.integers(2, 500), m=st.integers(2, 500))
    @settings(max_examples=100, deadline=None)
    def test_property_threshold_positive_and_symmetric(self, n, m):
        assert ks_threshold(n, m) > 0
        assert ks_threshold(n, m) == pytest.approx(ks_threshold(m, n))

    @given(n=st.integers(2, 200))
    @settings(max_examples=50, deadline=None)
    def test_property_more_samples_tighter_threshold(self, n):
        assert ks_threshold(2 * n, 2 * n) < ks_threshold(n, n)

    @given(n=st.integers(2, 200),
           strict=st.floats(0.951, 0.999),
           loose=st.floats(0.5, 0.949))
    @settings(max_examples=50, deadline=None)
    def test_property_higher_confidence_higher_threshold(self, n, strict,
                                                         loose):
        assert ks_threshold(n, n, strict) > ks_threshold(n, n, loose)


class TestReportInvariants:
    @given(p_values=st.lists(st.floats(0, 1), min_size=1, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_property_dedup_idempotent(self, p_values):
        report = LeakageReport(program_name="p")
        for i, p_value in enumerate(p_values):
            report.add(Leak(leak_type=LeakType.DEVICE_DATA_FLOW,
                            kernel_identity="k@1", kernel_name="k",
                            block=f"b{i % 3}", instr=i % 2,
                            p_value=p_value, statistic=0.5))
        once = report.dedup_by_location()
        twice = once.dedup_by_location()
        assert [l.location for l in once.leaks] == [
            l.location for l in twice.leaks]
        assert [l.p_value for l in once.leaks] == [
            l.p_value for l in twice.leaks]

    def test_counts_partition_the_leaks(self):
        report = LeakageReport(program_name="p")
        for leak_type in LeakType:
            report.add(Leak(leak_type=leak_type, kernel_identity="k@1",
                            kernel_name="k"))
        assert sum(report.counts().values()) == len(report.leaks)
