"""The full Owl pipeline: phases, early exit, stats, reports."""

import numpy as np
import pytest

from repro.core import Owl, OwlConfig
from repro.core.report import Leak, LeakType, LeakageReport
from repro.gpusim import kernel

TABLE = 64


@kernel()
def df_kernel(k, table, data, out):
    k.block("entry")
    tid = k.global_tid()
    secret = k.load(data, tid)
    k.store(out, tid, k.load(table, secret % TABLE))
    k.block("exit")


def df_program(rt, secret):
    table = rt.cudaMalloc(TABLE, label="table")
    rt.cudaMemcpyHtoD(table, np.arange(TABLE))
    data = rt.cudaMalloc(32, label="data")
    rt.cudaMemcpyHtoD(data, np.full(32, secret))
    out = rt.cudaMalloc(32, label="out")
    rt.cuLaunchKernel(df_kernel, 1, 32, table, data, out)


@kernel()
def clean_kernel(k, data, out):
    k.block("entry")
    tid = k.global_tid()
    k.store(out, tid, k.load(data, tid) + 1)


def clean_program(rt, secret):
    data = rt.cudaMalloc(32, label="data")
    rt.cudaMemcpyHtoD(data, np.full(32, secret))
    out = rt.cudaMalloc(32, label="out")
    rt.cuLaunchKernel(clean_kernel, 1, 32, data, out)


def random_secret(rng):
    return int(rng.integers(0, TABLE))


SMALL = OwlConfig(fixed_runs=25, random_runs=25)


class TestPipeline:
    def test_leaky_program_end_to_end(self):
        owl = Owl(df_program, name="df", config=SMALL)
        result = owl.detect(inputs=[3, 9], random_input=random_secret)
        assert result.filter_result.num_classes == 2
        assert not result.leak_free_by_filtering
        assert result.report.data_flow_leaks
        assert result.report.program_name == "df"

    def test_clean_program_short_circuits_at_filtering(self):
        owl = Owl(clean_program, name="clean", config=SMALL)
        result = owl.detect(inputs=[3, 9, 40], random_input=random_secret)
        assert result.leak_free_by_filtering
        assert not result.report.has_leaks
        # phase 3 never ran: only the three phase-1 traces were recorded
        assert result.stats.trace_count == 3

    def test_stats_populated(self):
        owl = Owl(df_program, config=SMALL)
        result = owl.detect(inputs=[3, 9], random_input=random_secret)
        stats = result.stats
        assert stats.trace_count == 2 + 25 + 25
        assert stats.avg_trace_bytes > 0
        assert stats.avg_trace_seconds > 0
        assert stats.total_seconds >= stats.trace_seconds_total

    def test_memory_measurement(self):
        config = OwlConfig(fixed_runs=5, random_runs=5, measure_memory=True)
        result = Owl(df_program, config=config).detect(
            inputs=[3, 9], random_input=random_secret)
        assert result.stats.peak_ram_bytes > 0

    def test_all_representatives_mode(self):
        config = OwlConfig(fixed_runs=10, random_runs=10,
                           analyze_all_representatives=True)
        result = Owl(df_program, config=config).detect(
            inputs=[3, 9, 17], random_input=random_secret)
        assert len(result.per_representative) == 3

    def test_single_representative_default(self):
        result = Owl(df_program, config=SMALL).detect(
            inputs=[3, 9, 17], random_input=random_secret)
        assert len(result.per_representative) == 1

    def test_seed_reproducibility(self):
        def run():
            return Owl(df_program, config=SMALL).detect(
                inputs=[3, 9], random_input=random_secret)

        first, second = run(), run()
        assert ([l.location for l in first.report.leaks]
                == [l.location for l in second.report.leaks])


class TestReportRendering:
    def test_render_mentions_counts(self):
        report = LeakageReport(program_name="p", num_fixed_runs=10,
                               num_random_runs=10)
        report.add(Leak(leak_type=LeakType.DEVICE_DATA_FLOW,
                        kernel_identity="k@1", kernel_name="k",
                        block="entry", instr=2, p_value=0.001,
                        statistic=0.5))
        text = report.render()
        assert "data-flow leaks: 1" in text
        assert "block=entry" in text
        assert "instr=2" in text

    def test_dedup_keeps_most_significant(self):
        report = LeakageReport(program_name="p")
        for p_value in (0.04, 0.001, 0.02):
            report.add(Leak(leak_type=LeakType.DEVICE_DATA_FLOW,
                            kernel_identity="k@1", kernel_name="k",
                            block="entry", instr=0, p_value=p_value,
                            statistic=1.0))
        deduped = report.dedup_by_location()
        assert len(deduped.leaks) == 1
        assert deduped.leaks[0].p_value == 0.001

    def test_dedup_separates_leak_types(self):
        report = LeakageReport(program_name="p")
        for leak_type in (LeakType.DEVICE_DATA_FLOW,
                          LeakType.DEVICE_CONTROL_FLOW):
            report.add(Leak(leak_type=leak_type, kernel_identity="k@1",
                            kernel_name="k", block="entry", instr=-1,
                            p_value=0.01, statistic=1.0))
        assert len(report.dedup_by_location().leaks) == 2
