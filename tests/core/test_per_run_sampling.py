"""The strict per-run sampling mode (DESIGN.md §6)."""

import numpy as np
import pytest

from repro.core import Owl, OwlConfig
from repro.core.evidence import Evidence
from repro.core.leakage import LeakageAnalyzer, LeakageConfig
from repro.gpusim import kernel
from repro.tracing import TraceRecorder

TABLE = 64


@kernel()
def lookup_kernel(k, table, data, out):
    k.block("entry")
    tid = k.global_tid()
    secret = k.load(data, tid)
    k.store(out, tid, k.load(table, secret % TABLE))


def lookup_program(rt, secret):
    table = rt.cudaMalloc(TABLE, label="table")
    rt.cudaMemcpyHtoD(table, np.arange(TABLE))
    data = rt.cudaMalloc(32, label="data")
    rt.cudaMemcpyHtoD(data, np.full(32, secret))
    out = rt.cudaMalloc(32, label="out")
    rt.cuLaunchKernel(lookup_kernel, 1, 32, table, data, out)


#: seeded rotation stream: random per run, reproducible across test runs
_SHIFT_RNG = np.random.default_rng(77)


def shifted_program(rt, secret):
    """Per-run random table rotation, input-independent (the ORAM case).

    All 32 lanes share one secret and one rotation: pooled counts are
    32x-correlated — the scenario pooled sampling over-rejects on."""
    rotation = int(_SHIFT_RNG.integers(0, TABLE))
    table = rt.cudaMalloc(TABLE, label="table")
    rt.cudaMemcpyHtoD(table, np.roll(np.arange(TABLE), -rotation))
    data = rt.cudaMalloc(32, label="data")
    rt.cudaMemcpyHtoD(data, np.full(32, (secret - rotation) % TABLE))
    out = rt.cudaMalloc(32, label="out")
    rt.cuLaunchKernel(lookup_kernel, 1, 32, table, data, out)


def random_secret(rng):
    return int(rng.integers(0, TABLE))


class TestEvidenceRetention:
    def test_per_run_graphs_only_kept_on_request(self, recorder):
        traces = recorder.record_many(lookup_program, [3, 3])
        pooled = Evidence.from_traces(traces)
        assert pooled.slots[0].per_run_graphs is None
        strict = Evidence.from_traces(traces, keep_per_run=True)
        assert len(strict.slots[0].per_run_graphs) == 2

    def test_absent_runs_recorded_as_none(self, recorder):
        def maybe(rt, secret):
            if secret:
                lookup_program(rt, 1)

        traces = recorder.record_many(maybe, [1, 0, 1])
        strict = Evidence.from_traces(traces, keep_per_run=True)
        graphs = strict.slots[0].per_run_graphs
        assert [g is not None for g in graphs] == [True, False, True]

    def test_per_run_mode_requires_retained_graphs(self, recorder):
        traces = recorder.record_many(lookup_program, [3, 3])
        pooled = Evidence.from_traces(traces)
        analyzer = LeakageAnalyzer(LeakageConfig(sampling="per_run"))
        with pytest.raises(ValueError):
            analyzer.analyze(pooled, pooled)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            LeakageConfig(sampling="bootstrap")


class TestDetectionParity:
    def test_per_run_mode_finds_the_planted_leak(self):
        config = OwlConfig(fixed_runs=25, random_runs=25,
                           sampling="per_run")
        result = Owl(lookup_program, name="lookup", config=config).detect(
            inputs=[3, 40], random_input=random_secret)
        df = result.report.data_flow_leaks
        assert df
        assert df[0].block == "entry"
        assert "per-run" in df[0].detail

    def test_per_run_mode_clean_on_clean_program(self):
        @kernel()
        def clean_kernel(k, data, out):
            k.block("entry")
            tid = k.global_tid()
            k.store(out, tid, k.load(data, tid))

        def clean_program(rt, secret):
            data = rt.cudaMalloc(32, label="data")
            rt.cudaMemcpyHtoD(data, np.full(32, secret))
            out = rt.cudaMalloc(32, label="out")
            rt.cuLaunchKernel(clean_kernel, 1, 32, data, out)

        config = OwlConfig(fixed_runs=20, random_runs=20,
                           sampling="per_run", always_analyze=True)
        result = Owl(clean_program, name="clean", config=config).detect(
            inputs=[3, 40], random_input=random_secret)
        assert not result.report.has_leaks


class TestOverdispersionRobustness:
    def test_per_run_mode_calibrated_under_correlated_lanes(self):
        """The motivation for strict mode: pooled sampling over-rejects on
        run-level randomness with 32x-correlated lanes (unless capped);
        per-run sampling handles it without a tuned cap."""
        strict = OwlConfig(fixed_runs=25, random_runs=25,
                           sampling="per_run")
        result = Owl(shifted_program, name="shifted", config=strict).detect(
            inputs=[3, 40], random_input=random_secret)
        assert not result.report.has_leaks

    def test_per_run_mode_retains_power(self):
        """...while still catching the same leak pooled mode catches."""
        strict = OwlConfig(fixed_runs=25, random_runs=25,
                           sampling="per_run")
        pooled = OwlConfig(fixed_runs=25, random_runs=25)
        strict_result = Owl(lookup_program, config=strict).detect(
            inputs=[3, 40], random_input=random_secret)
        pooled_result = Owl(lookup_program, config=pooled).detect(
            inputs=[3, 40], random_input=random_secret)
        assert strict_result.report.data_flow_leaks
        assert pooled_result.report.data_flow_leaks
