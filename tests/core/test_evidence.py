"""Evidence merging (§VII-A) and fixed/random evidence alignment."""

import numpy as np
import pytest

from repro.core.evidence import Evidence, align_evidence
from repro.gpusim import kernel
from repro.tracing import TraceRecorder


@kernel()
def touch_kernel(k, data):
    k.block("entry")
    k.load(data, k.global_tid())


@kernel()
def extra_kernel(k, data):
    k.block("entry")
    k.load(data, k.global_tid())


def program(rt, secret):
    """Launches touch always; extra only when secret >= 10; nondet only when
    the (input-independent) coin flips true."""
    value, coin = secret
    data = rt.cudaMalloc(32, label="data")
    rt.cudaMemcpyHtoD(data, np.full(32, value))
    rt.cuLaunchKernel(touch_kernel, 1, 32, data)
    if value >= 10:
        rt.cuLaunchKernel(extra_kernel, 1, 32, data)
    if coin:
        rt.cuLaunchKernel(extra_kernel, 1, 32, data)


@pytest.fixture
def record(recorder):
    return lambda value, coin=False: recorder.record(program, (value, coin))


class TestEvidenceMerging:
    def test_identical_runs_merge_into_one_slot_set(self, record):
        evidence = Evidence.from_traces([record(1) for _ in range(5)])
        assert evidence.num_runs == 5
        assert len(evidence.slots) == 1
        slot = evidence.slots[0]
        assert slot.total_count == 5
        assert slot.per_run_present == [True] * 5

    def test_adcfg_counts_accumulate(self, record):
        evidence = Evidence.from_traces([record(1) for _ in range(3)])
        graph = evidence.slots[0].adcfg
        assert graph.nodes["entry"].entries == 3

    def test_unstable_invocation_gets_partial_presence(self, record):
        traces = [record(1, coin=False), record(1, coin=True),
                  record(1, coin=False)]
        evidence = Evidence.from_traces(traces)
        assert len(evidence.slots) == 2
        flaky = evidence.slots[1]
        assert flaky.per_run_present == [False, True, False]

    def test_insertion_before_existing_slots(self, record):
        """A run whose sequence has a new head invocation must insert the
        slot in order, not append it."""
        first = record(1)          # touch only
        second = record(12)        # touch + extra
        evidence = Evidence.from_traces([second, first])
        identities = [slot.kernel_name for slot in evidence.slots]
        assert identities == ["touch_kernel", "extra_kernel"]

    def test_presence_histogram(self, record):
        evidence = Evidence.from_traces(
            [record(1, coin=c) for c in (True, False, True)])
        flaky = evidence.slots[1]
        assert flaky.presence_histogram() == {0: 1, 1: 2}

    def test_slot_by_identity(self, record):
        evidence = Evidence.from_traces([record(12)])
        assert evidence.slot_by_identity(
            evidence.slots[0].identity) is evidence.slots[0]
        assert evidence.slot_by_identity("missing@0") is None

    def test_empty_evidence(self):
        evidence = Evidence()
        assert evidence.num_runs == 0
        assert evidence.slots == []


class TestEvidenceAlignment:
    def test_matching_evidences_align_fully(self, record):
        fixed = Evidence.from_traces([record(1) for _ in range(3)])
        random = Evidence.from_traces([record(2) for _ in range(3)])
        pairs = align_evidence(fixed, random)
        assert len(pairs) == 1
        assert pairs[0].aligned

    def test_one_sided_slots_are_unaligned(self, record):
        fixed = Evidence.from_traces([record(1)])
        random = Evidence.from_traces([record(12)])
        pairs = align_evidence(fixed, random)
        assert [p.aligned for p in pairs] == [True, False]
        unaligned = pairs[1]
        assert unaligned.fixed is None
        assert unaligned.random.kernel_name == "extra_kernel"

    def test_identity_property(self, record):
        fixed = Evidence.from_traces([record(12)])
        random = Evidence.from_traces([record(12)])
        for pair in align_evidence(fixed, random):
            assert pair.identity == pair.fixed.identity


def assert_equivalent(a, b):
    assert a.num_runs == b.num_runs
    assert a.identity_sequence == b.identity_sequence
    for slot_a, slot_b in zip(a.slots, b.slots):
        assert slot_a.per_run_present == slot_b.per_run_present
        assert slot_a.adcfg == slot_b.adcfg
        assert slot_a.per_run_graphs == slot_b.per_run_graphs


class TestAddTraceRepeated:
    """The O(1)-alignment repeated fold must equal count x add_trace —
    the contract replica deduplication relies on."""

    @pytest.mark.parametrize("keep_per_run", [False, True])
    def test_equals_serial_folds(self, record, keep_per_run):
        trace = record(1)
        batched = Evidence(keep_per_run=keep_per_run)
        batched.add_trace_repeated(trace, 4)
        serial = Evidence(keep_per_run=keep_per_run)
        for _ in range(4):
            serial.add_trace(trace)
        assert_equivalent(batched, serial)

    def test_count_one_is_plain_add(self, record):
        trace = record(1)
        batched = Evidence()
        batched.add_trace_repeated(trace, 1)
        serial = Evidence.from_traces([trace])
        assert_equivalent(batched, serial)

    def test_after_divergent_prior_runs(self, record):
        """Repetitions folded on top of a wider identity sequence hit the
        DELETE branch (absent slots) and must still match serial."""
        wide, narrow = record(12), record(1)
        batched = Evidence(keep_per_run=True)
        batched.add_trace(wide)
        batched.add_trace_repeated(narrow, 3)
        serial = Evidence(keep_per_run=True)
        for trace in [wide, narrow, narrow, narrow]:
            serial.add_trace(trace)
        assert_equivalent(batched, serial)

    def test_repetitions_then_divergent_run(self, record):
        batched = Evidence()
        batched.add_trace_repeated(record(1), 3)
        batched.add_trace(record(12))
        serial = Evidence.from_traces(
            [record(1), record(1), record(1), record(12)])
        assert_equivalent(batched, serial)

    def test_invalid_count_rejected(self, record):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError, match="count"):
            Evidence().add_trace_repeated(record(1), 0)
