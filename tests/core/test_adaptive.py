"""Adaptive group-sequential replica scheduling (DESIGN.md §15).

The contract under test: an ``adaptive=True`` detection flags the same
leak set as the full-budget run, stops early when every location is
decisive, spends its alpha through the O'Brien–Fleming-style schedule,
stays bit-identical across every parallel/columnar/cohort knob, and
resumes through the store's checkpoint path to the identical report.
"""

import numpy as np
import pytest

from repro.core import Owl, OwlConfig
from repro.core import adaptive as sequential
from repro.errors import ConfigError
from repro.gpusim import kernel

TABLE = 64


@kernel()
def df_kernel(k, table, data, out):
    k.block("entry")
    tid = k.global_tid()
    secret = k.load(data, tid)
    k.store(out, tid, k.load(table, secret % TABLE))
    k.block("exit")


def df_program(rt, secret):
    table = rt.cudaMalloc(TABLE, label="table")
    rt.cudaMemcpyHtoD(table, np.arange(TABLE))
    data = rt.cudaMalloc(32, label="data")
    rt.cudaMemcpyHtoD(data, np.full(32, secret))
    out = rt.cudaMalloc(32, label="out")
    rt.cuLaunchKernel(df_kernel, 1, 32, table, data, out)


@kernel()
def clean_kernel(k, data, out):
    k.block("entry")
    tid = k.global_tid()
    k.store(out, tid, k.load(data, tid) + 1)


def clean_program(rt, secret):
    data = rt.cudaMalloc(32, label="data")
    rt.cudaMemcpyHtoD(data, np.full(32, secret))
    out = rt.cudaMalloc(32, label="out")
    rt.cuLaunchKernel(clean_kernel, 1, 32, data, out)


def random_secret(rng):
    return int(rng.integers(0, TABLE))


def leak_set(report):
    return {(leak.leak_type.value, leak.kernel_name, leak.block, leak.instr)
            for leak in report.leaks}


def summary_decisions(summary):
    """The adaptive summary minus wall-clock noise (analysis timings)."""
    payload = summary.to_dict()
    for decision in payload["rounds"]:
        decision.pop("analysis_seconds")
    return payload


def detect(program, adaptive, store=None, **overrides):
    config = OwlConfig(fixed_runs=60, random_runs=60, adaptive=adaptive,
                       always_analyze=True, **overrides)
    owl = Owl(program, name="adaptive-prog", config=config)
    return owl.detect(inputs=[3, 9], random_input=random_secret,
                      store=store)


# ----------------------------------------------------------------------
# the sequential math
# ----------------------------------------------------------------------

class TestSequentialMath:
    def test_normal_quantile_inverts_cdf(self):
        for p in (0.025, 0.3, 0.5, 0.8, 0.975):
            z = sequential.normal_quantile(p)
            assert sequential.normal_cdf(z) == pytest.approx(p, abs=1e-10)

    def test_spending_reaches_alpha_at_full_information(self):
        assert sequential.spending_threshold(0.05, 1.0, 0.5) == pytest.approx(
            0.05)

    def test_spending_is_conservative_early_and_monotone(self):
        fractions = (0.2, 0.4, 0.7, 1.0)
        levels = [sequential.spending_threshold(0.05, fraction, 0.5)
                  for fraction in fractions]
        assert levels == sorted(levels)
        assert levels[0] < 1e-4  # OBF-style: almost no alpha at 20%

    def test_futility_relaxes_to_alpha(self):
        assert sequential.futility_threshold(0.05, 1.0) == pytest.approx(
            0.05)
        early = sequential.futility_threshold(0.05, 0.2)
        assert 0.05 < early < 0.5  # forgiving early, strict at the end

    def test_classify_results_three_ways(self):
        class R:  # the analyzer's raw batch-test rows: only p matters
            def __init__(self, p):
                self.p_value = p

        flagged, clean, undecided = sequential.classify_results(
            [R(1e-9), R(0.9), None, R(0.02)],
            efficacy_p=1e-4, futility_p=0.2)
        assert (flagged, clean, undecided) == (1, 2, 1)


class TestRoundSchedule:
    def test_default_doubles_from_16_to_budget(self):
        schedule = sequential.round_schedule(100, 100)
        assert schedule.fixed == (16, 32, 64, 100)
        assert schedule.random == (16, 32, 64, 100)
        assert schedule.num_rounds == 4

    def test_int_rounds_pick_geometric_looks(self):
        schedule = sequential.round_schedule(100, 100, rounds=2)
        assert schedule.num_rounds == 2
        assert schedule.fixed[-1] == 100

    def test_explicit_boundaries_get_budget_appended(self):
        schedule = sequential.round_schedule(100, 100, rounds=(10, 40))
        assert schedule.fixed == (10, 40, 100)

    def test_asymmetric_budgets_scale_per_side(self):
        schedule = sequential.round_schedule(100, 50)
        assert schedule.fixed[-1] == 100
        assert schedule.random[-1] == 50
        # only the final round may complete a side
        assert all(b < 50 for b in schedule.random[:-1])

    def test_tiny_budget_still_only_completes_on_final_round(self):
        schedule = sequential.round_schedule(100, 2)
        assert schedule.random[-1] == 2
        assert all(1 <= b < 2 for b in schedule.random[:-1])

    def test_validate_rejects_bad_round_specs(self):
        with pytest.raises(ConfigError):
            sequential.validate_adaptive_rounds(True)
        with pytest.raises(ConfigError):
            sequential.validate_adaptive_rounds(1)
        with pytest.raises(ConfigError):
            sequential.validate_adaptive_rounds((10, "x"))
        assert sequential.validate_adaptive_rounds([40, 10, 40]) == (10, 40)


# ----------------------------------------------------------------------
# configuration surface
# ----------------------------------------------------------------------

class TestAdaptiveConfig:
    def test_requires_the_deferred_vectorized_path(self):
        with pytest.raises(ConfigError, match="adaptive"):
            OwlConfig(adaptive=True, vectorized=False)

    def test_requires_the_ks_distribution_test(self):
        with pytest.raises(ConfigError, match="adaptive"):
            OwlConfig(adaptive=True, test="welch")

    def test_rounds_list_normalises_to_tuple(self):
        config = OwlConfig(adaptive=True, adaptive_rounds=[10, 40])
        assert config.adaptive_rounds == (10, 40)

    def test_alpha_spend_must_be_positive(self):
        with pytest.raises(ConfigError):
            OwlConfig(adaptive=True, adaptive_alpha_spend=0.0)

    def test_adaptive_fields_are_analysis_scope(self):
        from repro.store.fingerprint import (
            analysis_fingerprint, evidence_fingerprint)
        classic = OwlConfig(fixed_runs=60, random_runs=60)
        adaptive = OwlConfig(fixed_runs=60, random_runs=60, adaptive=True)
        assert (evidence_fingerprint(classic)
                == evidence_fingerprint(adaptive))
        assert (analysis_fingerprint(classic)
                != analysis_fingerprint(adaptive))


# ----------------------------------------------------------------------
# end-to-end equivalence + early stopping
# ----------------------------------------------------------------------

class TestAdaptiveDetect:
    def test_flags_the_full_budget_leak_set_early(self):
        classic = detect(df_program, adaptive=False)
        adaptive = detect(df_program, adaptive=True)
        assert leak_set(adaptive.report) == leak_set(classic.report)
        assert leak_set(adaptive.report)  # the leak is actually there
        summary = adaptive.adaptive
        assert summary.outcome == sequential.OUTCOME_EARLY_STOP
        assert summary.fixed_recorded < 60
        assert summary.replicas_saved > 0
        assert summary.rounds[-1].stop

    def test_clean_program_stops_early_by_futility(self):
        result = detect(clean_program, adaptive=True)
        assert not result.report.has_leaks
        assert result.adaptive.outcome == sequential.OUTCOME_EARLY_STOP

    def test_report_counts_reflect_recorded_replicas(self):
        result = detect(df_program, adaptive=True)
        assert (result.report.num_fixed_runs
                == result.adaptive.fixed_recorded)
        assert (result.report.num_random_runs
                == result.adaptive.random_recorded)

    def test_classic_run_carries_no_adaptive_summary(self):
        assert detect(df_program, adaptive=False).adaptive is None

    def test_works_under_both_analyzers(self):
        classic = detect(df_program, adaptive=False, analyzer="both")
        adaptive = detect(df_program, adaptive=True, analyzer="both")
        assert leak_set(adaptive.report) == leak_set(classic.report)

    @pytest.mark.parametrize("overrides", [
        {"workers": 2},
        {"columnar": False},
        {"cohort": False},
        {"replica_batch": True},
        {"workers": 2, "replica_batch": True, "columnar": False},
    ])
    def test_bit_identical_across_parallelism_knobs(self, overrides):
        reference = detect(df_program, adaptive=True)
        other = detect(df_program, adaptive=True, **overrides)
        assert (other.report.to_json() == reference.report.to_json())
        assert (summary_decisions(other.adaptive)
                == summary_decisions(reference.adaptive))


# ----------------------------------------------------------------------
# store integration: checkpoints, resume, degradation
# ----------------------------------------------------------------------

class TestAdaptiveStore:
    def test_early_stop_checkpoints_but_never_saves_evidence(self, tmp_path):
        from repro.store import TraceStore
        from repro.store.campaign import Campaign
        store = TraceStore(tmp_path / "store")
        result = detect(df_program, adaptive=True, store=store)
        assert result.adaptive.stopped_early
        config = OwlConfig(fixed_runs=60, random_runs=60, adaptive=True,
                           always_analyze=True)
        owl = Owl(df_program, name="adaptive-prog", config=config)
        campaign = Campaign(store, owl.name, config, owl.device_config)
        key = campaign.evidence_key("random")
        # the evidence key promises the full budget: an early-stopped
        # side must stay a checkpoint, not a completed artifact
        assert store.get(key) is None
        evidence, done = campaign.load_checkpoint(key)
        assert done == result.adaptive.random_recorded

    def test_resume_after_mid_round_interrupt_matches_cold_run(
            self, tmp_path):
        from repro.store import TraceStore
        cold = detect(df_program, adaptive=True,
                      store=TraceStore(tmp_path / "cold"))

        store = TraceStore(tmp_path / "warm")
        config = OwlConfig(fixed_runs=60, random_runs=60, adaptive=True,
                           always_analyze=True, store_checkpoint_every=10)
        owl = Owl(df_program, name="adaptive-prog", config=config)
        real_record = owl.pool.record_evidence
        calls = []

        def dying_record(values, keep_per_run=False):
            calls.append(len(values))
            if len(calls) == 3:  # mid-round: after some checkpoints landed
                raise KeyboardInterrupt
            return real_record(values, keep_per_run=keep_per_run)

        owl.pool.record_evidence = dying_record
        with pytest.raises(KeyboardInterrupt):
            owl.detect(inputs=[3, 9], random_input=random_secret,
                       store=store)
        owl.pool.record_evidence = real_record
        resumed = owl.detect(inputs=[3, 9], random_input=random_secret,
                             store=store)
        assert resumed.stats.cached_runs > 0  # the checkpoints were used
        assert resumed.report.to_json() == cold.report.to_json()
        assert (summary_decisions(resumed.adaptive)
                == summary_decisions(cold.adaptive))

    def test_warm_adaptive_rerun_hits_the_report_cache(self, tmp_path):
        from repro.store import TraceStore
        store = TraceStore(tmp_path / "store")
        first = detect(df_program, adaptive=True, store=store)
        again = detect(df_program, adaptive=True, store=store)
        assert again.stats.report_cache_hit
        assert again.report.to_json() == first.report.to_json()

    def test_cached_full_evidence_degrades_to_classic(self, tmp_path):
        from repro.store import TraceStore
        store = TraceStore(tmp_path / "store")
        classic = detect(df_program, adaptive=False, store=store)
        adaptive = detect(df_program, adaptive=True, store=store)
        # the full-budget evidence is already on disk (same evidence
        # scope): recording fewer replicas would waste it, so the run
        # degrades to the classic path and reports the full budget
        assert adaptive.adaptive.outcome == sequential.OUTCOME_CACHED
        assert adaptive.adaptive.replicas_saved == 0
        assert leak_set(adaptive.report) == leak_set(classic.report)
