"""Distribution tests: the paper's KS equations, weighted variants, Welch."""

import math

import numpy as np
import pytest
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kstest import (
    DistributionTestError,
    ks_p_value,
    ks_statistic,
    ks_statistic_weighted,
    ks_test,
    ks_test_weighted,
    ks_threshold,
    welch_t_test,
    welch_t_test_weighted,
)


class TestKsStatistic:
    def test_identical_samples(self):
        assert ks_statistic([1, 2, 3], [1, 2, 3]) == 0.0

    def test_disjoint_samples(self):
        assert ks_statistic([0, 1, 2], [10, 11, 12]) == 1.0

    def test_known_half_overlap(self):
        # F_X jumps to 1 at 1; F_Y jumps to 0.5 at 1 and 1.0 at 2
        assert ks_statistic([1, 1], [1, 2]) == pytest.approx(0.5)

    def test_empty_sample_rejected(self):
        with pytest.raises(DistributionTestError):
            ks_statistic([], [1.0])

    def test_matches_scipy(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=80)
        y = rng.normal(0.5, size=60)
        ours = ks_statistic(x, y)
        theirs = scipy.stats.ks_2samp(x, y, method="asymp").statistic
        assert ours == pytest.approx(theirs, abs=1e-12)

    @given(x=st.lists(st.integers(-50, 50), min_size=1, max_size=60),
           y=st.lists(st.integers(-50, 50), min_size=1, max_size=60))
    @settings(max_examples=150, deadline=None)
    def test_property_matches_scipy(self, x, y):
        ours = ks_statistic(x, y)
        theirs = scipy.stats.ks_2samp(x, y, method="asymp").statistic
        assert ours == pytest.approx(theirs, abs=1e-12)

    @given(x=st.lists(st.floats(-100, 100), min_size=1, max_size=40),
           y=st.lists(st.floats(-100, 100), min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_property_bounds_and_symmetry(self, x, y):
        d = ks_statistic(x, y)
        assert 0.0 <= d <= 1.0
        assert d == pytest.approx(ks_statistic(y, x))


class TestEquations:
    def test_threshold_equation_3(self):
        # D_{n,m} = sqrt(-ln(alpha/2)/2) * sqrt((n+m)/(n*m)), alpha = 0.05
        expected = math.sqrt(-math.log(0.025) * 0.5) * math.sqrt(200 / 10_000)
        assert ks_threshold(100, 100, confidence=0.95) == pytest.approx(expected)

    def test_threshold_shrinks_with_samples(self):
        assert ks_threshold(1000, 1000) < ks_threshold(10, 10)

    def test_p_value_equation_4(self):
        d, n, m = 0.3, 50, 60
        expected = 2 * math.exp(-2 * d * d * n * m / (n + m))
        assert ks_p_value(d, n, m) == pytest.approx(expected)

    def test_p_value_clamped_to_one(self):
        assert ks_p_value(0.0, 10, 10) == 1.0

    def test_invalid_confidence(self):
        with pytest.raises(DistributionTestError):
            ks_threshold(10, 10, confidence=1.0)

    def test_threshold_and_p_value_agree_at_boundary(self):
        """D == D_{n,m} implies p == 1 - confidence (the two decision rules
        in the paper coincide)."""
        n, m, confidence = 100, 120, 0.95
        d = ks_threshold(n, m, confidence)
        assert ks_p_value(d, n, m) == pytest.approx(1 - confidence)


class TestKsTest:
    def test_same_distribution_passes(self):
        rng = np.random.default_rng(7)
        result = ks_test(rng.normal(size=100), rng.normal(size=100))
        assert not result.rejected

    def test_shifted_distribution_fails(self):
        rng = np.random.default_rng(7)
        result = ks_test(rng.normal(size=100), rng.normal(3.0, size=100))
        assert result.rejected

    def test_result_fields(self):
        result = ks_test([1, 2, 3], [1, 2, 4])
        assert result.n == 3 and result.m == 3
        assert 0 <= result.p_value <= 1
        assert result.confidence == 0.95

    def test_false_positive_rate_near_alpha(self):
        """Under the null, rejections happen at roughly 1 - confidence."""
        rng = np.random.default_rng(42)
        rejections = sum(
            ks_test(rng.normal(size=50), rng.normal(size=50)).rejected
            for _ in range(300))
        assert rejections / 300 < 0.09  # asymptotic p-values run conservative


class TestWeightedKs:
    def test_equal_histograms(self):
        hist = {0: 5, 8: 3}
        assert ks_statistic_weighted(hist, hist) == 0.0

    def test_scaled_histograms_equal_distribution(self):
        assert ks_statistic_weighted({0: 1, 8: 1},
                                     {0: 100, 8: 100}) == 0.0

    def test_matches_expanded_plain_samples(self):
        hist_x = {0: 3, 8: 2, 16: 5}
        hist_y = {0: 1, 8: 7}
        expanded_x = [v for v, c in hist_x.items() for _ in range(c)]
        expanded_y = [v for v, c in hist_y.items() for _ in range(c)]
        assert ks_statistic_weighted(hist_x, hist_y) == pytest.approx(
            ks_statistic(expanded_x, expanded_y))

    def test_tuple_keys_sorted_lexicographically(self):
        hist_x = {("buf", 0): 2, ("buf", 8): 2}
        hist_y = {("buf", 0): 4}
        assert ks_statistic_weighted(hist_x, hist_y) == pytest.approx(0.5)

    def test_explicit_categorical_order(self):
        hist_x = {"t1": 1, "t2": 3}
        hist_y = {"t1": 3, "t2": 1}
        d = ks_statistic_weighted(hist_x, hist_y,
                                  order={"t1": 0, "t2": 1})
        assert d == pytest.approx(0.5)

    def test_sample_sizes_are_total_weights(self):
        result = ks_test_weighted({0: 30}, {0: 25, 1: 5})
        assert result.n == 30 and result.m == 30

    def test_sample_size_cap(self):
        result = ks_test_weighted({0: 10_000}, {1: 10_000},
                                  sample_size_cap=50)
        assert result.n == 50 and result.m == 50

    def test_empty_histograms_rejected(self):
        with pytest.raises(DistributionTestError):
            ks_test_weighted({}, {})
        with pytest.raises(DistributionTestError):
            ks_test_weighted({0: 0}, {1: 1})

    @given(hist_x=st.dictionaries(st.integers(0, 20), st.integers(1, 9),
                                  min_size=1, max_size=8),
           hist_y=st.dictionaries(st.integers(0, 20), st.integers(1, 9),
                                  min_size=1, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_property_weighted_equals_expanded(self, hist_x, hist_y):
        expanded_x = [v for v, c in hist_x.items() for _ in range(c)]
        expanded_y = [v for v, c in hist_y.items() for _ in range(c)]
        assert ks_statistic_weighted(hist_x, hist_y) == pytest.approx(
            ks_statistic(expanded_x, expanded_y))


class TestWelch:
    def test_same_mean_passes(self):
        rng = np.random.default_rng(3)
        result = welch_t_test(rng.normal(size=100), rng.normal(size=100))
        assert not result.rejected

    def test_shifted_mean_fails(self):
        rng = np.random.default_rng(3)
        result = welch_t_test(rng.normal(size=100),
                              rng.normal(2.0, size=100))
        assert result.rejected

    def test_zero_variance_equal_means(self):
        result = welch_t_test([5.0] * 10, [5.0] * 10)
        assert not result.rejected

    def test_zero_variance_different_means(self):
        result = welch_t_test([5.0] * 10, [6.0] * 10)
        assert result.rejected

    def test_needs_two_samples(self):
        with pytest.raises(DistributionTestError):
            welch_t_test([1.0], [1.0, 2.0])

    def test_statistic_matches_scipy(self):
        rng = np.random.default_rng(11)
        x = rng.normal(size=60)
        y = rng.normal(0.3, size=80)
        ours = welch_t_test(x, y)
        theirs = scipy.stats.ttest_ind(x, y, equal_var=False)
        assert ours.statistic == pytest.approx(abs(theirs.statistic))

    def test_welch_misses_equal_mean_different_shape(self):
        """The paper's motivation for KS: Welch's t only compares means, so
        a variance-only difference slips through while KS catches it."""
        rng = np.random.default_rng(5)
        x = rng.normal(0.0, 0.1, size=400)
        y = rng.normal(0.0, 3.0, size=400)
        assert not welch_t_test(x, y).rejected
        assert ks_test(x, y).rejected

    def test_weighted_welch_equal_histograms(self):
        hist = {0.0: 10, 1.0: 10}
        assert not welch_t_test_weighted(hist, hist).rejected

    def test_weighted_welch_shifted(self):
        assert welch_t_test_weighted({0.0: 50, 1.0: 50},
                                     {10.0: 50, 11.0: 50}).rejected
