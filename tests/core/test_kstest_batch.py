"""Vectorized KS batching must agree with the scalar reference tests."""

import math
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kstest import (
    DistributionTestError,
    ks_test,
    ks_test_batch,
    ks_test_weighted,
)

#: Tolerance from the acceptance criteria: batch agrees with scalar to 1e-12.
TOL = 1e-12


def assert_matches_scalar(request, result, confidence=0.95,
                          sample_size_cap=None):
    hist_x, hist_y = request[0], request[1]
    order = request[2] if len(request) == 3 else None
    try:
        want = ks_test_weighted(hist_x, hist_y, confidence=confidence,
                                order=order, sample_size_cap=sample_size_cap)
    except DistributionTestError:
        assert result is None
        return
    assert result is not None
    assert math.isclose(result.statistic, want.statistic,
                        rel_tol=TOL, abs_tol=TOL)
    assert math.isclose(result.p_value, want.p_value,
                        rel_tol=TOL, abs_tol=TOL)
    assert math.isclose(result.threshold, want.threshold,
                        rel_tol=TOL, abs_tol=TOL)
    assert result.n == want.n
    assert result.m == want.m
    assert result.rejected == want.rejected


histograms = st.dictionaries(st.integers(min_value=-50, max_value=50),
                             st.integers(min_value=0, max_value=40),
                             max_size=12)


class TestBatchAgainstScalar:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(histograms, histograms),
                    min_size=1, max_size=8))
    def test_property_randomized_histograms(self, requests):
        results = ks_test_batch(requests)
        assert len(results) == len(requests)
        for request, result in zip(requests, results):
            assert_matches_scalar(request, result)

    @settings(max_examples=30, deadline=None)
    @given(st.tuples(histograms, histograms),
           st.integers(min_value=1, max_value=50))
    def test_property_sample_size_cap(self, request, cap):
        [result] = ks_test_batch([request], sample_size_cap=cap)
        assert_matches_scalar(request, result, sample_size_cap=cap)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=-5, max_value=5, allow_nan=False),
                    min_size=1, max_size=30),
           st.lists(st.floats(min_value=-5, max_value=5, allow_nan=False),
                    min_size=1, max_size=30))
    def test_plain_samples_recast_as_histograms(self, x, y):
        """The batched analyzer feeds plain samples as value-count
        histograms; that recast preserves the full plain-sample test."""
        [result] = ks_test_batch([(Counter(x), Counter(y))])
        want = ks_test(x, y)
        assert math.isclose(result.statistic, want.statistic,
                            rel_tol=TOL, abs_tol=TOL)
        assert math.isclose(result.p_value, want.p_value,
                            rel_tol=TOL, abs_tol=TOL)
        assert (result.n, result.m) == (want.n, want.m)


class TestBatchEdges:
    def test_empty_batch(self):
        assert ks_test_batch([]) == []

    def test_degenerate_requests_are_none_not_fatal(self):
        requests = [
            ({}, {}),                      # empty support
            ({1: 0}, {2: 0}),              # zero weight both sides
            ({1: 5}, {1: 0}),              # one side empty
            ({1: 5, 2: 3}, {1: 2, 2: 6}),  # healthy
        ]
        results = ks_test_batch(requests)
        assert results[0] is None
        assert results[1] is None
        assert results[2] is None
        assert results[3] is not None
        assert_matches_scalar(requests[3], results[3])

    def test_explicit_order_mapping(self):
        order = {"taken": 0, "fallthrough": 1, "exit": 2}
        request = ({"taken": 8, "exit": 2}, {"fallthrough": 6, "exit": 4},
                   order)
        [result] = ks_test_batch([request])
        assert_matches_scalar(request, result)

    def test_mixed_support_sizes_pad_safely(self):
        wide = ({i: 1 for i in range(30)}, {i: 2 for i in range(30)})
        narrow = ({0: 10}, {1: 10})
        for request, result in zip([wide, narrow],
                                   ks_test_batch([wide, narrow])):
            assert_matches_scalar(request, result)

    def test_confidence_levels(self):
        request = ({1: 20, 2: 5}, {1: 5, 2: 20})
        for confidence in (0.9, 0.95, 0.999):
            [result] = ks_test_batch([request], confidence=confidence)
            assert_matches_scalar(request, result, confidence=confidence)

    def test_invalid_confidence_raises(self):
        with pytest.raises(DistributionTestError):
            ks_test_batch([({1: 1}, {1: 1})], confidence=1.0)
