"""Leakage-report persistence: dict/JSON round-trips."""

import json

import pytest

from repro.core.report import Leak, LeakType, LeakageReport


def sample_report():
    report = LeakageReport(program_name="aes", num_fixed_runs=100,
                           num_random_runs=100, confidence=0.95)
    report.add(Leak(leak_type=LeakType.DEVICE_DATA_FLOW,
                    kernel_identity="aes@abcd", kernel_name="aes_kernel",
                    block="round", instr=7, p_value=1e-12, statistic=0.43,
                    bits=0.81, detail="address histogram deviates"))
    report.add(Leak(leak_type=LeakType.KERNEL,
                    kernel_identity="copy@0f0f", kernel_name="copy_kernel",
                    p_value=0.0, statistic=1.0,
                    detail="invocation only under random inputs"))
    report.add(Leak(leak_type=LeakType.DEVICE_CONTROL_FLOW,
                    kernel_identity="rsa@9999", kernel_name="rsa_kernel",
                    block="square", p_value=0.004, statistic=0.11))
    return report


class TestRoundTrip:
    def test_dict_roundtrip(self):
        report = sample_report()
        restored = LeakageReport.from_dict(report.to_dict())
        assert restored.program_name == report.program_name
        assert restored.counts() == report.counts()
        assert [l.location for l in restored.leaks] == [
            l.location for l in report.leaks]
        assert [l.leak_type for l in restored.leaks] == [
            l.leak_type for l in report.leaks]

    def test_json_roundtrip(self):
        report = sample_report()
        restored = LeakageReport.from_json(report.to_json())
        assert restored.to_dict() == report.to_dict()

    def test_json_is_valid_and_stable(self):
        text = sample_report().to_json()
        payload = json.loads(text)
        assert payload["program_name"] == "aes"
        assert len(payload["leaks"]) == 3
        # sorted keys => byte-stable output for diffing in CI
        assert text == sample_report().to_json()

    def test_bits_field_survives(self):
        restored = LeakageReport.from_json(sample_report().to_json())
        assert restored.leaks[0].bits == pytest.approx(0.81)

    def test_missing_bits_defaults_to_zero(self):
        payload = sample_report().to_dict()
        for entry in payload["leaks"]:
            entry.pop("bits")
        restored = LeakageReport.from_dict(payload)
        assert all(leak.bits == 0.0 for leak in restored.leaks)

    def test_empty_report_roundtrip(self):
        report = LeakageReport(program_name="clean")
        assert LeakageReport.from_json(report.to_json()).counts() == {
            "kernel": 0, "control_flow": 0, "data_flow": 0}
