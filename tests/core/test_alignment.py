"""Myers diff: correctness, optimality, and properties against difflib."""

import difflib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alignment import (
    NUMPY_THRESHOLD,
    EditOp,
    _forward_numpy,
    _forward_scalar,
    align_pairs,
    edit_distance,
    myers_diff,
)


def apply_script(a, b, script):
    """Replay an edit script; the result must equal b."""
    out = []
    for step in script:
        if step.op is EditOp.EQUAL:
            assert a[step.a_index] == b[step.b_index]
            out.append(a[step.a_index])
        elif step.op is EditOp.INSERT:
            out.append(b[step.b_index])
        # deletes contribute nothing
    return out


class TestBasicCases:
    def test_empty_vs_empty(self):
        assert myers_diff([], []) == []

    def test_empty_vs_nonempty(self):
        script = myers_diff([], list("abc"))
        assert [s.op for s in script] == [EditOp.INSERT] * 3

    def test_nonempty_vs_empty(self):
        script = myers_diff(list("abc"), [])
        assert [s.op for s in script] == [EditOp.DELETE] * 3

    def test_identical(self):
        script = myers_diff(list("abc"), list("abc"))
        assert [s.op for s in script] == [EditOp.EQUAL] * 3

    def test_classic_example(self):
        # Myers' paper example: ABCABBA -> CBABAC, distance 5
        assert edit_distance(list("ABCABBA"), list("CBABAC")) == 5

    def test_single_substitution_costs_two(self):
        assert edit_distance(list("abc"), list("axc")) == 2

    def test_prefix_insert(self):
        script = myers_diff(list("bc"), list("abc"))
        assert [s.op for s in script] == [
            EditOp.INSERT, EditOp.EQUAL, EditOp.EQUAL]

    def test_suffix_delete(self):
        script = myers_diff(list("abc"), list("ab"))
        assert [s.op for s in script][-1] is EditOp.DELETE

    def test_works_on_arbitrary_hashables(self):
        a = [("k1", 0), ("k2", 1)]
        b = [("k1", 0), ("k3", 2), ("k2", 1)]
        assert edit_distance(a, b) == 1


class TestScriptValidity:
    def test_script_replays_to_target(self):
        a, b = list("kernel_a kernel_b kernel_c"), list("kernel_a kernel_x")
        assert apply_script(a, b, myers_diff(a, b)) == b

    def test_indices_are_monotonic(self):
        a, b = list("abcabba"), list("cbabac")
        script = myers_diff(a, b)
        a_indices = [s.a_index for s in script if s.a_index >= 0]
        b_indices = [s.b_index for s in script if s.b_index >= 0]
        assert a_indices == sorted(a_indices)
        assert b_indices == sorted(b_indices)
        assert a_indices == list(range(len(a)))
        assert b_indices == list(range(len(b)))

    def test_align_pairs_are_equal_elements(self):
        a, b = list("xaybzc"), list("aqbc")
        for i, j in align_pairs(a, b):
            assert a[i] == b[j]


class TestOptimality:
    def cases(self):
        return [
            ("", ""), ("a", ""), ("", "a"), ("a", "a"), ("a", "b"),
            ("ab", "ba"), ("abcabba", "cbabac"), ("xxx", "xxxx"),
            ("kitten", "sitting"), ("same", "same"),
        ]

    def test_distance_matches_dp_reference(self):
        for a, b in self.cases():
            assert edit_distance(list(a), list(b)) == _dp_distance(a, b), \
                (a, b)


def _dp_distance(a, b):
    """O(nm) insert/delete (LCS-style) edit distance reference."""
    n, m = len(a), len(b)
    dp = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n + 1):
        dp[i][0] = i
    for j in range(m + 1):
        dp[0][j] = j
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            if a[i - 1] == b[j - 1]:
                dp[i][j] = dp[i - 1][j - 1]
            else:
                dp[i][j] = 1 + min(dp[i - 1][j], dp[i][j - 1])
    return dp[n][m]


@given(a=st.lists(st.integers(0, 4), max_size=16),
       b=st.lists(st.integers(0, 4), max_size=16))
@settings(max_examples=200, deadline=None)
def test_property_script_replays_and_is_optimal(a, b):
    script = myers_diff(a, b)
    assert apply_script(a, b, script) == b
    assert sum(1 for s in script if s.op is not EditOp.EQUAL) \
        == _dp_distance(a, b)


@given(a=st.lists(st.integers(0, 3), max_size=12))
@settings(max_examples=50, deadline=None)
def test_property_self_diff_is_all_equal(a):
    assert all(s.op is EditOp.EQUAL for s in myers_diff(a, a))


@given(a=st.lists(st.integers(0, 4), max_size=12),
       b=st.lists(st.integers(0, 4), max_size=12))
@settings(max_examples=100, deadline=None)
def test_property_distance_symmetric(a, b):
    assert edit_distance(a, b) == edit_distance(b, a)


class TestVectorizedForwardPass:
    """The NumPy forward sweep (n + m >= NUMPY_THRESHOLD) must be an
    exact drop-in for the scalar loop, and identical inputs must take
    the O(N) fast path regardless of length."""

    def test_long_identical_sequences_short_circuit(self):
        a = list(range(NUMPY_THRESHOLD * 2))
        script = myers_diff(a, list(a))
        assert [s.op for s in script] == [EditOp.EQUAL] * len(a)
        assert align_pairs(a, list(a)) == [(i, i) for i in range(len(a))]

    def test_long_inputs_replay_and_are_optimal(self):
        a = [i % 7 for i in range(90)]
        b = [i % 5 for i in range(75)]
        assert len(a) + len(b) >= NUMPY_THRESHOLD
        script = myers_diff(a, b)
        assert apply_script(a, b, script) == b
        assert sum(1 for s in script if s.op is not EditOp.EQUAL) \
            == _dp_distance(a, b)

    def test_forward_passes_agree_exactly(self):
        a = [i % 6 for i in range(70)]
        b = [(i * 3) % 6 for i in range(55)]
        n, m = len(a), len(b)
        d_scalar, snap_scalar = _forward_scalar(a, b, n, m, n + m)
        d_numpy, snap_numpy = _forward_numpy(a, b, n, m, n + m)
        assert d_numpy == d_scalar
        # identical snapshots mean the trace-back sees identical state
        assert [list(map(int, s)) for s in snap_numpy] == snap_scalar

    @given(a=st.lists(st.integers(0, 4), min_size=30, max_size=50),
           b=st.lists(st.integers(0, 4), min_size=34, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_property_numpy_path_replays_and_is_optimal(self, a, b):
        assert len(a) + len(b) >= NUMPY_THRESHOLD
        script = myers_diff(a, b)
        assert apply_script(a, b, script) == b
        assert sum(1 for s in script if s.op is not EditOp.EQUAL) \
            == _dp_distance(a, b)

    @given(a=st.lists(st.integers(0, 3), min_size=0, max_size=24),
           b=st.lists(st.integers(0, 3), min_size=0, max_size=24))
    @settings(max_examples=60, deadline=None)
    def test_property_forward_passes_agree(self, a, b):
        n, m = len(a), len(b)
        if n == 0 and m == 0:
            return
        d_scalar, snap_scalar = _forward_scalar(a, b, n, m, n + m)
        d_numpy, snap_numpy = _forward_numpy(a, b, n, m, n + m)
        assert d_numpy == d_scalar
        assert [list(map(int, s)) for s in snap_numpy] == snap_scalar


@given(a=st.text(alphabet="abc", max_size=20),
       b=st.text(alphabet="abc", max_size=20))
@settings(max_examples=100, deadline=None)
def test_property_equal_blocks_at_least_difflib(a, b):
    """Myers finds a maximal alignment: its EQUAL count is never below
    difflib's (difflib's autojunk-free matcher is also LCS-based)."""
    matcher = difflib.SequenceMatcher(a=a, b=b, autojunk=False)
    difflib_equal = sum(size for _i, _j, size in matcher.get_matching_blocks())
    ours = sum(1 for s in myers_diff(list(a), list(b))
               if s.op is EditOp.EQUAL)
    assert ours >= difflib_equal
