"""Tensor serialization and __repr__: behaviour and leak triggers."""

import numpy as np
import pytest

from repro.apps.minitorch.serialize import (
    deserialize_tensor,
    serialize_program,
    serialize_random_input,
    serialize_tensor,
)
from repro.apps.minitorch.tensor import (
    SCI_THRESHOLD,
    Tensor,
    repr_random_input,
    tensor,
    tensor_repr_program,
    tensor_summary,
)
from repro.gpusim import Device
from repro.gpusim.events import KernelBeginEvent
from repro.host import CudaRuntime


def runtime():
    return CudaRuntime(Device())


def launched_kernels(program, *args):
    device = Device()
    names = []
    device.subscribe(lambda e: names.append(e.kernel_name)
                     if isinstance(e, KernelBeginEvent) else None)
    program(CudaRuntime(device), *args)
    return names


class TestSerialization:
    def test_roundtrip_dense(self):
        data = np.linspace(-1, 1, 32)
        blob = serialize_tensor(runtime(), data)
        assert np.allclose(deserialize_tensor(blob), data)

    def test_roundtrip_sparse(self):
        blob = serialize_tensor(runtime(), np.zeros(32))
        restored = deserialize_tensor(blob)
        assert restored.shape == (32,)
        assert not restored.any()

    def test_sparse_payload_is_smaller(self):
        dense = serialize_tensor(runtime(), np.ones(64))
        sparse = serialize_tensor(runtime(), np.zeros(64))
        assert len(sparse) < len(dense)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            deserialize_tensor(b"XXXX" + b"\x00" * 16)

    def test_dense_tensor_launches_staging_copy(self):
        names = launched_kernels(serialize_program, np.ones(64))
        assert "copy_kernel" in names

    def test_zero_tensor_skips_staging_copy(self):
        """The paper's kernel leak: zero tensors launch fewer kernels."""
        names = launched_kernels(serialize_program, np.zeros(64))
        assert "copy_kernel" not in names

    def test_random_inputs_cover_both_paths(self, rng):
        kinds = {serialize_random_input(rng).any() for _ in range(50)}
        assert kinds == {True, False}


class TestTensorRepr:
    def test_unbound_tensor_repr_is_host_only(self):
        text = repr(Tensor(np.zeros((2, 2))))
        assert "shape=(2, 2)" in text

    def test_bound_tensor_repr_reports_summary(self):
        rt = runtime()
        text = repr(tensor(np.ones(64), rt=rt))
        assert "abs_sum=64" in text

    def test_summary_matches_abs_sum(self):
        data = np.linspace(-2, 2, 64)
        assert tensor_summary(runtime(), data) == pytest.approx(
            np.abs(data).sum())

    def test_small_tensor_one_kernel(self):
        names = launched_kernels(tensor_repr_program, np.linspace(-1, 1, 64))
        assert names == ["summary_kernel"]

    def test_large_magnitude_triggers_scale_kernel(self):
        data = np.linspace(-1, 1, 64) * (SCI_THRESHOLD * 10)
        names = launched_kernels(tensor_repr_program, data)
        assert names == ["summary_kernel", "scale_stats_kernel"]

    def test_fixed_thread_count_regardless_of_size(self):
        """Fig. 5 pattern ①: __repr__ uses 32 threads for any input size."""
        device = Device()
        threads = []
        device.subscribe(lambda e: threads.append(e.total_threads)
                         if isinstance(e, KernelBeginEvent) else None)
        rt = CudaRuntime(device)
        tensor_repr_program(rt, np.ones(64))
        tensor_repr_program(rt, np.ones(4096))
        assert set(threads) == {32}

    def test_repr_random_input_sometimes_large(self, rng):
        magnitudes = [np.abs(repr_random_input(rng)).max()
                      for _ in range(50)]
        assert any(m > SCI_THRESHOLD for m in magnitudes)
        assert any(m < SCI_THRESHOLD for m in magnitudes)
