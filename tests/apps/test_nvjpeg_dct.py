"""DCT/IDCT, colour conversion, and quantisation correctness."""

import numpy as np
import pytest
import scipy.fft
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.apps.nvjpeg.color import (
    rgb_to_ycbcr_kernel,
    rgb_to_ycbcr_reference,
    ycbcr_to_rgb_kernel,
    ycbcr_to_rgb_reference,
)
from repro.apps.nvjpeg.dct import (
    BLOCK_PIXELS,
    DCT_MATRIX,
    dct2_reference,
    dct8x8_kernel,
    idct2_reference,
    idct8x8_kernel,
)
from repro.apps.nvjpeg.quant import (
    LUMA_QUANT_TABLE,
    dequantize_kernel,
    dequantize_reference,
    quantize_kernel,
    quantize_reference,
)
from repro.gpusim import Device
from repro.host import CudaRuntime

blocks_8x8 = hnp.arrays(np.float64, (8, 8),
                        elements=st.floats(-128, 127, width=64))


class TestDctReference:
    def test_matrix_is_orthonormal(self):
        assert np.allclose(DCT_MATRIX @ DCT_MATRIX.T, np.eye(8), atol=1e-12)

    def test_dc_coefficient_is_scaled_mean(self):
        block = np.full((8, 8), 10.0)
        coeffs = dct2_reference(block)
        assert coeffs[0, 0] == pytest.approx(80.0)  # 8 * mean
        assert np.allclose(coeffs.reshape(-1)[1:], 0.0, atol=1e-12)

    def test_matches_scipy_orthonormal_dct(self):
        rng = np.random.default_rng(0)
        block = rng.standard_normal((8, 8))
        expected = scipy.fft.dctn(block, norm="ortho")
        assert np.allclose(dct2_reference(block), expected)

    def test_idct_matches_scipy(self):
        rng = np.random.default_rng(1)
        coeffs = rng.standard_normal((8, 8))
        expected = scipy.fft.idctn(coeffs, norm="ortho")
        assert np.allclose(idct2_reference(coeffs), expected)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            dct2_reference(np.zeros((4, 4)))

    @given(block=blocks_8x8)
    @settings(max_examples=40, deadline=None)
    def test_property_roundtrip(self, block):
        assert np.allclose(idct2_reference(dct2_reference(block)), block,
                           atol=1e-9)

    @given(block=blocks_8x8)
    @settings(max_examples=40, deadline=None)
    def test_property_energy_preserved(self, block):
        """Orthonormal transforms are isometries (Parseval)."""
        coeffs = dct2_reference(block)
        assert np.sum(coeffs ** 2) == pytest.approx(np.sum(block ** 2),
                                                    rel=1e-9, abs=1e-9)


class TestDctKernels:
    def run_dct(self, plane, blocks_x):
        rt = CudaRuntime(Device())
        num_blocks = plane.size // BLOCK_PIXELS
        src = rt.cudaMalloc(plane.size, dtype=np.float64, label="plane")
        rt.cudaMemcpyHtoD(src, plane.reshape(-1))
        dst = rt.cudaMalloc(plane.size, dtype=np.float64, label="coeffs")
        rt.cuLaunchKernel(dct8x8_kernel, 1, 32, src, dst, blocks_x,
                          num_blocks)
        return rt.cudaMemcpyDtoH(dst)

    def test_kernel_matches_reference_multi_block(self):
        rng = np.random.default_rng(3)
        plane = rng.standard_normal((16, 16))
        out = self.run_dct(plane, blocks_x=2)
        for b in range(4):
            by, bx = divmod(b, 2)
            tile = plane[8 * by:8 * by + 8, 8 * bx:8 * bx + 8]
            got = out[b * 64:(b + 1) * 64].reshape(8, 8)
            assert np.allclose(got, dct2_reference(tile))

    def test_idct_kernel_inverts_dct_kernel(self):
        rng = np.random.default_rng(4)
        plane = rng.standard_normal((8, 16))
        rt = CudaRuntime(Device())
        src = rt.cudaMalloc(plane.size, dtype=np.float64, label="plane")
        rt.cudaMemcpyHtoD(src, plane.reshape(-1))
        coeffs = rt.cudaMalloc(plane.size, dtype=np.float64, label="coeffs")
        rt.cuLaunchKernel(dct8x8_kernel, 1, 32, src, coeffs, 2, 2)
        back = rt.cudaMalloc(plane.size, dtype=np.float64, label="back")
        rt.cuLaunchKernel(idct8x8_kernel, 1, 32, coeffs, back, 2, 2)
        assert np.allclose(rt.cudaMemcpyDtoH(back).reshape(8, 16), plane,
                           atol=1e-9)


class TestColor:
    def test_gray_pixel_neutral_chroma(self):
        rgb = np.full((1, 1, 3), 100.0)
        ycbcr = rgb_to_ycbcr_reference(rgb)
        assert ycbcr[0, 0, 0] == pytest.approx(100.0)
        assert ycbcr[0, 0, 1] == pytest.approx(128.0)
        assert ycbcr[0, 0, 2] == pytest.approx(128.0)

    @given(rgb=hnp.arrays(np.float64, (2, 2, 3),
                          elements=st.floats(0, 255, width=64)))
    @settings(max_examples=40, deadline=None)
    def test_property_color_roundtrip(self, rgb):
        back = ycbcr_to_rgb_reference(rgb_to_ycbcr_reference(rgb))
        # the standard BT.601 constants are rounded to 6 decimals, so the
        # inverse is exact only to ~1e-4 over the 0..255 range
        assert np.allclose(back, rgb, atol=1e-3)

    def test_kernels_match_references(self):
        rng = np.random.default_rng(5)
        rgb = rng.uniform(0, 255, size=(4, 8, 3))
        rt = CudaRuntime(Device())
        src = rt.cudaMalloc(rgb.size, dtype=np.float64, label="rgb")
        rt.cudaMemcpyHtoD(src, rgb.reshape(-1))
        mid = rt.cudaMalloc(rgb.size, dtype=np.float64, label="ycbcr")
        rt.cuLaunchKernel(rgb_to_ycbcr_kernel, 1, 32, src, mid, 32)
        assert np.allclose(rt.cudaMemcpyDtoH(mid).reshape(rgb.shape),
                           rgb_to_ycbcr_reference(rgb))
        back = rt.cudaMalloc(rgb.size, dtype=np.float64, label="back")
        rt.cuLaunchKernel(ycbcr_to_rgb_kernel, 1, 32, mid, back, 32)
        assert np.allclose(rt.cudaMemcpyDtoH(back).reshape(rgb.shape), rgb,
                           atol=1e-3)


class TestQuantisation:
    def test_reference_rounding(self):
        coeffs = LUMA_QUANT_TABLE.reshape(8, 8) * 2.4
        quantized = quantize_reference(coeffs)
        assert (quantized == 2).all()

    def test_dequantize_inverts_scaling(self):
        quantized = np.arange(64).reshape(8, 8)
        restored = dequantize_reference(quantized)
        assert np.allclose(restored,
                           quantized * LUMA_QUANT_TABLE.reshape(8, 8))

    def test_quant_table_is_annex_k(self):
        assert LUMA_QUANT_TABLE[0] == 16
        assert LUMA_QUANT_TABLE[63] == 99
        assert LUMA_QUANT_TABLE.min() == 10

    def test_kernels_match_references(self):
        rng = np.random.default_rng(6)
        coeffs = rng.uniform(-500, 500, size=128)  # two blocks
        rt = CudaRuntime(Device())
        src = rt.cudaMalloc(128, dtype=np.float64, label="coeffs")
        rt.cudaMemcpyHtoD(src, coeffs)
        table = rt.constMalloc(64, dtype=np.float64, label="qtable")
        rt.cudaMemcpyHtoD(table, LUMA_QUANT_TABLE)
        out = rt.cudaMalloc(128, dtype=np.float64, label="q")
        rt.cuLaunchKernel(quantize_kernel, 4, 32, src, table, out, 128)
        got = rt.cudaMemcpyDtoH(out)
        for b in range(2):
            expected = quantize_reference(coeffs[b * 64:(b + 1) * 64])
            assert np.allclose(got[b * 64:(b + 1) * 64].reshape(8, 8),
                               expected)
        restored = rt.cudaMalloc(128, dtype=np.float64, label="dq")
        rt.cuLaunchKernel(dequantize_kernel, 4, 32, out, table, restored, 128)
        assert np.allclose(
            rt.cudaMemcpyDtoH(restored)[:64].reshape(8, 8),
            dequantize_reference(got[:64].reshape(8, 8)))
