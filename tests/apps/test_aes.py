"""AES-128 correctness: FIPS-197 vectors, key schedule, kernels, tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.libgpucrypto.aes import (
    NUM_BLOCKS,
    aes128_encrypt_block_reference,
    aes128_encrypt_blocks,
    aes_program,
    aes_program_ct,
    expand_key,
    fixed_plaintext,
    random_key,
)
from repro.apps.libgpucrypto.tables import (
    RCON,
    SBOX,
    SBOX_ARRAY,
    T_TABLES,
    gf_mul,
    xtime,
)
from repro.gpusim import Device
from repro.host import CudaRuntime

FIPS_KEY = bytes(range(16))
FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_CIPHERTEXT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")

# FIPS-197 Appendix A.1 key-expansion vector (key 2b7e1516...)
APPENDIX_A_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


class TestGaloisField:
    def test_xtime_known_values(self):
        assert xtime(0x57) == 0xAE
        assert xtime(0xAE) == 0x47  # wraps through the polynomial

    def test_gf_mul_known_values(self):
        # FIPS-197 §4.2.1: 0x57 * 0x13 = 0xFE
        assert gf_mul(0x57, 0x13) == 0xFE

    def test_gf_mul_identity_and_zero(self):
        for value in (0x00, 0x01, 0x53, 0xFF):
            assert gf_mul(value, 1) == value
            assert gf_mul(value, 0) == 0

    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    @settings(max_examples=100, deadline=None)
    def test_property_gf_mul_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)


class TestTables:
    def test_sbox_is_a_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_sbox_known_entries(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x53] == 0xED

    def test_t_tables_encode_mixcolumns_of_sbox(self):
        for x in (0, 1, 0x7F, 0xFF):
            s = SBOX[x]
            expected = ((gf_mul(s, 2) << 24) | (s << 16) | (s << 8)
                        | gf_mul(s, 3))
            assert int(T_TABLES[0][x]) == expected

    def test_t_tables_are_rotations(self):
        def rotr(v, bits):
            return ((v >> bits) | (v << (32 - bits))) & 0xFFFFFFFF

        for x in (0, 5, 200):
            t0 = int(T_TABLES[0][x])
            assert int(T_TABLES[1][x]) == rotr(t0, 8)
            assert int(T_TABLES[2][x]) == rotr(t0, 16)
            assert int(T_TABLES[3][x]) == rotr(t0, 24)

    def test_rcon_values(self):
        assert RCON == [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80,
                        0x1B, 0x36]


class TestKeyExpansion:
    def test_produces_44_words(self):
        assert expand_key(FIPS_KEY).shape == (44,)

    def test_first_words_are_the_key(self):
        words = expand_key(APPENDIX_A_KEY)
        assert int(words[0]) == 0x2B7E1516
        assert int(words[3]) == 0x09CF4F3C

    def test_appendix_a_vector(self):
        words = expand_key(APPENDIX_A_KEY)
        assert int(words[4]) == 0xA0FAFE17   # w4, FIPS-197 Appendix A.1
        assert int(words[43]) == 0xB6630CA6  # w43

    def test_wrong_key_length_rejected(self):
        with pytest.raises(ValueError):
            expand_key(b"short")


class TestReferenceEncryption:
    def test_fips_197_vector(self):
        assert aes128_encrypt_block_reference(
            FIPS_KEY, FIPS_PLAINTEXT) == FIPS_CIPHERTEXT

    def test_appendix_b_vector(self):
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert aes128_encrypt_block_reference(
            APPENDIX_A_KEY, plaintext) == expected

    def test_wrong_block_length_rejected(self):
        with pytest.raises(ValueError):
            aes128_encrypt_block_reference(FIPS_KEY, b"short")

    def test_multi_block_ecb(self):
        data = FIPS_PLAINTEXT * 3
        out = aes128_encrypt_blocks(FIPS_KEY, data)
        assert out == FIPS_CIPHERTEXT * 3

    def test_multi_block_requires_alignment(self):
        with pytest.raises(ValueError):
            aes128_encrypt_blocks(FIPS_KEY, b"x" * 17)


class TestKernels:
    def test_ttable_kernel_matches_reference(self):
        rt = CudaRuntime(Device())
        out = aes_program(rt, FIPS_KEY)
        assert out == aes128_encrypt_blocks(FIPS_KEY, fixed_plaintext())

    def test_ct_kernel_matches_reference(self):
        rt = CudaRuntime(Device())
        out = aes_program_ct(rt, FIPS_KEY)
        assert out == aes128_encrypt_blocks(FIPS_KEY, fixed_plaintext())

    def test_kernels_agree_for_random_keys(self, rng):
        for _ in range(3):
            key = random_key(rng)
            leaky = aes_program(CudaRuntime(Device()), key)
            patched = aes_program_ct(CudaRuntime(Device()), key)
            assert leaky == patched

    def test_fixed_plaintext_shape(self):
        assert len(fixed_plaintext()) == 16 * NUM_BLOCKS

    def test_random_key_length(self, rng):
        assert len(random_key(rng)) == 16

    def test_ttable_kernel_touches_tables(self):
        """The leaky kernel must actually issue T-table device loads."""
        device = Device()
        table_loads = []

        def listen(event):
            addresses = getattr(event, "addresses", None)
            if addresses:
                table_loads.extend(addresses)

        device.subscribe(listen)
        aes_program(CudaRuntime(device), FIPS_KEY)
        assert len(table_loads) > 1000  # 10 rounds x 16 lookups x warps
