"""Entropy-coding reference: zigzag, symbols, stream format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.nvjpeg.huffman import (
    EOB,
    MAX_SYMBOLS,
    ZIGZAG_LINEAR,
    ZIGZAG_POSITIONS,
    bitstream_length_bits,
    code_length_bits,
    decode_block_symbols,
    encode_block_symbols,
    magnitude_size,
)
from repro.apps.nvjpeg.encoder import pack_stream, unpack_stream


class TestZigzag:
    def test_is_a_permutation_of_the_block(self):
        assert sorted(ZIGZAG_LINEAR) == list(range(64))

    def test_standard_prefix(self):
        # the canonical JPEG zigzag starts (0,0),(0,1),(1,0),(2,0),(1,1),(0,2)
        assert ZIGZAG_POSITIONS[:6] == [
            (0, 0), (0, 1), (1, 0), (2, 0), (1, 1), (0, 2)]

    def test_standard_suffix(self):
        assert ZIGZAG_POSITIONS[-1] == (7, 7)
        assert ZIGZAG_POSITIONS[-2] == (7, 6)


class TestMagnitudeSize:
    @pytest.mark.parametrize("value,size", [
        (0, 0), (1, 1), (-1, 1), (2, 2), (3, 2), (-3, 2), (4, 3),
        (255, 8), (256, 9), (-1024, 11)])
    def test_known_categories(self, value, size):
        assert magnitude_size(value) == size

    @given(value=st.integers(-10_000, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_property_size_bounds_value(self, value):
        size = magnitude_size(value)
        if value == 0:
            assert size == 0
        else:
            assert 2 ** (size - 1) <= abs(value) < 2 ** size


class TestCodeLengths:
    def test_short_codes_for_frequent_symbols(self):
        assert code_length_bits(0, 1) < code_length_bits(8, 4)

    def test_invalid_symbol_rejected(self):
        with pytest.raises(ValueError):
            code_length_bits(63, 0)
        with pytest.raises(ValueError):
            code_length_bits(0, 17)

    def test_bitstream_length_sums_code_and_amplitude_bits(self):
        symbols = [(0, 2, 3), (1, 1, -1)]
        expected = (code_length_bits(0, 2) + 2) + (code_length_bits(1, 1) + 1)
        assert bitstream_length_bits(symbols) == expected


class TestBlockSymbols:
    def test_all_zero_block(self):
        symbols = encode_block_symbols(np.zeros(64, dtype=np.int64))
        assert symbols == [(0, 0, 0), EOB]

    def test_dc_only_block(self):
        block = np.zeros(64, dtype=np.int64)
        block[0] = -5
        symbols = encode_block_symbols(block)
        assert symbols[0] == (0, 3, -5)
        assert symbols[-1] == EOB

    def test_runs_counted_in_zigzag_order(self):
        block = np.zeros(64, dtype=np.int64)
        block[0] = 1
        block[ZIGZAG_LINEAR[4]] = 7  # 3 zeros precede it in scan order
        symbols = encode_block_symbols(block)
        assert symbols[1] == (3, 3, 7)

    def test_trailing_nonzero_omits_eob(self):
        block = np.zeros(64, dtype=np.int64)
        block[ZIGZAG_LINEAR[63]] = 2
        symbols = encode_block_symbols(block)
        assert symbols[-1] == (62, 2, 2)

    def test_symbol_count_bounded(self):
        dense = np.arange(1, 65, dtype=np.int64)
        assert len(encode_block_symbols(dense)) <= MAX_SYMBOLS

    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            encode_block_symbols(np.zeros(32, dtype=np.int64))

    @given(block=st.lists(st.integers(-300, 300), min_size=64, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_property_roundtrip(self, block):
        block = np.array(block, dtype=np.int64)
        symbols = encode_block_symbols(block)
        assert (decode_block_symbols(symbols) == block).all()

    @given(block=st.lists(st.integers(-5, 5), min_size=64, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_property_sparser_blocks_code_shorter(self, block):
        block = np.array(block, dtype=np.int64)
        sparse = block.copy()
        sparse[32:] = 0
        length_full = bitstream_length_bits(encode_block_symbols(block))
        length_sparse = bitstream_length_bits(encode_block_symbols(sparse))
        assert length_sparse <= length_full


class TestStreamFormat:
    def test_pack_unpack_roundtrip(self):
        blocks = [[(0, 2, 3), (1, 1, -1), EOB], [(0, 0, 0), EOB]]
        blob = pack_stream(16, 8, blocks)
        height, width, restored = unpack_stream(blob)
        assert (height, width) == (16, 8)
        assert restored == blocks

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            unpack_stream(b"JUNK" + b"\x00" * 12)

    def test_negative_amplitudes_survive(self):
        blob = pack_stream(8, 8, [[(0, 11, -1024)]])
        _h, _w, blocks = unpack_stream(blob)
        assert blocks[0][0] == (0, 11, -1024)
