"""The dummy scalability workload (Fig. 5's pattern ②)."""

import numpy as np
import pytest

from repro.apps.dummy import (
    OUT_SIZE,
    SEED_SIZE,
    TABLE_SIZE,
    dummy_program,
    fixed_input,
    random_input,
)
from repro.gpusim import Device
from repro.host import CudaRuntime
from repro.tracing import TraceRecorder


def runtime():
    return CudaRuntime(Device())


class TestDummyProgram:
    def test_histogram_counts_all_threads(self):
        secret = np.arange(64) % TABLE_SIZE
        out = dummy_program(runtime(), secret)
        assert out.shape == (OUT_SIZE,)
        assert out.sum() == 64  # one atomic increment per thread

    def test_output_depends_on_seed(self):
        first = dummy_program(runtime(), np.full(64, 1))
        second = dummy_program(runtime(), np.full(64, 2))
        assert (first != second).any()

    def test_thread_count_follows_input_size(self):
        device = Device()
        rt = CudaRuntime(device)
        from repro.gpusim.events import KernelBeginEvent
        threads = []
        device.subscribe(lambda e: threads.append(e.total_threads)
                         if isinstance(e, KernelBeginEvent) else None)
        dummy_program(rt, fixed_input(100))
        dummy_program(rt, fixed_input(1000))
        assert threads[0] < threads[1]

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            dummy_program(runtime(), np.array([]))

    def test_inputs_wrap_modulo_table(self):
        wrapped = dummy_program(runtime(), np.array([TABLE_SIZE + 3]))
        plain = dummy_program(runtime(), np.array([3]))
        assert (wrapped == plain).all()

    def test_seed_truncated_to_fixed_size(self):
        long_input = np.arange(SEED_SIZE * 4) % TABLE_SIZE
        out = dummy_program(runtime(), long_input)
        assert out.sum() == long_input.size

    def test_fixed_input_deterministic(self):
        assert (fixed_input(16) == fixed_input(16)).all()

    def test_random_input_in_range(self, rng):
        values = random_input(rng, size=128)
        assert values.shape == (128,)
        assert ((0 <= values) & (values < TABLE_SIZE)).all()


class TestTraceSaturation:
    def test_trace_size_saturates_with_threads(self):
        """Fig. 5 pattern ②: once every table entry has been touched, new
        threads stop adding distinct addresses and growth flattens."""
        recorder = TraceRecorder()
        rng = np.random.default_rng(0)
        sizes = {}
        for n in (64, 512, 4096):
            trace = recorder.record(dummy_program,
                                    rng.integers(0, TABLE_SIZE, n))
            sizes[n] = trace.adcfg_bytes()
        growth_early = sizes[512] - sizes[64]
        growth_late = sizes[4096] - sizes[512]
        # late growth is much slower despite 8x the thread delta
        assert growth_late < growth_early
