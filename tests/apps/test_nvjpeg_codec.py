"""The full nvjpeg codec: device vs reference, round-trips, image source."""

import numpy as np
import pytest

from repro.apps.nvjpeg import (
    nvjpeg_decode,
    nvjpeg_encode,
    random_image,
    synthetic_image,
)
from repro.apps.nvjpeg.color import rgb_to_ycbcr_reference
from repro.apps.nvjpeg.decoder import decode_program, decode_reference
from repro.apps.nvjpeg.encoder import encode_program, encode_reference
from repro.apps.nvjpeg.images import to_fixed_size
from repro.gpusim import Device
from repro.gpusim.events import BasicBlockEvent
from repro.host import CudaRuntime


def runtime():
    return CudaRuntime(Device())


class TestImages:
    def test_synthetic_image_shape_and_dtype(self):
        image = synthetic_image(16, 24, seed=0)
        assert image.shape == (16, 24, 3)
        assert image.dtype == np.uint8

    def test_seed_determinism(self):
        assert (synthetic_image(16, 16, seed=5)
                == synthetic_image(16, 16, seed=5)).all()

    def test_seeds_vary_content(self):
        assert (synthetic_image(16, 16, seed=1)
                != synthetic_image(16, 16, seed=2)).any()

    def test_seeds_vary_statistics(self):
        """COCO-style heterogeneity: brightness/contrast differ by seed."""
        means = [synthetic_image(16, 16, seed=s).mean() for s in range(12)]
        assert np.std(means) > 5.0

    def test_random_image_uses_generator(self, rng):
        first = random_image(rng, 16, 16)
        second = random_image(rng, 16, 16)
        assert (first != second).any()

    def test_to_fixed_size(self):
        image = synthetic_image(32, 48, seed=0)
        resized = to_fixed_size(image, 16, 16)
        assert resized.shape == (16, 16, 3)


class TestEncoder:
    def test_device_matches_reference_bitstream(self):
        for seed in (1, 2, 3):
            image = synthetic_image(16, 16, seed=seed)
            assert nvjpeg_encode(runtime(), image) == encode_reference(image)

    def test_non_multiple_of_8_rejected(self):
        with pytest.raises(ValueError):
            nvjpeg_encode(runtime(), np.zeros((10, 16, 3)))

    def test_grayscale_input_rejected(self):
        with pytest.raises(ValueError):
            nvjpeg_encode(runtime(), np.zeros((16, 16)))

    def test_busy_images_encode_larger(self):
        flat = np.full((16, 16, 3), 128, dtype=np.uint8)
        rng = np.random.default_rng(0)
        busy = rng.integers(0, 256, size=(16, 16, 3)).astype(np.uint8)
        assert len(encode_reference(busy)) > len(encode_reference(flat))


class TestDecoder:
    def test_device_matches_reference(self):
        image = synthetic_image(16, 16, seed=7)
        blob = encode_reference(image)
        assert np.allclose(nvjpeg_decode(runtime(), blob),
                           decode_reference(blob))

    def test_lossy_roundtrip_quality(self):
        """Quantisation is lossy but the luma error must stay JPEG-like."""
        image = synthetic_image(16, 16, seed=8)
        decoded = decode_program(runtime(), image)
        luma_in = rgb_to_ycbcr_reference(image)[..., 0]
        luma_out = rgb_to_ycbcr_reference(decoded)[..., 0]
        assert np.abs(luma_in - luma_out).mean() < 20.0

    def test_flat_image_nearly_exact(self):
        image = np.full((8, 8, 3), 128, dtype=np.uint8)
        decoded = decode_program(runtime(), image)
        luma_in = rgb_to_ycbcr_reference(image)[..., 0]
        luma_out = rgb_to_ycbcr_reference(decoded)[..., 0]
        assert np.abs(luma_in - luma_out).max() < 1.0

    def test_output_clipped_to_pixel_range(self):
        decoded = decode_program(runtime(), synthetic_image(16, 16, seed=9))
        assert decoded.min() >= 0.0
        assert decoded.max() <= 255.0


class TestObservableBehaviour:
    @staticmethod
    def warp_block_trace(program, image):
        device = Device()
        events = []
        device.subscribe(lambda e: events.append(e)
                         if isinstance(e, BasicBlockEvent) else None)
        program(CudaRuntime(device), image)
        return [(e.label, e.block_id, e.warp_id) for e in events]

    def test_encoder_trace_depends_on_image_content(self):
        """The entropy stage's loops make the encode trace value-dependent."""
        trace_a = self.warp_block_trace(
            encode_program, synthetic_image(16, 16, seed=1))
        trace_b = self.warp_block_trace(
            encode_program, synthetic_image(16, 16, seed=2))
        assert trace_a != trace_b

    def test_decoder_trace_is_content_independent(self):
        """Same-size images decode with identical observable control flow."""
        trace_a = self.warp_block_trace(
            decode_program, synthetic_image(16, 16, seed=1))
        trace_b = self.warp_block_trace(
            decode_program, synthetic_image(16, 16, seed=2))
        assert trace_a == trace_b
