"""minitorch op correctness against NumPy references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.apps import minitorch as mt
from repro.apps.minitorch.ops import (
    BATCH,
    IMAGE_SIDE,
    LINEAR_IN,
    NUM_CLASSES,
    OP_NAMES,
    fixed_op_input,
    make_op_program,
    make_random_input,
)
from repro.gpusim import Device
from repro.host import CudaRuntime


def runtime():
    return CudaRuntime(Device())


small_vectors = hnp.arrays(np.float64, 64,
                           elements=st.floats(-10, 10, width=64))


class TestElementwise:
    def test_relu(self):
        x = np.linspace(-2, 2, 64)
        assert np.allclose(mt.relu(runtime(), x), np.maximum(x, 0))

    def test_sigmoid(self):
        x = np.linspace(-4, 4, 64)
        assert np.allclose(mt.sigmoid(runtime(), x), 1 / (1 + np.exp(-x)))

    def test_tanh(self):
        x = np.linspace(-3, 3, 64)
        assert np.allclose(mt.tanh(runtime(), x), np.tanh(x))

    @given(x=small_vectors)
    @settings(max_examples=10, deadline=None)
    def test_property_relu_matches_numpy(self, x):
        assert np.allclose(mt.relu(runtime(), x), np.maximum(x, 0))

    def test_softmax_sums_to_one(self):
        x = np.linspace(-2, 2, 32)
        out = mt.softmax(runtime(), x)
        assert out.sum() == pytest.approx(1.0)
        expected = np.exp(x - x.max())
        assert np.allclose(out, expected / expected.sum())

    def test_softmax_numerically_stable(self):
        x = np.full(32, 1000.0)
        out = mt.softmax(runtime(), x)
        assert np.allclose(out, 1 / 32)

    def test_softmax_size_limit(self):
        with pytest.raises(ValueError):
            mt.softmax(runtime(), np.zeros(33))


class TestPooling:
    def test_maxpool(self):
        image = np.arange(64, dtype=float).reshape(8, 8)
        out = mt.maxpool2d(runtime(), image)
        assert np.allclose(out, image.reshape(4, 2, 4, 2).max(axis=(1, 3)))

    def test_maxpool_negative_values(self):
        image = -np.arange(64, dtype=float).reshape(8, 8)
        out = mt.maxpool2d(runtime(), image)
        assert np.allclose(out, image.reshape(4, 2, 4, 2).max(axis=(1, 3)))

    def test_avgpool(self):
        image = np.arange(64, dtype=float).reshape(8, 8)
        out = mt.avgpool2d(runtime(), image)
        assert np.allclose(out, image.reshape(4, 2, 4, 2).mean(axis=(1, 3)))


class TestConvLinear:
    def test_conv2d_matches_direct_convolution(self):
        rng = np.random.default_rng(0)
        image = rng.standard_normal((8, 8))
        weight = rng.standard_normal((3, 3))
        out = mt.conv2d(runtime(), image, weight)
        expected = np.zeros((6, 6))
        for oy in range(6):
            for ox in range(6):
                expected[oy, ox] = (image[oy:oy + 3, ox:ox + 3]
                                    * weight).sum()
        assert np.allclose(out, expected)

    def test_conv2d_zero_input_fast_path(self):
        out = mt.conv2d(runtime(), np.zeros((8, 8)))
        assert np.allclose(out, 0.0)
        assert out.shape == (6, 6)

    def test_conv2d_fast_path_matches_dense_result(self):
        """The sparse optimisation must be semantics-preserving (the leak is
        in the kernel *choice*, not the values)."""
        weight = np.ones((3, 3))
        dense = mt.conv2d(runtime(), np.full((8, 8), 1e-12), weight)
        fast = mt.conv2d(runtime(), np.zeros((8, 8)), weight)
        assert np.allclose(dense, fast, atol=1e-9)

    def test_linear_matches_matmul(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(16)
        weight = rng.standard_normal((8, 16))
        bias = rng.standard_normal(8)
        out = mt.linear(runtime(), x, weight, bias)
        assert np.allclose(out, weight @ x + bias)


class TestLosses:
    def test_mseloss(self):
        pred = np.linspace(0, 1, 64)
        target = np.linspace(1, 0, 64)
        out = mt.mseloss(runtime(), pred, target)
        assert out == pytest.approx(((pred - target) ** 2).mean())

    def test_mseloss_shape_mismatch(self):
        with pytest.raises(ValueError):
            mt.mseloss(runtime(), np.zeros(4), np.zeros(5))

    def test_nllloss_gathers_targets(self):
        log_probs = np.log(np.arange(1, 65, dtype=float).reshape(8, 8))
        log_probs -= log_probs.max()
        targets = np.array([0, 1, 2, 3, 4, 5, 6, 7])
        out = mt.nllloss(runtime(), log_probs, targets)
        expected = [-log_probs[i, t] for i, t in enumerate(targets)]
        assert np.allclose(out, expected)

    def test_nllloss_target_count_mismatch(self):
        with pytest.raises(ValueError):
            mt.nllloss(runtime(), np.zeros((8, 8)), np.zeros(3))

    def test_crossentropy_matches_scipy_style_reference(self):
        rng = np.random.default_rng(2)
        logits = rng.standard_normal((8, 8))
        targets = rng.integers(0, 8, size=8)
        out = mt.crossentropy(runtime(), logits, targets)
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(
            np.exp(shifted).sum(axis=1, keepdims=True))
        expected = [-log_probs[i, t] for i, t in enumerate(targets)]
        assert np.allclose(out, expected)


class TestDropout:
    def test_dropout_zeroes_or_scales(self):
        x = np.ones(64)
        out = mt.dropout(runtime(), x, p=0.5,
                         rng=np.random.default_rng(0))
        assert set(np.round(np.unique(out), 6)) <= {0.0, 2.0}

    def test_dropout_seeded_reproducible(self):
        x = np.linspace(0, 1, 64)
        first = mt.dropout(runtime(), x, rng=np.random.default_rng(5))
        second = mt.dropout(runtime(), x, rng=np.random.default_rng(5))
        assert np.allclose(first, second)


class TestProgramFactories:
    def test_all_ops_enumerate(self):
        assert set(OP_NAMES) == {
            "relu", "sigmoid", "tanh", "softmax", "maxpool2d", "avgpool2d",
            "conv2d", "linear", "mseloss", "nllloss", "crossentropy",
            "dropout"}

    def test_unknown_op_rejected(self):
        with pytest.raises(KeyError):
            make_op_program("attention")

    @pytest.mark.parametrize("name", OP_NAMES)
    def test_programs_run_on_fixed_and_random_inputs(self, name, rng):
        program = make_op_program(name)
        program(runtime(), fixed_op_input(name))
        program(runtime(), make_random_input(name)(rng))

    def test_random_input_shapes(self, rng):
        assert make_random_input("relu")(rng).shape == (64,)
        assert make_random_input("softmax")(rng).shape == (32,)
        assert make_random_input("linear")(rng).shape == (LINEAR_IN,)
        assert make_random_input("conv2d")(rng).shape == (
            IMAGE_SIDE * IMAGE_SIDE,)
        assert make_random_input("nllloss")(rng).shape == (BATCH,)

    def test_conv2d_random_inputs_include_sparse_tensors(self, rng):
        generate = make_random_input("conv2d")
        zeros_seen = any(not generate(rng).any() for _ in range(50))
        assert zeros_seen

    def test_class_targets_in_range(self, rng):
        targets = make_random_input("crossentropy")(rng)
        assert ((0 <= targets) & (targets < NUM_CLASSES)).all()
