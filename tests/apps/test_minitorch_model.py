"""Sequential models: forward correctness, kernel leakage, extraction."""

import numpy as np
import pytest

from repro.apps.minitorch.model import (
    ARCHITECTURE_ZOO,
    Layer,
    Sequential,
    extract_architecture,
    model_serving_program,
    random_architecture,
)
from repro.apps.minitorch.ops import _fixed_weights
from repro.core import Owl, OwlConfig
from repro.gpusim import Device
from repro.host import CudaRuntime


def runtime():
    return CudaRuntime(Device())


class TestLayers:
    def test_unknown_layer_rejected(self):
        with pytest.raises(ValueError):
            Layer("attention")

    def test_linear_layer_matches_matmul(self):
        model = Sequential([Layer("linear", 8)], seed=11)
        x = np.linspace(-1, 1, 16)
        out = model.forward(runtime(), x)
        weight = _fixed_weights(8 * 16, seed=11).reshape(8, 16)
        bias = _fixed_weights(8, seed=111)
        assert np.allclose(out, weight @ x + bias)

    def test_activation_layers(self):
        x = np.linspace(-2, 2, 16)
        relu_out = Sequential([Layer("relu")]).forward(runtime(), x)
        assert np.allclose(relu_out, np.maximum(x, 0))
        tanh_out = Sequential([Layer("tanh")]).forward(runtime(), x)
        assert np.allclose(tanh_out, np.tanh(x))

    def test_inference_dropout_is_identity(self):
        x = np.linspace(-1, 1, 16)
        out = Sequential([Layer("dropout")]).forward(runtime(), x)
        assert np.allclose(out, x)

    def test_stacked_model_composes(self):
        model = Sequential([Layer("linear", 8), Layer("relu"),
                            Layer("linear", 4)], seed=3)
        out = model.forward(runtime(), np.linspace(-1, 1, 16))
        assert out.shape == (4,)

    def test_architecture_property(self):
        model = Sequential(ARCHITECTURE_ZOO[2])
        assert model.architecture == ("linear", "relu", "linear", "relu",
                                      "linear")


class TestKernelLeakage:
    def test_owl_reports_architecture_dependent_launches(self):
        """Serving different architectures from the same endpoint leaks the
        hyperparameters through the kernel sequence — the paper's MEA
        motivation, detected as kernel leakage."""
        config = OwlConfig(fixed_runs=15, random_runs=15)
        owl = Owl(model_serving_program, name="mlaas", config=config)
        result = owl.detect(inputs=[0, 2], random_input=random_architecture)
        # layer *types* leak through which kernels are launched...
        leaky_kernels = {leak.kernel_name
                         for leak in result.report.kernel_leaks}
        assert leaky_kernels  # e.g. tanh vs relu variants
        # ...and layer *widths* leak through the linear kernel's
        # data-flow footprint (more output features => wider accesses)
        assert all(leak.kernel_name == "linear_kernel"
                   for leak in result.report.data_flow_leaks)

    def test_fixed_architecture_is_clean(self):
        """If the architecture never varies there is nothing to leak."""
        config = OwlConfig(fixed_runs=10, random_runs=10)
        owl = Owl(model_serving_program, name="mlaas", config=config)
        result = owl.detect(inputs=[1, 1], random_input=lambda rng: 1)
        assert result.leak_free_by_filtering


class TestExtractionAttack:
    @pytest.mark.parametrize("index", range(len(ARCHITECTURE_ZOO)))
    def test_architecture_recovered_from_launch_trace(self, index):
        model = Sequential(ARCHITECTURE_ZOO[index])
        recovered = extract_architecture(model, np.linspace(-1, 1, 16))
        assert recovered == model.architecture

    def test_zoo_architectures_are_distinguishable(self):
        traces = {extract_architecture(Sequential(layers),
                                       np.linspace(-1, 1, 16))
                  for layers in ARCHITECTURE_ZOO}
        assert len(traces) == len(ARCHITECTURE_ZOO)
