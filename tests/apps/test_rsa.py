"""RSA modular exponentiation: correctness and control-flow structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.libgpucrypto.rsa import (
    LADDER_BITS,
    RSA_DEFAULT_MODULUS,
    RSA_PRIME_P,
    RSA_PRIME_Q,
    exponent_bits_msb_first,
    fixed_messages,
    modexp_reference,
    random_exponent,
    rsa_program,
    rsa_program_ct,
)
from repro.gpusim import Device
from repro.gpusim.events import BasicBlockEvent
from repro.host import CudaRuntime


class TestParameters:
    def test_modulus_is_product_of_primes(self):
        assert RSA_DEFAULT_MODULUS == RSA_PRIME_P * RSA_PRIME_Q

    def test_primality(self):
        def is_prime(n):
            return n > 1 and all(n % d for d in range(2, int(n ** 0.5) + 1))

        assert is_prime(RSA_PRIME_P)
        assert is_prime(RSA_PRIME_Q)

    def test_rsa_roundtrip_with_key_pair(self):
        phi = (RSA_PRIME_P - 1) * (RSA_PRIME_Q - 1)
        e = 65537
        d = pow(e, -1, phi)
        message = 123456789 % RSA_DEFAULT_MODULUS
        cipher = pow(message, e, RSA_DEFAULT_MODULUS)
        assert pow(cipher, d, RSA_DEFAULT_MODULUS) == message


class TestExponentBits:
    def test_msb_first(self):
        assert list(exponent_bits_msb_first(0b1011)) == [1, 0, 1, 1]

    def test_single_bit(self):
        assert list(exponent_bits_msb_first(1)) == [1]

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            exponent_bits_msb_first(0)

    def test_random_exponent_is_odd_with_top_bit(self, rng):
        for _ in range(5):
            exponent = random_exponent(rng, bits=31)
            assert exponent % 2 == 1
            assert exponent.bit_length() == 31


class TestKernels:
    @pytest.mark.parametrize("exponent", [1, 2, 3, 0b1011, 65537,
                                          0x6ACF8231])
    def test_leaky_kernel_correct(self, exponent):
        out = rsa_program(CudaRuntime(Device()), exponent)
        expected = [modexp_reference(int(m), exponent, RSA_DEFAULT_MODULUS)
                    for m in fixed_messages()]
        assert list(out) == expected

    @pytest.mark.parametrize("exponent", [1, 3, 0b1011, 65537, 0x6ACF8231])
    def test_ladder_kernel_correct(self, exponent):
        out = rsa_program_ct(CudaRuntime(Device()), exponent)
        expected = [modexp_reference(int(m), exponent, RSA_DEFAULT_MODULUS)
                    for m in fixed_messages()]
        assert list(out) == expected

    def test_ladder_rejects_oversized_exponent(self):
        with pytest.raises(ValueError):
            rsa_program_ct(CudaRuntime(Device()), 1 << LADDER_BITS)

    @given(exponent=st.integers(min_value=1, max_value=2 ** 31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_property_kernels_match_pow(self, exponent):
        leaky = rsa_program(CudaRuntime(Device()), exponent)
        ladder = rsa_program_ct(CudaRuntime(Device()), exponent)
        assert list(leaky) == list(ladder)
        assert leaky[0] == pow(int(fixed_messages()[0]), exponent,
                               RSA_DEFAULT_MODULUS)


class TestControlFlowStructure:
    @staticmethod
    def block_trace(program, exponent):
        device = Device()
        events = []
        device.subscribe(lambda e: events.append(e)
                         if isinstance(e, BasicBlockEvent) else None)
        program(CudaRuntime(device), exponent)
        return [e.label for e in events if e.warp_id == 0 and e.block_id == 0]

    def test_leaky_trace_spells_out_the_exponent(self):
        """The block sequence of the square-and-multiply kernel encodes the
        key bits: 'multiply' follows 'square' exactly for set bits."""
        exponent = 0b1011001
        labels = self.block_trace(rsa_program, exponent)
        recovered_bits = []
        for i, label in enumerate(labels):
            if label == "square":
                follows_multiply = (i + 1 < len(labels)
                                    and labels[i + 1] == "multiply")
                recovered_bits.append(1 if follows_multiply else 0)
        assert recovered_bits == list(exponent_bits_msb_first(exponent))

    def test_ladder_trace_is_exponent_independent(self):
        first = self.block_trace(rsa_program_ct, 0b1011001)
        second = self.block_trace(rsa_program_ct, 0b1111111)
        third = self.block_trace(rsa_program_ct, 3)
        assert first == second == third

    def test_leaky_trace_length_depends_on_bit_length(self):
        short = self.block_trace(rsa_program, 0b11)
        long = self.block_trace(rsa_program, (1 << 30) + 1)
        assert len(long) > len(short)
