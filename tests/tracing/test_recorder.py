"""End-to-end trace recording: hierarchical capture, determinism, sizes."""

import numpy as np
import pytest

from repro.gpusim import DeviceConfig, kernel
from repro.tracing import TraceRecorder
from repro.tracing.recorder import ProgramTrace


@kernel()
def lookup_kernel(k, table, data, out):
    k.block("entry")
    tid = k.global_tid()
    idx = k.load(data, tid)
    br = k.branch(idx >= 8)
    for _ in br.then("high"):
        k.store(out, tid, k.load(table, idx % 16))
    for _ in br.otherwise("low"):
        k.store(out, tid, 0)
    k.block("exit")


def lookup_program(rt, secret):
    table = rt.cudaMalloc(16, label="table")
    rt.cudaMemcpyHtoD(table, np.arange(16))
    data = rt.cudaMalloc(32, label="data")
    rt.cudaMemcpyHtoD(data, np.full(32, secret))
    out = rt.cudaMalloc(32, label="out")
    rt.cuLaunchKernel(lookup_kernel, 1, 32, table, data, out)


def two_kernel_program(rt, secret):
    lookup_program(rt, secret)
    if secret > 4:
        lookup_program(rt, secret)


class TestRecording:
    def test_single_invocation(self, recorder):
        trace = recorder.record(lookup_program, 3)
        assert len(trace.invocations) == 1
        inv = trace.invocations[0]
        assert inv.kernel_name == "lookup_kernel"
        assert inv.total_threads == 32
        assert inv.grid == (1, 1, 1)

    def test_adcfg_reflects_taken_path(self, recorder):
        low = recorder.record(lookup_program, 3).invocations[0].adcfg
        high = recorder.record(lookup_program, 9).invocations[0].adcfg
        assert "low" in low.nodes and "high" not in low.nodes
        assert "high" in high.nodes and "low" not in high.nodes

    def test_addresses_are_normalised(self, recorder):
        trace = recorder.record(lookup_program, 9)
        graph = trace.invocations[0].adcfg
        labels = {label
                  for node in graph.nodes.values()
                  for _v, _i, record in node.iter_instructions()
                  for (label, _off) in record.counts}
        assert labels == {"table", "data", "out"}

    def test_deterministic_program_identical_traces(self, recorder):
        first = recorder.record(lookup_program, 3)
        second = recorder.record(lookup_program, 3)
        assert first == second
        assert first.signature() == second.signature()

    def test_different_secret_different_signature(self, recorder):
        assert (recorder.record(lookup_program, 3).signature()
                != recorder.record(lookup_program, 9).signature())

    def test_secret_dependent_launch_count(self, recorder):
        short = recorder.record(two_kernel_program, 3)
        long = recorder.record(two_kernel_program, 9)
        assert len(short.invocations) == 1
        assert len(long.invocations) == 2
        # the two launches come from different call-stack contexts only in
        # the count; the first launch identity is shared
        assert long.kernel_sequence[0] == short.kernel_sequence[0]

    def test_record_many(self, recorder):
        traces = recorder.record_many(lookup_program, [3, 9, 3])
        assert len(traces) == 3
        assert traces[0] == traces[2]
        assert traces[0] != traces[1]

    def test_malloc_and_launch_records_present(self, recorder):
        trace = recorder.record(lookup_program, 3)
        assert [r.label for r in trace.malloc_records] == [
            "table", "data", "out"]
        assert len(trace.launch_records) == 1


class TestTraceSizes:
    def test_size_components_positive(self, recorder):
        trace = recorder.record(lookup_program, 3)
        assert trace.adcfg_bytes() > 0
        assert trace.malloc_bytes() > 0
        assert trace.launch_bytes() > 0
        assert trace.trace_size_bytes() == (trace.adcfg_bytes()
                                            + trace.malloc_bytes()
                                            + trace.launch_bytes())

    def test_host_record_sizes_input_independent(self, recorder):
        """Fig. 5: malloc/launch record sizes do not vary with the input."""
        small = recorder.record(lookup_program, 3)
        large = recorder.record(lookup_program, 15)
        assert small.malloc_bytes() == large.malloc_bytes()
        assert small.launch_bytes() == large.launch_bytes()


class TestAslrNeutralisation:
    def test_traces_equal_across_aslr_slides(self):
        """Owl disables ASLR on real hardware; the simulator instead proves
        the normalisation makes traces slide-invariant."""
        first = TraceRecorder(DeviceConfig(aslr=True, seed=1)).record(
            lookup_program, 9)
        second = TraceRecorder(DeviceConfig(aslr=True, seed=2)).record(
            lookup_program, 9)
        assert first == second


class TestSchedulingInvariance:
    def test_adcfg_insensitive_to_warp_order(self):
        """A-DCFG aggregation commutes, so scheduler shuffling is invisible
        — the property DATA's per-thread traces lack."""
        def wide_program(rt, secret):
            table = rt.cudaMalloc(16, label="table")
            rt.cudaMemcpyHtoD(table, np.arange(16))
            data = rt.cudaMalloc(256, label="data")
            rt.cudaMemcpyHtoD(data, np.full(256, secret))
            out = rt.cudaMalloc(256, label="out")
            rt.cuLaunchKernel(lookup_kernel, 4, 64, table, data, out)

        ordered = TraceRecorder(DeviceConfig(shuffle_schedule=False)).record(
            wide_program, 9)
        shuffled = TraceRecorder(
            DeviceConfig(shuffle_schedule=True, seed=123)).record(
            wide_program, 9)
        assert ordered == shuffled


class TestHostDeviceJoin:
    def test_launch_and_graph_counts_must_match(self, recorder):
        # sanity: the recorder validates the join; normal programs pass
        trace = recorder.record(two_kernel_program, 9)
        assert len(trace.invocations) == len(trace.launch_records)


class TestBufferedChannelMode:
    def test_buffered_and_eager_traces_identical(self):
        """NVBit's batched transfers must not change the recorded trace."""
        from repro.tracing import TraceRecorder as Recorder
        eager = Recorder().record(lookup_program, 9)
        buffered = Recorder(buffered=True).record(lookup_program, 9)
        assert eager == buffered
        assert eager.kernel_sequence == buffered.kernel_sequence

    def test_buffered_multi_launch_identities_in_order(self):
        from repro.tracing import TraceRecorder as Recorder
        eager = Recorder().record(two_kernel_program, 9)
        buffered = Recorder(buffered=True).record(two_kernel_program, 9)
        assert buffered.kernel_sequence == eager.kernel_sequence
        assert len(buffered.invocations) == 2

    def test_buffered_mode_under_shuffled_schedule(self):
        from repro.gpusim import DeviceConfig
        from repro.tracing import TraceRecorder as Recorder
        ordered = Recorder(buffered=True).record(lookup_program, 9)
        shuffled = Recorder(DeviceConfig(shuffle_schedule=True, seed=5),
                            buffered=True).record(lookup_program, 9)
        assert ordered == shuffled
