"""The NVBit-like device→monitor channel."""

import pytest

from repro.gpusim.events import KernelEndEvent
from repro.tracing.channel import Channel


def event(name="k"):
    return KernelEndEvent(kernel_name=name)


class TestBufferedMode:
    def test_events_accumulate_until_drain(self):
        channel = Channel()
        channel.send(event("a"))
        channel.send(event("b"))
        assert len(channel) == 2
        drained = channel.drain()
        assert [e.kernel_name for e in drained] == ["a", "b"]
        assert len(channel) == 0

    def test_drain_empty(self):
        assert Channel().drain() == []

    def test_capacity_enforced(self):
        channel = Channel(capacity=2)
        channel.send(event())
        channel.send(event())
        with pytest.raises(OverflowError):
            channel.send(event())

    def test_rejected_event_not_counted(self):
        """An overflowing send must not bump ``total_events``.

        Regression: the counter used to increment before the capacity
        check, so a rejected event inflated the trace-size statistics.
        """
        channel = Channel(capacity=1)
        channel.send(event())
        with pytest.raises(OverflowError):
            channel.send(event())
        assert channel.total_events == 1
        assert len(channel) == 1

    def test_capacity_freed_by_drain(self):
        channel = Channel(capacity=1)
        channel.send(event())
        channel.drain()
        channel.send(event())  # no overflow

    def test_iteration_preserves_order(self):
        channel = Channel()
        for name in "abc":
            channel.send(event(name))
        assert [e.kernel_name for e in channel] == ["a", "b", "c"]


class TestEagerMode:
    def test_sink_receives_immediately(self):
        received = []
        channel = Channel(sink=received.append)
        channel.send(event("x"))
        assert [e.kernel_name for e in received] == ["x"]
        assert len(channel) == 0  # nothing buffered

    def test_total_events_counter(self):
        channel = Channel(sink=lambda e: None)
        for _ in range(5):
            channel.send(event())
        assert channel.total_events == 5
