"""Replica-cohort batching ≡ serial per-run recording.

:func:`repro.tracing.replica.record_grouped` fuses many runs of one
program into mega cohorts (and, opt-in, deduplicates equal inputs on a
deterministic device).  It is a pure recording optimisation: expanding
its ``(trace, count)`` groups must reproduce the serial
``[TraceRecorder().record(program, v) for v in values]`` byte for byte —
for replica-divergent control flow, shared memory, impure programs,
injected faults, and Hypothesis-drawn toy kernels.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import DeviceConfig, kernel
from repro.resilience import FaultPlan
from repro.resilience.events import REPLICA_TO_RUN, collecting_degradations
from repro.resilience.faults import activated
from repro.tracing.recorder import TraceRecorder
from repro.tracing.replica import (
    device_is_deterministic,
    group_values,
    record_grouped,
)

DATA_SIZE = 256


# ----------------------------------------------------------------------
# toy programs
# ----------------------------------------------------------------------

@kernel()
def divergent_kernel(k, data, out):
    """Branches and loop trip counts depend on the input value, so
    replicas with different inputs force sub-cohort splits when fused."""
    k.block("entry")
    tid = k.global_tid()
    secret = k.load(data, 0)
    for _ in k.branch(secret % 2 == 1).then("odd"):
        k.store(out, tid % DATA_SIZE, tid)
    trips = k.uniform(secret % 3 + 1 + k.lane * 0)
    for i in k.range_("loop", trips):
        k.load(data, (tid + i) % DATA_SIZE)
    k.store(out, tid % DATA_SIZE, tid + 1)


@kernel()
def shared_kernel(k, data, out):
    k.block("entry")
    tid = k.global_tid()
    scratch = k.shared("scratch", 64)
    slot = k.warp_id * 32 + k.lane
    k.store(scratch, slot, k.load(data, tid % DATA_SIZE) * 2)
    k.syncthreads()
    k.block("readback")
    k.store(out, tid % DATA_SIZE, k.load(scratch, slot))


def make_program(kern, grid=2, block=64):
    def program(rt, value):
        data = rt.cudaMalloc(DATA_SIZE, label="data")
        seeded = np.zeros(DATA_SIZE, dtype=np.int64)
        seeded[0] = int(value)
        rt.cudaMemcpyHtoD(data, seeded)
        out = rt.cudaMalloc(DATA_SIZE, label="out")
        rt.cuLaunchKernel(kern, grid, block, data, out)
    return program


divergent_program = make_program(divergent_kernel)
shared_program = make_program(shared_kernel)


def serial_signatures(program, values, config=None, columnar=True,
                      cohort=True):
    recorder = TraceRecorder(config, columnar=columnar, cohort=cohort)
    return [recorder.record(program, value).signature() for value in values]


def replica_signatures(program, values, config=None, columnar=True,
                       cohort=True, dedup=False):
    groups, stats = record_grouped(program, values, device_config=config,
                                   columnar=columnar, cohort=cohort,
                                   dedup=dedup)
    signatures = [trace.signature()
                  for trace, count in groups for _ in range(count)]
    return signatures, stats


# ----------------------------------------------------------------------
# units
# ----------------------------------------------------------------------

class TestGroupValues:
    def test_consecutive_equal_values_collapse(self):
        assert group_values([1, 1, 2, 2, 2, 1], deterministic=True) == [
            (1, 2), (2, 3), (1, 1)]

    def test_non_deterministic_never_collapses(self):
        assert group_values([1, 1, 1], deterministic=False) == [
            (1, 1), (1, 1), (1, 1)]

    def test_ndarray_values_compare_by_content(self):
        a, b = np.arange(4), np.arange(4)
        assert group_values([a, b], deterministic=True) == [(a, 2)]

    def test_ndarray_dtype_mismatch_not_merged(self):
        a = np.arange(4, dtype=np.int64)
        b = np.arange(4, dtype=np.float64)
        assert len(group_values([a, b], deterministic=True)) == 2

    def test_type_mismatch_not_merged(self):
        assert len(group_values([1, 1.0], deterministic=True)) == 2


class TestDeviceDeterminism:
    def test_fixed_seed_is_deterministic(self):
        config = DeviceConfig(seed=7, shuffle_schedule=True, aslr=True)
        assert device_is_deterministic(config)

    def test_default_config_is_deterministic(self):
        assert device_is_deterministic(DeviceConfig())

    @pytest.mark.parametrize("knob", ["aslr", "shuffle_schedule"])
    def test_unseeded_randomisation_is_not(self, knob):
        config = DeviceConfig(seed=None, **{knob: True})
        assert not device_is_deterministic(config)


# ----------------------------------------------------------------------
# equivalence
# ----------------------------------------------------------------------

class TestRecordGroupedEquivalence:
    def test_divergent_replicas_match_serial(self):
        values = [0, 1, 2, 3, 5]
        replica, stats = replica_signatures(divergent_program, values)
        assert replica == serial_signatures(divergent_program, values)
        assert stats.fused_groups >= 1

    def test_shared_memory_replicas_match_serial(self):
        values = [3, 8, 21]
        replica, _stats = replica_signatures(shared_program, values)
        assert replica == serial_signatures(shared_program, values)

    def test_object_event_path_matches_serial(self):
        values = [1, 4]
        replica, _stats = replica_signatures(divergent_program, values,
                                             columnar=False)
        assert replica == serial_signatures(divergent_program, values,
                                            columnar=False)

    def test_no_cohort_falls_back_per_replica(self):
        values = [1, 4]
        replica, stats = replica_signatures(divergent_program, values,
                                            cohort=False)
        assert replica == serial_signatures(divergent_program, values,
                                            cohort=False)
        assert stats.fused_launches == 0

    def test_dedup_collapses_equal_inputs(self):
        values = [2, 2, 2, 7, 7]
        replica, stats = replica_signatures(divergent_program, values,
                                            dedup=True)
        assert replica == serial_signatures(divergent_program, values)
        assert stats.dedup_runs == 3

    def test_dedup_off_records_every_run(self):
        values = [2, 2]
        replica, stats = replica_signatures(divergent_program, values)
        assert replica == serial_signatures(divergent_program, values)
        assert stats.dedup_runs == 0

    def test_dedup_refused_on_nondeterministic_device(self):
        config = DeviceConfig(seed=None, aslr=True)
        groups, stats = record_grouped(divergent_program, [5, 5],
                                       device_config=config, dedup=True)
        assert [count for _t, count in groups] == [1, 1]
        assert stats.dedup_runs == 0

    def test_impure_program_stays_identical_without_dedup(self):
        """A program drawing per-run state of its own is outside the
        dedup envelope but must still replay byte-identically when every
        run is recorded (equal inputs produce *different* traces here)."""
        def impure(counter):
            def program(rt, value):
                counter[0] += 1
                data = rt.cudaMalloc(DATA_SIZE, label="data")
                seeded = np.zeros(DATA_SIZE, dtype=np.int64)
                seeded[0] = int(value) + counter[0] % 3
                rt.cudaMemcpyHtoD(data, seeded)
                out = rt.cudaMalloc(DATA_SIZE, label="out")
                rt.cuLaunchKernel(divergent_kernel, 2, 64, data, out)
            return program

        values = [1, 1, 1]
        serial = serial_signatures(impure([0]), values)
        assert len(set(serial)) > 1  # genuinely impure
        replica, _stats = replica_signatures(impure([0]), values)
        assert replica == serial

    def test_program_exception_propagates(self):
        def exploding(rt, value):
            if value == 2:
                raise ValueError("boom")
            divergent_program(rt, value)

        with pytest.raises(ValueError, match="boom"):
            record_grouped(exploding, [1, 2, 3])


class TestFaultInjection:
    def test_replica_violation_degrades_and_stays_identical(self):
        values = [0, 1, 2]
        plan = FaultPlan.parse("replica_violation:launch=0")
        with collecting_degradations() as log:
            with activated(plan):
                replica, stats = replica_signatures(divergent_program,
                                                    values)
        assert replica == serial_signatures(divergent_program, values)
        assert REPLICA_TO_RUN in log.counts_by_kind()
        assert stats.fallback_launches >= len(values)


# ----------------------------------------------------------------------
# property: randomised toy kernels
# ----------------------------------------------------------------------

toy_spec_st = st.fixed_dictionaries({
    "grid": st.integers(1, 3),
    "block": st.integers(8, 96),
    "values": st.lists(st.integers(0, 9), min_size=2, max_size=4),
    "seed": st.integers(0, 2 ** 16),
    "shuffle": st.booleans(),
})


class TestProperty:
    @settings(max_examples=15, deadline=None)
    @given(spec=toy_spec_st)
    def test_replica_batch_matches_serial(self, spec):
        program = make_program(divergent_kernel, spec["grid"], spec["block"])
        config = DeviceConfig(seed=spec["seed"],
                              shuffle_schedule=spec["shuffle"])
        replica, _stats = replica_signatures(program, spec["values"],
                                             config=config, dedup=True)
        assert replica == serial_signatures(program, spec["values"],
                                            config=config)
