"""Columnar fast path ≡ per-event object path.

The columnar pipeline (per-warp batched memory events, vectorised address
normalisation, bulk A-DCFG folding) is a pure transport/folding optimisation:
every recorded :class:`~repro.tracing.recorder.ProgramTrace` must be
byte-identical to the reference per-event path — including under schedule
shuffling, ASLR, and the buffered channel configuration.
"""

import pytest

from repro.apps import dummy
from repro.apps.libgpucrypto import aes_program, rsa_program
from repro.apps.nvjpeg import encode_program, synthetic_image
from repro.core import Owl, OwlConfig
from repro.gpusim import Device, DeviceConfig, MemoryBatchEvent, kernel
from repro.gpusim.events import MemoryAccessEvent
from repro.tracing.recorder import TraceRecorder

WORKLOADS = [
    pytest.param(aes_program, bytes(range(16)), id="aes"),
    pytest.param(rsa_program, 0x6ACF8231, id="rsa"),
    pytest.param(encode_program, synthetic_image(8, 8, seed=3), id="nvjpeg"),
    pytest.param(dummy.dummy_program, dummy.fixed_input(), id="dummy"),
]


def record_pair(program, value, device_config=None, buffered=False):
    reference = TraceRecorder(device_config=device_config, buffered=buffered,
                              columnar=False).record(program, value)
    columnar = TraceRecorder(device_config=device_config, buffered=buffered,
                             columnar=True).record(program, value)
    return reference, columnar


class TestTraceEquality:
    @pytest.mark.parametrize("program, value", WORKLOADS)
    def test_signatures_identical(self, program, value):
        reference, columnar = record_pair(program, value)
        assert columnar.signature() == reference.signature()
        assert columnar == reference

    @pytest.mark.parametrize("program, value", WORKLOADS)
    def test_buffered_channel(self, program, value):
        reference, columnar = record_pair(program, value, buffered=True)
        assert columnar.signature() == reference.signature()

    @pytest.mark.parametrize("program, value", WORKLOADS)
    def test_shuffled_schedule(self, program, value):
        config = DeviceConfig(seed=11, shuffle_schedule=True)
        reference, columnar = record_pair(program, value, device_config=config)
        assert columnar.signature() == reference.signature()

    @pytest.mark.parametrize("program, value", WORKLOADS)
    def test_aslr(self, program, value):
        config = DeviceConfig(seed=11, aslr=True)
        reference, columnar = record_pair(program, value, device_config=config)
        assert columnar.signature() == reference.signature()

    def test_shuffle_aslr_buffered_combined(self):
        config = DeviceConfig(seed=5, shuffle_schedule=True, aslr=True)
        reference, columnar = record_pair(aes_program, bytes(range(16)),
                                          device_config=config, buffered=True)
        assert columnar.signature() == reference.signature()

    def test_trace_size_accounting_identical(self):
        reference, columnar = record_pair(aes_program, bytes(range(16)))
        assert columnar.trace_size_bytes() == reference.trace_size_bytes()


class TestPipelineEquality:
    def test_detect_reports_identical(self):
        """End to end: columnar and object paths yield the same verdicts."""
        reports = {}
        for columnar in (False, True):
            config = OwlConfig(fixed_runs=4, random_runs=4,
                               columnar=columnar, always_analyze=True)
            owl = Owl(aes_program, name="aes", config=config)
            result = owl.detect(
                inputs=[bytes(range(16)), bytes(range(1, 17))],
                random_input=lambda rng: bytes(
                    int(b) for b in rng.integers(0, 256, size=16)))
            reports[columnar] = result.report.to_json()
        assert reports[True] == reports[False]


class TestBatchEvent:
    def test_batches_replace_per_instruction_events(self):
        device = Device(DeviceConfig(seed=0), columnar=True)
        events = []
        device.subscribe(events.append)
        buf = device.alloc(64, label="data")

        @kernel()
        def touch(k, target):
            k.block("entry")
            k.load(target, k.lane)
            k.store(target, k.lane, k.lane)

        device.launch(touch, 1, 32, buf)
        batches = [e for e in events if isinstance(e, MemoryBatchEvent)]
        singles = [e for e in events if isinstance(e, MemoryAccessEvent)]
        assert len(batches) == 1
        assert not singles
        batch = batches[0]
        assert batch.num_instructions == 2
        assert batch.labels == ("entry",)
        assert batch.addresses.shape == (64,)
        assert batch.extents.tolist() == [0, 32, 64]
        assert batch.is_stores.tolist() == [False, True]

    def test_iter_events_round_trip(self):
        """Expanding a batch reproduces the object path's event stream."""
        def trace_events(columnar):
            device = Device(DeviceConfig(seed=0), columnar=columnar)
            events = []
            device.subscribe(events.append)
            buf = device.alloc(64, label="data")

            @kernel()
            def touch(k, target):
                k.block("entry")
                k.load(target, k.lane % 4)
                k.store(target, k.lane, 1)

            device.launch(touch, 1, 32, buf)
            return events

        expanded = [
            event
            for e in trace_events(columnar=True)
            for event in (e.iter_events()
                          if isinstance(e, MemoryBatchEvent) else [e])
        ]
        reference = trace_events(columnar=False)
        assert expanded == reference

    def test_empty_warp_emits_no_batch(self):
        device = Device(DeviceConfig(seed=0), columnar=True)
        events = []
        device.subscribe(events.append)

        @kernel()
        def no_memory(k):
            k.block("entry")

        device.launch(no_memory, 1, 32)
        assert not [e for e in events if isinstance(e, MemoryBatchEvent)]


class TestDeterminism:
    def test_columnar_is_deterministic(self):
        sigs = {
            TraceRecorder(columnar=True).record(
                aes_program, bytes(range(16))).signature()
            for _ in range(3)
        }
        assert len(sigs) == 1

    def test_different_secrets_still_differ(self):
        a = TraceRecorder(columnar=True).record(aes_program, bytes(range(16)))
        b = TraceRecorder(columnar=True).record(aes_program, bytes(range(1, 17)))
        assert a.signature() != b.signature()
