"""Shared-memory tracing: space tags and cross-block aggregation."""

import numpy as np
import pytest

from repro.gpusim import MemorySpace, kernel
from repro.tracing import TraceRecorder


@kernel()
def staging_kernel(k, data, out):
    """Stages values through a ``__shared__`` scratch buffer (per warp)."""
    k.block("entry")
    tid = k.global_tid()
    scratch = k.shared("scratch", 64)
    slot = k.warp_id * 32 + k.lane
    k.store(scratch, slot, k.load(data, tid) * 2)
    k.syncthreads()
    k.block("readback")
    k.store(out, tid, k.load(scratch, slot))


def staging_program(rt, secret):
    data = rt.cudaMalloc(128, label="data")
    rt.cudaMemcpyHtoD(data, np.full(128, secret))
    out = rt.cudaMalloc(128, label="out")
    rt.cuLaunchKernel(staging_kernel, 2, 64, data, out)
    return rt.cudaMemcpyDtoH(out)


class TestSharedMemoryTracing:
    def test_kernel_computes_through_shared(self, recorder):
        from repro.gpusim import Device
        from repro.host import CudaRuntime
        out = staging_program(CudaRuntime(Device()), 21)
        assert (out == 42).all()

    def test_shared_accesses_tagged_with_space(self, recorder):
        trace = recorder.record(staging_program, 5)
        graph = trace.invocations[0].adcfg
        spaces = {record.space
                  for node in graph.nodes.values()
                  for _v, _i, record in node.iter_instructions()}
        assert MemorySpace.SHARED.value in spaces
        assert MemorySpace.GLOBAL.value in spaces

    def test_shared_offsets_aggregate_across_blocks(self, recorder):
        """Shared memory is a per-block address space: offset 0 of block 0
        and offset 0 of block 1 are the same location to the analysis, so
        both blocks' accesses fold into one histogram entry."""
        trace = recorder.record(staging_program, 5)
        graph = trace.invocations[0].adcfg
        shared_records = [record
                          for node in graph.nodes.values()
                          for _v, _i, record in node.iter_instructions()
                          if record.space == MemorySpace.SHARED.value]
        assert shared_records
        for record in shared_records:
            labels = {label for label, _off in record.counts}
            assert len(labels) == 1  # block-independent label
            # two blocks x identical slots => every offset counted twice
            assert all(count == 2 for count in record.counts.values())

    def test_shared_traffic_is_input_independent_here(self, recorder):
        """The staging pattern is tid-indexed: traces must be equal across
        secrets (no false leak from shared memory)."""
        assert (recorder.record(staging_program, 1)
                == recorder.record(staging_program, 9))
