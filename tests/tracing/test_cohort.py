"""Warp-cohort engine ≡ per-warp reference loop.

The cohort engine (:mod:`repro.gpusim.cohort`) runs every warp of a launch
in one NumPy pass over a ``(num_warps, 32)`` lane grid.  It is a pure
execution-strategy optimisation: every recorded
:class:`~repro.tracing.recorder.ProgramTrace` must be byte-identical to
the per-warp reference loop — across every bundled workload, under
schedule shuffling and ASLR, with and without the columnar transport, and
for partial final warps.
"""

import pytest

from repro.apps import dummy
from repro.apps.libgpucrypto import aes_program, rsa_program
from repro.apps.nvjpeg import encode_program, synthetic_image
from repro.cli import _workloads
from repro.core import Owl, OwlConfig
from repro.gpusim import Device, DeviceConfig, kernel
from repro.tracing.recorder import TraceRecorder

WORKLOADS = [
    pytest.param(aes_program, bytes(range(16)), id="aes"),
    pytest.param(rsa_program, 0x6ACF8231, id="rsa"),
    pytest.param(encode_program, synthetic_image(8, 8, seed=3), id="nvjpeg"),
    pytest.param(dummy.dummy_program, dummy.fixed_input(), id="dummy"),
]


def record_pair(program, value, device_config=None, buffered=False,
                columnar=True):
    reference = TraceRecorder(device_config=device_config, buffered=buffered,
                              columnar=columnar, cohort=False
                              ).record(program, value)
    cohort = TraceRecorder(device_config=device_config, buffered=buffered,
                           columnar=columnar, cohort=True
                           ).record(program, value)
    return reference, cohort


class TestAllWorkloads:
    """Every bundled workload, byte-identical — the tentpole's contract."""

    @pytest.mark.parametrize("workload", sorted(_workloads()))
    def test_plain(self, workload):
        program, fixed_inputs, _random = _workloads()[workload]
        value = fixed_inputs()[0]
        reference, cohort = record_pair(program, value)
        assert cohort.signature() == reference.signature()
        assert cohort == reference

    @pytest.mark.parametrize("workload", sorted(_workloads()))
    def test_shuffled_schedule_and_aslr(self, workload):
        program, fixed_inputs, _random = _workloads()[workload]
        value = fixed_inputs()[0]
        config = DeviceConfig(seed=7, shuffle_schedule=True, aslr=True)
        reference, cohort = record_pair(program, value, device_config=config)
        assert cohort.signature() == reference.signature()
        assert cohort == reference


class TestTraceEquality:
    @pytest.mark.parametrize("program, value", WORKLOADS)
    def test_object_event_path(self, program, value):
        """Cohort replay is exact on the per-event (non-columnar) path too."""
        reference, cohort = record_pair(program, value, columnar=False)
        assert cohort.signature() == reference.signature()
        assert cohort == reference

    @pytest.mark.parametrize("program, value", WORKLOADS)
    def test_buffered_channel(self, program, value):
        reference, cohort = record_pair(program, value, buffered=True)
        assert cohort.signature() == reference.signature()

    def test_shuffle_aslr_buffered_combined(self):
        config = DeviceConfig(seed=5, shuffle_schedule=True, aslr=True)
        reference, cohort = record_pair(aes_program, bytes(range(16)),
                                        device_config=config, buffered=True)
        assert cohort.signature() == reference.signature()

    def test_trace_size_accounting_identical(self):
        reference, cohort = record_pair(aes_program, bytes(range(16)))
        assert cohort.trace_size_bytes() == reference.trace_size_bytes()


class TestPartialWarps:
    def run_events(self, total_threads, cohort, shuffle=False):
        config = DeviceConfig(seed=3, shuffle_schedule=shuffle)
        device = Device(config, columnar=False, cohort=cohort)
        events = []
        device.subscribe(events.append)
        buf = device.alloc(256, label="data")

        @kernel()
        def ragged(k, target):
            k.block("entry")
            tid = k.global_tid()
            k.store(target, tid % 256, tid)
            for _ in k.branch(k.lane < 7).then("low_lanes"):
                k.load(target, k.lane)

        device.launch(ragged, 1, total_threads, buf)
        return events, buf.data.copy()

    @pytest.mark.parametrize("total_threads", [33, 48, 63, 65, 97])
    def test_partial_final_warp_identical(self, total_threads):
        ref_events, ref_data = self.run_events(total_threads, cohort=False)
        coh_events, coh_data = self.run_events(total_threads, cohort=True)
        assert coh_events == ref_events
        assert (coh_data == ref_data).all()

    @pytest.mark.parametrize("total_threads", [48, 97])
    def test_partial_warp_shuffled(self, total_threads):
        ref_events, ref_data = self.run_events(total_threads, cohort=False,
                                               shuffle=True)
        coh_events, coh_data = self.run_events(total_threads, cohort=True,
                                               shuffle=True)
        assert coh_events == ref_events
        assert (coh_data == ref_data).all()


class TestEngineSelection:
    def test_kernel_opt_out_pins_per_warp_loop(self):
        """@kernel(cohort=False) must never see a CohortContext."""
        contexts = []

        @kernel(cohort=False)
        def pinned(k):
            contexts.append(type(k).__name__)
            k.block("entry")

        device = Device(DeviceConfig(seed=0), cohort=True)
        device.launch(pinned, 2, 64)
        assert contexts == ["WarpContext"] * 4

    def test_multi_warp_launch_uses_cohort(self):
        contexts = []

        @kernel()
        def plain(k):
            contexts.append(type(k).__name__)
            k.block("entry")

        device = Device(DeviceConfig(seed=0), cohort=True)
        device.launch(plain, 2, 64)
        assert contexts == ["CohortContext"]

    def test_single_warp_launch_stays_per_warp(self):
        """One warp has nothing to batch; the per-warp loop runs as-is."""
        contexts = []

        @kernel()
        def plain(k):
            contexts.append(type(k).__name__)
            k.block("entry")

        device = Device(DeviceConfig(seed=0), cohort=True)
        device.launch(plain, 1, 32)
        assert contexts == ["WarpContext"]


class TestPipelineEquality:
    def test_detect_reports_identical(self):
        """End to end: cohort and per-warp paths yield the same verdicts."""
        reports = {}
        for cohort in (False, True):
            config = OwlConfig(fixed_runs=4, random_runs=4,
                               cohort=cohort, always_analyze=True)
            owl = Owl(aes_program, name="aes", config=config)
            result = owl.detect(
                inputs=[bytes(range(16)), bytes(range(1, 17))],
                random_input=lambda rng: bytes(
                    int(b) for b in rng.integers(0, 256, size=16)))
            reports[cohort] = result.report.to_json()
        assert reports[True] == reports[False]


class TestDeterminism:
    def test_cohort_is_deterministic(self):
        sigs = {
            TraceRecorder(cohort=True).record(
                aes_program, bytes(range(16))).signature()
            for _ in range(3)
        }
        assert len(sigs) == 1

    def test_different_secrets_still_differ(self):
        a = TraceRecorder(cohort=True).record(aes_program, bytes(range(16)))
        b = TraceRecorder(cohort=True).record(aes_program, bytes(range(1, 17)))
        assert a.signature() != b.signature()
