"""The warp-trace monitor: event-stream validation and A-DCFG production."""

import pytest

from repro.gpusim.events import (
    BasicBlockEvent,
    KernelBeginEvent,
    KernelEndEvent,
    MemoryAccessEvent,
    SyncEvent,
)
from repro.gpusim.memory import MemorySpace
from repro.tracing.monitor import MonitorError, WarpTraceMonitor


def begin(name="k", threads=32, warps=1):
    return KernelBeginEvent(kernel_name=name, grid=(1, 1, 1),
                            block=(threads, 1, 1), total_threads=threads,
                            num_warps=warps)


def bb(label, warp_id=0, block_id=0, visit=0):
    return BasicBlockEvent(block_id=block_id, warp_id=warp_id, label=label,
                           visit=visit, active_lanes=32)


def mem(label, addresses, instr=0, visit=0, warp_id=0):
    return MemoryAccessEvent(block_id=0, warp_id=warp_id, label=label,
                             visit=visit, instr=instr,
                             space=MemorySpace.GLOBAL, is_store=False,
                             addresses=tuple(addresses))


class TestStreamValidation:
    def test_event_outside_kernel_rejected(self):
        monitor = WarpTraceMonitor()
        with pytest.raises(MonitorError):
            monitor.on_event(bb("a"))

    def test_nested_begin_rejected(self):
        monitor = WarpTraceMonitor()
        monitor.on_event(begin())
        with pytest.raises(MonitorError):
            monitor.on_event(begin())

    def test_mismatched_end_rejected(self):
        monitor = WarpTraceMonitor()
        monitor.on_event(begin("a"))
        with pytest.raises(MonitorError):
            monitor.on_event(KernelEndEvent(kernel_name="b"))

    def test_finish_with_open_kernel_rejected(self):
        monitor = WarpTraceMonitor()
        monitor.on_event(begin())
        with pytest.raises(MonitorError):
            monitor.finish()

    def test_sync_events_counted(self):
        monitor = WarpTraceMonitor()
        monitor.on_event(begin())
        monitor.on_event(SyncEvent(block_id=0, warp_id=0))
        monitor.on_event(KernelEndEvent(kernel_name="k"))
        assert monitor.sync_events == 1


class TestGraphProduction:
    def test_one_graph_per_launch(self):
        monitor = WarpTraceMonitor()
        for _ in range(3):
            monitor.on_event(begin())
            monitor.on_event(bb("a"))
            monitor.on_event(KernelEndEvent(kernel_name="k"))
        assert len(monitor.finish()) == 3

    def test_identity_from_expect_kernel(self):
        monitor = WarpTraceMonitor()
        monitor.expect_kernel("k@site1")
        monitor.on_event(begin())
        monitor.on_event(KernelEndEvent(kernel_name="k"))
        graph = monitor.finish()[0]
        assert graph.kernel_identity == "k@site1"
        assert graph.kernel_name == "k"

    def test_identity_defaults_to_name(self):
        monitor = WarpTraceMonitor()
        monitor.on_event(begin("plain"))
        monitor.on_event(KernelEndEvent(kernel_name="plain"))
        assert monitor.finish()[0].kernel_identity == "plain"

    def test_identity_consumed_once(self):
        monitor = WarpTraceMonitor()
        monitor.expect_kernel("k@site1")
        monitor.on_event(begin())
        monitor.on_event(KernelEndEvent(kernel_name="k"))
        monitor.on_event(begin())
        monitor.on_event(KernelEndEvent(kernel_name="k"))
        identities = [g.kernel_identity for g in monitor.finish()]
        assert identities == ["k@site1", "k"]

    def test_warps_identified_by_block_and_warp_id(self):
        """Warp ids repeat across blocks; the monitor must not conflate
        (block 0, warp 0) with (block 1, warp 0)."""
        monitor = WarpTraceMonitor()
        monitor.on_event(begin(threads=64, warps=2))
        monitor.on_event(bb("a", warp_id=0, block_id=0))
        monitor.on_event(bb("b", warp_id=0, block_id=1))
        monitor.on_event(bb("c", warp_id=0, block_id=0, visit=0))
        monitor.on_event(KernelEndEvent(kernel_name="k"))
        graph = monitor.finish()[0]
        # block 0's warp went a -> c; block 1's warp went just b
        assert ("a", "c") in graph.edges
        assert ("b", "c") not in graph.edges

    def test_normalizer_applied_to_addresses(self):
        monitor = WarpTraceMonitor(
            normalizer=lambda addr: ("buf", addr - 1000))
        monitor.on_event(begin())
        monitor.on_event(bb("a"))
        monitor.on_event(mem("a", [1000, 1008]))
        monitor.on_event(KernelEndEvent(kernel_name="k"))
        graph = monitor.finish()[0]
        record = graph.nodes["a"].visits[0][0]
        assert record.counts == {("buf", 0): 1, ("buf", 8): 1}

    def test_unknown_event_type_rejected(self):
        class Bogus:
            pass

        monitor = WarpTraceMonitor()
        monitor.on_event(begin())
        with pytest.raises(MonitorError):
            monitor.on_event(Bogus())
