"""Closed-form and statistical properties of the MI estimator stack."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.mi import (
    CORRECTIONS,
    MIEstimationError,
    chi2_sf,
    entropy_bits,
    mi_test,
    mutual_information,
)

#: χ² 0.95 quantiles (k: quantile), so chi2_sf(quantile, k) == 0.05.
CHI2_95 = {
    1: 3.841458820694124,
    2: 5.991464547107979,
    5: 11.070497693516351,
    10: 18.307038053275146,
}


class TestChi2Sf:
    def test_known_quantiles(self):
        for k, quantile in CHI2_95.items():
            assert chi2_sf(quantile, k) == pytest.approx(0.05, abs=1e-10)

    def test_k2_closed_form(self):
        # χ²(2) is Exp(1/2): P(X > x) = exp(-x/2) exactly
        for x in (0.1, 1.0, 4.0, 25.0, 80.0):
            assert chi2_sf(x, 2) == pytest.approx(math.exp(-x / 2.0),
                                                  rel=1e-12)

    def test_boundaries_and_monotonicity(self):
        assert chi2_sf(0.0, 3) == 1.0
        assert chi2_sf(-1.0, 3) == 1.0
        values = [chi2_sf(x, 4) for x in np.linspace(0.01, 60, 200)]
        assert all(a >= b for a, b in zip(values, values[1:]))
        assert values[-1] < 1e-10

    def test_invalid_dof(self):
        with pytest.raises(MIEstimationError):
            chi2_sf(1.0, 0)


class TestClosedForms:
    def test_independent_table_zero_mi(self):
        # uniform joint = exact independence: plug-in MI is exactly 0
        assert mutual_information([[10, 10], [10, 10]], "none") == 0.0
        assert mutual_information([[6, 12], [2, 4]], "none") \
            == pytest.approx(0.0, abs=1e-12)

    def test_deterministic_copy_log2_k(self):
        for k in (2, 4, 8):
            table = np.diag(np.full(k, 5.0))
            assert mutual_information(table, "none") \
                == pytest.approx(math.log2(k), rel=1e-12)

    def test_entropy_closed_forms(self):
        assert entropy_bits([8, 8], "none") == pytest.approx(1.0)
        assert entropy_bits([4, 4, 4, 4], "none") == pytest.approx(2.0)
        assert entropy_bits([16], "none") == pytest.approx(0.0)

    def test_degenerate_inputs_raise(self):
        with pytest.raises(MIEstimationError):
            entropy_bits([0, 0])
        with pytest.raises(MIEstimationError):
            mutual_information(np.zeros((2, 2)))
        with pytest.raises(MIEstimationError):
            mutual_information(np.zeros(4))  # not 2-D
        with pytest.raises(MIEstimationError):
            mutual_information([[1, 2], [3, 4]], "bogus")


class TestBiasCorrectionConvergence:
    """Corrections must beat the plug-in under subsampling and converge."""

    @staticmethod
    def _errors(n, trials=150, seed=7):
        # independent side/value: true MI is exactly 0, so the estimate
        # itself is the error
        rng = np.random.default_rng(seed)
        errors = {correction: [] for correction in CORRECTIONS}
        for _ in range(trials):
            joint = np.zeros((2, 4))
            for side, value in zip(rng.integers(0, 2, n),
                                   rng.integers(0, 4, n)):
                joint[side, value] += 1
            if (joint.sum(axis=1) == 0).any():
                continue
            for correction in CORRECTIONS:
                errors[correction].append(
                    abs(mutual_information(joint, correction)))
        return {correction: float(np.mean(values))
                for correction, values in errors.items()}

    def test_corrections_reduce_small_sample_bias(self):
        for n in (24, 48, 96):
            errors = self._errors(n)
            for correction in ("miller_madow", "jackknife", "shrinkage"):
                assert errors[correction] < errors["none"], (
                    f"{correction} at n={n}: {errors[correction]} not "
                    f"below plug-in {errors['none']}")

    def test_plugin_bias_vanishes_with_sample_size(self):
        coarse = self._errors(24)["none"]
        fine = self._errors(192)["none"]
        assert fine < coarse / 2


histograms = st.dictionaries(st.integers(min_value=-30, max_value=30),
                             st.integers(min_value=0, max_value=25),
                             min_size=1, max_size=10)


def _nonempty(hist):
    return sum(hist.values()) > 0


class TestPermutationInvariance:
    @settings(max_examples=80, deadline=None)
    @given(histograms, histograms, st.randoms(use_true_random=False))
    def test_mi_invariant_under_value_relabeling(self, hist_x, hist_y,
                                                 rand):
        """MI measures information, not geometry: permuting the value
        labels (which reorders the joint table's columns) must not move
        the estimate.  The KS statistic has no such invariance."""
        if not (_nonempty(hist_x) and _nonempty(hist_y)):
            return
        support = sorted(set(hist_x) | set(hist_y))
        shuffled = list(support)
        rand.shuffle(shuffled)
        relabel = dict(zip(support, shuffled))
        permuted_x = {relabel[value]: count
                      for value, count in hist_x.items()}
        permuted_y = {relabel[value]: count
                      for value, count in hist_y.items()}
        for correction in CORRECTIONS:
            base = mi_test(hist_x, hist_y, correction=correction)
            moved = mi_test(permuted_x, permuted_y, correction=correction)
            assert moved.statistic == pytest.approx(base.statistic,
                                                    abs=1e-12)
            assert moved.mi_bits == pytest.approx(base.mi_bits, abs=1e-12)
            # chi2_sf(G) has an infinite-slope sqrt singularity at G=0:
            # float-level reordering noise in the statistic (<=1e-12)
            # legitimately moves p by up to ~sqrt(1e-12) near p=1
            assert moved.p_value == pytest.approx(base.p_value, abs=1e-5)


class TestMITest:
    def test_perfect_binary_distinguisher(self):
        result = mi_test({0: 20}, {1: 20}, correction="none")
        assert result.mi_bits == pytest.approx(1.0)
        assert result.p_value < 1e-6
        assert result.rejected

    def test_identical_histograms_not_flagged(self):
        result = mi_test({0: 10, 1: 10}, {0: 10, 1: 10})
        assert result.statistic == pytest.approx(0.0, abs=1e-12)
        assert result.p_value == pytest.approx(1.0)
        assert not result.rejected

    def test_min_bits_floor_vetoes_significant_but_tiny_mi(self):
        # large samples make a tiny imbalance significant; the floor
        # keeps it out of the report
        hist_x = {0: 5000, 1: 4300}
        hist_y = {0: 4300, 1: 5000}
        flagged = mi_test(hist_x, hist_y, min_bits=0.0)
        assert flagged.rejected
        floored = mi_test(hist_x, hist_y, min_bits=0.2)
        assert floored.p_value == flagged.p_value
        assert not floored.rejected

    def test_mi_bits_clamped_to_one_bit_ceiling(self):
        # binary side variable: I(S; V) <= H(S) <= 1 bit, whatever the
        # value-alphabet size suggests
        result = mi_test({0: 9, 1: 9, 2: 9}, {3: 9, 4: 9, 5: 9},
                         correction="none")
        assert result.mi_bits <= 1.0

    def test_sample_size_cap_changes_significance_not_estimate(self):
        hist_x = {0: 3000, 1: 100}
        hist_y = {0: 100, 1: 3000}
        full = mi_test(hist_x, hist_y)
        capped = mi_test(hist_x, hist_y, sample_size_cap=16)
        assert capped.statistic == full.statistic
        assert capped.mi_bits == full.mi_bits
        assert capped.n == 16 and capped.m == 16
        assert capped.p_value > full.p_value

    def test_degenerate_sides_raise(self):
        with pytest.raises(MIEstimationError):
            mi_test({}, {0: 4})
        with pytest.raises(MIEstimationError):
            mi_test({0: 0}, {0: 4})
        with pytest.raises(MIEstimationError):
            mi_test({0: 4}, {1: 4}, confidence=1.5)
