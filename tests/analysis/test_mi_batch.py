"""Vectorized MI batching must agree with the scalar reference tests."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.mi import (
    CORRECTIONS,
    MIEstimationError,
    mi_test,
    mi_test_batch,
)
from repro.core.kstest import DistributionTestError

#: Same agreement bar as the KS batch path: 1e-12 against the scalar.
TOL = 1e-12


def assert_matches_scalar(request, result, correction="miller_madow",
                          confidence=0.95, min_bits=0.0,
                          sample_size_cap=None):
    hist_x, hist_y = request[0], request[1]
    order = request[2] if len(request) == 3 else None
    try:
        want = mi_test(hist_x, hist_y, confidence=confidence, order=order,
                       correction=correction, min_bits=min_bits,
                       sample_size_cap=sample_size_cap)
    except DistributionTestError:
        assert result is None
        return
    assert result is not None
    for attribute in ("statistic", "p_value", "mi_bits", "mi_raw"):
        assert math.isclose(getattr(result, attribute),
                            getattr(want, attribute),
                            rel_tol=TOL, abs_tol=TOL), attribute
    assert result.n == want.n
    assert result.m == want.m
    assert result.dof == want.dof
    assert result.rejected == want.rejected


histograms = st.dictionaries(st.integers(min_value=-50, max_value=50),
                             st.integers(min_value=0, max_value=40),
                             max_size=12)


class TestBatchAgainstScalar:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(histograms, histograms),
                    min_size=1, max_size=8),
           st.sampled_from(CORRECTIONS))
    def test_property_randomized_histograms(self, requests, correction):
        results = mi_test_batch(requests, correction=correction)
        assert len(results) == len(requests)
        for request, result in zip(requests, results):
            assert_matches_scalar(request, result, correction=correction)

    @settings(max_examples=25, deadline=None)
    @given(st.tuples(histograms, histograms),
           st.integers(min_value=1, max_value=50))
    def test_property_sample_size_cap(self, request, cap):
        (result,) = mi_test_batch([request], sample_size_cap=cap)
        assert_matches_scalar(request, result, sample_size_cap=cap)

    def test_mixed_width_padding_is_inert(self):
        # one narrow and one wide request in the same batch: the padded
        # zero cells of the narrow row must not move any estimate
        narrow = ({0: 7, 1: 3}, {0: 2, 1: 8})
        wide = ({v: v + 1 for v in range(9)}, {v: 10 - v for v in range(9)})
        for correction in CORRECTIONS:
            for result, request in zip(
                    mi_test_batch([narrow, wide], correction=correction),
                    (narrow, wide)):
                assert_matches_scalar(request, result,
                                      correction=correction)

    def test_explicit_order_respected(self):
        order = {"b": 0, "a": 1, "c": 2}
        request = ({"a": 5, "b": 2}, {"b": 6, "c": 3}, order)
        (result,) = mi_test_batch([request])
        assert_matches_scalar(request, result)


class TestNoneContract:
    def test_degenerate_requests_return_none_in_place(self):
        requests = [
            ({}, {}),                      # empty support
            ({0: 4}, {}),                  # empty side
            ({0: 0, 1: 0}, {0: 3}),        # zero-weight side
            ({0: 4, 1: 2}, {0: 1, 1: 5}),  # healthy
        ]
        results = mi_test_batch(requests)
        assert [result is None for result in results] == \
            [True, True, True, False]

    def test_empty_batch(self):
        assert mi_test_batch([]) == []

    def test_invalid_parameters_raise_eagerly(self):
        with pytest.raises(MIEstimationError):
            mi_test_batch([({0: 1}, {0: 1})], confidence=0.0)
        with pytest.raises(MIEstimationError):
            mi_test_batch([({0: 1}, {0: 1})], correction="bogus")
