"""Cross-validation composition, report views, and analyzer plumbing."""

import pytest

from repro.analysis import cross_validate, ks_view, mi_view
from repro.core.pipeline import OwlConfig
from repro.core.report import Leak, LeakType, LeakageReport
from repro.errors import ConfigError
from repro.store import diff_reports


def _report(analyzer, leaks, name="prog"):
    report = LeakageReport(program_name=name, num_fixed_runs=4,
                           num_random_runs=4, confidence=0.95,
                           analyzer=analyzer)
    report.extend(leaks)
    return report


def _leak(instr, p_value=0.001, mi_bits=0.0,
          leak_type=LeakType.DEVICE_DATA_FLOW):
    return Leak(leak_type=leak_type, kernel_identity="kern@1",
                kernel_name="kern", block="body", instr=instr,
                p_value=p_value, statistic=0.5, mi_bits=mi_bits,
                detail="planted")


class TestCrossValidate:
    def test_agreement_annotates_ks_leak_with_mi_bits(self):
        ks = _report("ks", [_leak(1), _leak(2)])
        mi = _report("mi", [_leak(1, mi_bits=0.7), _leak(2, mi_bits=0.4)])
        composed = cross_validate(ks, mi)
        assert composed.analyzer == "both"
        section = composed.cross_validation
        assert section["agreements"] == 2
        assert section["ks_only"] == [] and section["mi_only"] == []
        assert [leak.mi_bits for leak in composed.leaks] == [0.7, 0.4]

    def test_disagreements_become_structured_rows(self):
        ks = _report("ks", [_leak(1), _leak(2)])
        mi = _report("mi", [_leak(2, mi_bits=0.6), _leak(3, mi_bits=0.9)])
        composed = cross_validate(ks, mi)
        section = composed.cross_validation
        assert section["agreements"] == 1
        assert [row["instr"] for row in section["ks_only"]] == [1]
        assert [row["instr"] for row in section["mi_only"]] == [3]
        # leak order: KS order first, then MI-only findings
        assert [leak.instr for leak in composed.leaks] == [1, 2, 3]

    def test_join_is_per_location_and_type(self):
        ks = _report("ks", [_leak(1, leak_type=LeakType.DEVICE_DATA_FLOW)])
        mi = _report("mi", [_leak(1, mi_bits=0.5,
                                  leak_type=LeakType.DEVICE_CONTROL_FLOW)])
        section = cross_validate(ks, mi).cross_validation
        assert section["agreements"] == 0
        assert len(section["ks_only"]) == 1
        assert len(section["mi_only"]) == 1

    def test_composed_report_round_trips_through_json(self):
        ks = _report("ks", [_leak(1)])
        mi = _report("mi", [_leak(1, mi_bits=0.7)])
        composed = cross_validate(ks, mi)
        loaded = LeakageReport.from_json(composed.to_json())
        assert loaded.to_json() == composed.to_json()
        assert loaded.analyzer == "both"
        assert loaded.cross_validation["agreements"] == 1

    def test_render_includes_cross_validation_line(self):
        ks = _report("ks", [_leak(1), _leak(2)])
        mi = _report("mi", [_leak(1, mi_bits=0.7), _leak(3, mi_bits=0.2)])
        rendered = cross_validate(ks, mi).render()
        assert "cross-validation: 1 agreements, 1 KS-only, 1 MI-only" \
            in rendered


class TestViews:
    def test_views_reconstruct_embedded_reports_exactly(self):
        ks = _report("ks", [_leak(1)])
        mi = _report("mi", [_leak(1, mi_bits=0.7)])
        composed = cross_validate(ks, mi)
        assert ks_view(composed).to_json() == ks.to_json()
        assert mi_view(composed).to_json() == mi.to_json()

    def test_views_refuse_single_analyzer_reports(self):
        single = _report("ks", [_leak(1)])
        with pytest.raises(ConfigError, match="not 'both'"):
            ks_view(single)
        with pytest.raises(ConfigError, match="not 'both'"):
            mi_view(single)


class TestDiffGuard:
    def test_diff_refuses_mixed_analyzers(self):
        baseline = _report("ks", [_leak(1)], name="v1")
        candidate = _report("mi", [_leak(1, mi_bits=0.7)], name="v2")
        with pytest.raises(ConfigError) as excinfo:
            diff_reports(baseline, candidate)
        message = str(excinfo.value)
        assert "different analyzers" in message
        assert "'ks'" in message and "'mi'" in message

    def test_diff_accepts_matching_analyzers(self):
        baseline = _report("mi", [_leak(1, mi_bits=0.7)], name="v1")
        candidate = _report("mi", [_leak(1, mi_bits=0.7)], name="v2")
        assert not diff_reports(baseline, candidate).is_regression


class TestConfigValidation:
    def test_unknown_analyzer_lists_valid_choices(self):
        with pytest.raises(ConfigError) as excinfo:
            OwlConfig(analyzer="kolmogorov")
        message = str(excinfo.value)
        assert "'kolmogorov'" in message
        assert "'ks', 'mi', 'both'" in message

    def test_unknown_bias_correction_lists_valid_choices(self):
        with pytest.raises(ConfigError) as excinfo:
            OwlConfig(mi_bias_correction="bootstrap")
        message = str(excinfo.value)
        assert "'bootstrap'" in message
        for choice in ("'none'", "'miller_madow'", "'jackknife'",
                       "'shrinkage'"):
            assert choice in message

    def test_negative_min_bits_rejected(self):
        with pytest.raises(ConfigError):
            OwlConfig(mi_min_bits=-0.5)

    def test_valid_choices_accepted(self):
        for analyzer in ("ks", "mi", "both"):
            assert OwlConfig(analyzer=analyzer).analyzer == analyzer


class TestCliRoundTrip:
    def test_run_flags_reach_config(self):
        from repro.cli import _config_from_args, build_subcommand_parser
        parser = build_subcommand_parser()
        args = parser.parse_args(
            ["run", "dummy", "--analyzer", "both", "--mi-bias",
             "shrinkage", "--mi-min-bits", "0.1"])
        config = _config_from_args(parser, args)
        assert config.analyzer == "both"
        assert config.mi_bias_correction == "shrinkage"
        assert config.mi_min_bits == 0.1

    def test_submit_flags_reach_override_config(self):
        parser = __import__("repro.cli", fromlist=["x"]) \
            .build_subcommand_parser()
        args = parser.parse_args(["submit", "dummy", "--analyzer", "mi",
                                  "--mi-bias", "jackknife"])
        # the service rebuilds OwlConfig(**overrides); mirror that here
        config = OwlConfig(analyzer=args.analyzer,
                           mi_bias_correction=args.mi_bias,
                           mi_min_bits=args.mi_min_bits)
        assert config.analyzer == "mi"
        assert config.mi_bias_correction == "jackknife"

    def test_defaults_stay_ks(self):
        from repro.cli import _config_from_args, build_subcommand_parser
        parser = build_subcommand_parser()
        args = parser.parse_args(["run", "dummy"])
        config = _config_from_args(parser, args)
        assert config.analyzer == "ks"
        assert config.mi_bias_correction == "miller_madow"
        assert config.mi_min_bits == 0.0
