"""``analyzer="both"`` identity contract.

One shared evidence pass feeds both detectors, so the KS component of a
``both`` run must be *byte-for-byte* the report a plain ``analyzer="ks"``
run produces — cold, warm (store-backed), and across the recording-engine
matrix (workers × columnar × cohort).  The MI component likewise matches
a plain ``analyzer="mi"`` run.
"""

import pytest

from repro.analysis import ks_view, mi_view
from repro.cli import _workloads
from repro.core.pipeline import Owl, OwlConfig
from repro.store import TraceStore

TINY = dict(fixed_runs=4, random_runs=4, seed=11, always_analyze=True)


def run_detection(workload, store=None, **overrides):
    program, fixed_inputs, random_input = _workloads()[workload]
    config = OwlConfig(**{**TINY, **overrides})
    owl = Owl(program, name=workload, config=config)
    return owl.detect(inputs=fixed_inputs(), random_input=random_input,
                      store=store)


class TestBothEqualsEach:
    @pytest.mark.parametrize("workload", ["dummy", "aes", "rsa"])
    def test_views_match_single_analyzer_runs(self, workload):
        both = run_detection(workload, analyzer="both").report
        ks = run_detection(workload, analyzer="ks").report
        mi = run_detection(workload, analyzer="mi").report
        assert ks_view(both).to_json() == ks.to_json()
        assert mi_view(both).to_json() == mi.to_json()

    def test_cross_validation_section_present(self):
        report = run_detection("aes", analyzer="both").report
        assert report.analyzer == "both"
        section = report.cross_validation
        assert section is not None
        assert set(section) >= {"agreements", "ks_only", "mi_only",
                                "ks_report", "mi_report"}

    def test_scalar_fallback_keeps_identity(self):
        """vectorized=False forces the per-analyzer traversal; the
        identity must hold through that fallback too."""
        both = run_detection("aes", analyzer="both",
                             vectorized=False).report
        ks = run_detection("aes", analyzer="ks", vectorized=False).report
        assert ks_view(both).to_json() == ks.to_json()


class TestEngineMatrix:
    @pytest.mark.parametrize("workload", ["dummy", "aes"])
    def test_both_stable_across_recording_configs(self, workload):
        reference = run_detection(workload, analyzer="both", workers=1,
                                  columnar=False, cohort=False) \
            .report.to_json()
        for workers in (1, 2):
            for columnar in (False, True):
                report = run_detection(workload, analyzer="both",
                                       workers=workers, columnar=columnar,
                                       cohort=True).report.to_json()
                assert report == reference, (
                    f"{workload}: both(workers={workers}, "
                    f"columnar={columnar}, cohort) diverged")


class TestWarmColdIdentity:
    @pytest.mark.parametrize("workload", ["dummy", "aes"])
    def test_warm_both_identical_to_cold(self, workload, tmp_path):
        cold = run_detection(workload, analyzer="both",
                             store=TraceStore(tmp_path / "s"))
        assert not cold.stats.report_cache_hit
        warm = run_detection(workload, analyzer="both",
                             store=TraceStore(tmp_path / "s"))
        assert warm.stats.report_cache_hit
        assert warm.report.to_json() == cold.report.to_json()

    def test_analyzers_cache_reports_independently(self, tmp_path):
        """ks, mi and both share recorded traces and evidence in one
        store but must each produce their own cached report."""
        store_dir = tmp_path / "shared"
        ks = run_detection("aes", analyzer="ks",
                           store=TraceStore(store_dir))
        mi = run_detection("aes", analyzer="mi",
                           store=TraceStore(store_dir))
        # the second campaign reuses the first campaign's evidence...
        assert mi.stats.cached_runs == \
            TINY["fixed_runs"] + TINY["random_runs"]
        # ...but not its report
        assert not mi.stats.report_cache_hit
        both = run_detection("aes", analyzer="both",
                             store=TraceStore(store_dir))
        assert not both.stats.report_cache_hit
        assert ks_view(both.report).to_json() == ks.report.to_json()
        assert mi_view(both.report).to_json() == mi.report.to_json()
        # every analyzer now warm: straight cache hits all around
        for analyzer in ("ks", "mi", "both"):
            warm = run_detection("aes", analyzer=analyzer,
                                 store=TraceStore(store_dir))
            assert warm.stats.report_cache_hit, analyzer
