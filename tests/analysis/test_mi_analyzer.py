"""The MI detector on synthetic programs with planted ground truth.

Mirrors the KS suite in ``tests/core/test_leakage.py``: the MI analyzer
consumes the same evidence, so the planted data-flow and control-flow
leaks must surface with positive ``mi_bits`` and ``analyzer="mi"``
metadata, and the scalar fallback must agree with the vectorized fold.
"""

import numpy as np
import pytest

from repro.analysis.mi import MIAnalyzer
from repro.core.evidence import Evidence
from repro.core.leakage import LeakageAnalyzer, LeakageConfig
from repro.core.report import LeakType
from repro.gpusim import kernel
from repro.tracing import TraceRecorder

TABLE_SIZE = 64


@kernel()
def planted_kernel(k, table, data, noise, out, mode):
    k.block("entry")
    tid = k.global_tid()
    secret = k.load(data, tid)                      # instr 0: benign
    if mode == "df":
        value = k.load(table, secret % TABLE_SIZE)  # instr 1: leaky
    else:
        value = k.load(table, tid % TABLE_SIZE)     # instr 1: benign
    k.load(noise, tid % 8)                          # instr 2: noisy values
    if mode == "cf":
        br = k.branch(secret % 2 == 0)
        for _ in br.then("even"):
            k.store(out, tid, value)
        for _ in br.otherwise("odd"):
            k.store(out, tid, value + 1)
    else:
        k.store(out, tid, value)
    k.block("exit")


def make_program(mode, launch_extra_kernel_for=None):
    @kernel()
    def extra_kernel(k):
        k.block("entry")

    def program(rt, secret):
        rng = np.random.default_rng()  # true nondeterminism
        table = rt.cudaMalloc(TABLE_SIZE, label="table")
        rt.cudaMemcpyHtoD(table, np.arange(TABLE_SIZE))
        data = rt.cudaMalloc(32, label="data")
        rt.cudaMemcpyHtoD(data, np.full(32, secret))
        noise = rt.cudaMalloc(8, label="noise")
        rt.cudaMemcpyHtoD(noise, rng.integers(0, 100, 8))
        out = rt.cudaMalloc(32, label="out")
        rt.cuLaunchKernel(planted_kernel, 1, 32, table, data, noise, out,
                          mode)
        if launch_extra_kernel_for is not None \
                and launch_extra_kernel_for(secret):
            rt.cuLaunchKernel(extra_kernel, 1, 32)

    return program


def evidences(program, fixed_value, runs=40, seed=0):
    recorder = TraceRecorder()
    rng = np.random.default_rng(seed)
    fixed = Evidence.from_traces(
        recorder.record(program, fixed_value) for _ in range(runs))
    random = Evidence.from_traces(
        recorder.record(program, int(rng.integers(0, TABLE_SIZE)))
        for _ in range(runs))
    return fixed, random


@pytest.fixture(scope="module")
def analyzer():
    return MIAnalyzer()


class TestDataFlowLeak:
    def test_detects_secret_indexed_load(self, analyzer):
        fixed, random = evidences(make_program("df"), fixed_value=3)
        report = analyzer.analyze(fixed, random)
        leaks = report.of_type(LeakType.DEVICE_DATA_FLOW)
        assert any(leak.instr == 1 for leak in leaks)
        assert report.analyzer == "mi"

    def test_leaks_carry_positive_mi_bits(self, analyzer):
        fixed, random = evidences(make_program("df"), fixed_value=3)
        report = analyzer.analyze(fixed, random)
        for leak in report.of_type(LeakType.DEVICE_DATA_FLOW):
            assert 0.0 < leak.mi_bits <= 1.0

    def test_benign_and_noisy_instructions_pass(self, analyzer):
        fixed, random = evidences(make_program("df"), fixed_value=3)
        report = analyzer.analyze(fixed, random)
        flagged = {leak.instr
                   for leak in report.of_type(LeakType.DEVICE_DATA_FLOW)}
        assert 0 not in flagged  # benign tid-indexed load
        assert 2 not in flagged  # nondeterministic values, fixed addresses

    def test_clean_program_no_leaks(self, analyzer):
        fixed, random = evidences(make_program("clean"), fixed_value=3)
        report = analyzer.analyze(fixed, random)
        assert not report.has_leaks


class TestControlFlowLeak:
    def test_detects_secret_branch(self, analyzer):
        fixed, random = evidences(make_program("cf"), fixed_value=2)
        report = analyzer.analyze(fixed, random)
        assert report.of_type(LeakType.DEVICE_CONTROL_FLOW)


class TestKernelLeak:
    def test_secret_dependent_launch_is_definite_one_bit(self, analyzer):
        """A kernel launched for only one side is a perfect binary
        distinguisher: the definite leak carries the 1-bit ceiling.
        The fixed secret lies outside the random draw range, so no
        random run can ever launch the extra kernel."""
        program = make_program(
            "clean", launch_extra_kernel_for=lambda s: s >= TABLE_SIZE)
        fixed, random = evidences(program, fixed_value=TABLE_SIZE)
        report = analyzer.analyze(fixed, random)
        kernel_leaks = report.of_type(LeakType.KERNEL)
        assert kernel_leaks
        assert all(leak.mi_bits == 1.0 for leak in kernel_leaks)

    def test_statistical_launch_imbalance_carries_measured_bits(self,
                                                                analyzer):
        """When one random run does launch the kernel, the finding is
        statistical and the bits reflect the measured imbalance."""
        program = make_program("clean",
                               launch_extra_kernel_for=lambda s: s == 0)
        fixed, random = evidences(program, fixed_value=0)
        report = analyzer.analyze(fixed, random)
        kernel_leaks = report.of_type(LeakType.KERNEL)
        assert kernel_leaks
        assert all(0.0 < leak.mi_bits < 1.0 for leak in kernel_leaks)


class TestConfig:
    def test_scalar_fallback_matches_vectorized(self):
        fixed, random = evidences(make_program("df"), fixed_value=3)
        vectorized = MIAnalyzer(LeakageConfig(vectorized=True)) \
            .analyze(fixed, random)
        scalar = MIAnalyzer(LeakageConfig(vectorized=False)) \
            .analyze(fixed, random)
        assert scalar.to_json() == vectorized.to_json()

    def test_min_bits_floor_filters_leaks(self):
        fixed, random = evidences(make_program("df"), fixed_value=3)
        open_report = MIAnalyzer(LeakageConfig(mi_min_bits=0.0)) \
            .analyze(fixed, random)
        floored = MIAnalyzer(LeakageConfig(mi_min_bits=2.0)) \
            .analyze(fixed, random)
        # 2 bits is above the binary-side ceiling: only definite leaks
        # (exact 1.0 is still < 2.0) and nothing statistical can pass
        assert len(floored.of_type(LeakType.DEVICE_DATA_FLOW)) \
            < len(open_report.of_type(LeakType.DEVICE_DATA_FLOW))

    def test_invalid_correction_rejected(self):
        with pytest.raises(Exception) as excinfo:
            LeakageConfig(mi_bias_correction="bogus")
        message = str(excinfo.value)
        assert "bias correction" in message and "'bogus'" in message

    def test_all_corrections_flag_the_planted_leak(self):
        fixed, random = evidences(make_program("df"), fixed_value=3)
        for correction in ("none", "miller_madow", "jackknife",
                           "shrinkage"):
            config = LeakageConfig(mi_bias_correction=correction)
            report = MIAnalyzer(config).analyze(fixed, random)
            flagged = {leak.instr for leak in
                       report.of_type(LeakType.DEVICE_DATA_FLOW)}
            assert 1 in flagged, correction


class TestAgainstKS:
    def test_mi_flags_every_planted_leak_ks_flags(self):
        """On the planted programs the detectors must agree on ground
        truth (the Table-3 sweep lives in the benchmark suite)."""
        for mode, fixed_value in (("df", 3), ("cf", 2)):
            fixed, random = evidences(make_program(mode), fixed_value)
            ks_locations = {(leak.leak_type,) + leak.location
                            for leak in LeakageAnalyzer()
                            .analyze(fixed, random).leaks}
            mi_locations = {(leak.leak_type,) + leak.location
                            for leak in MIAnalyzer()
                            .analyze(fixed, random).leaks}
            assert ks_locations <= mi_locations
