"""Binary serialisation round-trips and size accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adcfg.graph import ADCFG, END_LABEL, START_LABEL
from repro.adcfg.serialize import (
    SerializationError,
    adcfg_size_bytes,
    deserialize_adcfg,
    serialize_adcfg,
)


def sample_graph():
    graph = ADCFG("kern@abcd", kernel_name="kern", total_threads=64,
                  num_warps=2)
    graph.edge(START_LABEL, "a").record(START_LABEL, 2)
    graph.edge("a", "b").record(START_LABEL, 2)
    graph.edge("b", "b").record("a", 1)
    graph.edge("b", END_LABEL).record("b", 2)
    node_a = graph.node("a")
    node_a.record_entry(2)
    node_a.record_access(0, 0, 3, False, [("input", 0), ("input", 8)])
    node_a.record_access(0, 1, 5, True, [("output", -16)])
    node_b = graph.node("b")
    node_b.record_entry(3)
    node_b.record_access(1, 0, 4, False, [("shared", 4)] * 7)
    return graph


class TestRoundTrip:
    def test_sample_graph(self):
        graph = sample_graph()
        assert deserialize_adcfg(serialize_adcfg(graph)) == graph

    def test_empty_graph(self):
        graph = ADCFG("empty@0")
        assert deserialize_adcfg(serialize_adcfg(graph)) == graph

    def test_metadata_preserved(self):
        restored = deserialize_adcfg(serialize_adcfg(sample_graph()))
        assert restored.kernel_identity == "kern@abcd"
        assert restored.kernel_name == "kern"
        assert restored.total_threads == 64
        assert restored.num_warps == 2

    def test_negative_offsets_survive(self):
        restored = deserialize_adcfg(serialize_adcfg(sample_graph()))
        assert ("output", -16) in restored.nodes["a"].visits[0][1].counts

    def test_unicode_labels(self):
        graph = ADCFG("kernel@λ", kernel_name="kernel")
        graph.node("blök").record_entry()
        assert deserialize_adcfg(serialize_adcfg(graph)) == graph

    def test_serialisation_is_canonical(self):
        """Equal graphs built in different insertion orders serialise
        identically — the property the filtering phase's digests rely on."""
        forward = ADCFG("k@1")
        forward.node("a").record_entry()
        forward.node("b").record_entry()
        backward = ADCFG("k@1")
        backward.node("b").record_entry()
        backward.node("a").record_entry()
        assert serialize_adcfg(forward) == serialize_adcfg(backward)


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(SerializationError):
            deserialize_adcfg(b"NOPE" + b"\x00" * 16)

    def test_truncated_payload(self):
        payload = serialize_adcfg(sample_graph())
        with pytest.raises(SerializationError):
            deserialize_adcfg(payload[:len(payload) // 2])

    def test_trailing_bytes(self):
        payload = serialize_adcfg(sample_graph())
        with pytest.raises(SerializationError):
            deserialize_adcfg(payload + b"\x00")

    def test_unsupported_version(self):
        payload = bytearray(serialize_adcfg(sample_graph()))
        payload[4] = 99
        with pytest.raises(SerializationError):
            deserialize_adcfg(bytes(payload))


class TestSizeAccounting:
    def test_size_equals_payload_length(self):
        graph = sample_graph()
        assert adcfg_size_bytes(graph) == len(serialize_adcfg(graph))

    def test_size_grows_with_distinct_addresses(self):
        small = ADCFG("k@1")
        small.node("a").record_access(0, 0, 3, False, [("b", 0)])
        big = ADCFG("k@1")
        big.node("a").record_access(0, 0, 3, False,
                                    [("b", 8 * i) for i in range(100)])
        assert adcfg_size_bytes(big) > adcfg_size_bytes(small)

    def test_size_constant_under_repeat_access(self):
        """Duplicate accesses only bump counters: the de-duplication that
        keeps thread-heavy traces bounded (§V-B)."""
        once = ADCFG("k@1")
        once.node("a").record_access(0, 0, 3, False, [("b", 0)])
        many = ADCFG("k@1")
        many.node("a").record_access(0, 0, 3, False, [("b", 0)] * 10_000)
        assert adcfg_size_bytes(many) == adcfg_size_bytes(once)


@st.composite
def random_graphs(draw):
    graph = ADCFG(draw(st.sampled_from(["k@1", "kernel@ff", "x@0"])))
    labels = draw(st.lists(st.sampled_from(["a", "b", "c", "d"]),
                           min_size=1, max_size=4, unique=True))
    for label in labels:
        node = graph.node(label)
        node.record_entry(draw(st.integers(1, 5)))
        for visit in range(draw(st.integers(0, 2))):
            for instr in range(draw(st.integers(0, 2))):
                offsets = draw(st.lists(
                    st.integers(-1000, 1000), min_size=1, max_size=4))
                node.record_access(visit, instr, draw(st.integers(0, 8)),
                                   draw(st.booleans()),
                                   [("buf", off) for off in offsets])
    for src in labels:
        for dst in labels:
            if draw(st.booleans()):
                graph.edge(src, dst).record(
                    draw(st.sampled_from(labels + [START_LABEL])),
                    draw(st.integers(1, 9)))
    return graph


@given(graph=random_graphs())
@settings(max_examples=60, deadline=None)
def test_property_roundtrip(graph):
    assert deserialize_adcfg(serialize_adcfg(graph)) == graph
