"""Folding warp event streams into one A-DCFG."""

from repro.adcfg.builder import ADCFGBuilder, identity_normalizer
from repro.adcfg.graph import END_LABEL, START_LABEL
from repro.gpusim.events import BasicBlockEvent, MemoryAccessEvent
from repro.gpusim.memory import MemorySpace


def bb(label, warp_id=0, block_id=0, visit=0, lanes=32):
    return BasicBlockEvent(block_id=block_id, warp_id=warp_id, label=label,
                           visit=visit, active_lanes=lanes)


def mem(label, addresses, instr=0, visit=0, warp_id=0, block_id=0,
        is_store=False):
    return MemoryAccessEvent(block_id=block_id, warp_id=warp_id, label=label,
                             visit=visit, instr=instr,
                             space=MemorySpace.GLOBAL, is_store=is_store,
                             addresses=tuple(addresses))


def build(events, **kwargs):
    builder = ADCFGBuilder("k@1", **kwargs)
    for event in events:
        if isinstance(event, BasicBlockEvent):
            builder.on_basic_block(event)
        else:
            builder.on_memory_access(event)
    return builder.finish()


class TestControlFlowFolding:
    def test_single_warp_path(self):
        graph = build([bb("a"), bb("b"), bb("c")])
        assert set(graph.edges) == {
            (START_LABEL, "a"), ("a", "b"), ("b", "c"), ("c", END_LABEL)}
        assert all(edge.count == 1 for edge in graph.edges.values())

    def test_identical_warps_aggregate(self):
        events = []
        for warp in range(4):
            events += [bb("a", warp_id=warp), bb("b", warp_id=warp)]
        graph = build(events)
        assert graph.edges[("a", "b")].count == 4
        assert graph.nodes["a"].entries == 4
        assert graph.num_edges == 3  # start, a->b, end

    def test_interleaved_warps_keep_separate_contexts(self):
        """Events from different warps interleave on the channel; per-warp
        previous-block state must not leak across."""
        graph = build([
            bb("a", warp_id=0), bb("x", warp_id=1),
            bb("b", warp_id=0), bb("y", warp_id=1),
        ])
        assert ("a", "b") in graph.edges
        assert ("x", "y") in graph.edges
        assert ("x", "b") not in graph.edges
        assert ("a", "y") not in graph.edges

    def test_same_warp_id_different_blocks_are_distinct(self):
        graph = build([
            bb("a", warp_id=0, block_id=0),
            bb("b", warp_id=0, block_id=1),
            bb("c", warp_id=0, block_id=0),
        ])
        assert ("a", "c") in graph.edges
        assert ("b", "c") not in graph.edges

    def test_prev_edge_histogram(self):
        graph = build([bb("a"), bb("b"), bb("c")])
        edge = graph.edges[("b", "c")]
        assert edge.prev_counts == {"a": 1}
        first = graph.edges[("a", "b")]
        assert first.prev_counts == {START_LABEL: 1}

    def test_divergent_warps_multiple_ends(self):
        graph = build([
            bb("a", warp_id=0), bb("b", warp_id=0),
            bb("a", warp_id=1), bb("c", warp_id=1),
        ])
        assert graph.end_labels() == ["b", "c"]

    def test_loop_self_edge(self):
        graph = build([bb("loop", visit=v) for v in range(3)])
        assert graph.edges[("loop", "loop")].count == 2
        assert graph.nodes["loop"].entries == 3

    def test_empty_stream(self):
        graph = build([])
        assert graph.num_nodes == 0
        assert graph.num_edges == 0


class TestMemoryFolding:
    def test_memory_records_per_visit_and_instr(self):
        graph = build([
            bb("a", visit=0), mem("a", [100], instr=0, visit=0),
            mem("a", [108], instr=1, visit=0),
            bb("a", visit=1), mem("a", [100], instr=0, visit=1),
        ])
        node = graph.nodes["a"]
        assert len(node.visits) == 2
        assert len(node.visits[0]) == 2
        assert len(node.visits[1]) == 1

    def test_cross_warp_aggregation(self):
        graph = build([
            bb("a", warp_id=0), mem("a", [100, 100], warp_id=0),
            bb("a", warp_id=1), mem("a", [100, 108], warp_id=1),
        ])
        record = graph.nodes["a"].visits[0][0]
        assert record.counts == {("<raw>", 100): 3, ("<raw>", 108): 1}

    def test_custom_normalizer(self):
        graph = build(
            [bb("a"), mem("a", [1000, 1016])],
            normalizer=lambda addr: ("data", addr - 1000))
        record = graph.nodes["a"].visits[0][0]
        assert record.counts == {("data", 0): 1, ("data", 16): 1}

    def test_identity_normalizer(self):
        assert identity_normalizer(42) == ("<raw>", 42)

    def test_store_flag_preserved(self):
        graph = build([bb("a"), mem("a", [100], is_store=True)])
        assert graph.nodes["a"].visits[0][0].is_store


class TestFinish:
    def test_finish_adds_end_edges_once(self):
        builder = ADCFGBuilder("k@1")
        builder.on_basic_block(bb("a"))
        graph = builder.finish()
        assert graph.edges[("a", END_LABEL)].count == 1
        # finish() clears warp state: calling again adds nothing
        assert builder.finish().edges[("a", END_LABEL)].count == 1

    def test_end_edge_prev_points_at_penultimate_block(self):
        graph = build([bb("a"), bb("b")])
        assert graph.edges[("b", END_LABEL)].prev_counts == {"a": 1}

    def test_metadata_carried(self):
        builder = ADCFGBuilder("k@1", kernel_name="k", total_threads=96,
                               num_warps=3)
        graph = builder.finish()
        assert graph.total_threads == 96
        assert graph.num_warps == 3
