"""Serializer robustness: corrupt and adversarial payloads must raise
SerializationError — never crash, hang, or silently mis-parse."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adcfg.graph import ADCFG
from repro.adcfg.serialize import (
    SerializationError,
    deserialize_adcfg,
    serialize_adcfg,
)


def sample_payload() -> bytes:
    graph = ADCFG("kern@1", kernel_name="kern", total_threads=64, num_warps=2)
    node = graph.node("a")
    node.record_entry(2)
    node.record_access(0, 0, 3, False, [("buf", 0), ("buf", 8)])
    graph.edge("a", "b").record("x", 3)
    graph.node("b").record_entry(1)
    return serialize_adcfg(graph)


class TestTruncation:
    def test_every_truncation_point_raises_cleanly(self):
        payload = sample_payload()
        for cut in range(len(payload)):
            with pytest.raises(SerializationError):
                deserialize_adcfg(payload[:cut])


class TestBitFlips:
    @given(position=st.integers(0, 200), flip=st.integers(1, 255))
    @settings(max_examples=200, deadline=None)
    def test_single_byte_corruption_never_crashes(self, position, flip):
        payload = bytearray(sample_payload())
        position %= len(payload)
        payload[position] ^= flip
        try:
            graph = deserialize_adcfg(bytes(payload))
        except SerializationError:
            return  # clean rejection
        except (UnicodeDecodeError, MemoryError):
            pytest.fail("corruption escaped the format's validation layer")
        # a decode that 'succeeds' must at least produce a coherent object
        assert isinstance(graph, ADCFG)
        _ = graph.num_nodes, graph.num_edges


class TestAdversarialInputs:
    @given(junk=st.binary(max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_random_bytes_rejected(self, junk):
        # only a payload that happens to start with the magic could even
        # begin parsing; anything else must raise immediately
        try:
            deserialize_adcfg(junk)
        except SerializationError:
            return
        pytest.fail("random bytes accepted as an A-DCFG")

    def test_huge_declared_table_is_bounded_by_truncation(self):
        """A payload declaring 2^32-1 strings must fail on truncation, not
        attempt to allocate them all."""
        payload = bytearray(sample_payload())
        # header: magic(4) + version(2) + threads(4) + warps(4) = offset 14
        payload[14:18] = (0xFFFFFFFF).to_bytes(4, "little")  # string count
        with pytest.raises(SerializationError):
            deserialize_adcfg(bytes(payload))


class TestHardenedErrors:
    """The hardening contract: short reads and bad table indices surface
    as SerializationError, never as bare struct.error / IndexError."""

    def test_out_of_range_string_index_raises_cleanly(self):
        payload = bytearray(sample_payload())
        # kernel identity/name indices directly follow the string table;
        # scan for the first u32 pair after the header and poison it
        # header: magic(4) + version(2) + threads(4) + warps(4) + count(4)
        offset = 14 + 4
        (table_len,) = np.frombuffer(payload[14:18], dtype="<u4")
        for _ in range(int(table_len)):
            (str_len,) = np.frombuffer(payload[offset:offset + 2],
                                       dtype="<u2")
            offset += 2 + int(str_len)
        payload[offset:offset + 4] = (0xFFFF).to_bytes(4, "little")
        with pytest.raises(SerializationError):
            deserialize_adcfg(bytes(payload))

    def test_no_bare_parsing_exceptions_across_all_corruptions(self):
        payload = sample_payload()
        rng = np.random.default_rng(7)
        for _ in range(500):
            corrupt = bytearray(payload)
            for _flip in range(int(rng.integers(1, 4))):
                corrupt[int(rng.integers(len(payload)))] ^= int(
                    rng.integers(1, 256))
            try:
                deserialize_adcfg(bytes(corrupt))
            except SerializationError:
                continue

    def test_huge_nested_count_rejected_before_loop(self):
        """A count deep inside the payload (not just the string table)
        must also be bounded by the remaining payload size."""
        payload = bytearray(sample_payload())
        hits = 0
        for offset in range(14, len(payload) - 4):
            poisoned = bytearray(payload)
            poisoned[offset:offset + 4] = (0x7FFFFFFF).to_bytes(4, "little")
            try:
                deserialize_adcfg(bytes(poisoned))
            except SerializationError:
                hits += 1
        assert hits > 0  # every poisoned offset either parsed or raised cleanly
