"""Serializer robustness: corrupt and adversarial payloads must raise
SerializationError — never crash, hang, or silently mis-parse."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adcfg.graph import ADCFG
from repro.adcfg.serialize import (
    SerializationError,
    deserialize_adcfg,
    serialize_adcfg,
)


def sample_payload() -> bytes:
    graph = ADCFG("kern@1", kernel_name="kern", total_threads=64, num_warps=2)
    node = graph.node("a")
    node.record_entry(2)
    node.record_access(0, 0, 3, False, [("buf", 0), ("buf", 8)])
    graph.edge("a", "b").record("x", 3)
    graph.node("b").record_entry(1)
    return serialize_adcfg(graph)


class TestTruncation:
    def test_every_truncation_point_raises_cleanly(self):
        payload = sample_payload()
        for cut in range(len(payload)):
            with pytest.raises(SerializationError):
                deserialize_adcfg(payload[:cut])


class TestBitFlips:
    @given(position=st.integers(0, 200), flip=st.integers(1, 255))
    @settings(max_examples=200, deadline=None)
    def test_single_byte_corruption_never_crashes(self, position, flip):
        payload = bytearray(sample_payload())
        position %= len(payload)
        payload[position] ^= flip
        try:
            graph = deserialize_adcfg(bytes(payload))
        except SerializationError:
            return  # clean rejection
        except (UnicodeDecodeError, MemoryError):
            pytest.fail("corruption escaped the format's validation layer")
        # a decode that 'succeeds' must at least produce a coherent object
        assert isinstance(graph, ADCFG)
        _ = graph.num_nodes, graph.num_edges


class TestAdversarialInputs:
    @given(junk=st.binary(max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_random_bytes_rejected(self, junk):
        # only a payload that happens to start with the magic could even
        # begin parsing; anything else must raise immediately
        try:
            deserialize_adcfg(junk)
        except SerializationError:
            return
        pytest.fail("random bytes accepted as an A-DCFG")

    def test_huge_declared_table_is_bounded_by_truncation(self):
        """A payload declaring 2^32-1 strings must fail on truncation, not
        attempt to allocate them all."""
        payload = bytearray(sample_payload())
        # header: magic(4) + version(2) + threads(4) + warps(4) = offset 14
        payload[14:18] = (0xFFFFFFFF).to_bytes(4, "little")  # string count
        with pytest.raises(SerializationError):
            deserialize_adcfg(bytes(payload))
