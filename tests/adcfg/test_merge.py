"""A-DCFG merging (warp folding and evidence aggregation)."""

import pytest

from repro.adcfg.graph import ADCFG, START_LABEL
from repro.adcfg.merge import MergeError, merge_adcfg, merge_adcfg_into


def simple_graph(edge_count=1, mem_count=1, identity="k@1"):
    graph = ADCFG(kernel_identity=identity, kernel_name="k",
                  total_threads=32, num_warps=1)
    node = graph.node("a")
    node.record_entry(edge_count)
    node.record_access(0, 0, 3, False, [("buf", 0)] * mem_count)
    graph.edge(START_LABEL, "a").record(START_LABEL, count=edge_count)
    return graph


class TestMerge:
    def test_counts_sum(self):
        merged = merge_adcfg(simple_graph(2, 3), simple_graph(1, 5))
        assert merged.nodes["a"].entries == 3
        assert merged.edges[(START_LABEL, "a")].count == 3
        assert merged.nodes["a"].visits[0][0].counts[("buf", 0)] == 8

    def test_merge_is_commutative_on_content(self):
        left = merge_adcfg(simple_graph(2, 3), simple_graph(1, 5))
        right = merge_adcfg(simple_graph(1, 5), simple_graph(2, 3))
        assert left == right

    def test_merge_into_returns_target(self):
        target = simple_graph()
        result = merge_adcfg_into(target, simple_graph())
        assert result is target

    def test_merge_pure_function_leaves_inputs_alone(self):
        first = simple_graph(1, 1)
        second = simple_graph(1, 1)
        merge_adcfg(first, second)
        assert first.nodes["a"].entries == 1
        assert second.nodes["a"].entries == 1

    def test_disjoint_nodes_union(self):
        first = simple_graph()
        second = ADCFG("k@1", kernel_name="k")
        second.node("z").record_entry()
        merged = merge_adcfg(first, second)
        assert set(merged.nodes) == {"a", "z"}

    def test_disjoint_visits_slots_align(self):
        first = simple_graph()
        second = ADCFG("k@1")
        second.node("a").record_access(2, 1, 3, False, [("buf", 8)])
        merged = merge_adcfg(first, second)
        node = merged.nodes["a"]
        assert node.visits[0][0].counts == {("buf", 0): 1}
        assert node.visits[2][1].counts == {("buf", 8): 1}

    def test_identity_mismatch_rejected(self):
        with pytest.raises(MergeError):
            merge_adcfg(simple_graph(identity="k@1"),
                        simple_graph(identity="k@2"))

    def test_thread_metadata_takes_max(self):
        first = simple_graph()
        first.total_threads = 64
        second = simple_graph()
        second.total_threads = 128
        assert merge_adcfg(first, second).total_threads == 128

    def test_merge_associativity_on_content(self):
        a, b, c = (simple_graph(i + 1, i + 1) for i in range(3))
        left = merge_adcfg(merge_adcfg(a, b), c)
        right = merge_adcfg(a, merge_adcfg(b, c))
        assert left == right
