"""A-DCFG node/edge/graph data-structure tests."""

import pytest

from repro.adcfg.graph import ADCFG, END_LABEL, START_LABEL, Edge, MemoryRecord, Node


class TestMemoryRecord:
    def test_add_counts_occurrences(self):
        record = MemoryRecord()
        record.add([("buf", 0), ("buf", 0), ("buf", 8)])
        assert record.counts == {("buf", 0): 2, ("buf", 8): 1}

    def test_merge_sums(self):
        first = MemoryRecord(counts={("b", 0): 1, ("b", 8): 2})
        second = MemoryRecord(counts={("b", 8): 3, ("b", 16): 1})
        first.merge(second)
        assert first.counts == {("b", 0): 1, ("b", 8): 5, ("b", 16): 1}

    def test_totals(self):
        record = MemoryRecord(counts={("b", 0): 2, ("b", 8): 3})
        assert record.total_accesses == 5
        assert record.distinct_addresses == 2

    def test_copy_is_independent(self):
        record = MemoryRecord(counts={("b", 0): 1})
        clone = record.copy()
        clone.add([("b", 0)])
        assert record.counts[("b", 0)] == 1

    def test_equality_includes_space_and_kind(self):
        base = MemoryRecord(space=3, is_store=False, counts={("b", 0): 1})
        assert base == MemoryRecord(space=3, is_store=False,
                                    counts={("b", 0): 1})
        assert base != MemoryRecord(space=4, is_store=False,
                                    counts={("b", 0): 1})
        assert base != MemoryRecord(space=3, is_store=True,
                                    counts={("b", 0): 1})


class TestNode:
    def test_record_access_creates_slots(self):
        node = Node(label="a")
        node.record_access(visit=2, instr=1, space=3, is_store=False,
                           keys=[("b", 0)])
        assert len(node.visits) == 3
        assert len(node.visits[2]) == 2
        assert node.visits[2][1].counts == {("b", 0): 1}

    def test_first_access_sets_space_and_kind(self):
        node = Node(label="a")
        node.record_access(0, 0, space=5, is_store=True, keys=[("b", 0)])
        record = node.visits[0][0]
        assert record.space == 5
        assert record.is_store

    def test_aggregation_across_warps(self):
        node = Node(label="a")
        node.record_access(0, 0, 3, False, [("b", 0)])
        node.record_access(0, 0, 3, False, [("b", 0), ("b", 8)])
        assert node.visits[0][0].counts == {("b", 0): 2, ("b", 8): 1}

    def test_iter_instructions_skips_empty(self):
        node = Node(label="a")
        node.record_access(1, 1, 3, False, [("b", 0)])
        slots = list(node.iter_instructions())
        assert slots == [(1, 1, node.visits[1][1])]

    def test_total_accesses(self):
        node = Node(label="a")
        node.record_access(0, 0, 3, False, [("b", 0)] * 3)
        node.record_access(1, 0, 3, False, [("b", 8)])
        assert node.total_accesses == 4

    def test_entries_counter(self):
        node = Node(label="a")
        node.record_entry()
        node.record_entry(5)
        assert node.entries == 6


class TestEdge:
    def test_record_tracks_prev(self):
        edge = Edge(src="a", dst="b")
        edge.record(prev_src=START_LABEL)
        edge.record(prev_src="x")
        edge.record(prev_src="x")
        assert edge.count == 3
        assert edge.prev_counts == {START_LABEL: 1, "x": 2}

    def test_merge_compatible(self):
        first = Edge(src="a", dst="b", count=2, prev_counts={"x": 2})
        second = Edge(src="a", dst="b", count=1, prev_counts={"y": 1})
        first.merge(second)
        assert first.count == 3
        assert first.prev_counts == {"x": 2, "y": 1}

    def test_merge_mismatched_endpoints(self):
        with pytest.raises(ValueError):
            Edge(src="a", dst="b").merge(Edge(src="a", dst="c"))


class TestADCFG:
    def make_graph(self):
        graph = ADCFG(kernel_identity="k@1", kernel_name="k")
        graph.edge(START_LABEL, "a").record(START_LABEL)
        graph.edge("a", "b").record(START_LABEL)
        graph.edge("b", END_LABEL).record("a")
        graph.node("a").record_entry()
        graph.node("b").record_entry()
        return graph

    def test_node_edge_lazily_created(self):
        graph = ADCFG("k@1")
        node = graph.node("a")
        assert graph.node("a") is node
        edge = graph.edge("a", "b")
        assert graph.edge("a", "b") is edge

    def test_in_out_edges(self):
        graph = self.make_graph()
        assert [e.src for e in graph.in_edges("b")] == ["a"]
        assert [e.dst for e in graph.out_edges("b")] == [END_LABEL]

    def test_start_end_labels(self):
        graph = self.make_graph()
        assert graph.start_labels() == ["a"]
        assert graph.end_labels() == ["b"]

    def test_multiple_start_nodes_allowed(self):
        """§V-B: different warps may enter different code regions."""
        graph = ADCFG("k@1")
        graph.edge(START_LABEL, "a").record(START_LABEL)
        graph.edge(START_LABEL, "z").record(START_LABEL)
        assert graph.start_labels() == ["a", "z"]

    def test_counts(self):
        graph = self.make_graph()
        assert graph.num_nodes == 2
        assert graph.num_edges == 3

    def test_copy_deep(self):
        graph = self.make_graph()
        clone = graph.copy()
        clone.node("a").record_entry()
        clone.edge("a", "b").record("q")
        assert graph.nodes["a"].entries == 1
        assert graph.edges[("a", "b")].count == 1

    def test_equality(self):
        assert self.make_graph() == self.make_graph()
        other = self.make_graph()
        other.node("c")
        assert self.make_graph() != other

    def test_equality_differs_on_identity(self):
        graph = self.make_graph()
        renamed = self.make_graph()
        renamed.kernel_identity = "k@2"
        assert graph != renamed

    def test_repr_mentions_shape(self):
        text = repr(self.make_graph())
        assert "nodes=2" in text and "edges=3" in text


class TestAdjacencyIndexes:
    """in_edges/out_edges are served from maintained indexes, not O(E) scans;
    the indexes must stay correct through every way edges can appear."""

    def test_index_tracks_incremental_edges(self):
        graph = ADCFG("k@1")
        for dst in ("b", "c", "d"):
            graph.edge("a", dst).record(START_LABEL)
        graph.edge("b", "d").record("a")
        assert sorted(e.dst for e in graph.out_edges("a")) == ["b", "c", "d"]
        assert sorted(e.src for e in graph.in_edges("d")) == ["a", "b"]
        assert graph.in_edges("a") == []
        assert graph.out_edges("d") == []

    def test_index_returns_same_edge_objects(self):
        graph = ADCFG("k@1")
        edge = graph.edge("a", "b")
        assert graph.out_edges("a")[0] is edge
        assert graph.in_edges("b")[0] is edge

    def test_returned_lists_are_copies(self):
        graph = ADCFG("k@1")
        graph.edge("a", "b")
        graph.out_edges("a").clear()
        assert len(graph.out_edges("a")) == 1

    def test_index_survives_copy(self):
        graph = ADCFG("k@1")
        graph.edge("a", "b").record(START_LABEL)
        clone = graph.copy()
        clone.edge("a", "c")
        assert sorted(e.dst for e in clone.out_edges("a")) == ["b", "c"]
        # the original is untouched and its index still serves its own edges
        assert [e.dst for e in graph.out_edges("a")] == ["b"]
        # clone's index holds the clone's (deep-copied) edge objects
        assert clone.out_edges("a")[0] is clone.edges[("a", "b")]
        assert clone.out_edges("a")[0] is not graph.edges[("a", "b")]

    def test_index_rebuilt_after_direct_edge_insertion(self):
        """Deserialisation writes ``graph.edges`` directly; queries must
        notice and rebuild rather than serve a stale index."""
        graph = ADCFG("k@1")
        graph.edge("a", "b")
        assert [e.dst for e in graph.out_edges("a")] == ["b"]  # index built
        graph.edges[("a", "c")] = Edge(src="a", dst="c")       # out-of-band
        assert sorted(e.dst for e in graph.out_edges("a")) == ["b", "c"]
        assert [e.src for e in graph.in_edges("c")] == ["a"]

    def test_serialize_round_trip_preserves_adjacency(self):
        from repro.adcfg.serialize import deserialize_adcfg, serialize_adcfg

        graph = ADCFG("k@1", kernel_name="k")
        graph.edge(START_LABEL, "a").record(START_LABEL)
        graph.edge("a", "b").record(START_LABEL)
        graph.edge("a", "c").record(START_LABEL)
        graph.edge("b", END_LABEL).record("a")
        graph.node("a").record_entry()
        restored = deserialize_adcfg(serialize_adcfg(graph))
        for label in (START_LABEL, "a", "b", "c", END_LABEL):
            assert (sorted((e.src, e.dst) for e in restored.out_edges(label))
                    == sorted((e.src, e.dst) for e in graph.out_edges(label)))
            assert (sorted((e.src, e.dst) for e in restored.in_edges(label))
                    == sorted((e.src, e.dst) for e in graph.in_edges(label)))
