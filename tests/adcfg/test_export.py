"""A-DCFG export: NetworkX conversion and DOT rendering."""

import networkx as nx
import numpy as np
import pytest

from repro.adcfg.export import hot_paths, to_dot, to_networkx
from repro.adcfg.graph import END_LABEL, START_LABEL
from repro.gpusim import kernel
from repro.tracing import TraceRecorder


@kernel()
def looping_kernel(k, data, out):
    k.block("entry")
    tid = k.global_tid()
    value = k.load(data, tid)
    for _i in k.range_("loop", 3):
        value = value + 1
    k.block("exit")
    k.store(out, tid, value)


def record_graph():
    def program(rt, secret):
        data = rt.cudaMalloc(32, label="data")
        rt.cudaMemcpyHtoD(data, np.full(32, secret))
        out = rt.cudaMalloc(32, label="out")
        rt.cuLaunchKernel(looping_kernel, 1, 32, data, out)

    return TraceRecorder().record(program, 3).invocations[0].adcfg


class TestToNetworkx:
    def test_nodes_and_edges_transfer(self):
        graph = record_graph()
        nxg = to_networkx(graph)
        assert set(graph.nodes) <= set(nxg.nodes)
        for (src, dst), edge in graph.edges.items():
            assert nxg.has_edge(src, dst)
            assert nxg.edges[src, dst]["count"] == edge.count

    def test_node_attributes(self):
        nxg = to_networkx(record_graph())
        assert nxg.nodes["entry"]["entries"] == 1
        assert nxg.nodes["entry"]["memory_accesses"] == 32  # one load/lane
        assert nxg.nodes["loop"]["entries"] == 3

    def test_virtual_endpoints_included(self):
        nxg = to_networkx(record_graph())
        assert START_LABEL in nxg
        assert END_LABEL in nxg

    def test_graph_metadata(self):
        nxg = to_networkx(record_graph())
        assert nxg.graph["kernel_name"] == "looping_kernel"
        assert nxg.graph["total_threads"] == 32

    def test_usable_with_networkx_algorithms(self):
        nxg = to_networkx(record_graph())
        path = nx.shortest_path(nxg, START_LABEL, END_LABEL)
        assert path[0] == START_LABEL and path[-1] == END_LABEL
        assert "entry" in path

    def test_self_loop_preserved(self):
        nxg = to_networkx(record_graph())
        assert nxg.has_edge("loop", "loop")
        assert nxg.edges["loop", "loop"]["count"] == 2


class TestHotPaths:
    def test_orders_by_traversal_count(self):
        paths = hot_paths(record_graph())
        assert paths[0] == ("loop", "loop", 2)

    def test_excludes_virtual_endpoints(self):
        for src, dst, _count in hot_paths(record_graph(), top=10):
            assert START_LABEL not in (src, dst)
            assert END_LABEL not in (src, dst)


class TestToDot:
    def test_contains_all_blocks_and_edges(self):
        graph = record_graph()
        dot = to_dot(graph)
        for label in graph.nodes:
            assert f'"{label}"' in dot
        assert '"entry" -> "loop"' in dot
        assert dot.startswith('digraph "looping_kernel"')
        assert dot.rstrip().endswith("}")

    def test_leak_highlighting(self):
        dot = to_dot(record_graph(), leaking_blocks=["loop"])
        assert "fillcolor" in dot
        highlighted = [line for line in dot.splitlines()
                       if "fillcolor" in line]
        assert len(highlighted) == 1
        assert '"loop"' in highlighted[0]

    def test_quotes_escaped(self):
        from repro.adcfg.graph import ADCFG
        graph = ADCFG('weird"name', kernel_name='weird"name')
        graph.node('block"x').record_entry()
        dot = to_dot(graph)
        assert '\\"' in dot
