"""Call-stack capture and kernel-identity semantics."""

from repro.host.callstack import (
    CallSite,
    CallStack,
    capture_call_stack,
    current_stack_depth,
)


def outer_caller():
    return middle_caller()


def middle_caller():
    return capture_call_stack(skip_innermost=0)


class TestCapture:
    def test_captures_application_frames(self):
        stack = outer_caller()
        functions = [frame.function for frame in stack.frames]
        assert "outer_caller" in functions
        assert "middle_caller" in functions

    def test_skip_innermost_drops_wrapper_frames(self):
        def wrapper():
            return capture_call_stack(skip_innermost=1)

        stack = wrapper()
        functions = [frame.function for frame in stack.frames]
        assert "wrapper" not in functions

    def test_anchor_drops_outer_frames(self):
        def probe():
            anchor = current_stack_depth()
            return inner(anchor)

        def inner(anchor):
            return capture_call_stack(skip_innermost=0, anchor=anchor)

        stack = probe()
        functions = [frame.function for frame in stack.frames]
        assert "probe" not in functions
        assert "inner" in functions

    def test_runtime_frames_filtered(self):
        stack = capture_call_stack(skip_innermost=0)
        assert not any("repro/host/" in frame.filename.replace("\\", "/")
                       for frame in stack.frames)

    def test_max_depth_truncates_from_outside(self):
        def recurse(depth):
            if depth == 0:
                return capture_call_stack(skip_innermost=0, max_depth=4)
            return recurse(depth - 1)

        stack = recurse(20)
        assert len(stack.frames) == 4
        assert stack.innermost.function == "recurse"


class TestCallStackIdentity:
    def test_digest_is_stable(self):
        # both captures originate from the same source line, so the whole
        # identifying stack is identical
        first, second = [outer_caller() for _ in range(2)]
        assert first.digest == second.digest

    def test_digest_distinguishes_call_sites(self):
        first = middle_caller()
        second = middle_caller()  # different line number
        assert first.digest != second.digest

    def test_digest_length(self):
        assert len(outer_caller().digest) == 16

    def test_str_renders_frames(self):
        stack = CallStack(frames=(
            CallSite(filename="a.py", lineno=3, function="f"),
            CallSite(filename="b.py", lineno=9, function="g"),
        ))
        assert str(stack) == "a.py:3 in f -> b.py:9 in g"

    def test_innermost_of_empty_stack(self):
        stack = CallStack(frames=())
        assert stack.innermost.function == "<unknown>"
        # empty stacks still have a digest (it is just the empty hash)
        assert isinstance(stack.digest, str)
