"""Host tracer: address normalisation against layout and ASLR noise."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.gpusim import Device, DeviceConfig, kernel
from repro.gpusim.memory import ALLOCATION_ALIGNMENT, AllocationError
from repro.host import CudaRuntime, HostTracer


def traced_runtime(config=None):
    device = Device(config or DeviceConfig())
    rt = CudaRuntime(device)
    tracer = HostTracer(device.memory)
    rt.attach_tracer(tracer)
    return rt, tracer


class TestNormalization:
    def test_offsets_relative_to_allocation(self):
        rt, tracer = traced_runtime()
        rt.cudaMalloc(16, label="first")
        buf = rt.cudaMalloc(16, label="second")
        normalized = tracer.normalize(buf.base + 24)
        assert normalized.alloc_label == "second"
        assert normalized.offset == 24

    def test_as_key(self):
        rt, tracer = traced_runtime()
        buf = rt.cudaMalloc(16, label="data")
        assert tracer.normalize(buf.base).as_key() == ("data", 0)

    def test_unknown_address_raises(self):
        _rt, tracer = traced_runtime()
        with pytest.raises(AllocationError):
            tracer.normalize(0x1234)

    def test_try_normalize_returns_none(self):
        _rt, tracer = traced_runtime()
        assert tracer.try_normalize(0x1234) is None

    def test_layout_independence(self):
        """Inserting an extra allocation shifts bases but not offsets."""
        def record(extra_alloc: bool):
            rt, tracer = traced_runtime()
            if extra_alloc:
                rt.cudaMalloc(1000, label="padding")
            buf = rt.cudaMalloc(16, label="data")
            return buf, tracer

        buf_a, tracer_a = record(False)
        buf_b, tracer_b = record(True)
        assert buf_a.base != buf_b.base
        key_a = tracer_a.normalize(buf_a.base + 8).as_key()
        key_b = tracer_b.normalize(buf_b.base + 8).as_key()
        assert key_a == key_b == ("data", 8)

    def test_aslr_independence(self):
        """Different ASLR slides normalise to identical keys."""
        keys = []
        for seed in (1, 2, 3):
            rt, tracer = traced_runtime(DeviceConfig(aslr=True, seed=seed))
            buf = rt.cudaMalloc(64, label="data")
            keys.append(tracer.normalize(buf.base + 40).as_key())
        assert len(set(keys)) == 1

    def test_aslr_bases_actually_differ(self):
        bases = set()
        for seed in (1, 2, 3):
            rt, _tracer = traced_runtime(DeviceConfig(aslr=True, seed=seed))
            bases.add(rt.cudaMalloc(64).base)
        assert len(bases) > 1


class TestBatchNormalization:
    """``normalize_keys`` must agree with the scalar path byte for byte."""

    def test_matches_scalar_path(self):
        rt, tracer = traced_runtime()
        a = rt.cudaMalloc(100, label="a")
        b = rt.cudaMalloc(300, label="b")
        addresses = np.array([a.base, a.base + 99, b.base, b.base + 150],
                             dtype=np.int64)
        expected = [tracer.normalize(int(addr)).as_key()
                    for addr in addresses]
        assert tracer.normalize_keys(addresses) == expected

    def test_empty_array(self):
        rt, tracer = traced_runtime()
        rt.cudaMalloc(64, label="data")
        assert tracer.normalize_keys(np.array([], dtype=np.int64)) == []

    def test_unknown_address_raises(self):
        rt, tracer = traced_runtime()
        buf = rt.cudaMalloc(64, label="data")
        with pytest.raises(AllocationError):
            tracer.normalize_keys(
                np.array([buf.base, 0x1234], dtype=np.int64))

    def test_no_allocations_raises(self):
        _rt, tracer = traced_runtime()
        with pytest.raises(AllocationError):
            tracer.normalize_keys(np.array([0x1234], dtype=np.int64))

    @given(sizes=st.lists(st.integers(min_value=1, max_value=1024),
                          min_size=1, max_size=8),
           aslr_seed=st.one_of(st.none(),
                               st.integers(min_value=0, max_value=999)))
    @settings(max_examples=100, deadline=None)
    def test_boundary_addresses_over_random_layouts(self, sizes, aslr_seed):
        """First/last byte of every allocation normalises identically on
        both paths, for arbitrary layouts with and without ASLR."""
        config = (DeviceConfig(aslr=True, seed=aslr_seed)
                  if aslr_seed is not None else DeviceConfig())
        rt, tracer = traced_runtime(config)
        buffers = [rt.cudaMalloc(size, label=f"a{i}")
                   for i, size in enumerate(sizes)]
        probes = []
        for buf in buffers:
            probes.append(buf.base)                        # first byte
            probes.append(buf.base + buf.allocation.size - 1)  # last byte
            mid = buf.base + buf.allocation.size // 2
            probes.append(mid)
        addresses = np.array(probes, dtype=np.int64)
        expected = [tracer.normalize(int(addr)).as_key()
                    for addr in addresses]
        assert tracer.normalize_keys(addresses) == expected

    @given(sizes=st.lists(st.integers(min_value=1, max_value=255),
                          min_size=1, max_size=6),
           which=st.integers(min_value=0, max_value=5))
    @settings(max_examples=100, deadline=None)
    def test_alignment_gap_rejected_like_scalar(self, sizes, which):
        """Addresses in the padding between allocations (bump allocator
        aligns to 256 bytes) are invalid on both paths."""
        rt, tracer = traced_runtime()
        buffers = [rt.cudaMalloc(size, label=f"a{i}")
                   for i, size in enumerate(sizes)]
        buf = buffers[which % len(buffers)]
        # a buffer whose byte size is an exact multiple of the alignment
        # has no padding: base + size is the next allocation's base
        assume(buf.allocation.size % ALLOCATION_ALIGNMENT != 0)
        gap = buf.base + buf.allocation.size  # first padding byte
        with pytest.raises(AllocationError):
            tracer.normalize(gap)
        with pytest.raises(AllocationError):
            tracer.normalize_keys(np.array([gap], dtype=np.int64))

    @given(delta=st.integers(min_value=1, max_value=1 << 30))
    @settings(max_examples=50, deadline=None)
    def test_below_heap_base_rejected(self, delta):
        """Addresses before the first allocation are invalid on both paths."""
        rt, tracer = traced_runtime()
        buf = rt.cudaMalloc(64, label="data")
        address = buf.base - delta
        with pytest.raises(AllocationError):
            tracer.normalize(address)
        with pytest.raises(AllocationError):
            tracer.normalize_keys(np.array([address], dtype=np.int64))


class TestLaunchSequence:
    def test_sequence_is_ordered_identities(self):
        @kernel()
        def first(k):
            k.block("entry")

        @kernel()
        def second(k):
            k.block("entry")

        rt, tracer = traced_runtime()
        rt.cuLaunchKernel(first, 1, 32)
        rt.cuLaunchKernel(second, 1, 32)
        seq = tracer.launch_sequence
        assert len(seq) == 2
        assert seq[0].startswith("first@")
        assert seq[1].startswith("second@")
