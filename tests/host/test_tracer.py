"""Host tracer: address normalisation against layout and ASLR noise."""

import numpy as np
import pytest

from repro.gpusim import Device, DeviceConfig, kernel
from repro.gpusim.memory import AllocationError
from repro.host import CudaRuntime, HostTracer


def traced_runtime(config=None):
    device = Device(config or DeviceConfig())
    rt = CudaRuntime(device)
    tracer = HostTracer(device.memory)
    rt.attach_tracer(tracer)
    return rt, tracer


class TestNormalization:
    def test_offsets_relative_to_allocation(self):
        rt, tracer = traced_runtime()
        rt.cudaMalloc(16, label="first")
        buf = rt.cudaMalloc(16, label="second")
        normalized = tracer.normalize(buf.base + 24)
        assert normalized.alloc_label == "second"
        assert normalized.offset == 24

    def test_as_key(self):
        rt, tracer = traced_runtime()
        buf = rt.cudaMalloc(16, label="data")
        assert tracer.normalize(buf.base).as_key() == ("data", 0)

    def test_unknown_address_raises(self):
        _rt, tracer = traced_runtime()
        with pytest.raises(AllocationError):
            tracer.normalize(0x1234)

    def test_try_normalize_returns_none(self):
        _rt, tracer = traced_runtime()
        assert tracer.try_normalize(0x1234) is None

    def test_layout_independence(self):
        """Inserting an extra allocation shifts bases but not offsets."""
        def record(extra_alloc: bool):
            rt, tracer = traced_runtime()
            if extra_alloc:
                rt.cudaMalloc(1000, label="padding")
            buf = rt.cudaMalloc(16, label="data")
            return buf, tracer

        buf_a, tracer_a = record(False)
        buf_b, tracer_b = record(True)
        assert buf_a.base != buf_b.base
        key_a = tracer_a.normalize(buf_a.base + 8).as_key()
        key_b = tracer_b.normalize(buf_b.base + 8).as_key()
        assert key_a == key_b == ("data", 8)

    def test_aslr_independence(self):
        """Different ASLR slides normalise to identical keys."""
        keys = []
        for seed in (1, 2, 3):
            rt, tracer = traced_runtime(DeviceConfig(aslr=True, seed=seed))
            buf = rt.cudaMalloc(64, label="data")
            keys.append(tracer.normalize(buf.base + 40).as_key())
        assert len(set(keys)) == 1

    def test_aslr_bases_actually_differ(self):
        bases = set()
        for seed in (1, 2, 3):
            rt, _tracer = traced_runtime(DeviceConfig(aslr=True, seed=seed))
            bases.add(rt.cudaMalloc(64).base)
        assert len(bases) > 1


class TestLaunchSequence:
    def test_sequence_is_ordered_identities(self):
        @kernel()
        def first(k):
            k.block("entry")

        @kernel()
        def second(k):
            k.block("entry")

        rt, tracer = traced_runtime()
        rt.cuLaunchKernel(first, 1, 32)
        rt.cuLaunchKernel(second, 1, 32)
        seq = tracer.launch_sequence
        assert len(seq) == 2
        assert seq[0].startswith("first@")
        assert seq[1].startswith("second@")
