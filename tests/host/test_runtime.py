"""CUDA host-runtime API surface: allocation family, memcpy, launch family."""

import numpy as np
import pytest

from repro.gpusim import Device, MemorySpace, kernel
from repro.host import CudaRuntime, HostTracer


@kernel()
def noop_kernel(k):
    k.block("entry")


@pytest.fixture
def traced_rt():
    device = Device()
    rt = CudaRuntime(device)
    tracer = HostTracer(device.memory)
    rt.attach_tracer(tracer)
    return rt, tracer


class TestAllocationFamily:
    def test_cudaMalloc_is_global(self, rt):
        buf = rt.cudaMalloc(16)
        assert buf.space is MemorySpace.GLOBAL

    def test_managed_is_generic(self, rt):
        assert rt.cudaMallocManaged(16).space is MemorySpace.GENERIC

    def test_const_and_texture_spaces(self, rt):
        assert rt.constMalloc(16).space is MemorySpace.CONSTANT
        assert rt.textureMalloc(16).space is MemorySpace.TEXTURE

    def test_each_family_member_records_its_api_name(self, traced_rt):
        rt, tracer = traced_rt
        rt.cudaMalloc(4)
        rt.cudaHostAlloc(4)
        rt.cudaMallocHost(4)
        rt.cudaMallocManaged(4)
        rt.cudaMallocAsync(4)
        rt.cudaMallocFromPoolAsync(4)
        apis = [record.api for record in tracer.malloc_records]
        assert apis == ["cudaMalloc", "cudaHostAlloc", "cudaMallocHost",
                        "cudaMallocManaged", "cudaMallocAsync",
                        "cudaMallocFromPoolAsync"]

    def test_malloc_record_contents(self, traced_rt):
        rt, tracer = traced_rt
        buf = rt.cudaMalloc(10, label="payload")
        record = tracer.malloc_records[0]
        assert record.base == buf.base
        assert record.size == buf.allocation.size
        assert record.label == "payload"

    def test_no_tracer_no_failure(self, rt):
        rt.cudaMalloc(4)  # silently untraced


class TestMemcpy:
    def test_htod_dtoh_roundtrip(self, rt):
        buf = rt.cudaMalloc(8, dtype=np.float64)
        src = np.linspace(0, 1, 8)
        rt.cudaMemcpyHtoD(buf, src)
        assert np.allclose(rt.cudaMemcpyDtoH(buf), src)

    def test_htod_shape_mismatch(self, rt):
        buf = rt.cudaMalloc(8)
        with pytest.raises(ValueError):
            rt.cudaMemcpyHtoD(buf, np.zeros(9))

    def test_dtoh_returns_copy(self, rt):
        buf = rt.cudaMalloc(4)
        out = rt.cudaMemcpyDtoH(buf)
        out[0] = 42
        assert buf.data[0] == 0


class TestLaunchFamily:
    def test_launch_records_identity(self, traced_rt):
        rt, tracer = traced_rt
        rt.cuLaunchKernel(noop_kernel, 1, 32)
        record = tracer.launch_records[0]
        assert record.api == "cuLaunchKernel"
        assert record.kernel_name == "noop_kernel"
        assert record.identity.startswith("noop_kernel@")

    def test_ptsz_variant(self, traced_rt):
        rt, tracer = traced_rt
        rt.cuLaunchKernel_ptsz(noop_kernel, 1, 32)
        assert tracer.launch_records[0].api == "cuLaunchKernel_ptsz"

    def test_grid_block_normalised_in_record(self, traced_rt):
        rt, tracer = traced_rt
        rt.cuLaunchKernel(noop_kernel, (2, 2), 32)
        record = tracer.launch_records[0]
        assert record.grid == (2, 2, 1)
        assert record.block == (32, 1, 1)

    def test_seq_numbers_increment(self, traced_rt):
        rt, tracer = traced_rt
        rt.cuLaunchKernel(noop_kernel, 1, 32)
        rt.cuLaunchKernel(noop_kernel, 1, 32)
        assert [r.seq for r in tracer.launch_records] == [0, 1]

    def test_different_sites_different_identities(self, traced_rt):
        rt, tracer = traced_rt
        rt.cuLaunchKernel(noop_kernel, 1, 32)  # site A
        rt.cuLaunchKernel(noop_kernel, 1, 32)  # site B
        first, second = tracer.launch_records
        assert first.identity != second.identity

    def test_same_site_same_identity(self, traced_rt):
        rt, tracer = traced_rt
        for _ in range(2):
            rt.cuLaunchKernel(noop_kernel, 1, 32)
        first, second = tracer.launch_records
        assert first.identity == second.identity

    def test_launch_actually_executes(self, traced_rt):
        rt, _tracer = traced_rt
        events = []
        rt.device.subscribe(events.append)
        rt.cuLaunchKernel(noop_kernel, 1, 32)
        assert events  # kernel begin/end + basic block

    def test_record_size_accounting_positive(self, traced_rt):
        rt, tracer = traced_rt
        rt.cudaMalloc(4, label="x")
        rt.cuLaunchKernel(noop_kernel, 1, 32)
        assert tracer.malloc_trace_bytes() > 0
        assert tracer.launch_trace_bytes() > 0
