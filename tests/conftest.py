"""Shared fixtures for the Owl reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim import Device, DeviceConfig
from repro.host import CudaRuntime
from repro.tracing import TraceRecorder


@pytest.fixture
def device() -> Device:
    """A fresh deterministic simulated device."""
    return Device(DeviceConfig(seed=0))


@pytest.fixture
def rt(device: Device) -> CudaRuntime:
    """A runtime bound to a fresh device."""
    return CudaRuntime(device)


@pytest.fixture
def recorder() -> TraceRecorder:
    """A trace recorder with the default device configuration."""
    return TraceRecorder()


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded random generator for reproducible tests."""
    return np.random.default_rng(1234)


def fresh_runtime() -> CudaRuntime:
    """Helper for tests needing several independent runtimes."""
    return CudaRuntime(Device(DeviceConfig(seed=0)))
