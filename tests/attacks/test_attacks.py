"""Exploitability proofs: AES cache-line key recovery, timing attacks."""

import numpy as np
import pytest

from repro.apps.libgpucrypto import aes_program_ct
from repro.attacks import (
    aes_single_block_program,
    collect_observations,
    recover_key_classes,
    time_program,
    timing_distinguisher,
    true_key_classes,
)
from repro.attacks.aes_recovery import ENTRIES_PER_LINE, POSITIONS_PER_TABLE


class TestObservationModel:
    def test_positions_partition_the_key(self):
        covered = sorted(p for positions in POSITIONS_PER_TABLE.values()
                         for p in positions)
        assert covered == list(range(16))

    def test_observation_contains_all_four_tables(self):
        observation = collect_observations(bytes(16), 1)[0]
        assert set(observation.table_lines) == {0, 1, 2, 3}
        assert all(lines for lines in observation.table_lines.values())

    def test_plaintext_must_be_one_block(self):
        from repro.gpusim import Device
        from repro.host import CudaRuntime
        with pytest.raises(ValueError):
            aes_single_block_program(CudaRuntime(Device()),
                                     (bytes(16), b"short"))


class TestKeyRecovery:
    @pytest.mark.parametrize("key", [
        bytes(range(16)),
        bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"),
    ])
    def test_recovers_line_class_of_every_byte(self, key):
        observations = collect_observations(key, 40,
                                            np.random.default_rng(7))
        survivors = recover_key_classes(observations)
        expected = true_key_classes(key)
        assert survivors == expected
        assert all(len(s) == ENTRIES_PER_LINE for s in survivors)

    def test_true_key_never_eliminated(self):
        key = b"\xa5" * 16
        observations = collect_observations(key, 10,
                                            np.random.default_rng(1))
        survivors = recover_key_classes(observations)
        for position, candidates in enumerate(survivors):
            assert key[position] in candidates

    def test_more_traces_never_widen_survivors(self):
        key = bytes(range(16))
        rng = np.random.default_rng(5)
        observations = collect_observations(key, 30, rng)
        few = recover_key_classes(observations[:5])
        many = recover_key_classes(observations)
        for position in range(16):
            assert many[position] <= few[position]

    def test_entropy_reduction_is_five_bits_per_byte(self):
        key = bytes(range(16))
        survivors = recover_key_classes(
            collect_observations(key, 40, np.random.default_rng(2)))
        # 256 -> 8 candidates: 5 bits recovered per byte, 80 bits total
        remaining_bits = sum(np.log2(len(s)) for s in survivors)
        assert remaining_bits == pytest.approx(16 * 3)


class TestTiming:
    def test_leaky_aes_timing_depends_on_key(self):
        plaintext = bytes(range(16))
        secrets = [(bytes(range(16)), plaintext),
                   (bytes(range(1, 17)), plaintext),
                   (b"\x07" * 16, plaintext)]
        timings = timing_distinguisher(aes_single_block_program, secrets)
        assert len(set(timings.values())) > 1

    def test_constant_flow_aes_timing_is_key_independent(self):
        keys = [bytes(range(16)), bytes(range(1, 17)), b"\x07" * 16]
        timings = timing_distinguisher(aes_program_ct, keys)
        assert len(set(timings.values())) == 1

    def test_time_program_deterministic(self):
        secret = (bytes(range(16)), bytes(range(16)))
        assert (time_program(aes_single_block_program, secret)
                == time_program(aes_single_block_program, secret))
