"""Graceful degradation: every fallback rung is bit-identical to health.

cohort -> per-warp (envelope violation or step budget), columnar -> object
(batch-fold failure).  Each injected fault must leave the recorded trace
byte-identical to a fault-free run and leave a structured event behind.
"""

import pytest

from repro.apps import dummy
from repro.apps.libgpucrypto import aes_program
from repro.gpusim import DeviceConfig
from repro.resilience import FaultPlan
from repro.resilience.events import (
    COHORT_TO_WARP,
    COLUMNAR_TO_OBJECT,
    collecting_degradations,
)
from repro.resilience.faults import activated
from repro.tracing.recorder import TraceRecorder


def record(program, value, plan=None, device_config=None, columnar=True,
           cohort=True):
    recorder = TraceRecorder(device_config=device_config, columnar=columnar,
                             cohort=cohort)
    with activated(plan):
        with collecting_degradations() as log:
            trace = recorder.record(program, value)
    return trace, log


WORKLOADS = [
    pytest.param(aes_program, bytes(range(16)), id="aes"),
    pytest.param(dummy.dummy_program, dummy.fixed_input(), id="dummy"),
]


class TestCohortToWarp:
    @pytest.mark.parametrize("program, value", WORKLOADS)
    def test_injected_violation_falls_back_bit_identically(self, program,
                                                           value):
        healthy, _ = record(program, value)
        plan = FaultPlan.parse("cohort_violation")
        degraded, log = record(program, value, plan=plan)
        assert degraded.signature() == healthy.signature()
        assert degraded == healthy
        counts = log.counts_by_kind()
        assert counts.get(COHORT_TO_WARP, 0) >= 1

    def test_violation_targets_a_single_launch(self):
        value = bytes(range(16))
        healthy, _ = record(aes_program, value)
        plan = FaultPlan.parse("cohort_violation:launch=0")
        degraded, log = record(aes_program, value, plan=plan)
        assert degraded.signature() == healthy.signature()
        assert log.counts_by_kind().get(COHORT_TO_WARP) == 1

    def test_step_budget_trips_the_same_fallback(self):
        value = bytes(range(16))
        healthy, _ = record(aes_program, value)
        config = DeviceConfig(seed=0, cohort_step_budget=1)
        degraded, log = record(aes_program, value, device_config=config)
        assert degraded.signature() == healthy.signature()
        assert degraded == healthy
        assert log.counts_by_kind().get(COHORT_TO_WARP, 0) >= 1

    def test_healthy_run_records_nothing(self):
        _, log = record(aes_program, bytes(range(16)))
        assert len(log) == 0


class TestColumnarToObject:
    @pytest.mark.parametrize("program, value", WORKLOADS)
    def test_batch_fold_failure_replays_per_event(self, program, value):
        healthy, _ = record(program, value)
        plan = FaultPlan.parse("batch_fold_error")
        degraded, log = record(program, value, plan=plan)
        assert degraded.signature() == healthy.signature()
        assert degraded == healthy
        counts = log.counts_by_kind()
        assert counts.get(COLUMNAR_TO_OBJECT, 0) >= 1

    def test_fault_scoped_to_matching_kernel_only(self):
        value = bytes(range(16))
        plan = FaultPlan.parse("batch_fold_error:kernel=no_such_kernel")
        _, log = record(aes_program, value, plan=plan)
        assert log.counts_by_kind().get(COLUMNAR_TO_OBJECT) is None

    def test_degraded_trace_matches_object_transport(self):
        """The per-event replay must agree with the native object path."""
        value = dummy.fixed_input()
        object_path, _ = record(dummy.dummy_program, value, columnar=False)
        plan = FaultPlan.parse("batch_fold_error")
        degraded, _ = record(dummy.dummy_program, value, plan=plan)
        assert degraded.signature() == object_path.signature()


class TestStackedFaults:
    def test_both_rungs_fire_and_the_trace_survives(self):
        value = bytes(range(16))
        healthy, _ = record(aes_program, value)
        plan = FaultPlan.parse("cohort_violation,batch_fold_error")
        degraded, log = record(aes_program, value, plan=plan)
        assert degraded.signature() == healthy.signature()
        counts = log.counts_by_kind()
        assert counts.get(COHORT_TO_WARP, 0) >= 1
        assert counts.get(COLUMNAR_TO_OBJECT, 0) >= 1
