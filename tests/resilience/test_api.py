"""The redesigned public surface: keyword-only APIs with deprecation
shims, config coercion, and fingerprint neutrality of resilience knobs."""

import dataclasses
import json

import pytest

from repro.apps import dummy
from repro.core.pipeline import Owl, OwlConfig
from repro.errors import ConfigError
from repro.resilience import FaultPlan, RetryPolicy
from repro.store import TraceStore
from repro.store.fingerprint import (
    analysis_fingerprint,
    evidence_fingerprint,
    trace_fingerprint,
)

TINY = dict(fixed_runs=2, random_runs=2, seed=11)


def make_owl(**overrides):
    return Owl(dummy.dummy_program, name="dummy",
               config=OwlConfig(**{**TINY, **overrides}))


class TestDetectKeywordOnly:
    def test_keyword_call_is_warning_free(self, recwarn):
        result = make_owl().detect(inputs=[dummy.fixed_input()],
                                   random_input=dummy.random_input)
        assert result.report is not None
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_positional_random_input_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="random_input"):
            result = make_owl().detect([dummy.fixed_input()],
                                       dummy.random_input)
        assert result.report is not None

    def test_positional_store_warns_and_maps(self, tmp_path):
        with pytest.warns(DeprecationWarning):
            result = make_owl().detect([dummy.fixed_input()],
                                       dummy.random_input,
                                       TraceStore(tmp_path / "s"))
        assert result.report is not None
        assert len(TraceStore(tmp_path / "s")) > 0

    def test_positional_and_keyword_shims_agree(self, tmp_path):
        with pytest.warns(DeprecationWarning):
            legacy = make_owl().detect([dummy.fixed_input()],
                                       dummy.random_input)
        modern = make_owl().detect(inputs=[dummy.fixed_input()],
                                   random_input=dummy.random_input)
        assert legacy.report.to_json() == modern.report.to_json()

    def test_missing_random_input_is_a_type_error(self):
        with pytest.raises(TypeError, match="random_input"):
            make_owl().detect(inputs=[dummy.fixed_input()])

    def test_too_many_positionals_is_a_type_error(self):
        with pytest.raises(TypeError):
            make_owl().detect([dummy.fixed_input()], dummy.random_input,
                              None, True, "extra")


class TestTraceStoreKeywordOnly:
    def test_positional_create_warns(self, tmp_path):
        with pytest.warns(DeprecationWarning, match="create"):
            TraceStore(tmp_path / "s", True)

    def test_keyword_create_is_warning_free(self, tmp_path, recwarn):
        TraceStore(tmp_path / "s", create=True)
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_extra_positionals_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            TraceStore(tmp_path / "s", True, "extra")


class TestConfigCoercion:
    def test_retry_dict_coerced_to_policy(self):
        config = OwlConfig(retry={"max_attempts": 5})
        assert isinstance(config.retry, RetryPolicy)
        assert config.retry.max_attempts == 5

    def test_fault_plan_string_coerced(self):
        config = OwlConfig(fault_plan="cohort_violation:launch=2")
        assert isinstance(config.fault_plan, FaultPlan)
        assert config.fault_plan.faults[0].kind == "cohort_violation"

    def test_manifest_json_round_trip(self):
        """Campaign manifests persist configs via asdict + JSON; the
        round-tripped dict form must rebuild the same config."""
        config = OwlConfig(retry=RetryPolicy(max_attempts=4),
                           fault_plan=FaultPlan.parse("worker_crash:chunk=1"),
                           cohort_step_budget=500, **TINY)
        data = json.loads(json.dumps(dataclasses.asdict(config)))
        rebuilt = OwlConfig(**data)
        assert rebuilt == config

    def test_invalid_retry_dict_is_a_config_error(self):
        with pytest.raises(ConfigError):
            OwlConfig(retry={"max_attempts": 0})

    def test_invalid_step_budget_is_a_config_error(self):
        with pytest.raises(ConfigError, match="cohort_step_budget"):
            OwlConfig(cohort_step_budget=0)

    def test_step_budget_reaches_the_device(self):
        owl = make_owl(cohort_step_budget=123456)
        assert owl.device_config.cohort_step_budget == 123456


class TestFingerprintNeutrality:
    def test_resilience_knobs_do_not_change_any_fingerprint(self):
        """Degraded paths are bit-identical, so retry / fault_plan /
        cohort_step_budget must not invalidate stored artifacts."""
        from repro.gpusim import DeviceConfig
        base = OwlConfig(**TINY)
        variant = dataclasses.replace(
            base, retry=RetryPolicy(max_attempts=9),
            fault_plan=FaultPlan.parse("cohort_violation"),
            cohort_step_budget=77)
        base_device = DeviceConfig()
        variant_device = DeviceConfig(cohort_step_budget=77)
        for fingerprint in (trace_fingerprint, evidence_fingerprint,
                            analysis_fingerprint):
            assert fingerprint(base, base_device) == \
                fingerprint(variant, variant_device)
