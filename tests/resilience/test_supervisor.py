"""ChunkSupervisor: retries, deadlines, degradation, error classification.

The worker bodies here are tiny module-level functions (picklable by
qualified name) so the tests exercise the real ``ProcessPoolExecutor``
path with sub-second workloads.
"""

import pickle
import time

import pytest

from repro.errors import WorkerError
from repro.resilience import ChunkSupervisor, FaultPlan, RetryPolicy
from repro.resilience.events import (
    CHUNK_TIMEOUT,
    POOL_RETRY,
    POOL_TO_SERIAL,
    collecting_degradations,
)


def square_chunk(values):
    return [v * v for v in values]


def failing_chunk(values):
    raise pickle.PicklingError("worker-side bug, not an infra failure")


class TestHappyPath:
    def test_results_in_chunk_order(self):
        supervisor = ChunkSupervisor(policy=RetryPolicy(max_attempts=2))
        results = supervisor.run(square_chunk,
                                 [([1, 2],), ([3],), ([4, 5],)])
        assert results == [[1, 4], [9], [16, 25]]

    def test_no_degradations_recorded_when_healthy(self):
        supervisor = ChunkSupervisor()
        with collecting_degradations() as log:
            supervisor.run(square_chunk, [([1],), ([2],)])
        assert log.events == []


class TestFaultSurvival:
    def test_worker_crash_is_retried_to_success(self):
        plan = FaultPlan.parse("worker_crash:chunk=1")
        supervisor = ChunkSupervisor(
            policy=RetryPolicy(max_attempts=3, backoff_base=0.01,
                               backoff_cap=0.02),
            fault_plan=plan)
        with collecting_degradations() as log:
            results = supervisor.run(square_chunk, [([2],), ([3],)])
        assert results == [[4], [9]]
        assert POOL_RETRY in log.counts_by_kind()

    def test_chunk_timeout_is_retried_to_success(self):
        plan = FaultPlan.parse("chunk_timeout:chunk=0:sleep=1.5")
        supervisor = ChunkSupervisor(
            policy=RetryPolicy(max_attempts=3, chunk_timeout=0.3,
                               backoff_base=0.01, backoff_cap=0.02),
            fault_plan=plan)
        with collecting_degradations() as log:
            results = supervisor.run(square_chunk, [([2],), ([3],)])
        assert results == [[4], [9]]
        counts = log.counts_by_kind()
        assert counts.get(CHUNK_TIMEOUT, 0) >= 1

    def test_persistent_crash_degrades_to_in_process(self):
        # attempts=99: the crash outlives every pooled retry, so the
        # chunk must complete on the fault-exempt in-process rung
        plan = FaultPlan.parse("worker_crash:chunk=0:attempts=99")
        supervisor = ChunkSupervisor(
            policy=RetryPolicy(max_attempts=2, backoff_base=0.01,
                               backoff_cap=0.02),
            fault_plan=plan)
        with collecting_degradations() as log:
            results = supervisor.run(square_chunk, [([7],), ([8],)])
        assert results == [[49], [64]]
        assert POOL_TO_SERIAL in log.counts_by_kind()

    def test_degradation_forbidden_raises_worker_error(self):
        plan = FaultPlan.parse("worker_crash:chunk=0:attempts=99")
        supervisor = ChunkSupervisor(
            policy=RetryPolicy(max_attempts=2, backoff_base=0.01,
                               backoff_cap=0.02, degrade_to_serial=False),
            fault_plan=plan)
        with pytest.raises(WorkerError, match="forbids"):
            supervisor.run(square_chunk, [([7],)])


class TestErrorClassification:
    def test_worker_side_exception_propagates(self):
        """A PicklingError raised *by worker code* is a real bug: it must
        surface, never be silently absorbed by a serial fallback."""
        supervisor = ChunkSupervisor(policy=RetryPolicy(max_attempts=3))
        with pytest.raises(pickle.PicklingError, match="worker-side bug"):
            supervisor.run(failing_chunk, [([1],), ([2],)])

    def test_unpicklable_payload_degrades_that_chunk_only(self):
        probe = []

        def closure_chunk(values):  # unpicklable payload member
            probe.extend(values)
            return list(values)

        supervisor = ChunkSupervisor()
        with collecting_degradations() as log:
            results = supervisor.run(
                lambda fn, values: fn(values),
                [(closure_chunk, [1, 2]), (closure_chunk, [3])])
        assert results == [[1, 2], [3]]
        assert probe == [1, 2, 3]
        counts = log.counts_by_kind()
        assert counts.get(POOL_TO_SERIAL) == 2


class TestBackoffWiring:
    def test_sleep_called_with_deterministic_delays(self):
        slept = []
        plan = FaultPlan.parse("worker_crash:chunk=0")
        policy = RetryPolicy(max_attempts=3, backoff_base=0.05,
                             backoff_cap=0.1)
        supervisor = ChunkSupervisor(policy=policy, seed=2024,
                                     fault_plan=plan, sleep=slept.append)
        supervisor.run(square_chunk, [([1],)])
        expected = policy.backoff_seconds(1, 2024, 0)
        assert slept and slept[0] == pytest.approx(expected)
