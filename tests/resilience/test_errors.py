"""The unified exception hierarchy: one root, backward-compatible parents."""

import pytest

import repro
from repro.errors import (
    CampaignError,
    CohortEnvelopeError,
    ConfigError,
    OwlError,
    SerializationError,
    StoreCorruptionError,
    StoreError,
    TraceError,
    WorkerError,
)


class TestHierarchy:
    def test_everything_roots_at_owl_error(self):
        for cls in (ConfigError, TraceError, CohortEnvelopeError,
                    WorkerError, StoreError, StoreCorruptionError,
                    SerializationError, CampaignError):
            assert issubclass(cls, OwlError)

    def test_one_except_catches_the_whole_surface(self):
        for cls in (ConfigError, CohortEnvelopeError, WorkerError,
                    StoreCorruptionError, CampaignError):
            with pytest.raises(OwlError):
                raise cls("boom")

    def test_config_errors_remain_value_errors(self):
        """Existing ``except ValueError`` clauses keep working."""
        assert issubclass(ConfigError, ValueError)
        assert issubclass(SerializationError, ValueError)

    def test_runtime_rooted_errors_remain_runtime_errors(self):
        assert issubclass(TraceError, RuntimeError)
        assert issubclass(WorkerError, RuntimeError)
        assert issubclass(CampaignError, RuntimeError)

    def test_cohort_envelope_is_a_trace_error(self):
        assert issubclass(CohortEnvelopeError, TraceError)

    def test_corruption_is_a_store_error(self):
        assert issubclass(StoreCorruptionError, StoreError)


class TestLegacyAliases:
    def test_historical_import_locations_alias_the_canonical_classes(self):
        from repro.adcfg.serialize import SerializationError as adcfg_ser
        from repro.store.blobs import StoreError as blobs_store
        from repro.store.blobs import StoreCorruptionError as blobs_corrupt

        assert adcfg_ser is SerializationError
        assert blobs_store is StoreError
        assert blobs_corrupt is StoreCorruptionError

    def test_simt_divergence_joins_the_hierarchy(self):
        from repro.gpusim.context import SimtDivergenceError

        assert issubclass(SimtDivergenceError, TraceError)

    def test_monitor_and_recorder_errors_join_the_hierarchy(self):
        from repro.tracing.monitor import MonitorError
        from repro.tracing.recorder import RecordingError

        assert issubclass(MonitorError, TraceError)
        assert issubclass(RecordingError, TraceError)


class TestPublicSurface:
    def test_top_level_exports(self):
        for name in ("OwlError", "ConfigError", "TraceError", "WorkerError",
                     "StoreError", "StoreCorruptionError", "CampaignError",
                     "CohortEnvelopeError", "SerializationError",
                     "DegradationEvent", "RetryPolicy", "FaultPlan"):
            assert hasattr(repro, name), name
            assert name in repro.__all__

    def test_validation_messages_are_one_line(self):
        from repro.core.pipeline import OwlConfig

        for kwargs in ({"test": "bogus"}, {"sampling": "bogus"},
                       {"fixed_runs": 0}, {"workers": "several"},
                       {"confidence": 1.5}, {"offset_granularity": 0}):
            with pytest.raises(ConfigError) as exc:
                OwlConfig(**kwargs)
            assert "\n" not in str(exc.value)
