"""RetryPolicy: validation and deterministic backoff."""

import pytest

from repro.errors import ConfigError
from repro.resilience import RetryPolicy


class TestValidation:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.degrade_to_serial is True

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"max_attempts": -1},
        {"backoff_base": -0.1},
        {"backoff_factor": -1.0},
        {"jitter": 1.5},
        {"jitter": -0.1},
        {"chunk_timeout": 0.0},
        {"chunk_timeout": -2.0},
    ])
    def test_invalid_knobs_raise_config_error(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)

    def test_config_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestBackoff:
    def test_deterministic_across_calls(self):
        policy = RetryPolicy()
        a = policy.backoff_seconds(2, seed=2024, chunk_index=3)
        b = policy.backoff_seconds(2, seed=2024, chunk_index=3)
        assert a == b

    def test_jitter_varies_with_coordinates(self):
        policy = RetryPolicy(backoff_cap=1000.0)
        delays = {policy.backoff_seconds(2, seed=2024, chunk_index=i)
                  for i in range(8)}
        assert len(delays) > 1  # different chunks sleep differently

    def test_exponential_growth_capped(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             backoff_cap=0.3, jitter=0.0)
        assert policy.backoff_seconds(1, 0, 0) == pytest.approx(0.1)
        assert policy.backoff_seconds(2, 0, 0) == pytest.approx(0.2)
        assert policy.backoff_seconds(3, 0, 0) == pytest.approx(0.3)
        assert policy.backoff_seconds(9, 0, 0) == pytest.approx(0.3)

    def test_attempt_zero_sleeps_nothing(self):
        assert RetryPolicy().backoff_seconds(0, 0, 0) == 0.0

    def test_jitter_bounded_by_fraction(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=1.0,
                             backoff_cap=1.0, jitter=0.5)
        for chunk in range(16):
            delay = policy.backoff_seconds(1, seed=7, chunk_index=chunk)
            assert 1.0 <= delay <= 1.5

    def test_manifest_round_trip(self):
        import dataclasses
        policy = RetryPolicy(max_attempts=5, chunk_timeout=1.5)
        assert RetryPolicy(**dataclasses.asdict(policy)) == policy
