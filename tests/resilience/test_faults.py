"""Fault plans: parsing, matching, activation scoping."""

import pytest

from repro.resilience import FaultError, FaultPlan, FaultSpec
from repro.resilience.faults import (
    activated,
    batch_fold_fault_for,
    cohort_violation_for,
)


class TestParsing:
    def test_bare_kind(self):
        spec = FaultSpec.parse("cohort_violation")
        assert spec.kind == "cohort_violation"
        assert spec.params == ()

    def test_kind_with_params(self):
        spec = FaultSpec.parse("worker_crash:chunk=1:attempts=2")
        assert spec.kind == "worker_crash"
        assert spec.get("chunk") == 1
        assert spec.get("attempts") == 2

    def test_scalar_coercion(self):
        spec = FaultSpec.parse("chunk_timeout:sleep=0.25:flag=true:name=x")
        assert spec.get("sleep") == 0.25
        assert spec.get("flag") is True
        assert spec.get("name") == "x"

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError, match="valid kinds"):
            FaultSpec.parse("disk_full")

    def test_malformed_param_rejected(self):
        with pytest.raises(FaultError, match="key=value"):
            FaultSpec.parse("worker_crash:chunk")

    def test_plan_parses_comma_separated_list(self):
        plan = FaultPlan.parse("worker_crash:chunk=1,cohort_violation")
        assert [spec.kind for spec in plan.faults] == [
            "worker_crash", "cohort_violation"]

    def test_plan_parses_sequence_of_specs(self):
        plan = FaultPlan.parse(["worker_crash:chunk=0", "blob_corruption"])
        assert len(plan.faults) == 2

    def test_render_round_trips(self):
        text = "worker_crash:chunk=1:attempts=2,chunk_timeout:sleep=0.5"
        assert FaultPlan.parse(text).render() == text


class TestCoerce:
    def test_none_passthrough(self):
        assert FaultPlan.coerce(None) is None

    def test_plan_passthrough(self):
        plan = FaultPlan.parse("cohort_violation")
        assert FaultPlan.coerce(plan) is plan

    def test_string_form(self):
        assert FaultPlan.coerce("cohort_violation").faults[0].kind == \
            "cohort_violation"

    def test_manifest_dict_form(self):
        import dataclasses
        import json
        plan = FaultPlan.parse("worker_crash:chunk=1")
        round_tripped = json.loads(json.dumps(dataclasses.asdict(plan)))
        assert FaultPlan.coerce(round_tripped) == plan

    def test_unsupported_type_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan.coerce(42)


class TestMatching:
    def test_absent_param_matches_everything(self):
        spec = FaultSpec.parse("cohort_violation")
        assert spec.matches("launch", 0)
        assert spec.matches("launch", 99)

    def test_present_param_matches_exactly(self):
        spec = FaultSpec.parse("cohort_violation:launch=2")
        assert spec.matches("launch", 2)
        assert not spec.matches("launch", 3)


class TestActivation:
    def test_no_context_means_no_faults(self):
        assert cohort_violation_for(0) is None
        assert batch_fold_fault_for("kern") is None

    def test_activated_scopes_the_plan(self):
        plan = FaultPlan.parse("cohort_violation:launch=1")
        with activated(plan):
            assert cohort_violation_for(1) is not None
            assert cohort_violation_for(0) is None
        assert cohort_violation_for(1) is None

    def test_none_plan_is_a_no_op(self):
        with activated(None):
            assert cohort_violation_for(0) is None

    def test_batch_fold_matches_kernel_substring(self):
        plan = FaultPlan.parse("batch_fold_error:kernel=sbox")
        with activated(plan):
            assert batch_fold_fault_for("sbox_lookup_kernel") is not None
            assert batch_fold_fault_for("other_kernel") is None

    def test_worker_directed_faults_skip_in_process_context(self):
        """worker_crash must never fire outside a real pool worker —
        otherwise the in-process degradation rung would kill the parent."""
        from repro.resilience.faults import maybe_fail_chunk
        plan = FaultPlan.parse("worker_crash:chunk=0")
        with activated(plan, chunk_index=0, attempt=0, in_worker=False):
            maybe_fail_chunk()  # would os._exit the test process if broken
