"""The content-addressed blob layer: hashing, atomicity, corruption."""

import zlib

import pytest

from repro.store.blobs import (
    BlobStore,
    StoreCorruptionError,
    StoreError,
    sha256_hex,
)


@pytest.fixture
def blobs(tmp_path):
    return BlobStore(tmp_path)


class TestPutGet:
    def test_round_trip(self, blobs):
        payload = b"owl artifact payload" * 100
        digest = blobs.put(payload)
        assert digest == sha256_hex(payload)
        assert blobs.get(digest) == payload

    def test_put_is_idempotent(self, blobs):
        payload = b"same bytes"
        first = blobs.put(payload)
        second = blobs.put(payload)
        assert first == second
        assert sum(1 for _ in blobs.iter_digests()) == 1

    def test_identical_content_deduplicates(self, blobs):
        blobs.put(b"A" * 1000)
        blobs.put(b"A" * 1000)
        blobs.put(b"B" * 1000)
        assert sum(1 for _ in blobs.iter_digests()) == 2

    def test_empty_payload(self, blobs):
        digest = blobs.put(b"")
        assert blobs.get(digest) == b""

    def test_blobs_are_compressed_on_disk(self, blobs):
        payload = b"x" * 10_000
        digest = blobs.put(payload)
        assert blobs.disk_bytes(digest) < len(payload)

    def test_missing_blob_raises_store_error(self, blobs):
        with pytest.raises(StoreError):
            blobs.get("0" * 64)

    def test_has(self, blobs):
        digest = blobs.put(b"present")
        assert blobs.has(digest)
        assert not blobs.has("f" * 64)

    def test_bad_digest_rejected(self, blobs):
        for bad in ("short", "g" * 64, "../../../etc/passwd"):
            with pytest.raises(StoreError):
                blobs.path_for(bad)


class TestCorruption:
    def test_flipped_byte_detected(self, blobs):
        digest = blobs.put(b"precious artifact bytes" * 50)
        path = blobs.path_for(digest)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(StoreCorruptionError):
            blobs.get(digest)

    def test_wrong_content_at_address_detected(self, blobs):
        digest = blobs.put(b"original")
        blobs.path_for(digest).write_bytes(zlib.compress(b"swapped"))
        with pytest.raises(StoreCorruptionError):
            blobs.get(digest)

    def test_truncated_blob_detected(self, blobs):
        digest = blobs.put(b"some artifact payload" * 20)
        path = blobs.path_for(digest)
        path.write_bytes(path.read_bytes()[:10])
        with pytest.raises(StoreCorruptionError):
            blobs.get(digest)


class TestMaintenance:
    def test_delete_reports_reclaimed_bytes(self, blobs):
        digest = blobs.put(b"to be deleted" * 100)
        on_disk = blobs.disk_bytes(digest)
        assert blobs.delete(digest) == on_disk
        assert not blobs.has(digest)
        assert blobs.delete(digest) == 0  # second delete is a no-op

    def test_sweep_tmp_drops_stale_staging_files(self, blobs):
        stale = blobs.tmp_dir / "stale.tmp"
        stale.write_bytes(b"leftover from a crashed writer")
        blobs.sweep_tmp()
        assert not stale.exists()
