"""Legacy flat blob layout: transparent reads, lazy migration, tooling."""

import zlib

from repro.cli import main
from repro.store.blobs import LAYOUT_VERSION, BlobStore, sha256_hex
from repro.store.store import TraceStore


def _flatten(store: TraceStore) -> int:
    """Rewrite every sharded blob into the legacy flat layout (v1)."""
    moved = 0
    for digest in list(store.blobs.iter_digests()):
        sharded = store.blobs.path_for(digest)
        if sharded.exists():
            sharded.replace(store.blobs.flat_path_for(digest))
            if not any(sharded.parent.iterdir()):
                sharded.parent.rmdir()
            moved += 1
    return moved


def _legacy_store(tmp_path, count=4):
    store = TraceStore(tmp_path)
    for index in range(count):
        store.put_bytes(f"trace/t/{index}", "trace", f"body-{index}".encode())
    assert _flatten(store) == count
    return store


class TestFlatLayoutReads:
    def test_flat_blobs_are_readable(self, tmp_path):
        store = _legacy_store(tmp_path)
        assert store.get_bytes("trace/t/2") == b"body-2"

    def test_layout_reports_v1_then_mixed_then_v2(self, tmp_path):
        store = _legacy_store(tmp_path, count=3)
        assert store.blobs.layout() == {
            "version": 1, "sharded_blobs": 0, "flat_blobs": 3}
        store.get_bytes("trace/t/0")  # touch one: lazy migration
        layout = store.blobs.layout()
        assert layout["version"] == "1+2"
        assert layout == {"version": "1+2", "sharded_blobs": 1,
                          "flat_blobs": 2}
        store.blobs.migrate_flat()
        assert store.blobs.layout() == {
            "version": LAYOUT_VERSION, "sharded_blobs": 3, "flat_blobs": 0}

    def test_read_migrates_blob_to_sharded_path(self, tmp_path):
        store = _legacy_store(tmp_path, count=1)
        digest = next(store.blobs.iter_digests())
        assert store.blobs.flat_path_for(digest).exists()
        store.get_bytes("trace/t/0")
        assert store.blobs.path_for(digest).exists()
        assert not store.blobs.flat_path_for(digest).exists()
        # and the migrated copy round-trips
        assert store.get_bytes("trace/t/0") == b"body-0"

    def test_put_of_existing_flat_payload_migrates_not_duplicates(
            self, tmp_path):
        store = _legacy_store(tmp_path, count=1)
        digest = store.put_bytes("trace/t/again", "trace", b"body-0").blob
        assert store.blobs.path_for(digest).exists()
        assert not store.blobs.flat_path_for(digest).exists()

    def test_migrate_flat_bulk(self, tmp_path):
        store = _legacy_store(tmp_path, count=5)
        assert store.blobs.migrate_flat() == 5
        assert store.blobs.layout()["flat_blobs"] == 0
        for index in range(5):
            assert store.get_bytes(f"trace/t/{index}") == \
                f"body-{index}".encode()


class TestToolingWalksBothLayouts:
    def test_verify_checks_flat_blobs(self, tmp_path, capsys):
        _legacy_store(tmp_path, count=2)
        assert main(["verify", "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "layout v1" in out
        assert "all 2 entries verified" in out

    def test_verify_detects_flat_corruption(self, tmp_path, capsys):
        store = _legacy_store(tmp_path, count=1)
        digest = next(store.blobs.iter_flat_digests())
        store.blobs.flat_path_for(digest).write_bytes(
            zlib.compress(b"tampered"))
        assert main(["verify", "--store", str(tmp_path)]) == 1
        assert "corrupt" in capsys.readouterr().out

    def test_gc_collects_unreferenced_flat_blobs(self, tmp_path, capsys):
        store = _legacy_store(tmp_path, count=3)
        store.delete("trace/t/1")
        assert main(["gc", "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "removed 1 unreferenced blobs" in out
        assert store.blobs.layout()["flat_blobs"] == 2

    def test_gc_dry_run_lists_candidates_without_deleting(self, tmp_path,
                                                          capsys):
        store = _legacy_store(tmp_path, count=3)
        doomed = store.get("trace/t/1").blob
        store.delete("trace/t/1")
        assert main(["gc", "--store", str(tmp_path), "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "dry run: would remove 1" in out
        assert doomed in out  # the candidate digest is printed with size
        assert store.blobs.has(doomed)  # nothing actually deleted

    def test_mixed_layout_rendered_in_gc_output(self, tmp_path, capsys):
        store = _legacy_store(tmp_path, count=2)
        store.get_bytes("trace/t/0")  # migrate one
        assert main(["gc", "--store", str(tmp_path)]) == 0
        assert "layout v1+v2 (mixed" in capsys.readouterr().out


class TestShardedWriteLayout:
    def test_new_blobs_land_sharded(self, tmp_path):
        blobs = BlobStore(tmp_path)
        digest = blobs.put(b"fresh payload")
        assert digest == sha256_hex(b"fresh payload")
        assert blobs.path_for(digest).exists()
        assert (tmp_path / "objects" / digest[:2] / digest[2:]).exists()
