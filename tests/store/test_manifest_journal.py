"""Journaled manifest writes: O(1) appends, batching, crash tolerance."""

import json

import pytest

from repro.errors import StoreCorruptionError
from repro.store.store import TraceStore


def _fill(store, count, prefix="trace/t"):
    for index in range(count):
        store.put_bytes(f"{prefix}/{index}", "trace",
                        f"payload-{index}".encode())


class TestJournalWriteAmplification:
    def test_puts_append_to_journal_not_manifest(self, tmp_path):
        store = TraceStore(tmp_path)
        baseline = store.manifest_saves
        _fill(store, 30)
        # one journal append per put, zero full-manifest rewrites
        assert store.manifest_saves == baseline
        assert store.journal_appends == 30

    def test_batch_flushes_once_with_all_records(self, tmp_path):
        store = TraceStore(tmp_path)
        baseline = store.manifest_saves
        with store.batch():
            _fill(store, 30)
            assert store.journal_appends == 0  # nothing flushed inside
        assert store.journal_appends == 30  # one locked append, 30 lines
        assert store.manifest_saves == baseline
        assert len(TraceStore(tmp_path, create=False)) == 30

    def test_nested_batches_flush_once_at_outermost_exit(self, tmp_path):
        store = TraceStore(tmp_path)
        with store.batch():
            _fill(store, 5, prefix="trace/a")
            with store.batch():
                _fill(store, 5, prefix="trace/b")
            assert store.journal_appends == 0
        assert store.journal_appends == 10

    def test_legacy_mode_rewrites_manifest_per_put(self, tmp_path):
        store = TraceStore(tmp_path, journal=False)
        baseline = store.manifest_saves
        _fill(store, 10)
        assert store.manifest_saves == baseline + 10


class TestJournalReplay:
    def test_entries_visible_to_fresh_open(self, tmp_path):
        store = TraceStore(tmp_path)
        _fill(store, 8)
        store.delete("trace/t/3")
        reopened = TraceStore(tmp_path, create=False)
        assert reopened.get_bytes("trace/t/5") == b"payload-5"
        assert reopened.get("trace/t/3") is None
        assert len(reopened) == 7

    def test_refresh_sees_other_writers(self, tmp_path):
        writer = TraceStore(tmp_path)
        reader = TraceStore(tmp_path)
        writer.put_bytes("trace/x", "trace", b"x")
        assert reader.get("trace/x") is None  # snapshot view
        reader.refresh()
        assert reader.get_bytes("trace/x") == b"x"

    def test_compaction_folds_journal_into_manifest(self, tmp_path):
        store = TraceStore(tmp_path)
        _fill(store, 12)
        store.compact()
        assert store.journal_path.stat().st_size == 0
        manifest = json.loads(store.manifest_path.read_text())
        assert len(manifest["entries"]) == 12
        reopened = TraceStore(tmp_path, create=False)
        assert len(reopened) == 12


class TestJournalCrashTolerance:
    def test_torn_trailing_line_is_dropped(self, tmp_path):
        store = TraceStore(tmp_path)
        _fill(store, 4)
        with open(store.journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"op": "put", "key": "trace/torn"')  # no newline
        reopened = TraceStore(tmp_path, create=False)
        assert len(reopened) == 4
        assert reopened.get("trace/torn") is None

    def test_mid_file_garbage_is_corruption(self, tmp_path):
        store = TraceStore(tmp_path)
        _fill(store, 2)
        lines = store.journal_path.read_text().splitlines()
        lines.insert(1, "NOT JSON")
        store.journal_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(StoreCorruptionError):
            TraceStore(tmp_path, create=False)

    def test_unknown_journal_op_is_corruption(self, tmp_path):
        store = TraceStore(tmp_path)
        _fill(store, 1)
        with open(store.journal_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"op": "shrug", "key": "k"}) + "\n")
        with pytest.raises(StoreCorruptionError):
            TraceStore(tmp_path, create=False)


class TestAutoCompaction:
    def test_journal_is_bounded(self, tmp_path, monkeypatch):
        import repro.store.store as store_module
        monkeypatch.setattr(store_module, "JOURNAL_COMPACT_BYTES", 2048)
        store = TraceStore(tmp_path)
        for index in range(120):
            store.put_bytes(f"trace/auto/{index}", "trace", b"x")
        assert store.journal_path.stat().st_size <= 4096
        reopened = TraceStore(tmp_path, create=False)
        assert len(reopened) == 120
