"""Campaign engine: fingerprints, keys, checkpoints, regression diffs."""

import dataclasses

import numpy as np
import pytest

from repro.core.pipeline import OwlConfig
from repro.core.report import Leak, LeakageReport, LeakType
from repro.gpusim.device import DeviceConfig
from repro.store import Campaign, TraceStore, diff_reports
from repro.store.fingerprint import (
    FingerprintError,
    analysis_fingerprint,
    evidence_fingerprint,
    fingerprint_value,
    trace_fingerprint,
)


@pytest.fixture
def campaign(tmp_path):
    store = TraceStore(tmp_path / "store")
    return Campaign(store, "prog", OwlConfig(fixed_runs=4, random_runs=4),
                    DeviceConfig())


def leak(kernel="kern", block="body", instr=1, p=1e-6,
         leak_type=LeakType.DEVICE_DATA_FLOW) -> Leak:
    return Leak(leak_type=leak_type, kernel_identity=f"{kernel}@abc",
                kernel_name=kernel, block=block, instr=instr, p_value=p,
                statistic=0.5)


def report(name, *leaks) -> LeakageReport:
    rep = LeakageReport(program_name=name, confidence=0.95)
    for item in leaks:
        rep.add(item)
    return rep


class TestFingerprints:
    def test_deterministic_across_calls(self):
        config = OwlConfig()
        device = DeviceConfig()
        assert trace_fingerprint(config, device) == \
            trace_fingerprint(OwlConfig(), DeviceConfig())

    def test_scopes_are_distinct(self):
        config = OwlConfig()
        fps = {trace_fingerprint(config, None),
               evidence_fingerprint(config, None),
               analysis_fingerprint(config, None)}
        assert len(fps) == 3

    def test_trace_fingerprint_ignores_run_counts(self):
        device = DeviceConfig()
        assert trace_fingerprint(OwlConfig(fixed_runs=10), device) == \
            trace_fingerprint(OwlConfig(fixed_runs=99), device)

    def test_evidence_fingerprint_tracks_runs_and_seed(self):
        device = DeviceConfig()
        base = evidence_fingerprint(OwlConfig(), device)
        assert evidence_fingerprint(OwlConfig(fixed_runs=7), device) != base
        assert evidence_fingerprint(OwlConfig(seed=1), device) != base

    def test_analysis_fingerprint_tracks_confidence(self):
        device = DeviceConfig()
        assert analysis_fingerprint(OwlConfig(confidence=0.99), device) != \
            analysis_fingerprint(OwlConfig(confidence=0.95), device)

    def test_parallelism_knobs_do_not_change_any_fingerprint(self):
        """workers / columnar / vectorized / checkpoint cadence are proven
        bit-identical, so campaigns recorded under any of them share
        cache entries."""
        device = DeviceConfig()
        base = OwlConfig()
        variant = dataclasses.replace(base, workers=4, columnar=False,
                                      vectorized=False,
                                      store_checkpoint_every=3)
        for fingerprint in (trace_fingerprint, evidence_fingerprint,
                            analysis_fingerprint):
            assert fingerprint(base, device) == fingerprint(variant, device)

    def test_device_config_changes_trace_fingerprint(self):
        config = OwlConfig()
        assert trace_fingerprint(config, DeviceConfig()) != \
            trace_fingerprint(config, DeviceConfig(seed=123))

    def test_value_fingerprints_cover_input_types(self):
        # every bundled workload input type must fingerprint cleanly
        for value in (b"\x00\x01", 0x6ACF8231, np.zeros(8),
                      np.linspace(0, 1, 4), "text", (1, 2), [3, 4],
                      {"k": 1}, None, 3.5):
            assert isinstance(fingerprint_value(value), str)

    def test_value_fingerprint_distinguishes_dtype(self):
        assert fingerprint_value(np.zeros(4, dtype=np.int64)) != \
            fingerprint_value(np.zeros(4, dtype=np.float64))

    def test_unfingerprintable_value_raises(self):
        with pytest.raises(FingerprintError):
            fingerprint_value(lambda x: x)


class TestKeys:
    def test_random_evidence_key_shared_across_representatives(self, campaign):
        assert campaign.evidence_key("random", "rep-a") == \
            campaign.evidence_key("random", "rep-b")
        assert campaign.evidence_key("fixed", "rep-a") != \
            campaign.evidence_key("fixed", "rep-b")

    def test_checkpoint_key_mirrors_evidence_key(self, campaign):
        evidence_key = campaign.evidence_key("fixed", "rep")
        checkpoint = campaign.checkpoint_key(evidence_key)
        assert checkpoint.startswith("checkpoint/")
        assert checkpoint.split("/", 1)[1] == \
            evidence_key.split("/", 1)[1]

    def test_keys_embed_program_name(self, tmp_path):
        store = TraceStore(tmp_path / "s")
        config = OwlConfig()
        a = Campaign(store, "version-a", config, None)
        b = Campaign(store, "version-b", config, None)
        assert a.trace_key("fp") != b.trace_key("fp")
        assert a.report_key("fp") != b.report_key("fp")


class TestCheckpoints:
    def test_mismatched_checkpoint_meta_treated_as_absent(self, campaign):
        from repro.core.evidence import Evidence
        key = campaign.evidence_key("fixed", "rep")
        evidence = Evidence()
        evidence.num_runs = 2
        campaign.save_checkpoint(key, evidence, runs_done=5, total_runs=8,
                                 side="fixed")
        assert campaign.load_checkpoint(key) is None

    def test_save_evidence_clears_checkpoint(self, campaign):
        from repro.core.evidence import Evidence
        key = campaign.evidence_key("fixed", "rep")
        evidence = Evidence()
        evidence.num_runs = 3
        campaign.save_checkpoint(key, evidence, runs_done=3, total_runs=8,
                                 side="fixed")
        assert campaign.load_checkpoint(key) is not None
        campaign.save_evidence(key, evidence, side="fixed")
        assert campaign.load_checkpoint(key) is None


class TestDiffReports:
    def test_fixed_leak(self):
        diff = diff_reports(report("before", leak()), report("after"))
        assert [l.kernel_name for l in diff.fixed] == ["kern"]
        assert diff.is_clean_fix
        assert not diff.is_regression

    def test_introduced_leak(self):
        diff = diff_reports(report("before"), report("after", leak()))
        assert len(diff.introduced) == 1
        assert diff.is_regression
        assert not diff.is_clean_fix

    def test_persisting_leak_pairs_before_and_after(self):
        before = leak(p=1e-6)
        after = leak(p=1e-9)
        diff = diff_reports(report("a", before), report("b", after))
        assert diff.persisting == [(before, after)]
        assert diff.counts() == {"introduced": 0, "fixed": 0,
                                 "persisting": 1}

    def test_join_is_by_location_not_identity(self):
        # the call-stack digest legitimately changes across versions; a
        # leak at the same (kernel, block, instr) must still match up
        before = leak()
        after = leak()
        after = dataclasses.replace(after, kernel_identity="kern@other")
        diff = diff_reports(report("a", before), report("b", after))
        assert len(diff.persisting) == 1

    def test_different_locations_do_not_join(self):
        diff = diff_reports(report("a", leak(instr=1)),
                            report("b", leak(instr=2)))
        assert len(diff.fixed) == 1
        assert len(diff.introduced) == 1

    def test_leak_type_is_part_of_the_location(self):
        diff = diff_reports(
            report("a", leak(leak_type=LeakType.DEVICE_DATA_FLOW)),
            report("b", leak(leak_type=LeakType.DEVICE_CONTROL_FLOW)))
        assert len(diff.fixed) == 1
        assert len(diff.introduced) == 1

    def test_most_significant_leak_represents_a_location(self):
        diff = diff_reports(report("a", leak(p=1e-3), leak(p=1e-9)),
                            report("b"))
        assert len(diff.fixed) == 1
        assert diff.fixed[0].p_value == 1e-9

    def test_both_leak_free(self):
        diff = diff_reports(report("a"), report("b"))
        assert not diff.is_regression
        assert not diff.is_clean_fix
        assert "leak-free" in diff.render()

    def test_to_dict_round_trips_through_json(self):
        import json
        diff = diff_reports(report("a", leak()), report("b", leak(instr=9)))
        data = json.loads(json.dumps(diff.to_dict()))
        assert data["counts"] == {"introduced": 1, "fixed": 1,
                                  "persisting": 0}
