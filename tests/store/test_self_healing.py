"""Store self-healing: verify/repair, quarantine, and transparent
re-recording of lost artifacts during warm campaign runs."""

import pytest

from repro.cli import _workloads
from repro.core.pipeline import Owl, OwlConfig
from repro.errors import StoreCorruptionError
from repro.resilience import FaultPlan
from repro.resilience.events import STORE_QUARANTINE
from repro.resilience.faults import inject_blob_corruption
from repro.store import TraceStore

TINY = dict(fixed_runs=4, random_runs=4, seed=11, store_checkpoint_every=2)


def run_detection(workload, store=None, reuse_report=True, **overrides):
    program, fixed_inputs, random_input = _workloads()[workload]
    config = OwlConfig(**{**TINY, **overrides})
    owl = Owl(program, name=workload, config=config)
    return owl.detect(inputs=fixed_inputs(), random_input=random_input,
                      store=store, reuse_report=reuse_report)


def corrupt_blob_file(store, key):
    """Flip one bit in the blob file backing *key* on disk."""
    entry = store.get(key)
    path = store.blobs.path_for(entry.blob)
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0x01
    path.write_bytes(bytes(data))


class TestQuarantine:
    def test_drops_every_key_sharing_the_blob(self, tmp_path):
        store = TraceStore(tmp_path / "s")
        store.put_bytes("a", "trace", b"shared payload")
        store.put_bytes("b", "trace", b"shared payload")  # deduped blob
        store.put_bytes("c", "trace", b"different payload")
        dropped = store.quarantine("a")
        assert dropped == ["a", "b"]
        assert "a" not in store and "b" not in store
        assert store.get_bytes("c") == b"different payload"

    def test_moves_the_blob_file_into_quarantine(self, tmp_path):
        store = TraceStore(tmp_path / "s")
        entry = store.put_bytes("a", "trace", b"payload")
        blob_path = store.blobs.path_for(entry.blob)
        assert blob_path.exists()
        store.quarantine("a")
        assert not blob_path.exists()
        assert (store.quarantine_dir / entry.blob).exists()

    def test_unknown_key_is_a_no_op(self, tmp_path):
        store = TraceStore(tmp_path / "s")
        assert store.quarantine("ghost") == []

    def test_drop_is_durable_across_reopen(self, tmp_path):
        store = TraceStore(tmp_path / "s")
        store.put_bytes("a", "trace", b"payload")
        store.quarantine("a")
        reopened = TraceStore(tmp_path / "s", create=False)
        assert "a" not in reopened


class TestVerifyRepair:
    def test_verify_reports_corrupt_keys(self, tmp_path):
        store = TraceStore(tmp_path / "s")
        store.put_bytes("good", "trace", b"fine")
        store.put_bytes("bad", "trace", b"will be damaged soon")
        corrupt_blob_file(store, "bad")
        assert store.verify() == ["bad"]
        assert "bad" in store  # report-only: nothing dropped

    def test_verify_repair_quarantines_and_heals(self, tmp_path):
        store = TraceStore(tmp_path / "s")
        store.put_bytes("good", "trace", b"fine")
        store.put_bytes("bad", "trace", b"will be damaged soon")
        corrupt_blob_file(store, "bad")
        assert store.verify(repair=True) == ["bad"]
        assert "bad" not in store
        assert store.verify() == []  # healed: a clean bill of health

    def test_corrupt_read_raises_without_repair(self, tmp_path):
        store = TraceStore(tmp_path / "s")
        store.put_bytes("bad", "trace", b"will be damaged soon")
        corrupt_blob_file(store, "bad")
        with pytest.raises(StoreCorruptionError):
            store.get_bytes("bad")


class TestInjectBlobCorruption:
    def test_targets_entry_by_kind_and_rank(self, tmp_path):
        store = TraceStore(tmp_path / "s")
        store.put_bytes("t/one", "trace", b"one" * 10)
        store.put_bytes("t/two", "trace", b"two" * 10)
        store.put_bytes("r/rep", "report", b"rep" * 10)
        plan = FaultPlan.parse("blob_corruption:kind=trace:index=1")
        assert inject_blob_corruption(store, plan) == ["t/two"]
        assert store.verify() == ["t/two"]

    def test_cold_store_is_a_no_op(self, tmp_path):
        store = TraceStore(tmp_path / "s")
        plan = FaultPlan.parse("blob_corruption")
        assert inject_blob_corruption(store, plan) == []

    def test_none_plan_is_a_no_op(self, tmp_path):
        store = TraceStore(tmp_path / "s")
        assert inject_blob_corruption(store, None) == []


class TestCampaignSelfHealing:
    @pytest.mark.parametrize("kind", ["trace", "evidence"])
    def test_warm_run_heals_corruption_bit_identically(self, kind, tmp_path):
        reference = run_detection("dummy", store=TraceStore(tmp_path / "ref"))

        store_dir = tmp_path / "s"
        run_detection("dummy", store=TraceStore(store_dir))
        store = TraceStore(store_dir)
        plan = FaultPlan.parse(f"blob_corruption:kind={kind}")
        assert inject_blob_corruption(store, plan)

        healed = run_detection("dummy", store=TraceStore(store_dir),
                               reuse_report=False)
        assert healed.report.to_json() == reference.report.to_json()
        assert healed.degraded
        counts = {}
        for event in healed.degradations:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        assert counts.get(STORE_QUARANTINE, 0) >= 1

    def test_corrupt_report_entry_falls_back_to_reanalysis(self, tmp_path):
        reference = run_detection("dummy", store=TraceStore(tmp_path / "ref"))

        store_dir = tmp_path / "s"
        run_detection("dummy", store=TraceStore(store_dir))
        store = TraceStore(store_dir)
        assert inject_blob_corruption(
            store, FaultPlan.parse("blob_corruption:kind=report"))

        healed = run_detection("dummy", store=TraceStore(store_dir))
        assert not healed.stats.report_cache_hit
        assert healed.report.to_json() == reference.report.to_json()

    def test_healed_store_is_clean_afterwards(self, tmp_path):
        store_dir = tmp_path / "s"
        run_detection("dummy", store=TraceStore(store_dir))
        store = TraceStore(store_dir)
        assert inject_blob_corruption(
            store, FaultPlan.parse("blob_corruption:kind=trace"))
        run_detection("dummy", store=TraceStore(store_dir),
                      reuse_report=False)
        assert TraceStore(store_dir).verify() == []
