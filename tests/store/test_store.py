"""The TraceStore manifest layer: persistence, typed artifacts, gc."""

import json

import pytest

from repro.apps import dummy
from repro.core.evidence import Evidence
from repro.core.report import Leak, LeakageReport, LeakType
from repro.store import StoreCorruptionError, StoreError, TraceStore
from repro.store.serialize import serialize_trace
from repro.tracing import TraceRecorder


@pytest.fixture
def store(tmp_path):
    return TraceStore(tmp_path / "store")


@pytest.fixture
def trace():
    return TraceRecorder().record(dummy.dummy_program, dummy.fixed_input())


def sample_report() -> LeakageReport:
    report = LeakageReport(program_name="sample", confidence=0.95)
    report.add(Leak(leak_type=LeakType.DEVICE_DATA_FLOW,
                    kernel_identity="kern@1", kernel_name="kern",
                    block="body", instr=1, p_value=1e-6, statistic=0.5,
                    detail="test leak"))
    return report


class TestManifest:
    def test_fresh_store_creates_manifest(self, tmp_path):
        store = TraceStore(tmp_path / "new")
        assert (tmp_path / "new" / "manifest.json").exists()
        assert len(store) == 0

    def test_open_missing_store_without_create_fails(self, tmp_path):
        with pytest.raises(StoreError):
            TraceStore(tmp_path / "absent", create=False)

    def test_entries_survive_reopen(self, tmp_path):
        store = TraceStore(tmp_path / "s")
        store.put_bytes("trace/x", "trace", b"payload", meta={"seed": 7})
        reopened = TraceStore(tmp_path / "s", create=False)
        assert "trace/x" in reopened
        entry = reopened.get("trace/x")
        assert entry.kind == "trace"
        assert entry.meta == {"seed": 7}
        assert reopened.get_bytes("trace/x") == b"payload"

    def test_corrupt_manifest_fails_closed(self, tmp_path):
        store = TraceStore(tmp_path / "s")
        store.put_bytes("k", "trace", b"x")
        (tmp_path / "s" / "manifest.json").write_text("{not json",
                                                      encoding="utf-8")
        with pytest.raises(StoreCorruptionError):
            TraceStore(tmp_path / "s")

    def test_unsupported_manifest_version_rejected(self, tmp_path):
        store = TraceStore(tmp_path / "s")
        path = tmp_path / "s" / "manifest.json"
        data = json.loads(path.read_text(encoding="utf-8"))
        data["version"] = 999
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(StoreError):
            TraceStore(tmp_path / "s")

    def test_malformed_entry_rejected(self, tmp_path):
        store = TraceStore(tmp_path / "s")
        path = tmp_path / "s" / "manifest.json"
        data = json.loads(path.read_text(encoding="utf-8"))
        data["entries"]["broken"] = {"kind": "trace"}  # missing blob/size
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(StoreCorruptionError):
            TraceStore(tmp_path / "s")


class TestEntries:
    def test_put_get_bytes(self, store):
        store.put_bytes("a", "trace", b"one")
        store.put_bytes("b", "report", b"two")
        assert store.get_bytes("a") == b"one"
        assert store.get_bytes("missing") is None
        assert len(store) == 2

    def test_overwrite_replaces_entry(self, store):
        store.put_bytes("k", "trace", b"old")
        store.put_bytes("k", "trace", b"new")
        assert store.get_bytes("k") == b"new"
        assert len(store) == 1

    def test_entries_filter_by_kind(self, store):
        store.put_bytes("t1", "trace", b"x")
        store.put_bytes("r1", "report", b"y")
        assert [e.key for e in store.entries(kind="trace")] == ["t1"]
        assert [e.key for e in store.entries()] == ["r1", "t1"]

    def test_size_mismatch_is_corruption(self, store):
        entry = store.put_bytes("k", "trace", b"payload")
        entry.size = 999  # simulate a tampered manifest row
        with pytest.raises(StoreCorruptionError):
            store.get_bytes("k")

    def test_delete(self, store):
        store.put_bytes("k", "trace", b"x")
        assert store.delete("k")
        assert store.get_bytes("k") is None
        assert not store.delete("k")


class TestTypedArtifacts:
    def test_trace_round_trip_byte_identical(self, store, trace):
        store.put_trace("trace/dummy", trace)
        restored = store.get_trace("trace/dummy")
        assert serialize_trace(restored) == serialize_trace(trace)
        assert restored.signature() == trace.signature()

    def test_evidence_round_trip(self, store, trace):
        evidence = Evidence.from_traces([trace])
        store.put_evidence("ev/k", evidence)
        restored = store.get_evidence("ev/k")
        assert restored.num_runs == 1
        assert restored.identity_sequence == evidence.identity_sequence

    def test_report_round_trip_byte_identical(self, store):
        report = sample_report()
        store.put_report("report/k", report)
        restored = store.get_report("report/k")
        assert restored.to_json() == report.to_json()

    def test_corrupt_report_fails_closed(self, store):
        store.put_bytes("report/bad", "report", b"\xff\xfenot json")
        with pytest.raises(StoreCorruptionError):
            store.get_report("report/bad")

    def test_json_round_trip(self, store):
        store.put_json("campaign/k", "campaign", {"a": [1, 2]})
        assert store.get_json("campaign/k") == {"a": [1, 2]}


class TestGc:
    def test_gc_drops_only_unreferenced_blobs(self, store):
        store.put_bytes("keep", "trace", b"keep me")
        store.put_bytes("drop", "trace", b"drop me")
        store.delete("drop")
        result = store.gc()
        assert result["removed"] == 1
        assert result["kept"] == 1
        assert result["reclaimed_bytes"] > 0
        assert store.get_bytes("keep") == b"keep me"

    def test_gc_keeps_shared_blob_while_any_key_references_it(self, store):
        store.put_bytes("a", "trace", b"shared")
        store.put_bytes("b", "trace", b"shared")
        store.delete("a")
        assert store.gc()["removed"] == 0
        assert store.get_bytes("b") == b"shared"

    def test_verify_flags_corrupt_entries(self, store):
        entry = store.put_bytes("good", "trace", b"fine")
        bad = store.put_bytes("bad", "trace", b"will corrupt" * 30)
        path = store.blobs.path_for(bad.blob)
        payload = bytearray(path.read_bytes())
        payload[5] ^= 0xFF
        path.write_bytes(bytes(payload))
        assert store.verify() == ["bad"]
