"""The store's central contract: a warm re-run is bit-identical to the
cold run that populated it, while skipping already-recorded work, and an
interrupted campaign resumes to the same report."""

import pytest

from repro.cli import _workloads
from repro.core.pipeline import Owl, OwlConfig
from repro.store import TraceStore

TINY = dict(fixed_runs=4, random_runs=4, seed=11, store_checkpoint_every=2)


def run_detection(workload, store=None, reuse_report=True, **overrides):
    program, fixed_inputs, random_input = _workloads()[workload]
    config = OwlConfig(**{**TINY, **overrides})
    owl = Owl(program, name=workload, config=config)
    return owl.detect(inputs=fixed_inputs(), random_input=random_input,
                      store=store, reuse_report=reuse_report)


class TestWarmEqualsCold:
    @pytest.mark.parametrize("workload", sorted(_workloads()))
    def test_every_workload_bit_identical_and_cached(self, workload,
                                                     tmp_path):
        cold = run_detection(workload, store=TraceStore(tmp_path / "s"))
        assert not cold.stats.report_cache_hit
        assert cold.stats.cached_traces == 0
        assert cold.stats.cached_runs == 0

        # warm with report reuse: straight cache hit
        warm = run_detection(workload, store=TraceStore(tmp_path / "s"))
        assert warm.stats.report_cache_hit
        assert warm.report.to_json() == cold.report.to_json()

        # warm without report reuse: full re-analysis over cached evidence
        rerun = run_detection(workload, store=TraceStore(tmp_path / "s"),
                              reuse_report=False)
        assert not rerun.stats.report_cache_hit
        assert rerun.stats.cached_traces == len(
            _workloads()[workload][1]())
        assert rerun.report.to_json() == cold.report.to_json()
        if not rerun.leak_free_by_filtering:
            assert rerun.stats.cached_runs == \
                TINY["fixed_runs"] + TINY["random_runs"]

    @pytest.mark.parametrize("workload", ["dummy", "aes"])
    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("columnar", [True, False])
    @pytest.mark.parametrize("cohort", [True, False])
    def test_store_reuse_across_recording_configs(self, workload, workers,
                                                  columnar, cohort,
                                                  tmp_path):
        """workers / columnar / cohort are excluded from fingerprints
        (their paths are proven bit-identical), so one cold serial run
        warms every recording configuration."""
        store_dir = tmp_path / "shared"
        cold = run_detection(workload, store=TraceStore(store_dir))
        warm = run_detection(workload, store=TraceStore(store_dir),
                             reuse_report=False, workers=workers,
                             columnar=columnar, cohort=cohort)
        assert warm.stats.cached_traces > 0
        assert warm.stats.cached_runs > 0
        assert warm.report.to_json() == cold.report.to_json()

    def test_no_cohort_warmed_store_serves_cohort_rerun(self, tmp_path):
        """A store populated under --no-cohort is a straight cache hit for
        the default cohort engine (and vice versa): ``cohort`` does not
        participate in any fingerprint scope."""
        store_dir = tmp_path / "s"
        cold = run_detection("aes", store=TraceStore(store_dir),
                             cohort=False)
        warm = run_detection("aes", store=TraceStore(store_dir),
                             cohort=True)
        assert warm.stats.report_cache_hit
        assert warm.report.to_json() == cold.report.to_json()

        rerun = run_detection("aes", store=TraceStore(store_dir),
                              reuse_report=False, cohort=True)
        assert rerun.stats.cached_traces > 0
        assert rerun.report.to_json() == cold.report.to_json()

    def test_store_attached_cold_run_matches_storeless_run(self, tmp_path):
        plain = run_detection("dummy")
        stored = run_detection("dummy", store=TraceStore(tmp_path / "s"))
        assert stored.report.to_json() == plain.report.to_json()

    def test_distinct_names_do_not_share_cache(self, tmp_path):
        program, fixed_inputs, random_input = _workloads()["dummy"]
        store_dir = tmp_path / "s"
        config = OwlConfig(**TINY)
        Owl(program, name="v1", config=config).detect(
            inputs=fixed_inputs(), random_input=random_input,
            store=TraceStore(store_dir))
        second = Owl(program, name="v2", config=config).detect(
            inputs=fixed_inputs(), random_input=random_input,
            store=TraceStore(store_dir))
        assert not second.stats.report_cache_hit
        assert second.stats.cached_traces == 0

    def test_config_change_invalidates_report_not_traces(self, tmp_path):
        store_dir = tmp_path / "s"
        run_detection("dummy", store=TraceStore(store_dir))
        changed = run_detection("dummy", store=TraceStore(store_dir),
                                confidence=0.99)
        assert not changed.stats.report_cache_hit
        assert changed.stats.cached_traces > 0  # trace scope unchanged


class TestCrashResume:
    def crash_after(self, owl, batches):
        """Make the owl's pool die after *batches* record_evidence calls."""
        calls = {"n": 0}
        real = owl.pool.record_evidence

        def bomb(values, keep_per_run=False):
            calls["n"] += 1
            if calls["n"] > batches:
                raise KeyboardInterrupt("simulated crash")
            return real(values, keep_per_run=keep_per_run)

        owl.pool.record_evidence = bomb

    @pytest.mark.parametrize("crash_batches", [1, 2, 3])
    def test_resume_matches_uninterrupted_run(self, crash_batches, tmp_path):
        program, fixed_inputs, random_input = _workloads()["dummy"]
        config = OwlConfig(**TINY)

        reference = run_detection("dummy",
                                  store=TraceStore(tmp_path / "ref"))

        crashed = Owl(program, name="dummy", config=config)
        self.crash_after(crashed, crash_batches)
        with pytest.raises(KeyboardInterrupt):
            crashed.detect(inputs=fixed_inputs(),
                           random_input=random_input,
                           store=TraceStore(tmp_path / "s"))

        resumed = run_detection("dummy", store=TraceStore(tmp_path / "s"))
        assert not resumed.stats.report_cache_hit
        assert resumed.stats.cached_runs > 0  # checkpointed work survived
        assert resumed.report.to_json() == reference.report.to_json()

    def test_interrupted_campaign_visible_until_finished(self, tmp_path):
        from repro.store import incomplete_campaigns
        program, fixed_inputs, random_input = _workloads()["dummy"]
        config = OwlConfig(**TINY)
        crashed = Owl(program, name="dummy", config=config)
        self.crash_after(crashed, 1)
        with pytest.raises(KeyboardInterrupt):
            crashed.detect(inputs=fixed_inputs(),
                           random_input=random_input,
                           store=TraceStore(tmp_path / "s"))
        store = TraceStore(tmp_path / "s")
        assert len(incomplete_campaigns(store)) == 1
        run_detection("dummy", store=store)
        assert incomplete_campaigns(TraceStore(tmp_path / "s")) == []
