"""Whole-trace and evidence (de)serialisation: lossless, canonical, safe."""

import numpy as np
import pytest

from repro.adcfg.serialize import SerializationError
from repro.apps import dummy
from repro.core.evidence import Evidence
from repro.store.serialize import (
    deserialize_evidence,
    deserialize_trace,
    serialize_evidence,
    serialize_trace,
)
from repro.tracing import TraceRecorder


@pytest.fixture
def trace():
    return TraceRecorder().record(dummy.dummy_program, dummy.fixed_input())


@pytest.fixture
def evidence():
    recorder = TraceRecorder()
    traces = [recorder.record(dummy.dummy_program, dummy.fixed_input(value=v))
              for v in (1, 2, 3)]
    return Evidence.from_traces(traces)


@pytest.fixture
def evidence_per_run():
    recorder = TraceRecorder()
    traces = [recorder.record(dummy.dummy_program, dummy.fixed_input(value=v))
              for v in (4, 5)]
    return Evidence.from_traces(traces, keep_per_run=True)


class TestTraceRoundTrip:
    def test_lossless(self, trace):
        restored = deserialize_trace(serialize_trace(trace))
        assert restored.signature() == trace.signature()
        assert len(restored.invocations) == len(trace.invocations)
        for a, b in zip(restored.invocations, trace.invocations):
            assert (a.identity, a.kernel_name, a.seq) == \
                (b.identity, b.kernel_name, b.seq)
            assert (a.grid, a.block) == (b.grid, b.block)
            assert a.adcfg == b.adcfg
        assert restored.malloc_records == trace.malloc_records
        assert restored.launch_records == trace.launch_records

    def test_canonical(self, trace):
        payload = serialize_trace(trace)
        assert serialize_trace(deserialize_trace(payload)) == payload

    def test_empty_trace(self):
        from repro.tracing.recorder import ProgramTrace
        empty = ProgramTrace(invocations=[],
                             malloc_records=[],
                             launch_records=[])
        restored = deserialize_trace(serialize_trace(empty))
        assert restored.invocations == []
        assert restored.malloc_records == []
        assert restored.launch_records == []


class TestEvidenceRoundTrip:
    def test_lossless(self, evidence):
        restored = deserialize_evidence(serialize_evidence(evidence))
        assert restored.num_runs == evidence.num_runs
        assert restored.keep_per_run == evidence.keep_per_run
        assert restored.identity_sequence == evidence.identity_sequence
        for a, b in zip(restored.slots, evidence.slots):
            assert a.per_run_present == b.per_run_present
            assert a.adcfg == b.adcfg

    def test_canonical(self, evidence):
        payload = serialize_evidence(evidence)
        assert serialize_evidence(deserialize_evidence(payload)) == payload

    def test_per_run_graphs_survive(self, evidence_per_run):
        payload = serialize_evidence(evidence_per_run)
        restored = deserialize_evidence(payload)
        assert restored.keep_per_run
        for a, b in zip(restored.slots, evidence_per_run.slots):
            assert a.per_run_graphs is not None
            assert len(a.per_run_graphs) == len(b.per_run_graphs)
            for ga, gb in zip(a.per_run_graphs, b.per_run_graphs):
                assert ga == gb
        assert serialize_evidence(restored) == payload

    def test_empty_evidence(self):
        empty = Evidence()
        restored = deserialize_evidence(serialize_evidence(empty))
        assert restored.num_runs == 0
        assert restored.slots == []


class TestMalformedPayloads:
    def test_every_trace_truncation_raises_cleanly(self, trace):
        payload = serialize_trace(trace)
        step = max(1, len(payload) // 200)
        for cut in range(0, len(payload), step):
            with pytest.raises(SerializationError):
                deserialize_trace(payload[:cut])

    def test_every_evidence_truncation_raises_cleanly(self, evidence):
        payload = serialize_evidence(evidence)
        step = max(1, len(payload) // 200)
        for cut in range(0, len(payload), step):
            with pytest.raises(SerializationError):
                deserialize_evidence(payload[:cut])

    def test_wrong_magic(self, trace, evidence):
        with pytest.raises(SerializationError):
            deserialize_trace(serialize_evidence(evidence))
        with pytest.raises(SerializationError):
            deserialize_evidence(serialize_trace(trace))

    def test_trailing_garbage(self, trace, evidence):
        with pytest.raises(SerializationError):
            deserialize_trace(serialize_trace(trace) + b"\x00")
        with pytest.raises(SerializationError):
            deserialize_evidence(serialize_evidence(evidence) + b"\x00")

    def test_huge_declared_counts_rejected_before_allocation(self, trace):
        payload = bytearray(serialize_trace(trace))
        # header: magic(4) + version(2) = offset 6 is the invocation count
        payload[6:10] = (0xFFFFFFFF).to_bytes(4, "little")
        with pytest.raises(SerializationError):
            deserialize_trace(bytes(payload))

    def test_single_byte_corruption_never_crashes(self, trace):
        payload = serialize_trace(trace)
        rng = np.random.default_rng(99)
        for _ in range(300):
            corrupt = bytearray(payload)
            corrupt[int(rng.integers(len(payload)))] ^= int(
                rng.integers(1, 256))
            try:
                deserialize_trace(bytes(corrupt))
            except SerializationError:
                continue

    def test_evidence_byte_corruption_never_crashes(self, evidence):
        payload = serialize_evidence(evidence)
        rng = np.random.default_rng(100)
        for _ in range(300):
            corrupt = bytearray(payload)
            corrupt[int(rng.integers(len(payload)))] ^= int(
                rng.integers(1, 256))
            try:
                deserialize_evidence(bytes(corrupt))
            except SerializationError:
                continue
