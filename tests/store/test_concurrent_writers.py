"""Two processes, one store: the fleet-safety contract.

The journaled manifest path means concurrent writers *append* deltas under
an advisory lock instead of clobbering each other's manifest snapshots.
These tests drive real subprocesses against one store directory and assert
the three properties the detection service relies on: no lost manifest
entries, no duplicate blob objects, and byte-identical campaign reports.
"""

import subprocess
import sys
from pathlib import Path

import repro
from repro.store.store import TraceStore

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


def _run(code: str, *args: str) -> "subprocess.Popen":
    return subprocess.Popen(
        [sys.executable, "-c", code, *args],
        env={"PYTHONPATH": SRC_DIR, "PATH": "/usr/bin:/bin"},
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)


WRITER = """
import sys
from repro.store.store import TraceStore
root, tag, count = sys.argv[1], sys.argv[2], int(sys.argv[3])
store = TraceStore(root)
for index in range(count):
    store.put_bytes(f"trace/{tag}/{index}", "trace",
                    f"{tag}-{index}".encode())
print("done")
"""

SHARED_PAYLOAD_WRITER = """
import sys
from repro.store.store import TraceStore
root, tag, count = sys.argv[1], sys.argv[2], int(sys.argv[3])
store = TraceStore(root)
for index in range(count):
    store.put_bytes(f"trace/{tag}/{index}", "trace",
                    f"shared-{index}".encode())  # same bytes across procs
print("done")
"""

CAMPAIGN_RUNNER = """
import sys
from repro.apps.registry import resolve
from repro.core.pipeline import Owl, OwlConfig
root, out = sys.argv[1], sys.argv[2]
program, fixed_inputs, random_input = resolve("dummy")
config = OwlConfig(fixed_runs=5, random_runs=5, seed=7,
                   store_checkpoint_every=2)
owl = Owl(program, name="dummy", config=config)
result = owl.detect(fixed_inputs(), random_input=random_input, store=root)
open(out, "w").write(result.report.to_json())
"""


class TestConcurrentWriters:
    def test_no_lost_manifest_entries(self, tmp_path):
        store_dir = tmp_path / "store"
        TraceStore(store_dir)  # create up front so both open the same store
        count = 40
        procs = [_run(WRITER, str(store_dir), tag, str(count))
                 for tag in ("alpha", "beta")]
        for proc in procs:
            out, _ = proc.communicate(timeout=120)
            assert proc.returncode == 0, out.decode()
        store = TraceStore(store_dir, create=False)
        for tag in ("alpha", "beta"):
            for index in range(count):
                assert store.get_bytes(f"trace/{tag}/{index}") == \
                    f"{tag}-{index}".encode(), f"lost {tag}/{index}"
        assert len(store) == 2 * count

    def test_no_duplicate_blob_objects(self, tmp_path):
        store_dir = tmp_path / "store"
        TraceStore(store_dir)
        count = 25
        procs = [_run(SHARED_PAYLOAD_WRITER, str(store_dir), tag, str(count))
                 for tag in ("alpha", "beta")]
        for proc in procs:
            out, _ = proc.communicate(timeout=120)
            assert proc.returncode == 0, out.decode()
        store = TraceStore(store_dir, create=False)
        # both writers stored identical payload sequences: content
        # addressing must collapse them to exactly `count` objects
        digests = list(store.blobs.iter_digests())
        assert len(digests) == len(set(digests)) == count
        assert len(store) == 2 * count

    def test_concurrent_campaigns_byte_identical_reports(self, tmp_path):
        store_dir = tmp_path / "store"
        TraceStore(store_dir)
        outs = [tmp_path / "a.json", tmp_path / "b.json"]
        procs = [_run(CAMPAIGN_RUNNER, str(store_dir), str(out))
                 for out in outs]
        for proc in procs:
            out, _ = proc.communicate(timeout=300)
            assert proc.returncode == 0, out.decode()
        report_a = outs[0].read_text()
        report_b = outs[1].read_text()
        assert report_a == report_b

        # and both match a fresh single-process run on a cold store
        from repro.apps.registry import resolve
        from repro.core.pipeline import Owl, OwlConfig
        program, fixed_inputs, random_input = resolve("dummy")
        owl = Owl(program, name="dummy",
                  config=OwlConfig(fixed_runs=5, random_runs=5, seed=7,
                                   store_checkpoint_every=2))
        direct = owl.detect(fixed_inputs(), random_input=random_input,
                            store=tmp_path / "solo")
        assert direct.report.to_json() == report_a


class TestSameProcessThreads:
    def test_threads_putting_identical_payloads_never_collide(
            self, tmp_path):
        """Two *threads* (in-process workers share one pid) putting the
        same bytes at once must not share a tmp path: the loser's
        ``os.replace`` would find its file stolen (FileNotFoundError).
        Regression test for the multi-host worker-thread race."""
        import threading

        from repro.store.blobs import BlobStore

        store = BlobStore(tmp_path / "blobs")
        payloads = [f"shared-payload-{index}".encode() for index in range(8)]
        barrier = threading.Barrier(4)
        errors = []

        def hammer():
            try:
                barrier.wait()
                for _ in range(50):
                    for payload in payloads:
                        store.put(payload)
            except Exception as error:  # noqa: BLE001 — collected below
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive()
        assert not errors, errors
        for payload in payloads:
            digest = store.put(payload)  # idempotent re-put
            assert store.get(digest) == payload
        assert not list(store.tmp_dir.glob("*.tmp"))
