"""Countermeasure primitives: correctness and their observable behaviour."""

import numpy as np
import pytest

from repro.countermeasures import (
    RotatedTable,
    masked_lookup,
    striped_lookup,
    striped_table_layout,
)
from repro.core import Owl, OwlConfig
from repro.gpusim import Device, kernel
from repro.gpusim.events import MemoryAccessEvent
from repro.host import CudaRuntime
from repro.tracing import TraceRecorder

TABLE = np.arange(100, 164, dtype=np.int64)  # 64 entries, values 100..163
CONFIG = OwlConfig(fixed_runs=25, random_runs=25)

#: seeded stream for the rotated-table defence: the defence is *random per
#: run* but the test must be reproducible — an unseeded stream makes the
#: statistical verdict flake at the test's own ~5%-per-feature FP rate
_ROTATION_RNG = np.random.default_rng(20240625)


# --- a leaky baseline and the three patched kernels --------------------------

@kernel()
def naive_kernel(k, table, data, out):
    k.block("entry")
    tid = k.global_tid()
    secret = k.load(data, tid)
    k.store(out, tid, k.load(table, secret % 64))


@kernel()
def masked_kernel(k, table, data, out):
    k.block("entry")
    tid = k.global_tid()
    secret = k.load(data, tid)
    k.store(out, tid, masked_lookup(k, table, secret % 64))


@kernel()
def striped_kernel(k, table, data, out):
    k.block("entry")
    tid = k.global_tid()
    secret = k.load(data, tid)
    k.store(out, tid, striped_lookup(k, table, secret % 64, stripe_width=8))


def make_program(kern, rotated=False):
    def program(rt, secret):
        data = rt.cudaMalloc(32, label="data")
        rt.cudaMemcpyHtoD(data, np.full(32, secret))
        out = rt.cudaMalloc(32, label="out")
        if rotated:
            table = RotatedTable(rt, TABLE, label="table",
                                 rng=_ROTATION_RNG)

            @kernel()
            def rotated_kernel(k, data, out):
                k.block("entry")
                tid = k.global_tid()
                value = table.lookup(k, k.load(data, tid) % 64)
                k.store(out, tid, value)

            rt.cuLaunchKernel(rotated_kernel, 1, 32, data, out)
        else:
            table_buf = rt.cudaMalloc(64, label="table")
            rt.cudaMemcpyHtoD(table_buf, TABLE)
            rt.cuLaunchKernel(kern, 1, 32, table_buf, data, out)
        return rt.cudaMemcpyDtoH(out)

    return program


def run(program, secret):
    return program(CudaRuntime(Device()), secret)


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("secret", [0, 7, 63, 200])
    def test_all_variants_compute_the_same_lookup(self, secret):
        expected = TABLE[secret % 64]
        for rotated, kern in ((False, naive_kernel), (False, masked_kernel),
                              (False, striped_kernel), (True, None)):
            out = run(make_program(kern, rotated=rotated), secret)
            assert (out == expected).all(), (rotated, kern)

    def test_striped_layout_validation(self):
        with pytest.raises(ValueError):
            striped_table_layout(np.arange(10), stripe_width=4)
        assert (striped_table_layout(TABLE, 8) == TABLE).all()

    def test_striped_lookup_width_validation(self):
        rt = CudaRuntime(Device())
        table = rt.cudaMalloc(10, label="t")
        from repro.gpusim.context import WarpContext
        from repro.gpusim.kernel import LaunchConfig
        ctx = WarpContext(LaunchConfig.create(1, 32), 0, 0,
                          emit=lambda e: None, shared_alloc=None)
        ctx.block("b")
        with pytest.raises(ValueError):
            striped_lookup(ctx, table, 0, stripe_width=4)


class TestAccessPatterns:
    @staticmethod
    def table_addresses(program, secret):
        device = Device()
        addresses = []
        rt = CudaRuntime(device)

        def listen(event):
            if isinstance(event, MemoryAccessEvent):
                addresses.append(tuple(event.addresses))

        device.subscribe(listen)
        program(rt, secret)
        return addresses

    def test_masked_sweep_is_input_independent(self):
        program = make_program(masked_kernel)
        assert (self.table_addresses(program, 3)
                == self.table_addresses(program, 59))

    def test_striped_pattern_leaks_only_intra_stripe_offset(self):
        program = make_program(striped_kernel)
        # secrets 3 and 11 share offset (mod 8): identical addresses
        assert (self.table_addresses(program, 3)
                == self.table_addresses(program, 11))
        # secrets 3 and 4 differ in offset: different addresses
        assert (self.table_addresses(program, 3)
                != self.table_addresses(program, 4))


class TestOwlVerdicts:
    def random_secret(self, rng):
        return int(rng.integers(0, 64))

    def test_naive_lookup_leaks(self):
        result = Owl(make_program(naive_kernel), name="naive",
                     config=CONFIG).detect(
            inputs=[3, 59], random_input=self.random_secret)
        assert result.report.data_flow_leaks

    def test_masked_lookup_clean(self):
        result = Owl(make_program(masked_kernel), name="masked",
                     config=CONFIG).detect(
            inputs=[3, 59], random_input=self.random_secret)
        assert result.leak_free_by_filtering

    def test_striped_lookup_clean_at_stripe_granularity(self):
        # probes 3 and 60 differ in their intra-stripe offsets (3 vs 4), so
        # their raw traces differ and the full analysis runs
        config = OwlConfig(fixed_runs=25, random_runs=25,
                           offset_granularity=8 * 8)  # 8 entries x 8 bytes
        result = Owl(make_program(striped_kernel), name="striped",
                     config=config).detect(
            inputs=[3, 60], random_input=self.random_secret)
        assert not result.report.data_flow_leaks

    def test_striped_lookup_still_leaks_at_byte_granularity(self):
        """The documented residual leakage: index mod stripe_width."""
        result = Owl(make_program(striped_kernel), name="striped",
                     config=CONFIG).detect(
            inputs=[3, 60], random_input=self.random_secret)
        assert result.report.data_flow_leaks

    def test_striped_probes_with_equal_offsets_are_trace_identical(self):
        """3 and 59 share index mod 8 = 3: filtering proves equality —
        exactly what the scheme promises for the hidden high bits."""
        result = Owl(make_program(striped_kernel), name="striped",
                     config=CONFIG).detect(
            inputs=[3, 59], random_input=self.random_secret)
        assert result.leak_free_by_filtering

    def test_rotated_table_not_a_false_positive(self):
        """The §III oblivious-RAM scenario: randomised addresses fool a
        deterministic differ but not Owl's distribution test.

        All 32 lanes of a run share one secret and one rotation, so pooled
        access counts are 32x-correlated; ``sample_size_cap`` (the knob for
        exactly this effect, see DESIGN.md §6) keeps the test calibrated.
        """
        program = make_program(None, rotated=True)
        recorder = TraceRecorder()
        assert recorder.record(program, 3) != recorder.record(program, 3)

        config = OwlConfig(fixed_runs=25, random_runs=25,
                           sample_size_cap=25)
        result = Owl(program, name="rotated", config=config).detect(
            inputs=[3, 59], random_input=self.random_secret)
        assert not result.report.has_leaks

    def test_sample_size_cap_keeps_real_leaks_detectable(self):
        """The cap must not blunt genuine leakage: the naive lookup's
        near-disjoint histograms stay significant at 25 samples."""
        config = OwlConfig(fixed_runs=25, random_runs=25,
                           sample_size_cap=25)
        result = Owl(make_program(naive_kernel), name="naive",
                     config=config).detect(
            inputs=[3, 59], random_input=self.random_secret)
        assert result.report.data_flow_leaks
