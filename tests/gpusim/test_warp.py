"""Unit tests for warp/lane primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.warp import (
    WARP_SIZE,
    empty_mask,
    full_mask,
    is_uniform,
    lane_bool,
    lane_vector,
)


class TestLaneVector:
    def test_scalar_broadcasts(self):
        vec = lane_vector(7)
        assert vec.shape == (WARP_SIZE,)
        assert (vec == 7).all()

    def test_float_scalar(self):
        vec = lane_vector(1.5)
        assert vec.dtype.kind == "f"
        assert (vec == 1.5).all()

    def test_existing_vector_passthrough(self):
        src = np.arange(WARP_SIZE)
        assert (lane_vector(src) == src).all()

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            lane_vector(np.arange(5))

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            lane_vector(np.zeros((4, 8)))

    def test_dtype_conversion(self):
        vec = lane_vector(np.arange(WARP_SIZE, dtype=np.int32),
                          dtype=np.int64)
        assert vec.dtype == np.int64

    def test_bool_broadcast(self):
        assert lane_bool(True).all()
        assert not lane_bool(False).any()


class TestMasks:
    def test_full_mask(self):
        assert full_mask().sum() == WARP_SIZE

    def test_empty_mask(self):
        assert empty_mask().sum() == 0

    def test_masks_are_fresh_objects(self):
        a = full_mask()
        a[0] = False
        assert full_mask()[0]


class TestIsUniform:
    def test_uniform_values(self):
        assert is_uniform(lane_vector(3), full_mask())

    def test_divergent_values(self):
        assert not is_uniform(np.arange(WARP_SIZE), full_mask())

    def test_divergence_outside_mask_ignored(self):
        values = np.zeros(WARP_SIZE)
        values[-1] = 99  # inactive lane
        mask = full_mask()
        mask[-1] = False
        assert is_uniform(values, mask)

    def test_empty_mask_is_vacuously_uniform(self):
        assert is_uniform(np.arange(WARP_SIZE), empty_mask())

    @given(value=st.integers(min_value=-1000, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_property_broadcast_always_uniform(self, value):
        assert is_uniform(lane_vector(value), full_mask())
