"""Cache-hierarchy model: LRU, associativity, hierarchy, simulation."""

import numpy as np
import pytest

from repro.gpusim import Device, kernel
from repro.gpusim.cache import (
    DRAM_CYCLES,
    L1_HIT_CYCLES,
    L2_HIT_CYCLES,
    CacheConfig,
    CacheHierarchy,
    CacheSimulator,
    SetAssociativeCache,
)
from repro.host import CudaRuntime


class TestCacheConfig:
    def test_capacity(self):
        config = CacheConfig(line_size=64, num_sets=64, associativity=4)
        assert config.capacity_bytes == 16 * 1024

    def test_indexing(self):
        config = CacheConfig(line_size=64, num_sets=64)
        assert config.set_index(0) == 0
        assert config.set_index(64) == 1
        assert config.set_index(64 * 64) == 0  # wraps
        assert config.tag(64 * 64) == 1
        assert config.line_address(100) == 64


class TestSetAssociativeCache:
    def test_cold_miss_then_hit(self):
        cache = SetAssociativeCache()
        assert not cache.access(0x1000)
        assert cache.access(0x1000)
        assert cache.hits == 1 and cache.misses == 1

    def test_same_line_hits(self):
        cache = SetAssociativeCache()
        cache.access(0x1000)
        assert cache.access(0x1000 + 63)  # same 64B line
        assert not cache.access(0x1000 + 64)  # next line

    def test_associativity_respected(self):
        config = CacheConfig(line_size=64, num_sets=4, associativity=2)
        cache = SetAssociativeCache(config)
        stride = 64 * 4  # same set every time
        cache.access(0 * stride)
        cache.access(1 * stride)
        assert cache.access(0 * stride)      # still resident (2 ways)
        cache.access(2 * stride)             # evicts LRU (way 1)
        assert not cache.access(1 * stride)  # gone

    def test_lru_order_updated_by_hits(self):
        config = CacheConfig(line_size=64, num_sets=1, associativity=2)
        cache = SetAssociativeCache(config)
        cache.access(0)
        cache.access(64)
        cache.access(0)      # refresh line 0
        cache.access(128)    # evicts line 64, not line 0
        assert cache.contains(0)
        assert not cache.contains(64)

    def test_flush(self):
        cache = SetAssociativeCache()
        cache.access(0)
        cache.flush()
        assert not cache.contains(0)

    def test_occupancy(self):
        config = CacheConfig(line_size=64, num_sets=2, associativity=4)
        cache = SetAssociativeCache(config)
        cache.access(0)
        cache.access(64)
        cache.access(128)
        assert cache.resident_set_occupancy() == [2, 1]


class TestHierarchy:
    def test_latency_ordering(self):
        hierarchy = CacheHierarchy()
        level, cycles = hierarchy.access(0x4000)
        assert (level, cycles) == ("DRAM", DRAM_CYCLES)
        level, cycles = hierarchy.access(0x4000)
        assert (level, cycles) == ("L1", L1_HIT_CYCLES)

    def test_l2_backstop(self):
        # thrash L1 (16 KB) with a 32 KB working set, then revisit: L2
        # (256 KB) still holds the lines
        hierarchy = CacheHierarchy()
        addresses = [i * 64 for i in range(512)]
        for address in addresses:
            hierarchy.access(address)
        level, cycles = hierarchy.access(addresses[0])
        assert level == "L2"
        assert cycles == L2_HIT_CYCLES


@kernel()
def sweep_kernel(k, buf, n):
    k.block("entry")
    tid = k.global_tid()
    guard = k.branch(tid < n)
    for _ in guard.then("body"):
        k.load(buf, tid)


class TestCacheSimulator:
    def run_with_cache(self, n=64, repeat=1):
        device = Device()
        simulator = CacheSimulator(memory=device.memory)
        device.subscribe(simulator.on_event)
        rt = CudaRuntime(device)
        buf = rt.cudaMalloc(256, label="buf")
        for _ in range(repeat):
            rt.cuLaunchKernel(sweep_kernel, 2, 32, buf, n)
        return simulator

    def test_per_kernel_stats(self):
        simulator = self.run_with_cache(repeat=2)
        assert len(simulator.per_kernel) == 2
        assert all(s.kernel_name == "sweep_kernel"
                   for s in simulator.per_kernel)
        assert simulator.per_kernel[0].accesses == 64

    def test_flush_between_kernels_default(self):
        simulator = self.run_with_cache(repeat=2)
        first, second = simulator.per_kernel
        assert first.l1_hit_rate == second.l1_hit_rate

    def test_no_flush_keeps_cache_warm(self):
        device = Device()
        simulator = CacheSimulator(memory=device.memory,
                                   flush_between_kernels=False)
        device.subscribe(simulator.on_event)
        rt = CudaRuntime(device)
        buf = rt.cudaMalloc(256, label="buf")
        rt.cuLaunchKernel(sweep_kernel, 2, 32, buf, 64)
        rt.cuLaunchKernel(sweep_kernel, 2, 32, buf, 64)
        first, second = simulator.per_kernel
        assert second.l1_hit_rate > first.l1_hit_rate

    def test_lines_touched_normalised(self):
        simulator = self.run_with_cache(n=64)
        lines = simulator.per_kernel[0].touched("buf")
        # 64 int64 elements = 512 bytes = 8 lines from offset 0
        assert lines == {i * 64 for i in range(8)}

    def test_total_cycles_accumulate(self):
        simulator = self.run_with_cache(repeat=3)
        assert simulator.total_cycles() == sum(
            s.cycles for s in simulator.per_kernel)

    def test_sequential_beats_random_hit_rate(self):
        @kernel()
        def strided(k, buf, stride):
            k.block("entry")
            tid = k.global_tid()
            for i in k.range_("loop", 8):
                k.load(buf, (tid * stride + i * stride * 32) % 4096)

        def measure(stride):
            device = Device()
            simulator = CacheSimulator(memory=device.memory)
            device.subscribe(simulator.on_event)
            rt = CudaRuntime(device)
            buf = rt.cudaMalloc(4096, label="buf")
            rt.cuLaunchKernel(strided, 1, 32, buf, stride)
            return simulator.per_kernel[0].l1_hit_rate

        assert measure(1) > measure(8)  # dense reuse of lines vs scattered
