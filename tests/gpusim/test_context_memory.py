"""Memory-access semantics and trace events from the warp context."""

import numpy as np
import pytest

from repro.gpusim.context import SimtDivergenceError, WarpContext
from repro.gpusim.events import MemoryAccessEvent
from repro.gpusim.kernel import LaunchConfig
from repro.gpusim.memory import AllocationError, DeviceMemory, MemorySpace
from repro.gpusim.warp import WARP_SIZE


@pytest.fixture
def memory():
    return DeviceMemory()


def make_context(threads_per_block: int = 32):
    events = []
    launch = LaunchConfig.create(1, threads_per_block)
    ctx = WarpContext(launch=launch, block_id=0, warp_id=0,
                      emit=events.append, shared_alloc=None)
    return ctx, events


def mem_events(events):
    return [e for e in events if isinstance(e, MemoryAccessEvent)]


class TestLoad:
    def test_gather_values(self, memory):
        ctx, _ = make_context()
        buf = memory.alloc_like(np.arange(64, dtype=np.int64))
        ctx.block("b")
        out = ctx.load(buf, ctx.lane * 2)
        assert (out == ctx.lane * 2).all()

    def test_load_emits_event_with_lane_addresses(self, memory):
        ctx, events = make_context()
        buf = memory.alloc(64)
        ctx.block("b")
        ctx.load(buf, ctx.lane)
        event = mem_events(events)[0]
        assert len(event.addresses) == WARP_SIZE
        assert event.addresses[0] == buf.base
        assert event.addresses[1] == buf.base + buf.itemsize
        assert not event.is_store

    def test_only_active_lanes_access(self, memory):
        ctx, events = make_context()
        buf = memory.alloc(64)
        br = ctx.branch(ctx.lane < 5)
        for _ in br.then("b"):
            ctx.load(buf, ctx.lane)
        assert len(mem_events(events)[0].addresses) == 5

    def test_inactive_lanes_get_zero_filler(self, memory):
        ctx, _ = make_context()
        buf = memory.alloc_like(np.full(64, 9, dtype=np.int64))
        br = ctx.branch(ctx.lane < 5)
        for _ in br.then("b"):
            out = ctx.load(buf, ctx.lane)
            assert (out[:5] == 9).all()
            assert (out[5:] == 0).all()

    def test_inactive_lane_indices_not_bounds_checked(self, memory):
        ctx, _ = make_context()
        buf = memory.alloc(8)
        br = ctx.branch(ctx.lane < 8)
        for _ in br.then("b"):
            ctx.load(buf, ctx.lane)  # lanes 8..31 are inactive

    def test_out_of_bounds_active_lane_raises(self, memory):
        ctx, _ = make_context()
        buf = memory.alloc(8)
        ctx.block("b")
        with pytest.raises(AllocationError):
            ctx.load(buf, ctx.lane)

    def test_load_outside_block_raises(self, memory):
        ctx, _ = make_context()
        buf = memory.alloc(64)
        with pytest.raises(SimtDivergenceError):
            ctx.load(buf, ctx.lane)

    def test_space_defaults_to_buffer_space(self, memory):
        ctx, events = make_context()
        buf = memory.alloc(64, space=MemorySpace.CONSTANT)
        ctx.block("b")
        ctx.load(buf, 0)
        assert mem_events(events)[0].space is MemorySpace.CONSTANT

    def test_space_override(self, memory):
        ctx, events = make_context()
        buf = memory.alloc(64)
        ctx.block("b")
        ctx.load(buf, 0, space=MemorySpace.TEXTURE)
        assert mem_events(events)[0].space is MemorySpace.TEXTURE

    def test_uniform_index_counts_per_lane(self, memory):
        """A broadcast load is still one access per active lane, matching
        NVBit's per-thread address reporting."""
        ctx, events = make_context()
        buf = memory.alloc(64)
        ctx.block("b")
        ctx.load(buf, 3)
        event = mem_events(events)[0]
        assert len(event.addresses) == WARP_SIZE
        assert len(set(event.addresses)) == 1

    def test_float_buffer_roundtrip(self, memory):
        ctx, _ = make_context()
        buf = memory.alloc_like(np.linspace(0, 1, 64))
        ctx.block("b")
        out = ctx.load(buf, ctx.lane)
        assert out.dtype == np.float64
        assert np.allclose(out, np.linspace(0, 1, 64)[:32])


class TestStore:
    def test_scatter_values(self, memory):
        ctx, _ = make_context()
        buf = memory.alloc(64)
        ctx.block("b")
        ctx.store(buf, ctx.lane, ctx.lane * 10)
        assert (buf.data[:32] == np.arange(32) * 10).all()

    def test_store_event_flagged(self, memory):
        ctx, events = make_context()
        buf = memory.alloc(64)
        ctx.block("b")
        ctx.store(buf, ctx.lane, 1)
        assert mem_events(events)[0].is_store

    def test_store_only_active_lanes_write(self, memory):
        ctx, _ = make_context()
        buf = memory.alloc(64)
        br = ctx.branch(ctx.lane < 4)
        for _ in br.then("b"):
            ctx.store(buf, ctx.lane, 7)
        assert (buf.data[:4] == 7).all()
        assert (buf.data[4:] == 0).all()

    def test_conflicting_stores_last_lane_wins(self, memory):
        ctx, _ = make_context()
        buf = memory.alloc(4)
        ctx.block("b")
        ctx.store(buf, 0, ctx.lane)
        assert buf.data[0] == 31

    def test_store_dtype_conversion(self, memory):
        ctx, _ = make_context()
        buf = memory.alloc(64, dtype=np.int64)
        ctx.block("b")
        ctx.store(buf, ctx.lane, 2.9)
        assert buf.data[0] == 2  # truncating cast, like a device cvt

    def test_store_with_no_active_lanes_is_noop(self, memory):
        ctx, events = make_context()
        buf = memory.alloc(64)
        ctx.block("b")
        ctx._set_active(np.zeros(WARP_SIZE, dtype=bool))
        ctx.store(buf, ctx.lane, 1)
        assert len(mem_events(events)) == 0


class TestAtomicAdd:
    def test_all_contributions_accumulate(self, memory):
        ctx, _ = make_context()
        buf = memory.alloc(4)
        ctx.block("b")
        ctx.atomic_add(buf, 0, 1)
        assert buf.data[0] == WARP_SIZE

    def test_atomic_respects_mask(self, memory):
        ctx, _ = make_context()
        buf = memory.alloc(4)
        br = ctx.branch(ctx.lane < 10)
        for _ in br.then("b"):
            ctx.atomic_add(buf, 0, 1)
        assert buf.data[0] == 10

    def test_atomic_event_is_store(self, memory):
        ctx, events = make_context()
        buf = memory.alloc(4)
        ctx.block("b")
        ctx.atomic_add(buf, 0, 1)
        assert mem_events(events)[0].is_store


class TestInstructionOrdinals:
    def test_ordinals_increment_within_visit(self, memory):
        ctx, events = make_context()
        buf = memory.alloc(64)
        ctx.block("b")
        ctx.load(buf, 0)
        ctx.load(buf, 1)
        ctx.store(buf, 2, 0)
        assert [e.instr for e in mem_events(events)] == [0, 1, 2]

    def test_ordinals_reset_per_block_entry(self, memory):
        ctx, events = make_context()
        buf = memory.alloc(64)
        for _ in ctx.range_("loop", 3):
            ctx.load(buf, 0)
        assert [(e.visit, e.instr) for e in mem_events(events)] == [
            (0, 0), (1, 0), (2, 0)]

    def test_events_carry_block_identity(self, memory):
        events = []
        launch = LaunchConfig.create(2, 64)
        ctx = WarpContext(launch=launch, block_id=1, warp_id=1,
                          emit=events.append, shared_alloc=None)
        buf = memory.alloc(256)
        ctx.block("b")
        ctx.load(buf, 0)
        event = mem_events(events)[0]
        assert event.block_id == 1
        assert event.warp_id == 1
