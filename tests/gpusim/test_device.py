"""Device launch dispatch, scheduling, shared memory, and event fan-out."""

import numpy as np
import pytest

from repro.gpusim import Device, DeviceConfig, kernel
from repro.gpusim.device import LaunchError
from repro.gpusim.events import (
    BasicBlockEvent,
    KernelBeginEvent,
    KernelEndEvent,
)


@kernel()
def tid_writer(k, out):
    k.block("body")
    tid = k.global_tid()
    k.store(out, tid, tid)


@kernel()
def shared_user(k, out):
    k.block("body")
    scratch = k.shared("scratch", 32)
    k.store(scratch, k.lane, k.lane * 2)
    k.store(out, k.global_tid(), k.load(scratch, k.lane))


class TestLaunch:
    def test_every_thread_runs(self):
        device = Device()
        out = device.alloc(128)
        device.launch(tid_writer, 2, 64, out)
        assert (out.data == np.arange(128)).all()

    def test_partial_last_warp(self):
        device = Device()
        out = device.alloc(40)
        device.launch(tid_writer, 1, 40, out)
        assert (out.data == np.arange(40)).all()

    def test_launch_count_increments(self):
        device = Device()
        out = device.alloc(32)
        device.launch(tid_writer, 1, 32, out)
        device.launch(tid_writer, 1, 32, out)
        assert device.launch_count == 2

    def test_threads_per_block_limit(self):
        device = Device(DeviceConfig(max_threads_per_block=64))
        out = device.alloc(256)
        with pytest.raises(LaunchError):
            device.launch(tid_writer, 1, 128, out)

    def test_begin_end_events_bracket_trace(self):
        device = Device()
        events = []
        device.subscribe(events.append)
        out = device.alloc(32)
        device.launch(tid_writer, 1, 32, out)
        assert isinstance(events[0], KernelBeginEvent)
        assert isinstance(events[-1], KernelEndEvent)
        assert events[0].kernel_name == "tid_writer"
        assert events[0].total_threads == 32
        assert events[0].num_warps == 1

    def test_unsubscribe_stops_delivery(self):
        device = Device()
        events = []
        device.subscribe(events.append)
        device.unsubscribe(events.append)
        out = device.alloc(32)
        device.launch(tid_writer, 1, 32, out)
        assert events == []

    def test_warp_events_cover_all_warps(self):
        device = Device()
        events = []
        device.subscribe(events.append)
        out = device.alloc(128)
        device.launch(tid_writer, 2, 64, out)
        bb = [e for e in events if isinstance(e, BasicBlockEvent)]
        assert {(e.block_id, e.warp_id) for e in bb} == {
            (0, 0), (0, 1), (1, 0), (1, 1)}


class TestSharedMemory:
    def test_shared_buffer_visible_to_kernel(self):
        device = Device()
        out = device.alloc(64)
        device.launch(shared_user, 2, 32, out)
        assert (out.data[:32] == np.arange(32) * 2).all()
        assert (out.data[32:] == np.arange(32) * 2).all()

    def test_shared_allocations_are_per_block(self):
        device = Device()
        out = device.alloc(64)
        device.launch(shared_user, 2, 32, out)
        shared = [b for b in device.memory.buffers
                  if "shared" in b.label]
        assert len(shared) == 2  # one per block
        # same label for all blocks: offsets aggregate in the analysis
        assert len({b.label for b in shared}) == 1


class TestScheduling:
    def test_shuffle_changes_event_order_not_results(self):
        def run(config):
            device = Device(config)
            events = []
            device.subscribe(events.append)
            out = device.alloc(256)
            device.launch(tid_writer, 4, 64, out)
            order = [(e.block_id, e.warp_id) for e in events
                     if isinstance(e, BasicBlockEvent)]
            return order, out.data.copy()

        order_det, data_det = run(DeviceConfig(shuffle_schedule=False))
        order_shuf, data_shuf = run(DeviceConfig(shuffle_schedule=True,
                                                 seed=99))
        assert sorted(order_det) == sorted(order_shuf)
        assert order_det != order_shuf
        assert (data_det == data_shuf).all()


class TestDeviceConfig:
    def test_describe_rows(self):
        rows = DeviceConfig().describe()
        assert "GPU (simulated)" in rows
        assert rows["Warp size"] == "32"
        assert rows["Device ASLR"] == "disabled"

    def test_reset_clears_memory_and_stats(self):
        device = Device()
        device.alloc(16)
        out = device.alloc(32)
        device.launch(tid_writer, 1, 32, out)
        device.reset()
        assert device.memory.buffers == ()
        assert device.launch_count == 0
