"""Unit tests for kernels and launch geometry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.kernel import Kernel, LaunchConfig, kernel


class TestLaunchConfig:
    def test_int_dims_normalise(self):
        cfg = LaunchConfig.create(4, 128)
        assert cfg.grid == (4, 1, 1)
        assert cfg.block == (128, 1, 1)

    def test_partial_tuple_dims(self):
        cfg = LaunchConfig.create((2, 3), (8, 4))
        assert cfg.grid == (2, 3, 1)
        assert cfg.block == (8, 4, 1)

    def test_full_3d(self):
        cfg = LaunchConfig.create((2, 3, 4), (8, 4, 2))
        assert cfg.num_blocks == 24
        assert cfg.threads_per_block == 64

    def test_zero_dim_rejected(self):
        with pytest.raises(ValueError):
            LaunchConfig.create(0, 32)

    def test_too_many_components_rejected(self):
        with pytest.raises(ValueError):
            LaunchConfig.create((1, 2, 3, 4), 32)

    def test_warps_round_up(self):
        assert LaunchConfig.create(1, 33).warps_per_block == 2
        assert LaunchConfig.create(1, 32).warps_per_block == 1
        assert LaunchConfig.create(1, 1).warps_per_block == 1

    def test_totals(self):
        cfg = LaunchConfig.create(3, 48)
        assert cfg.total_threads == 144
        assert cfg.total_warps == 6  # 2 warps per 48-thread block

    def test_block_index_roundtrip(self):
        cfg = LaunchConfig.create((3, 2, 2), 32)
        seen = set()
        for linear in range(cfg.num_blocks):
            seen.add(cfg.block_index(linear))
        assert len(seen) == cfg.num_blocks
        assert cfg.block_index(0) == (0, 0, 0)
        assert cfg.block_index(1) == (1, 0, 0)  # x fastest
        assert cfg.block_index(3) == (0, 1, 0)

    def test_thread_index_roundtrip(self):
        cfg = LaunchConfig.create(1, (4, 2, 2))
        assert cfg.thread_index(0) == (0, 0, 0)
        assert cfg.thread_index(1) == (1, 0, 0)
        assert cfg.thread_index(4) == (0, 1, 0)
        assert cfg.thread_index(8) == (0, 0, 1)

    @given(gx=st.integers(1, 8), gy=st.integers(1, 8), gz=st.integers(1, 4),
           bx=st.integers(1, 64))
    @settings(max_examples=50, deadline=None)
    def test_property_block_indices_cover_grid(self, gx, gy, gz, bx):
        cfg = LaunchConfig.create((gx, gy, gz), bx)
        indices = {cfg.block_index(i) for i in range(cfg.num_blocks)}
        assert len(indices) == gx * gy * gz
        assert all(0 <= x < gx and 0 <= y < gy and 0 <= z < gz
                   for x, y, z in indices)


class TestKernelDecorator:
    def test_name_defaults_to_function_name(self):
        @kernel()
        def my_kernel(k):
            pass

        assert isinstance(my_kernel, Kernel)
        assert my_kernel.name == "my_kernel"

    def test_explicit_name(self):
        @kernel("custom")
        def my_kernel(k):
            pass

        assert my_kernel.name == "custom"

    def test_call_forwards_arguments(self):
        calls = []

        @kernel()
        def probe(k, a, b):
            calls.append((k, a, b))

        probe("ctx", 1, 2)
        assert calls == [("ctx", 1, 2)]
