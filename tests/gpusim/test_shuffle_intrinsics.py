"""Warp shuffle intrinsics: up/down/xor semantics and reduction patterns."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.context import WarpContext
from repro.gpusim.kernel import LaunchConfig
from repro.gpusim.warp import WARP_SIZE


def make_context():
    return WarpContext(LaunchConfig.create(1, 32), 0, 0,
                       emit=lambda e: None, shared_alloc=None)


class TestShflUp:
    def test_shift_semantics(self):
        ctx = make_context()
        out = ctx.shfl_up(ctx.lane, 1)
        assert out[0] == 0           # lane 0 keeps its own
        assert (out[1:] == np.arange(31)).all()

    def test_zero_delta_is_identity(self):
        ctx = make_context()
        assert (ctx.shfl_up(ctx.lane, 0) == ctx.lane).all()

    def test_low_lanes_keep_their_values(self):
        ctx = make_context()
        out = ctx.shfl_up(ctx.lane * 10, 4)
        assert (out[:4] == ctx.lane[:4] * 10).all()


class TestShflDown:
    def test_shift_semantics(self):
        ctx = make_context()
        out = ctx.shfl_down(ctx.lane, 1)
        assert (out[:-1] == np.arange(1, 32)).all()
        assert out[-1] == 31         # top lane keeps its own

    def test_prefix_sum_pattern(self):
        """The classic shfl_up inclusive scan."""
        ctx = make_context()
        values = np.ones(WARP_SIZE)
        total = values.copy()
        delta = 1
        while delta < WARP_SIZE:
            shifted = ctx.shfl_up(total, delta)
            total = np.where(ctx.lane >= delta, total + shifted, total)
            delta *= 2
        assert (total == np.arange(1, WARP_SIZE + 1)).all()


class TestShflXor:
    def test_butterfly_exchange(self):
        ctx = make_context()
        out = ctx.shfl_xor(ctx.lane, 1)
        assert out[0] == 1 and out[1] == 0
        assert out[30] == 31 and out[31] == 30

    def test_xor_is_an_involution(self):
        ctx = make_context()
        values = np.arange(WARP_SIZE) * 3.5
        twice = ctx.shfl_xor(ctx.shfl_xor(values, 5), 5)
        assert (twice == values).all()

    @pytest.mark.parametrize("mask", [1, 2, 4, 8, 16])
    def test_butterfly_reduction_reaches_all_lanes(self, mask):
        """Repeated xor-shuffles with halving masks give a full reduction."""
        ctx = make_context()
        values = ctx.lane.astype(float)
        total = values.copy()
        m = 16
        while m >= 1:
            total = total + ctx.shfl_xor(total, m)
            m //= 2
        assert (total == values.sum()).all()

    @given(mask=st.integers(0, 31))
    @settings(max_examples=32, deadline=None)
    def test_property_permutation(self, mask):
        ctx = make_context()
        out = ctx.shfl_xor(ctx.lane, mask)
        assert sorted(out) == list(range(WARP_SIZE))
