"""Property tests: cohort ≡ per-warp on randomised toy kernels.

Hypothesis draws a kernel shape — grid size, (possibly partial) block
size, per-block loop trip counts, a lane-divergence threshold and a small
program of memory/sync/vote operations — plus a device schedule, and the
property asserts the cohort engine's event stream, memory state and trace
signature are byte-identical to the per-warp reference loop.

The toy kernels follow the engine's equivalence envelope (DESIGN.md §10),
which is ordinary race-free CUDA: plain stores hit thread-disjoint cells,
cross-warp accumulation goes through (commutative) atomics, and loads may
alias anything because their results never feed back into state.  A
kernel where two warps race plain stores on one address is undefined on
real hardware, and the two engines may serialise such a race differently.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import Device, DeviceConfig, kernel
from repro.gpusim.events import MemoryBatchEvent
from repro.gpusim.warp import WARP_SIZE

#: Large enough that every thread owns a private cell (max 4 blocks × 96
#: threads); stores stay thread-disjoint, the race-free CUDA discipline.
DATA_SIZE = 512
ACC_SIZE = 8

OPS = ["store", "load", "atomic", "sync", "branch", "vote"]

op_st = st.tuples(st.sampled_from(OPS), st.integers(0, 5))

kernel_spec_st = st.fixed_dictionaries({
    "grid": st.integers(1, 4),
    "block": st.integers(8, 96),
    "trip_a": st.integers(0, 3),
    "trip_b": st.integers(0, 3),
    "trip_m": st.integers(1, 4),
    "threshold": st.integers(0, WARP_SIZE),
    "ops": st.lists(op_st, min_size=1, max_size=5),
})

device_spec_st = st.fixed_dictionaries({
    "seed": st.integers(0, 2 ** 16),
    "shuffle": st.booleans(),
})


def build_kernel(spec):
    threshold = spec["threshold"]
    trip_a, trip_b, trip_m = spec["trip_a"], spec["trip_b"], spec["trip_m"]
    ops = spec["ops"]

    @kernel()
    def toy(k, data, acc):
        k.block("entry")
        tid = k.global_tid()
        trips = k.uniform(
            (k.block_id * trip_a + trip_b) % trip_m + 1 + k.lane * 0)
        for i in k.range_("loop", trips):
            for op, p in ops:
                if op == "store":
                    k.store(data, tid, tid * (p + 1) + i)
                elif op == "load":
                    k.load(data, (tid + p * (i + 1)) % DATA_SIZE)
                elif op == "atomic":
                    k.atomic_add(acc, (k.lane + p) % ACC_SIZE, i + 1)
                elif op == "sync":
                    k.syncthreads()
                elif op == "branch":
                    for _ in k.branch(k.lane < threshold).then("taken"):
                        k.store(data, tid, i + p)
                else:  # vote — may disagree across warps and force a split
                    if k.any(tid % (p + 2) == 0):
                        k.block("anytrue")
                        k.load(data, tid % DATA_SIZE)

    return toy


def run(spec, device_spec, cohort, columnar=False):
    config = DeviceConfig(seed=device_spec["seed"],
                          shuffle_schedule=device_spec["shuffle"])
    device = Device(config, columnar=columnar, cohort=cohort)
    events = []
    device.subscribe(events.append)
    data = device.alloc(DATA_SIZE, label="data")
    acc = device.alloc(ACC_SIZE, label="acc")
    device.launch(build_kernel(spec), spec["grid"], spec["block"], data, acc)
    return events, data.data.copy(), acc.data.copy()


@settings(max_examples=40, deadline=None)
@given(spec=kernel_spec_st, device_spec=device_spec_st)
def test_cohort_matches_per_warp_events_and_memory(spec, device_spec):
    ref_events, ref_data, ref_acc = run(spec, device_spec, cohort=False)
    coh_events, coh_data, coh_acc = run(spec, device_spec, cohort=True)
    assert coh_events == ref_events
    assert (coh_data == ref_data).all()
    assert (coh_acc == ref_acc).all()


@settings(max_examples=20, deadline=None)
@given(spec=kernel_spec_st, device_spec=device_spec_st)
def test_cohort_matches_per_warp_columnar_batches(spec, device_spec):
    def expanded(cohort):
        events, data, acc = run(spec, device_spec, cohort, columnar=True)
        flat = [event
                for e in events
                for event in (e.iter_events()
                              if isinstance(e, MemoryBatchEvent) else [e])]
        return flat, data, acc

    ref_events, ref_data, ref_acc = expanded(cohort=False)
    coh_events, coh_data, coh_acc = expanded(cohort=True)
    assert coh_events == ref_events
    assert (coh_data == ref_data).all()
    assert (coh_acc == ref_acc).all()


@settings(max_examples=15, deadline=None)
@given(spec=kernel_spec_st, seed=st.integers(0, 2 ** 16))
def test_signature_identical_under_shuffle_and_aslr(spec, seed):
    from repro.tracing.recorder import TraceRecorder

    toy = build_kernel(spec)

    def program(rt, value):
        data = rt.cudaMalloc(DATA_SIZE, label="data")
        seeded = np.zeros(DATA_SIZE, dtype=np.int64)
        seeded[0] = value
        rt.cudaMemcpyHtoD(data, seeded)
        acc = rt.cudaMalloc(ACC_SIZE, label="acc")
        rt.cuLaunchKernel(toy, spec["grid"], spec["block"], data, acc)

    config = DeviceConfig(seed=seed, shuffle_schedule=True, aslr=True)
    reference = TraceRecorder(device_config=config, cohort=False).record(
        program, 3)
    cohorted = TraceRecorder(device_config=config, cohort=True).record(
        program, 3)
    assert cohorted.signature() == reference.signature()
    assert cohorted == reference
