"""Unit tests for the device memory model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.memory import (
    ALLOCATION_ALIGNMENT,
    AllocationError,
    DeviceMemory,
    MemoryAllocator,
    MemorySpace,
)


class TestMemoryAllocator:
    def test_bases_are_aligned(self):
        allocator = MemoryAllocator()
        for size in (1, 7, 255, 256, 257, 4096):
            alloc = allocator.allocate(size)
            assert alloc.base % ALLOCATION_ALIGNMENT == 0

    def test_allocations_do_not_overlap(self):
        allocator = MemoryAllocator()
        allocs = [allocator.allocate(100 + i) for i in range(20)]
        for first, second in zip(allocs, allocs[1:]):
            assert first.end <= second.base

    def test_sizes_are_preserved(self):
        allocator = MemoryAllocator()
        alloc = allocator.allocate(123)
        assert alloc.size == 123

    def test_zero_size_rejected(self):
        allocator = MemoryAllocator()
        with pytest.raises(AllocationError):
            allocator.allocate(0)

    def test_negative_size_rejected(self):
        allocator = MemoryAllocator()
        with pytest.raises(AllocationError):
            allocator.allocate(-5)

    def test_resolve_finds_owner_and_offset(self):
        allocator = MemoryAllocator()
        first = allocator.allocate(300)
        second = allocator.allocate(300)
        alloc, offset = allocator.resolve(second.base + 17)
        assert alloc is second
        assert offset == 17
        alloc, offset = allocator.resolve(first.base)
        assert alloc is first
        assert offset == 0

    def test_resolve_unknown_address_raises(self):
        allocator = MemoryAllocator()
        allocator.allocate(64)
        with pytest.raises(AllocationError):
            allocator.resolve(0x10)

    def test_resolve_end_is_exclusive(self):
        allocator = MemoryAllocator()
        alloc = allocator.allocate(64)
        with pytest.raises(AllocationError):
            # one past the last byte, inside alignment padding
            allocator.resolve(alloc.base + 64)

    def test_deterministic_without_aslr(self):
        bases_a = [a.base for a in
                   (MemoryAllocator(aslr=False).allocate(10),)]
        bases_b = [a.base for a in
                   (MemoryAllocator(aslr=False).allocate(10),)]
        assert bases_a == bases_b

    def test_aslr_randomises_bases(self):
        bases = {MemoryAllocator(aslr=True, seed=s).allocate(10).base
                 for s in range(8)}
        assert len(bases) > 1

    def test_aslr_reset_reslides(self):
        allocator = MemoryAllocator(aslr=True, seed=3)
        first = allocator.allocate(10).base
        allocator.reset()
        second = allocator.allocate(10).base
        assert first != second

    def test_reset_clears_allocations(self):
        allocator = MemoryAllocator()
        allocator.allocate(10)
        allocator.reset()
        assert allocator.allocations == ()

    def test_alloc_ids_are_sequential(self):
        allocator = MemoryAllocator()
        ids = [allocator.allocate(8).alloc_id for _ in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    @given(sizes=st.lists(st.integers(min_value=1, max_value=10_000),
                          min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_property_every_inner_byte_resolves_to_its_allocation(self, sizes):
        allocator = MemoryAllocator()
        allocs = [allocator.allocate(size) for size in sizes]
        for alloc in allocs:
            for probe in {0, alloc.size // 2, alloc.size - 1}:
                found, offset = allocator.resolve(alloc.base + probe)
                assert found is alloc
                assert offset == probe


class TestDeviceBuffer:
    def test_alloc_zero_initialises(self):
        memory = DeviceMemory()
        buf = memory.alloc(16)
        assert (buf.data == 0).all()

    def test_alloc_like_copies(self):
        memory = DeviceMemory()
        src = np.arange(12, dtype=np.float64)
        buf = memory.alloc_like(src)
        src[0] = 999.0
        assert buf.data[0] == 0.0

    def test_addresses_scale_by_itemsize(self):
        memory = DeviceMemory()
        buf = memory.alloc(8, dtype=np.int64)
        addrs = buf.addresses_for(np.array([0, 1, 2]))
        assert list(np.diff(addrs)) == [8, 8]
        assert addrs[0] == buf.base

    def test_bounds_check_accepts_valid(self):
        memory = DeviceMemory()
        buf = memory.alloc(10)
        buf.check_bounds(np.array([0, 9]))

    def test_bounds_check_rejects_high(self):
        memory = DeviceMemory()
        buf = memory.alloc(10)
        with pytest.raises(AllocationError):
            buf.check_bounds(np.array([10]))

    def test_bounds_check_rejects_negative(self):
        memory = DeviceMemory()
        buf = memory.alloc(10)
        with pytest.raises(AllocationError):
            buf.check_bounds(np.array([-1]))

    def test_bounds_check_empty_ok(self):
        memory = DeviceMemory()
        buf = memory.alloc(10)
        buf.check_bounds(np.array([], dtype=np.int64))

    def test_space_tags(self):
        memory = DeviceMemory()
        for space in (MemorySpace.GLOBAL, MemorySpace.CONSTANT,
                      MemorySpace.SHARED, MemorySpace.TEXTURE):
            buf = memory.alloc(4, space=space)
            assert buf.space is space

    def test_labels_default_to_alloc_id(self):
        memory = DeviceMemory()
        buf = memory.alloc(4)
        assert buf.label == "alloc0"

    def test_buffer_for_unknown_id(self):
        memory = DeviceMemory()
        with pytest.raises(AllocationError):
            memory.buffer_for(42)

    def test_memory_reset_forgets_buffers(self):
        memory = DeviceMemory()
        memory.alloc(4)
        memory.reset()
        assert memory.buffers == ()


class TestMemorySpaceEnum:
    def test_nvbit_categories_present(self):
        names = {space.name for space in MemorySpace}
        assert names == {"NONE", "LOCAL", "GENERIC", "GLOBAL", "SHARED",
                         "CONSTANT", "GLOBAL_TO_SHARED", "SURFACE", "TEXTURE"}

    def test_values_are_stable(self):
        # serialized traces depend on these values staying put
        assert MemorySpace.GLOBAL.value == 3
        assert MemorySpace.SHARED.value == 4
        assert MemorySpace.CONSTANT.value == 5
