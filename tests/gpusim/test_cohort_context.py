"""Unit tests for the warp-cohort execution engine.

These exercise the cohort machinery directly at the device level —
sub-cohort splitting on every collapsing collective, write-journal
rollback, shared memory views, the flat fast path's materialisation, and
the per-buffer view cache — always asserting against the per-warp
reference loop as ground truth.
"""

import numpy as np
import pytest

from repro.gpusim import Device, DeviceConfig, kernel
from repro.gpusim.cohort import CohortContext, CohortSplit
from repro.gpusim.context import SimtDivergenceError
from repro.gpusim.events import BasicBlockEvent, MemoryAccessEvent, SyncEvent
from repro.gpusim.kernel import LaunchConfig
from repro.gpusim.memory import WriteJournal
from repro.gpusim.warp import WARP_SIZE


def run_both(kern, grid, block, alloc_specs, shuffle=False, seed=0):
    """Run *kern* under per-warp and cohort engines; return both sides'
    (events, {label: final array}) for comparison."""
    out = {}
    for cohort in (False, True):
        config = DeviceConfig(seed=seed, shuffle_schedule=shuffle)
        device = Device(config, columnar=False, cohort=cohort)
        events = []
        device.subscribe(events.append)
        buffers = [device.alloc(*spec[:-1], label=spec[-1])
                   for spec in alloc_specs]
        device.launch(kern, grid, block, *buffers)
        out[cohort] = (events, {buf.label: buf.data.copy()
                                for buf in buffers})
    return out[False], out[True]


def assert_equivalent(kern, grid, block, alloc_specs, shuffle=False, seed=0):
    (ref_events, ref_mem), (coh_events, coh_mem) = run_both(
        kern, grid, block, alloc_specs, shuffle=shuffle, seed=seed)
    assert coh_events == ref_events
    for label, ref_data in ref_mem.items():
        assert (coh_mem[label] == ref_data).all(), label


class TestCohortSplitting:
    def test_uniform_branch_divergence_splits(self):
        """Warps that disagree on a uniform value re-run as sub-cohorts."""

        @kernel()
        def per_block(k, data):
            k.block("entry")
            bid = k.uniform(k.block_id + k.lane * 0)
            if bid % 2 == 0:
                k.block("even")
                k.store(data, k.global_tid(), 1)
            else:
                k.block("odd")
                k.store(data, k.global_tid(), 2)

        assert_equivalent(per_block, 4, 32, [(128, "data")])

    def test_variable_trip_count_loop(self):
        """Per-warp loop trip counts drive repeated splitting."""

        @kernel()
        def trips(k, data):
            k.block("entry")
            n = k.uniform(k.block_id % 3 + 1 + k.lane * 0)
            for _ in k.range_("body", n):
                k.store(data, k.global_tid(), n)

        assert_equivalent(trips, 6, 32, [(192, "data")])

    def test_any_all_ballot_divergence(self):
        @kernel()
        def votes(k, data):
            k.block("entry")
            if k.any(k.block_id + k.lane > 35):
                k.block("anyside")
            if k.all(k.lane + k.block_id * 0 < WARP_SIZE):
                k.block("allside")
            if k.ballot(k.lane < k.block_id) != 0:
                k.block("voted")
                k.store(data, k.global_tid(), 7)

        assert_equivalent(votes, 4, 32, [(128, "data")])

    def test_three_way_split(self):
        @kernel()
        def threeway(k, data):
            k.block("entry")
            arm = k.uniform(k.block_id % 3 + k.lane * 0)
            k.block(f"arm{arm}")
            k.store(data, k.global_tid(), arm)

        assert_equivalent(threeway, 6, 32, [(192, "data")])

    def test_split_under_shuffled_schedule(self):
        @kernel()
        def per_block(k, data):
            k.block("entry")
            bid = k.uniform(k.block_id + k.lane * 0)
            k.block("even" if bid % 2 == 0 else "odd")
            k.store(data, k.global_tid(), bid)

        assert_equivalent(per_block, 4, 32, [(128, "data")], shuffle=True,
                          seed=13)

    def test_split_groups_are_strictly_smaller(self):
        launch = LaunchConfig.create(4, 32)
        ctx = CohortContext(
            launch=launch, rows=np.arange(4), block_ids=np.arange(4),
            warp_ids=np.zeros(4, dtype=np.int64), shared_alloc=None,
            columnar=False, journal=WriteJournal())
        with pytest.raises(CohortSplit) as exc:
            ctx.uniform(ctx.block_id % 2)
        groups = exc.value.groups
        assert len(groups) == 2
        assert all(g.shape[0] < 4 for g in groups)
        assert sorted(int(r) for g in groups for r in g) == [0, 1, 2, 3]

    def test_intra_warp_divergent_uniform_still_raises(self):
        """A value divergent *within* a warp is a kernel bug, not a split."""
        launch = LaunchConfig.create(2, 32)
        ctx = CohortContext(
            launch=launch, rows=np.arange(2), block_ids=np.arange(2),
            warp_ids=np.zeros(2, dtype=np.int64), shared_alloc=None,
            columnar=False, journal=WriteJournal())
        with pytest.raises(SimtDivergenceError):
            ctx.uniform(ctx.lane)


class TestWriteJournalRollback:
    def test_writes_before_split_are_not_duplicated(self):
        """Stores preceding a split are rolled back, then re-applied once
        per sub-cohort — atomics would double-count otherwise."""

        @kernel()
        def write_then_split(k, counts, data):
            k.block("entry")
            k.atomic_add(counts, k.lane % 4, 1)
            bid = k.uniform(k.block_id + k.lane * 0)
            k.block("even" if bid % 2 == 0 else "odd")
            k.store(data, k.global_tid(), bid)

        assert_equivalent(write_then_split, 4, 32,
                          [(4, "counts"), (128, "data")])

    def test_journal_rollback_restores_exact_bytes(self):
        journal = WriteJournal()
        config = DeviceConfig(seed=0)
        device = Device(config)
        buf = device.alloc(16, label="scratch")
        buf.data[:] = np.arange(16)
        before = buf.data.copy()
        journal.capture(buf)
        buf.data[:] = -1
        journal.rollback()
        assert (buf.data == before).all()


class TestSharedMemory:
    def test_per_block_shared_accumulator(self):
        @kernel()
        def shared_sum(k, out):
            k.block("entry")
            acc = k.shared("acc", 32)
            k.store(acc, k.lane, 0)
            k.syncthreads()
            k.atomic_add(acc, k.lane % 8, k.lane)
            k.syncthreads()
            k.block("drain")
            vals = k.load(acc, k.lane)
            k.store(out, k.global_tid(), vals)

        assert_equivalent(shared_sum, 3, 32, [(96, "out")])

    def test_shared_blocks_do_not_alias(self):
        """Each block's shared array is distinct storage even though the
        cohort touches them all in one pass."""

        @kernel()
        def stamp(k, out):
            k.block("entry")
            tile = k.shared("tile", 32)
            k.store(tile, k.lane, k.block_id * 100 + k.lane)
            k.store(out, k.global_tid(), k.load(tile, k.lane))

        assert_equivalent(stamp, 4, 32, [(128, "out")])


class TestMaskedExecution:
    def test_lane_divergent_branch_materialises(self):
        """A masked op leaves the flat fast path but stays byte-exact."""

        @kernel()
        def masked(k, data):
            k.block("entry")
            for _ in k.branch(k.lane % 2 == 0).then("evens"):
                k.store(data, k.global_tid(), 1)
            for _ in k.branch(k.lane >= 16).then("high"):
                k.load(data, k.global_tid())
            k.block("rejoin")
            k.store(data, k.global_tid(), k.lane)

        assert_equivalent(masked, 4, 32, [(128, "data")])

    def test_divergent_while_loop(self):
        @kernel()
        def drain(k, data):
            k.block("entry")
            live = k.lane.copy()
            for _ in k.while_("spin", lambda: live > 0):
                live = live - 1
                k.store(data, k.global_tid(), live)

        assert_equivalent(drain, 2, 64, [(128, "data")])

    def test_sync_under_partial_mask(self):
        @kernel()
        def gated_sync(k):
            k.block("entry")
            for _ in k.branch(k.lane < 8).then("gate"):
                k.syncthreads()

        assert_equivalent(gated_sync, 3, 32, [])


class TestBufferViewCache:
    def test_interleaved_buffers_keep_distinct_views(self):
        @kernel()
        def pingpong(k, a, b):
            k.block("entry")
            k.store(a, k.lane, k.lane)
            k.store(b, k.lane, k.lane * 2)
            va = k.load(a, k.lane)
            vb = k.load(b, k.lane)
            k.store(a, k.lane, vb)
            k.store(b, k.lane, va)

        assert_equivalent(pingpong, 2, 32, [(32, "a"), (32, "b")])

    def test_bounds_violation_still_reported(self):
        @kernel()
        def oob(k, data):
            k.block("entry")
            k.load(data, k.lane + 1000)

        device = Device(DeviceConfig(seed=0), cohort=True)
        buf = device.alloc(32, label="data")
        with pytest.raises(Exception) as coh_err:
            device.launch(oob, 2, 32, buf)
        reference = Device(DeviceConfig(seed=0), cohort=False)
        ref_buf = reference.alloc(32, label="data")
        with pytest.raises(Exception) as ref_err:
            reference.launch(oob, 2, 32, ref_buf)
        assert type(coh_err.value) is type(ref_err.value)


class TestReplay:
    def test_replay_rowstreams_in_schedule_order(self):
        """Events come out grouped per warp, rows in schedule order."""
        device = Device(DeviceConfig(seed=0), columnar=False, cohort=True)
        events = []
        device.subscribe(events.append)

        @kernel()
        def simple(k):
            k.block("entry")
            k.syncthreads()
            k.block("exit")

        device.launch(simple, 2, 64)
        stream = [e for e in events
                  if isinstance(e, (BasicBlockEvent, SyncEvent))]
        ids = [(e.block_id, e.warp_id) for e in stream]
        assert ids == [(b, w) for b in range(2) for w in range(2)
                       for _ in range(3)]

    def test_memory_event_expansion_matches_reference(self):
        def collect(cohort):
            device = Device(DeviceConfig(seed=0), columnar=False,
                            cohort=cohort)
            events = []
            device.subscribe(events.append)
            buf = device.alloc(128, label="data")

            @kernel()
            def touch(k, target):
                k.block("entry")
                k.load(target, k.global_tid())
                k.store(target, k.global_tid(), k.lane)

            device.launch(touch, 2, 64, buf)
            return [e for e in events if isinstance(e, MemoryAccessEvent)]

        assert collect(cohort=True) == collect(cohort=False)
