"""SIMT control-flow semantics: branching, predication, loops, intrinsics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.context import SimtDivergenceError, WarpContext
from repro.gpusim.events import BasicBlockEvent, SyncEvent
from repro.gpusim.kernel import LaunchConfig
from repro.gpusim.warp import WARP_SIZE


def make_context(threads_per_block: int = 32, block_id: int = 0,
                 warp_id: int = 0):
    """A standalone warp context capturing its own events."""
    events = []
    launch = LaunchConfig.create(1, threads_per_block)
    ctx = WarpContext(launch=launch, block_id=block_id, warp_id=warp_id,
                      emit=events.append, shared_alloc=None)
    return ctx, events


def block_sequence(events):
    return [e.label for e in events if isinstance(e, BasicBlockEvent)]


class TestIdentity:
    def test_lane_vector(self):
        ctx, _ = make_context()
        assert list(ctx.lane) == list(range(WARP_SIZE))

    def test_global_tid_second_warp(self):
        ctx, _ = make_context(threads_per_block=64, warp_id=1)
        assert ctx.global_tid()[0] == 32

    def test_global_tid_second_block(self):
        ctx, _ = make_context(threads_per_block=64, block_id=1)
        assert ctx.global_tid()[0] == 64

    def test_partial_warp_masks_nonexistent_lanes(self):
        ctx, _ = make_context(threads_per_block=40, warp_id=1)
        # lanes 8..31 of warp 1 don't exist (threads 40..63)
        assert ctx.active.sum() == 8

    def test_thread_idx_3d(self):
        events = []
        launch = LaunchConfig.create(1, (4, 4, 2))
        ctx = WarpContext(launch=launch, block_id=0, warp_id=0,
                          emit=events.append, shared_alloc=None)
        x, y, z = ctx.thread_idx()
        assert (x[:4] == [0, 1, 2, 3]).all()
        assert y[4] == 1
        assert z[16] == 1

    def test_global_warp_id(self):
        ctx, _ = make_context(threads_per_block=64, block_id=2, warp_id=1)
        assert ctx.global_warp_id == 5


class TestBasicBlocks:
    def test_block_emits_event(self):
        ctx, events = make_context()
        ctx.block("a")
        assert block_sequence(events) == ["a"]

    def test_visit_counter_per_label(self):
        ctx, events = make_context()
        ctx.block("a")
        ctx.block("b")
        ctx.block("a")
        bb = [e for e in events if isinstance(e, BasicBlockEvent)]
        assert [(e.label, e.visit) for e in bb] == [
            ("a", 0), ("b", 0), ("a", 1)]

    def test_active_lane_count_recorded(self):
        ctx, events = make_context(threads_per_block=10)
        ctx.block("a")
        assert events[0].active_lanes == 10

    def test_block_with_no_active_lanes_is_an_error(self):
        ctx, _ = make_context()
        ctx._set_active(np.zeros(WARP_SIZE, dtype=bool))
        with pytest.raises(SimtDivergenceError):
            ctx.block("dead")


class TestBranch:
    def test_uniform_true_skips_else(self):
        ctx, events = make_context()
        br = ctx.branch(ctx.lane >= 0)
        for _ in br.then("taken"):
            pass
        for _ in br.otherwise("untaken"):
            raise AssertionError("must not execute")
        assert block_sequence(events) == ["taken"]

    def test_uniform_false_skips_then(self):
        ctx, events = make_context()
        br = ctx.branch(ctx.lane < 0)
        for _ in br.then("untaken"):
            raise AssertionError("must not execute")
        for _ in br.otherwise("taken"):
            pass
        assert block_sequence(events) == ["taken"]

    def test_divergent_branch_visits_both_sides(self):
        """Predicated execution: a divergent warp traverses both arms."""
        ctx, events = make_context()
        br = ctx.branch(ctx.lane < 16)
        for _ in br.then("low"):
            assert ctx.active.sum() == 16
        for _ in br.otherwise("high"):
            assert ctx.active.sum() == 16
        assert block_sequence(events) == ["low", "high"]
        assert ctx.active.sum() == WARP_SIZE  # mask restored

    def test_nested_branches_intersect_masks(self):
        ctx, events = make_context()
        outer = ctx.branch(ctx.lane < 16)
        for _ in outer.then("outer"):
            inner = ctx.branch(ctx.lane % 2 == 0)
            for _ in inner.then("inner"):
                assert ctx.active.sum() == 8
        assert block_sequence(events) == ["outer", "inner"]

    def test_mask_restored_after_exception(self):
        ctx, _ = make_context()
        br = ctx.branch(ctx.lane < 4)
        with pytest.raises(RuntimeError):
            for _ in br.then("boom"):
                raise RuntimeError("body failed")
        assert ctx.active.sum() == WARP_SIZE

    def test_branch_respects_enclosing_mask(self):
        ctx, events = make_context()
        outer = ctx.branch(ctx.lane < 8)
        for _ in outer.then("outer"):
            inner = ctx.branch(ctx.lane >= 8)  # disjoint from outer
            for _ in inner.then("never"):
                raise AssertionError("no lane can be active here")
            for _ in inner.otherwise("all_outer"):
                assert ctx.active.sum() == 8


class TestLoops:
    def test_range_counts_visits(self):
        ctx, events = make_context()
        total = 0
        for i in ctx.range_("loop", 5):
            total += i
        assert total == 10
        assert block_sequence(events) == ["loop"] * 5

    def test_range_start_stop_step(self):
        ctx, _ = make_context()
        assert list(ctx.range_("loop", 2, 10, 3)) == [2, 5, 8]

    def test_range_zero_iterations(self):
        ctx, events = make_context()
        for _ in ctx.range_("loop", 0):
            raise AssertionError("no iterations expected")
        assert block_sequence(events) == []

    def test_while_uniform_trip_count(self):
        ctx, events = make_context()
        counter = {"v": 3}

        def cond():
            return np.full(WARP_SIZE, counter["v"] > 0)

        for _ in ctx.while_("w", cond):
            counter["v"] -= 1
        assert counter["v"] == 0
        assert block_sequence(events) == ["w"] * 3

    def test_while_divergent_runs_max_lane_trips(self):
        """SIMT loops run until the slowest lane retires."""
        ctx, events = make_context()
        remaining = ctx.lane % 4  # lanes need 0..3 iterations
        state = {"r": remaining.copy()}

        def cond():
            return state["r"] > 0

        iterations = 0
        for _ in ctx.while_("w", cond):
            state["r"] = np.where(state["r"] > 0, state["r"] - 1, state["r"])
            iterations += 1
        assert iterations == 3  # max over lanes
        assert block_sequence(events) == ["w"] * 3

    def test_while_restores_mask(self):
        ctx, _ = make_context()
        state = {"r": ctx.lane % 2}
        for _ in ctx.while_("w", lambda: state["r"] > 0):
            state["r"] = np.where(state["r"] > 0, state["r"] - 1, state["r"])
        assert ctx.active.sum() == WARP_SIZE

    def test_while_zero_iterations(self):
        ctx, events = make_context()
        for _ in ctx.while_("w", lambda: np.zeros(WARP_SIZE, dtype=bool)):
            raise AssertionError("never entered")
        assert block_sequence(events) == []

    def test_while_iteration_guard(self):
        ctx, _ = make_context()
        with pytest.raises(SimtDivergenceError):
            for _ in ctx.while_("w", lambda: True, max_iter=10):
                pass

    def test_while_masks_only_live_lanes_inside(self):
        ctx, _ = make_context()
        state = {"r": np.where(ctx.lane < 4, 2, 1)}
        observed = []

        def cond():
            return state["r"] > 0

        for _ in ctx.while_("w", cond):
            observed.append(int(ctx.active.sum()))
            state["r"] = state["r"] - 1
        assert observed == [32, 4]


class TestIntrinsics:
    def test_select_is_pure_predication(self):
        ctx, events = make_context()
        out = ctx.select(ctx.lane < 16, 1, 2)
        assert out[0] == 1 and out[31] == 2
        assert events == []  # no control flow, no trace

    def test_uniform_ok(self):
        ctx, _ = make_context()
        assert ctx.uniform(np.full(WARP_SIZE, 9)) == 9

    def test_uniform_divergent_raises(self):
        ctx, _ = make_context()
        with pytest.raises(SimtDivergenceError):
            ctx.uniform(ctx.lane)

    def test_uniform_ignores_inactive_lanes(self):
        ctx, _ = make_context()
        values = np.zeros(WARP_SIZE)
        values[20:] = 5
        br = ctx.branch(ctx.lane < 20)
        for _ in br.then("low"):
            assert ctx.uniform(values) == 0

    def test_any_all(self):
        ctx, _ = make_context()
        assert ctx.any(ctx.lane == 0)
        assert not ctx.any(ctx.lane < 0)
        assert ctx.all(ctx.lane >= 0)
        assert not ctx.all(ctx.lane > 0)

    def test_any_all_respect_mask(self):
        ctx, _ = make_context()
        br = ctx.branch(ctx.lane < 8)
        for _ in br.then("low"):
            assert ctx.all(ctx.lane < 8)
            assert not ctx.any(ctx.lane >= 8)

    def test_ballot(self):
        ctx, _ = make_context()
        assert ctx.ballot(ctx.lane < 2) == 0b11
        assert ctx.ballot(ctx.lane == 31) == 1 << 31

    def test_ballot_full_warp(self):
        ctx, _ = make_context()
        assert ctx.ballot(True) == (1 << WARP_SIZE) - 1
        assert ctx.ballot(False) == 0

    @given(cond=st.lists(st.booleans(), min_size=WARP_SIZE,
                         max_size=WARP_SIZE),
           active=st.lists(st.booleans(), min_size=WARP_SIZE,
                           max_size=WARP_SIZE))
    @settings(max_examples=200, deadline=None)
    def test_ballot_matches_scalar_formulation(self, cond, active):
        """The vectorised ballot equals the original per-bit Python sum."""
        ctx, _ = make_context()
        ctx._set_active(np.array(active, dtype=bool))
        cond_vec = np.array(cond, dtype=bool)
        bits = cond_vec & ctx.active
        reference = int(sum(1 << int(i) for i in np.nonzero(bits)[0]))
        assert ctx.ballot(cond_vec) == reference

    @given(cond=st.lists(st.booleans(), min_size=WARP_SIZE,
                         max_size=WARP_SIZE),
           threads=st.integers(min_value=1, max_value=WARP_SIZE))
    @settings(max_examples=100, deadline=None)
    def test_ballot_partial_warp(self, cond, threads):
        """Lanes beyond the block size never contribute a ballot bit."""
        ctx, _ = make_context(threads_per_block=threads)
        result = ctx.ballot(np.array(cond, dtype=bool))
        assert result == int(sum(1 << i for i in range(threads) if cond[i]))

    def test_reductions(self):
        ctx, _ = make_context()
        assert ctx.reduce_sum(np.ones(WARP_SIZE)) == WARP_SIZE
        assert ctx.reduce_max(ctx.lane) == 31
        assert ctx.reduce_min(ctx.lane + 5) == 5

    def test_reduction_respects_mask(self):
        ctx, _ = make_context()
        br = ctx.branch(ctx.lane < 4)
        for _ in br.then("low"):
            assert ctx.reduce_sum(np.ones(WARP_SIZE)) == 4
            assert ctx.reduce_max(ctx.lane) == 3

    def test_reduce_empty_raises(self):
        ctx, _ = make_context()
        ctx._set_active(np.zeros(WARP_SIZE, dtype=bool))
        with pytest.raises(SimtDivergenceError):
            ctx.reduce_max(ctx.lane)

    def test_shfl_broadcast(self):
        ctx, _ = make_context()
        out = ctx.shfl(ctx.lane, 7)
        assert (out == 7).all()

    def test_syncthreads_traced(self):
        ctx, events = make_context()
        ctx.syncthreads()
        assert isinstance(events[0], SyncEvent)
