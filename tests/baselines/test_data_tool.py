"""DATA baseline: host-only visibility and per-thread memory blow-up."""

import numpy as np
import pytest

from repro.apps.dummy import dummy_program, fixed_input
from repro.apps.libgpucrypto import aes_program
from repro.apps.minitorch import serialize_program
from repro.baselines.data_tool import (
    data_tool_analyze,
    per_thread_memory_bytes,
    record_per_thread,
)
from repro.tracing import TraceRecorder


class TestHostOnlyAnalysis:
    def test_finds_kernel_leak_in_serialization(self):
        report = data_tool_analyze(serialize_program,
                                   [np.zeros(64), np.ones(64)])
        assert report.found_kernel_leak
        assert any("copy_kernel" in diff
                   for diff in report.kernel_differences)

    def test_blind_to_aes_device_leaks(self):
        """AES leaks heavily inside the kernel, but its host trace is
        identical for every key — DATA reports nothing (RQ3)."""
        report = data_tool_analyze(
            aes_program, [bytes(range(16)), bytes(range(1, 17))])
        assert not report.found_kernel_leak
        assert not report.can_see_device_leaks
        assert report.device_findings == []

    def test_identical_inputs_no_differences(self):
        report = data_tool_analyze(serialize_program,
                                   [np.ones(64), np.ones(64)])
        assert not report.found_kernel_leak


class TestPerThreadRecording:
    def test_records_every_thread(self):
        # 100 elements launch one 128-thread block; every launched thread
        # (including the guard-idle tail) executes entry/exit blocks
        recorder = record_per_thread(dummy_program, fixed_input(100))
        assert recorder.num_threads == 128
        exact = record_per_thread(dummy_program, fixed_input(256))
        assert exact.num_threads == 256

    def test_entries_include_blocks_and_addresses(self):
        recorder = record_per_thread(dummy_program, fixed_input(32))
        entries = recorder.threads[0]
        assert any(entry.startswith("bb:") for entry in entries)
        assert any(entry.startswith("mem:") for entry in entries)

    def test_memory_grows_linearly_with_threads(self):
        """The §I complaint about DATA: memory ∝ thread count, while Owl's
        A-DCFG stays near-flat on the same workload."""
        sizes = {n: per_thread_memory_bytes(dummy_program, fixed_input(n))
                 for n in (128, 512, 2048)}
        assert sizes[512] >= 3.5 * sizes[128]
        assert sizes[2048] >= 3.5 * sizes[512]

        recorder = TraceRecorder()
        owl_sizes = {n: recorder.record(dummy_program,
                                        fixed_input(n)).adcfg_bytes()
                     for n in (128, 512, 2048)}
        assert owl_sizes[2048] < 2.0 * owl_sizes[512]
        # at scale, the per-thread representation dwarfs the A-DCFG
        assert sizes[2048] > 5 * owl_sizes[2048]

    def test_diff_against_identical_run(self):
        first = record_per_thread(dummy_program, fixed_input(64))
        second = record_per_thread(dummy_program, fixed_input(64))
        assert first.diff_against(second) == 0

    def test_diff_against_different_input(self):
        first = record_per_thread(dummy_program, fixed_input(64, value=1))
        second = record_per_thread(dummy_program, fixed_input(64, value=9))
        assert first.diff_against(second) > 0

    def test_diff_handles_missing_threads(self):
        small = record_per_thread(dummy_program, fixed_input(32))
        large = record_per_thread(dummy_program, fixed_input(64))
        assert small.diff_against(large) >= 32
