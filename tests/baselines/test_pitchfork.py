"""pitchfork baseline: taint propagation and its two false-positive modes."""

import numpy as np
import pytest

from repro.apps.libgpucrypto import aes_program, rsa_program
from repro.apps.minitorch import make_op_program
from repro.apps.minitorch.ops import fixed_op_input
from repro.baselines.pitchfork import (
    TID_TAINT,
    TaintedArray,
    pitchfork_analyze,
    taint_of,
)


class TestTaintedArray:
    def test_arithmetic_propagates_taint(self):
        value = TaintedArray(np.arange(4), frozenset({"key"}))
        out = value * 2 + 1
        assert taint_of(out) == {"key"}
        assert (out.data == np.arange(4) * 2 + 1).all()

    def test_binary_op_unions_taints(self):
        a = TaintedArray(np.ones(4), frozenset({"a"}))
        b = TaintedArray(np.ones(4), frozenset({"b"}))
        assert taint_of(a + b) == {"a", "b"}

    def test_plain_operand_keeps_taint(self):
        a = TaintedArray(np.ones(4), frozenset({"a"}))
        assert taint_of(np.asarray([1, 2, 3, 4]) + a) == {"a"}

    def test_comparisons_are_tainted(self):
        a = TaintedArray(np.arange(4), frozenset({"a"}))
        result = a > 1
        assert taint_of(result) == {"a"}
        assert result.data.dtype == bool

    def test_ufuncs_propagate(self):
        a = TaintedArray(np.arange(4, dtype=float), frozenset({"a"}))
        assert taint_of(np.exp(a)) == {"a"}
        assert taint_of(np.abs(a)) == {"a"}

    def test_astype_and_getitem(self):
        a = TaintedArray(np.arange(4, dtype=float), frozenset({"a"}))
        assert taint_of(a.astype(np.int64)) == {"a"}
        assert taint_of(a[1:3]) == {"a"}

    def test_mod_and_floordiv(self):
        a = TaintedArray(np.arange(4) + 10, frozenset({"a"}))
        assert taint_of(a % 3) == {"a"}
        assert taint_of(a // 2) == {"a"}

    def test_untainted_by_default(self):
        assert taint_of(TaintedArray(np.ones(4))) == frozenset()
        assert taint_of(np.ones(4)) == frozenset()


class TestAnalysisOnCrypto:
    def test_aes_table_lookups_flagged(self):
        report = pitchfork_analyze(aes_program, bytes(range(16)),
                                   secret_labels={"aes.round_keys"})
        secret_loads = [f for f in report.memory_findings
                        if "aes.round_keys" in f.taint
                        or any(t.startswith("aes.T") for t in f.taint)]
        assert secret_loads  # true positives exist

    def test_aes_tid_false_positives_present(self):
        """The paper's RQ3 finding: tid-indexed plaintext/ciphertext
        accesses are flagged even though they carry no secret."""
        report = pitchfork_analyze(aes_program, bytes(range(16)),
                                   secret_labels={"aes.round_keys"})
        assert report.tid_false_positives

    def test_rsa_branch_flagged(self):
        report = pitchfork_analyze(rsa_program, 0x6ACF8231,
                                   secret_labels={"rsa.exponent_bits"})
        assert any("rsa.exponent_bits" in f.taint
                   for f in report.control_findings)


class TestPredicationBlindness:
    def test_maxpool_control_false_positive(self):
        """maxpool2d's divergent guard is predication-safe (Owl finds no CF
        leak there) but pitchfork flags control flow anyway."""
        report = pitchfork_analyze(make_op_program("maxpool2d"),
                                   fixed_op_input("maxpool2d"),
                                   secret_labels={"maxpool2d.x"})
        assert report.control_findings

    def test_relu_tid_memory_false_positives(self):
        report = pitchfork_analyze(make_op_program("relu"),
                                   fixed_op_input("relu"),
                                   secret_labels={"relu.x"})
        tid_memory = [f for f in report.memory_findings if f.tid_only]
        assert tid_memory  # loads/stores indexed purely by thread id


class TestReportStructure:
    def test_findings_carry_locations(self):
        report = pitchfork_analyze(make_op_program("relu"),
                                   fixed_op_input("relu"),
                                   secret_labels=set())
        for finding in report.findings:
            assert finding.kernel_name == "relu_kernel"
            assert finding.block
            assert finding.kind in ("memory", "control")

    def test_unmarked_secrets_reduce_to_tid_findings(self):
        report = pitchfork_analyze(aes_program, bytes(range(16)),
                                   secret_labels=set())
        assert all(set(f.taint) == {TID_TAINT} for f in report.findings)
