"""The asyncio front door: JSON-lines protocol over a unix socket."""

import threading

import pytest

from repro.apps.registry import resolve
from repro.core.pipeline import Owl, OwlConfig
from repro.errors import CampaignError
from repro.service import CampaignScheduler, ServiceConfig
from repro.service import client
from repro.service.server import parse_address, serve_forever

TINY = dict(fixed_runs=4, random_runs=4, seed=21, store_checkpoint_every=2)


@pytest.fixture
def service(tmp_path):
    """A live in-process service on a unix socket; shut down after."""
    scheduler = CampaignScheduler(tmp_path / "store", tmp_path / "queue",
                                  ServiceConfig(workers=0, unit_runs=2))
    address = ("unix", str(tmp_path / "owl.sock"))
    thread = threading.Thread(target=serve_forever,
                              args=(scheduler, address), daemon=True)
    thread.start()
    client.wait_until_up(address, timeout=30)
    yield address, scheduler
    try:
        client.shutdown(address)
    except (CampaignError, OSError):
        pass  # already shut down by the test
    thread.join(timeout=30)
    assert not thread.is_alive()


class TestProtocol:
    def test_ping(self, service):
        address, _scheduler = service
        assert client.ping(address) is True

    def test_unknown_op_is_an_error_response(self, service):
        address, _scheduler = service
        response = client.request(address, {"op": "frobnicate"})
        assert response["ok"] is False
        assert "frobnicate" in response["error"]

    def test_malformed_json_does_not_kill_the_server(self, service):
        import json
        import socket

        address, _scheduler = service
        _kind, path = address
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(10)
        sock.connect(str(path))
        try:
            sock.sendall(b'{"op": "ping"  \n')
            line = sock.makefile("rb").readline()
        finally:
            sock.close()
        response = json.loads(line)
        assert response["ok"] is False
        # and the server is still serving
        assert client.ping(address)


class TestSubmitToResults:
    def test_full_round_trip_matches_direct_detect(self, service, tmp_path):
        address, _scheduler = service
        cid = client.submit(address, "dummy", TINY)
        final = client.wait_for(address, cid, timeout=240)
        assert final["stage"] == "complete"
        results = client.results(address, cid)

        program, fixed_inputs, random_input = resolve("dummy")
        owl = Owl(program, name="dummy", config=OwlConfig(**TINY))
        direct = owl.detect(fixed_inputs(), random_input=random_input,
                            store=tmp_path / "direct")
        assert results["report_json"] == direct.report.to_json()

    def test_concurrent_tenants_coalesce(self, service):
        address, scheduler = service
        cids = [client.submit(address, "dummy", TINY) for _ in range(3)]
        for cid in cids:
            assert client.wait_for(address, cid,
                                   timeout=240)["stage"] == "complete"
        reports = {client.results(address, cid)["report_json"]
                   for cid in cids}
        assert len(reports) == 1
        coalesced = [cid for cid in cids
                     if scheduler.campaigns[cid].coalesced_into is not None]
        assert len(coalesced) == 2

    def test_status_lists_campaigns(self, service):
        address, _scheduler = service
        cid = client.submit(address, "dummy", TINY)
        client.wait_for(address, cid, timeout=240)
        status = client.status(address)
        assert cid in status["campaigns"]
        one = client.status(address, cid)
        assert one["stage"] == "complete"

    def test_results_for_unknown_campaign_errors(self, service):
        address, _scheduler = service
        with pytest.raises(CampaignError):
            client.results(address, "c9999")


class TestShutdown:
    def test_shutdown_stops_the_server(self, tmp_path):
        scheduler = CampaignScheduler(tmp_path / "store", tmp_path / "queue",
                                      ServiceConfig(workers=0))
        address = ("unix", str(tmp_path / "owl.sock"))
        thread = threading.Thread(target=serve_forever,
                                  args=(scheduler, address), daemon=True)
        thread.start()
        client.wait_until_up(address, timeout=30)
        client.shutdown(address)
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert not client.ping(address)
        assert scheduler is not None  # scheduler outlives the server


class TestAddressParsing:
    def test_unix_default(self):
        assert parse_address("/tmp/a.sock", None, None) == \
            ("unix", "/tmp/a.sock")

    def test_tcp_when_port_given(self):
        assert parse_address(None, "127.0.0.1", 7700) == \
            ("tcp", ("127.0.0.1", 7700))
