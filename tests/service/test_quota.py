"""Tenant quotas and weighted fair admission in the scheduler."""

import time

import pytest

from repro.errors import ConfigError, QuotaError
from repro.service import CampaignScheduler, ServiceConfig, TenantQuota
from repro.service.scheduler import STAGE_COMPLETE

TINY = dict(fixed_runs=4, random_runs=4, seed=21, store_checkpoint_every=2)


def _scheduler(tmp_path, **config_fields):
    config = ServiceConfig(workers=0, unit_runs=2, coalesce=False,
                           **config_fields)
    return CampaignScheduler(tmp_path / "store", tmp_path / "queue",
                             config)


class TestTenantQuotaParsing:
    def test_parse_full_spec(self):
        quota = TenantQuota.parse("max_inflight:4,max_campaigns:2,weight:0.5")
        assert quota == TenantQuota(max_campaigns=2, max_inflight=4,
                                    weight=0.5)

    def test_parse_rejects_unknown_keys(self):
        with pytest.raises(ConfigError):
            TenantQuota.parse("max_units:3")

    def test_rejects_nonpositive_values(self):
        with pytest.raises(ConfigError):
            TenantQuota(max_campaigns=0)
        with pytest.raises(ConfigError):
            TenantQuota(weight=0.0)


class TestCampaignQuota:
    def test_excess_campaigns_are_rejected(self, tmp_path):
        scheduler = _scheduler(
            tmp_path, quotas={"alice": TenantQuota(max_campaigns=1)})
        scheduler.submit("dummy", TINY, tenant="alice")
        with pytest.raises(QuotaError):
            scheduler.submit("dummy", dict(TINY, seed=99), tenant="alice")
        # other tenants are unaffected
        scheduler.submit("dummy", dict(TINY, seed=99), tenant="bob")

    def test_quota_releases_on_completion(self, tmp_path):
        scheduler = _scheduler(
            tmp_path, quotas={"alice": TenantQuota(max_campaigns=1)})
        first = scheduler.submit("dummy", TINY, tenant="alice")
        assert scheduler.wait([first], timeout=240)
        second = scheduler.submit("dummy", dict(TINY, seed=99),
                                  tenant="alice")
        assert scheduler.wait([second], timeout=240)

    def test_default_quota_applies_to_unlisted_tenants(self, tmp_path):
        scheduler = _scheduler(
            tmp_path, default_quota=TenantQuota(max_campaigns=1))
        scheduler.submit("dummy", TINY, tenant="carol")
        with pytest.raises(QuotaError):
            scheduler.submit("dummy", dict(TINY, seed=99), tenant="carol")


class TestAdmission:
    def test_no_quotas_admit_everything_immediately(self, tmp_path):
        """Pre-tenancy behaviour is preserved: without quotas or a
        window, submit leaves no backlog."""
        scheduler = _scheduler(tmp_path)
        cid = scheduler.submit("dummy", TINY)
        state = scheduler.campaigns[cid]
        assert state.backlog == []
        assert len(state.pending) > 0

    def test_admission_window_bounds_the_queue(self, tmp_path):
        scheduler = _scheduler(tmp_path, admission_window=1)
        cid = scheduler.submit("dummy", TINY)
        state = scheduler.campaigns[cid]
        assert len(state.pending) == 1
        assert len(state.backlog) >= 1
        assert scheduler.wait([cid], timeout=240)

    def test_max_inflight_caps_a_tenant(self, tmp_path):
        scheduler = _scheduler(
            tmp_path, quotas={"alice": TenantQuota(max_inflight=1)})
        cid = scheduler.submit("dummy", TINY, tenant="alice")
        state = scheduler.campaigns[cid]
        assert len(state.pending) == 1
        assert len(state.backlog) >= 1
        assert scheduler.wait([cid], timeout=240)

    def test_weight_shapes_contended_admission(self, tmp_path):
        """Under a tight window the heavier-weighted tenant admits
        more often (stride charges 1/weight per unit)."""
        scheduler = _scheduler(
            tmp_path, admission_window=3,
            quotas={"alpha": TenantQuota(weight=2.0),
                    "beta": TenantQuota(weight=1.0)})
        a = scheduler.submit("dummy", TINY, tenant="alpha")
        b = scheduler.submit("dummy", dict(TINY, seed=99), tenant="beta")
        alpha = scheduler.campaigns[a]
        beta = scheduler.campaigns[b]
        # 3 slots split 2:1 in favour of the weight-2 tenant
        assert len(alpha.pending) == 2
        assert len(beta.pending) == 1
        assert scheduler.wait([a, b], timeout=240)

    def test_tenant_rows_in_status(self, tmp_path):
        scheduler = _scheduler(
            tmp_path, admission_window=2,
            quotas={"alice": TenantQuota(max_inflight=1, weight=0.5)})
        scheduler.submit("dummy", TINY, tenant="alice")
        scheduler.submit("dummy", dict(TINY, seed=99), tenant="bob")
        rows = scheduler.status()["tenants"]
        assert rows["alice"]["weight"] == 0.5
        assert rows["alice"]["inflight_units"] == 1
        assert rows["bob"]["active_campaigns"] == 1


class TestFairness:
    def test_capped_tenant_completes_while_heavy_tenant_saturates(
            self, tmp_path):
        """The acceptance scenario: one tenant floods the fleet with
        campaigns, a quota-capped tenant still makes steady progress and
        completes long before the flood drains."""
        scheduler = _scheduler(
            tmp_path, admission_window=2,
            quotas={"light": TenantQuota(max_inflight=1)})
        heavy = [scheduler.submit("dummy", dict(TINY, seed=30 + i),
                                  tenant="heavy")
                 for i in range(3)]
        light = scheduler.submit("dummy", TINY, tenant="light")
        deadline = time.time() + 240
        while not scheduler.campaigns[light].done:
            assert time.time() < deadline, "light tenant starved"
            scheduler.tick()
        assert scheduler.campaigns[light].stage == STAGE_COMPLETE
        # the flood is still draining when the capped tenant finishes
        assert any(not scheduler.campaigns[cid].done for cid in heavy), \
            "heavy tenant finished first: admission was not fair"
        assert scheduler.wait(heavy, timeout=240)
        for cid in heavy:
            assert scheduler.campaigns[cid].stage == STAGE_COMPLETE
