"""Multi-host fleets: foreign workers joining over the shared queue.

The queue and store are pure atomic-rename / ``O_EXCL`` directories, so
a worker "on another host" is just a :func:`worker_loop` pointed at the
same paths with its own ``<hostname>-<pid>`` identity.  These tests run
two such workers (threads standing in for hosts, plus one real
subprocess for the death scenario) against a scheduler configured with
``external_workers=True`` — it never executes units itself — and hold
the bit-identity contract across worker death and lease re-queues.
"""

import subprocess
import sys
import threading
import time

import pytest

from repro.apps.registry import resolve
from repro.core.pipeline import Owl, OwlConfig
from repro.service import CampaignScheduler, ServiceConfig
from repro.service.fleet import worker_env
from repro.service.scheduler import STAGE_COMPLETE
from repro.service.worker import worker_loop

TINY = dict(fixed_runs=4, random_runs=4, seed=21, store_checkpoint_every=2)


def _drive(scheduler, cids, timeout=240.0):
    deadline = time.time() + timeout
    while not all(scheduler.campaigns[cid].done for cid in cids):
        assert time.time() < deadline, "campaigns did not finish"
        scheduler.tick()
        time.sleep(0.01)


def _direct_report(tmp_path, config=TINY):
    program, fixed_inputs, random_input = resolve("dummy")
    owl = Owl(program, name="dummy", config=OwlConfig(**config))
    return owl.detect(fixed_inputs(), random_input=random_input,
                      store=tmp_path / "direct").report.to_json()


class TestTwoHostFleet:
    def test_two_foreign_workers_share_one_queue(self, tmp_path):
        """Two workers with distinct host identities drain one queue;
        the report is byte-identical to a direct in-process detect."""
        queue_root = tmp_path / "shared" / "queue"
        store_root = tmp_path / "shared" / "store"
        scheduler = CampaignScheduler(
            store_root, queue_root,
            ServiceConfig(workers=0, unit_runs=2, external_workers=True,
                          lease_seconds=10.0))
        workers = [
            threading.Thread(
                target=worker_loop,
                args=(queue_root, store_root, worker_id),
                kwargs=dict(poll_seconds=0.01, lease_seconds=10.0),
                daemon=True)
            for worker_id in ("hosta-100", "hostb-100")]
        for thread in workers:
            thread.start()
        try:
            cid = scheduler.submit("dummy", TINY)
            _drive(scheduler, [cid])
            assert scheduler.campaigns[cid].stage == STAGE_COMPLETE
            results = scheduler.results(cid)
            assert results["report_json"] == _direct_report(tmp_path)
        finally:
            scheduler.queue.request_stop()
            for thread in workers:
                thread.join(timeout=30)
                assert not thread.is_alive()

    def test_scheduler_executes_nothing_with_external_workers(
            self, tmp_path):
        """Without any worker attached, an external_workers scheduler
        leaves every unit pending — it must not run them itself."""
        scheduler = CampaignScheduler(
            tmp_path / "store", tmp_path / "queue",
            ServiceConfig(workers=0, unit_runs=2, external_workers=True))
        cid = scheduler.submit("dummy", TINY)
        for _ in range(10):
            scheduler.tick()
            time.sleep(0.01)
        state = scheduler.campaigns[cid]
        assert not state.done
        assert state.pending, "units vanished without a worker"


class TestWorkerDeath:
    def test_report_survives_injected_worker_death(self, tmp_path):
        """A real subprocess worker dies right after claiming its first
        unit (the worst crash point: lease held, no result).  The lease
        expires, the unit re-queues, a healthy worker finishes the
        campaign, and the report bytes still match a direct detect."""
        queue_root = tmp_path / "shared" / "queue"
        store_root = tmp_path / "shared" / "store"
        scheduler = CampaignScheduler(
            store_root, queue_root,
            ServiceConfig(workers=0, unit_runs=2, external_workers=True,
                          lease_seconds=1.0))
        cid = scheduler.submit("dummy", TINY)
        doomed = subprocess.Popen(
            [sys.executable, "-m", "repro.service.worker",
             "--queue", str(queue_root), "--store", str(store_root),
             "--worker-id", "doomedhost-1", "--poll", "0.01",
             "--lease-seconds", "1.0", "--die-after", "1"],
            env=worker_env())
        try:
            doomed.wait(timeout=120)
            assert doomed.returncode == 3  # injected hard exit
            healthy = threading.Thread(
                target=worker_loop,
                args=(queue_root, store_root, "healthyhost-1"),
                kwargs=dict(poll_seconds=0.01, lease_seconds=1.0),
                daemon=True)
            healthy.start()
            try:
                _drive(scheduler, [cid])
                assert scheduler.campaigns[cid].stage == STAGE_COMPLETE
                results = scheduler.results(cid)
                assert results["report_json"] == _direct_report(tmp_path)
            finally:
                scheduler.queue.request_stop()
                healthy.join(timeout=30)
                assert not healthy.is_alive()
        finally:
            if doomed.poll() is None:
                doomed.kill()
                doomed.wait()

    def test_long_unit_survives_short_lease_via_heartbeat(self, tmp_path):
        """The worker heartbeats held claims at a quarter lease, so a
        lease far shorter than a unit's runtime never gets revoked while
        the worker is alive — no duplicate execution, same bytes."""
        queue_root = tmp_path / "shared" / "queue"
        store_root = tmp_path / "shared" / "store"
        scheduler = CampaignScheduler(
            store_root, queue_root,
            ServiceConfig(workers=0, unit_runs=2, external_workers=True,
                          lease_seconds=0.2))
        worker = threading.Thread(
            target=worker_loop,
            args=(queue_root, store_root, "slowhost-1"),
            kwargs=dict(poll_seconds=0.01, lease_seconds=0.2),
            daemon=True)
        worker.start()
        try:
            cid = scheduler.submit("dummy", TINY)
            _drive(scheduler, [cid])
            assert scheduler.campaigns[cid].stage == STAGE_COMPLETE
            results = scheduler.results(cid)
            assert results["report_json"] == _direct_report(tmp_path)
            # the ladder never had to degrade a unit to the scheduler
            kinds = [event.kind for event in scheduler.events]
            assert "fleet_to_local" not in kinds
        finally:
            scheduler.queue.request_stop()
            worker.join(timeout=30)
            assert not worker.is_alive()
