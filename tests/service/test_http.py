"""The HTTP/JSON front end: same payloads as the socket, real statuses."""

import http.client
import json
import socket
import threading

import pytest

from repro.apps.registry import resolve
from repro.core.pipeline import Owl, OwlConfig
from repro.errors import AuthError, CampaignError, QuotaError, ServiceError
from repro.service import (
    CampaignScheduler, ServiceClient, ServiceConfig, TenantQuota)
from repro.service.server import serve_forever

TINY = dict(fixed_runs=4, random_runs=4, seed=21, store_checkpoint_every=2)


def _free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _start(tmp_path, config=None, tokens=None):
    scheduler = CampaignScheduler(
        tmp_path / "store", tmp_path / "queue",
        config or ServiceConfig(workers=0, unit_runs=2))
    port = _free_port()
    thread = threading.Thread(
        target=serve_forever,
        args=(scheduler, ("http", ("127.0.0.1", port))),
        kwargs={"tokens": tokens}, daemon=True)
    thread.start()
    return scheduler, f"http://127.0.0.1:{port}", port, thread


@pytest.fixture
def http_service(tmp_path):
    """A live in-process service behind the HTTP front end (open mode)."""
    scheduler, url, port, thread = _start(tmp_path)
    client = ServiceClient(url)
    client.wait_until_up(timeout=30)
    yield client, url, port, scheduler
    try:
        client.shutdown()
    except (CampaignError, OSError):
        pass
    thread.join(timeout=30)
    assert not thread.is_alive()


def _raw(port: int, method: str, path: str, body=None, headers=None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request(method, path, body=body,
                           headers=headers or {})
        response = connection.getresponse()
        payload = response.read()
        return response.status, json.loads(payload.decode("utf-8"))
    finally:
        connection.close()


class TestRouting:
    def test_ping(self, http_service):
        client, _url, port, _scheduler = http_service
        assert client.ping() is True
        status, payload = _raw(port, "GET", "/v1/ping")
        assert status == 200
        assert payload["ok"] is True
        assert payload["authenticated"] is False

    def test_unknown_route_is_404(self, http_service):
        _client, _url, port, _scheduler = http_service
        status, payload = _raw(port, "GET", "/nope")
        assert status == 404
        assert payload["ok"] is False

    def test_unknown_campaign_is_404(self, http_service):
        _client, _url, port, _scheduler = http_service
        status, payload = _raw(port, "GET", "/v1/campaigns/c9999/results")
        assert status == 404
        assert payload["code"] == "not_found"

    def test_bad_body_is_400(self, http_service):
        _client, _url, port, _scheduler = http_service
        status, payload = _raw(port, "POST", "/v1/campaigns",
                               body=b"not json")
        assert status == 400
        assert payload["code"] == "bad_request"

    def test_non_http_garbage_does_not_kill_the_server(self, http_service):
        client, _url, port, _scheduler = http_service
        raw = socket.create_connection(("127.0.0.1", port), timeout=10)
        try:
            raw.sendall(b"\x00\x01garbage\r\n\r\n")
            raw.recv(4096)
        finally:
            raw.close()
        assert client.ping() is True


class TestRoundTrip:
    def test_report_bytes_match_direct_detect(self, http_service,
                                              tmp_path):
        client, _url, _port, _scheduler = http_service
        receipt = client.submit("dummy", config=TINY)
        final = client.wait_for(receipt.campaign, timeout=240)
        assert final.complete
        results = client.results(receipt.campaign)

        program, fixed_inputs, random_input = resolve("dummy")
        owl = Owl(program, name="dummy", config=OwlConfig(**TINY))
        direct = owl.detect(fixed_inputs(), random_input=random_input,
                            store=tmp_path / "direct")
        assert results.report_json == direct.report.to_json()

    def test_status_carries_tenant_header_identity(self, http_service):
        client, url, _port, _scheduler = http_service
        named = ServiceClient(url, tenant="alice")
        receipt = named.submit("dummy", config=TINY)
        assert receipt.tenant == "alice"
        row = client.status(receipt.campaign)
        assert row.tenant == "alice"
        named.wait_for(receipt.campaign, timeout=240)


class TestWatch:
    def test_watch_streams_to_terminal_event(self, http_service):
        client, _url, _port, _scheduler = http_service
        receipt = client.submit("dummy", config=TINY)
        events = list(client.watch(receipt.campaign))
        assert events, "watch yielded nothing"
        # the first event re-synchronises: it reports the current stage
        assert events[0].stage is not None
        assert events[-1].terminal
        assert events[-1].event == "complete"
        assert events[-1].results is not None
        assert events[-1].results.report_json is not None
        # the events in between are monotone stage transitions
        stages = [event.stage for event in events]
        assert len(stages) == len(set(stages))

    def test_watch_unknown_campaign_raises(self, http_service):
        client, _url, _port, _scheduler = http_service
        with pytest.raises(ServiceError):
            list(client.watch("c9999"))

    def test_reconnect_after_disconnect_resyncs(self, http_service):
        """Dropping a watch stream loses nothing: a new stream's first
        event reports the current stage, and the terminal event still
        carries the full results payload."""
        client, _url, port, _scheduler = http_service
        receipt = client.submit("dummy", config=TINY)
        # open a stream and hang up after the first event
        connection = http.client.HTTPConnection("127.0.0.1", port,
                                                timeout=30)
        connection.request(
            "GET", f"/v1/campaigns/{receipt.campaign}/watch")
        response = connection.getresponse()
        assert response.status == 200
        first = json.loads(response.readline())
        assert first["ok"] is True
        connection.close()  # mid-stream disconnect
        # the server survives and a fresh watch completes normally
        events = list(client.watch(receipt.campaign))
        assert events[0].stage is not None
        assert events[-1].terminal
        assert events[-1].results.report_json is not None


class TestAuth:
    @pytest.fixture
    def authed(self, tmp_path):
        scheduler, url, port, thread = _start(
            tmp_path, tokens={"sekrit": "alice", "hunter2": "bob"})
        client = ServiceClient(url, token="sekrit")
        client.wait_until_up(timeout=30)
        yield url, port, client
        try:
            client.shutdown()
        except (CampaignError, OSError):
            pass
        thread.join(timeout=30)

    def test_missing_token_is_401(self, authed):
        _url, port, _client = authed
        status, payload = _raw(port, "GET", "/v1/campaigns")
        assert status == 401
        assert payload["code"] == "auth"

    def test_unknown_token_is_401(self, authed):
        _url, port, _client = authed
        status, payload = _raw(
            port, "GET", "/v1/campaigns",
            headers={"Authorization": "Bearer wrong"})
        assert status == 401

    def test_client_raises_autherror(self, authed):
        url, _port, _client = authed
        with pytest.raises(AuthError):
            ServiceClient(url).overview()
        with pytest.raises(AuthError):
            ServiceClient(url, token="wrong").submit("dummy", config=TINY)

    def test_token_is_the_identity(self, authed):
        """An authenticated request cannot bill another tenant."""
        url, _port, client = authed
        masquerading = ServiceClient(url, token="sekrit", tenant="bob")
        receipt = masquerading.submit("dummy", config=TINY)
        assert receipt.tenant == "alice"
        client.wait_for(receipt.campaign, timeout=240)

    def test_watch_rejects_bad_token(self, authed):
        url, _port, _client = authed
        with pytest.raises(AuthError):
            list(ServiceClient(url).watch("c0001"))


class TestQuota:
    def test_campaign_quota_is_429(self, tmp_path):
        config = ServiceConfig(
            workers=0, unit_runs=2,
            quotas={"alice": TenantQuota(max_campaigns=1)})
        scheduler, url, port, thread = _start(
            tmp_path, config=config, tokens={"sekrit": "alice"})
        client = ServiceClient(url, token="sekrit")
        client.wait_until_up(timeout=30)
        try:
            first = client.submit("dummy", config=TINY)
            with pytest.raises(QuotaError):
                client.submit("dummy", config=dict(TINY, seed=99))
            status, payload = _raw(
                port, "POST", "/v1/campaigns",
                body=json.dumps({"workload": "dummy",
                                 "config": dict(TINY, seed=77)}),
                headers={"Authorization": "Bearer sekrit",
                         "Content-Type": "application/json"})
            assert status == 429
            assert payload["code"] == "quota"
            # quota releases as soon as the active campaign is terminal
            client.wait_for(first.campaign, timeout=240)
            second = client.submit("dummy", config=dict(TINY, seed=99))
            client.wait_for(second.campaign, timeout=240)
        finally:
            try:
                client.shutdown()
            except (CampaignError, OSError):
                pass
            thread.join(timeout=30)
