"""The service's adaptive stage machine: evidence → deciding loops.

An ``adaptive=True`` campaign replaces the single evidence + fold pass
with round-sliced evidence units and one decide unit per look; the
terminal report unit is still a plain ``Owl.detect`` against the warm
store, so the contract stays the strongest one available — reports
bit-identical to a direct in-process adaptive run — at any worker count
and any ``unit_runs`` partition, across injected worker deaths.
"""

import json

import pytest

from repro.apps.registry import resolve
from repro.core.pipeline import Owl, OwlConfig
from repro.service import CampaignScheduler, ServiceConfig
from repro.service.scheduler import STAGE_COMPLETE
from tests.service.test_service_identity import run_service

ADAPTIVE = dict(fixed_runs=60, random_runs=60, adaptive=True,
                always_analyze=True, seed=13)


def direct_adaptive(tmp_path, workload="dummy", overrides=ADAPTIVE):
    program, fixed_inputs, random_input = resolve(workload)
    owl = Owl(program, name=workload, config=OwlConfig(**overrides))
    from repro.store.store import TraceStore
    return owl.detect(fixed_inputs(), random_input=random_input,
                      store=TraceStore(tmp_path / "direct"))


def decide_events(scheduler):
    journal = scheduler.queue.root / "journal.jsonl"
    return [json.loads(line) for line in journal.read_text().splitlines()
            if '"decided"' in line]


class TestAdaptiveServiceIdentity:
    def test_report_matches_direct_adaptive_detect(self, tmp_path):
        direct = direct_adaptive(tmp_path)
        scheduler, (cid,) = run_service(
            tmp_path, ServiceConfig(workers=0, unit_runs=7),
            overrides=ADAPTIVE)
        results = scheduler.results(cid)
        assert results["stage"] == STAGE_COMPLETE
        assert results["report_json"] == direct.report.to_json()
        # the campaign actually looped through decide units and stopped
        # at the same round the direct run did
        events = decide_events(scheduler)
        assert events, "no decide units ran"
        assert events[-1]["stop"]
        assert len(events) == direct.adaptive.rounds_executed

    @pytest.mark.parametrize("unit_runs", [1, 10, 100])
    def test_any_unit_partition_is_identical(self, tmp_path, unit_runs):
        direct = direct_adaptive(tmp_path)
        scheduler, (cid,) = run_service(
            tmp_path, ServiceConfig(workers=0, unit_runs=unit_runs),
            overrides=ADAPTIVE)
        assert (scheduler.results(cid)["report_json"]
                == direct.report.to_json())

    def test_early_stop_collects_the_round_chunks(self, tmp_path):
        scheduler, (cid,) = run_service(
            tmp_path, ServiceConfig(workers=0, unit_runs=7),
            overrides=ADAPTIVE)
        assert scheduler.results(cid)["stage"] == STAGE_COMPLETE
        from repro.store.store import TraceStore
        store = TraceStore(tmp_path / "store")
        leftovers = [entry.key for entry in store.entries()
                     if entry.key.startswith("servicechunk/")]
        assert leftovers == []

    def test_fleet_adaptive_identical_across_worker_death(self, tmp_path):
        direct = direct_adaptive(tmp_path)
        scheduler, (cid,) = run_service(
            tmp_path,
            ServiceConfig(workers=2, unit_runs=7, die_after=2,
                          lease_seconds=120.0),
            overrides=ADAPTIVE)
        results = scheduler.results(cid)
        assert results["stage"] == STAGE_COMPLETE
        assert results["report_json"] == direct.report.to_json()
        assert scheduler.fleet.restarts == 2
