"""JobQueue: atomic claims, leases, results, re-queues, crash recovery."""

import json
import os
import time

from repro.service.queue import JobQueue
from repro.service.units import WorkUnit


def _unit(uid="c1.trace.0000", attempts=0):
    return WorkUnit(uid=uid, kind="trace", campaign="c1",
                    spec={"workload": "dummy"}, params={"index": 0},
                    attempts=attempts)


class TestEnqueueAndClaim:
    def test_enqueue_then_pending(self, tmp_path):
        queue = JobQueue(tmp_path)
        assert queue.enqueue(_unit())
        assert queue.pending_units() == ["c1.trace.0000"]
        loaded = queue.load_unit("c1.trace.0000")
        assert loaded == _unit()

    def test_claim_is_exclusive(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.enqueue(_unit())
        assert queue.claim("c1.trace.0000", "w0")
        assert not queue.claim("c1.trace.0000", "w1")
        info = queue.claim_info("c1.trace.0000")
        assert info["worker"] == "w0"
        assert info["pid"] == os.getpid()

    def test_release_reopens_claim(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.enqueue(_unit())
        queue.claim("c1.trace.0000", "w0")
        queue.release("c1.trace.0000")
        assert queue.claim("c1.trace.0000", "w1")

    def test_claims_by_worker(self, tmp_path):
        queue = JobQueue(tmp_path)
        for index in range(3):
            queue.enqueue(_unit(uid=f"c1.trace.{index:04d}"))
        queue.claim("c1.trace.0000", "w0")
        queue.claim("c1.trace.0001", "w1")
        queue.claim("c1.trace.0002", "w0")
        assert queue.claims_by_worker("w0") == ["c1.trace.0000",
                                                "c1.trace.0002"]


class TestResults:
    def test_complete_releases_and_resolves(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.enqueue(_unit())
        queue.claim("c1.trace.0000", "w0")
        queue.complete("c1.trace.0000", {"recorded": 1}, "w0")
        assert queue.pending_units() == []
        assert queue.claimed_units() == []
        result = queue.result("c1.trace.0000")
        assert result == {"status": "done", "worker": "w0",
                          "payload": {"recorded": 1}}

    def test_fail_records_error(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.enqueue(_unit())
        queue.fail("c1.trace.0000", "KeyError: boom", "w0")
        assert queue.result("c1.trace.0000")["status"] == "error"

    def test_enqueue_skips_finished_units(self, tmp_path):
        """Recovery idempotence: done work is never re-offered."""
        queue = JobQueue(tmp_path)
        queue.enqueue(_unit())
        queue.complete("c1.trace.0000", {}, "w0")
        assert not queue.enqueue(_unit())
        assert queue.pending_units() == []


class TestLeases:
    def test_expired_claims_by_mtime(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.enqueue(_unit())
        queue.claim("c1.trace.0000", "w0")
        assert queue.expired_claims(lease_seconds=60.0) == []
        stale = time.time() - 120
        os.utime(queue.claim_path("c1.trace.0000"), (stale, stale))
        assert queue.expired_claims(lease_seconds=60.0) == ["c1.trace.0000"]

    def test_heartbeat_renews_lease(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.enqueue(_unit())
        queue.claim("c1.trace.0000", "w0")
        stale = time.time() - 120
        os.utime(queue.claim_path("c1.trace.0000"), (stale, stale))
        queue.heartbeat("c1.trace.0000")
        assert queue.expired_claims(lease_seconds=60.0) == []

    def test_requeue_bumps_attempts_and_clears_lease(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.enqueue(_unit())
        queue.claim("c1.trace.0000", "w0")
        unit = queue.requeue("c1.trace.0000")
        assert unit.attempts == 1
        assert queue.claimed_units() == []
        assert queue.pending_units() == ["c1.trace.0000"]
        assert queue.load_unit("c1.trace.0000").attempts == 1


class TestDurability:
    def test_torn_claim_file_reads_as_absent_info(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.enqueue(_unit())
        queue.claim("c1.trace.0000", "w0")
        queue.claim_path("c1.trace.0000").write_text('{"worker": "w0"')
        assert queue.claim_info("c1.trace.0000") is None
        # the lease file itself still blocks rival claims
        assert not queue.claim("c1.trace.0000", "w1")

    def test_journal_survives_torn_tail(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.journal("submitted", campaign="c1")
        queue.journal("enqueued", unit="c1.plan")
        with open(queue.journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "torn"')
        events = queue.journal_events()
        assert [event["event"] for event in events] == ["submitted",
                                                        "enqueued"]

    def test_campaign_specs_round_trip(self, tmp_path):
        queue = JobQueue(tmp_path)
        spec = {"workload": "dummy", "config": {"fixed_runs": 4}}
        queue.save_campaign("c0001", spec)
        assert queue.load_campaigns() == {"c0001": spec}

    def test_stop_sentinel(self, tmp_path):
        queue = JobQueue(tmp_path)
        assert not queue.stop_requested()
        queue.request_stop()
        assert queue.stop_requested()
        queue.clear_stop()
        assert not queue.stop_requested()

    def test_result_write_is_atomic_json(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.enqueue(_unit())
        queue.complete("c1.trace.0000", {"runs": 3}, "w0")
        raw = queue.result_path("c1.trace.0000").read_text()
        assert json.loads(raw)["payload"] == {"runs": 3}
        assert not list(queue.tmp_dir.iterdir())  # staging left clean
