"""The redesigned client API: typed results, URL connect, shims."""

import dataclasses
import threading
import warnings

import pytest

from repro.errors import (
    CampaignError, ConfigError, ServiceConnectionError, ServiceError)
from repro.service import (
    CampaignResults, CampaignScheduler, CampaignStatus, ServiceClient,
    ServiceConfig, SubmitReceipt, parse_connect)
from repro.service import client as client_module
from repro.service.server import serve_forever

TINY = dict(fixed_runs=4, random_runs=4, seed=21, store_checkpoint_every=2)


@pytest.fixture
def service(tmp_path):
    """A live in-process service on a unix socket; shut down after."""
    scheduler = CampaignScheduler(tmp_path / "store", tmp_path / "queue",
                                  ServiceConfig(workers=0, unit_runs=2))
    url = f"unix://{tmp_path / 'owl.sock'}"
    address = parse_connect(url)
    thread = threading.Thread(target=serve_forever,
                              args=(scheduler, address), daemon=True)
    thread.start()
    client = ServiceClient(url)
    client.wait_until_up(timeout=30)
    yield client, url, scheduler
    try:
        client.shutdown()
    except (CampaignError, OSError):
        pass
    thread.join(timeout=30)
    assert not thread.is_alive()


class TestConnectUrls:
    def test_unix_url(self):
        assert parse_connect("unix:///run/owl.sock") == \
            ("unix", "/run/owl.sock")

    def test_bare_path_reads_as_unix(self):
        assert parse_connect("/tmp/a.sock") == ("unix", "/tmp/a.sock")

    def test_tcp_url_needs_a_port(self):
        assert parse_connect("tcp://10.0.0.5:9000") == \
            ("tcp", ("10.0.0.5", 9000))
        with pytest.raises(ConfigError):
            parse_connect("tcp://10.0.0.5")

    def test_http_url_defaults_its_port(self):
        assert parse_connect("http://owl.example:8750") == \
            ("http", ("owl.example", 8750))
        assert parse_connect("http://owl.example") == \
            ("http", ("owl.example", 8750))

    def test_unknown_scheme_is_a_config_error(self):
        with pytest.raises(ConfigError):
            parse_connect("ftp://owl.example:21")

    def test_client_accepts_url_and_legacy_tuple(self, tmp_path):
        path = str(tmp_path / "owl.sock")
        from_url = ServiceClient(f"unix://{path}")
        from_tuple = ServiceClient(("unix", path))
        assert from_url.address == from_tuple.address


class TestTypedResults:
    def test_submit_returns_frozen_receipt(self, service):
        client, _url, _scheduler = service
        receipt = client.submit("dummy", config=TINY)
        assert isinstance(receipt, SubmitReceipt)
        assert receipt.workload == "dummy"
        assert receipt.tenant == "anonymous"
        with pytest.raises(dataclasses.FrozenInstanceError):
            receipt.campaign = "c9999"
        client.wait_for(receipt.campaign, timeout=240)

    def test_status_and_results_are_typed(self, service):
        client, _url, _scheduler = service
        receipt = client.submit("dummy", config=TINY)
        final = client.wait_for(receipt.campaign, timeout=240)
        assert isinstance(final, CampaignStatus)
        assert final.complete and final.done and not final.failed
        results = client.results(receipt.campaign)
        assert isinstance(results, CampaignResults)
        assert results.complete
        assert results.report_key is not None
        report = results.report()
        assert report.to_json() == results.report_json

    def test_overview_aggregates_campaigns_and_tenants(self, service):
        client, url, _scheduler = service
        named = ServiceClient(url, tenant="alice")
        receipt = named.submit("dummy", config=TINY)
        named.wait_for(receipt.campaign, timeout=240)
        overview = client.overview()
        assert receipt.campaign in overview.campaigns
        assert overview.campaigns[receipt.campaign].tenant == "alice"
        assert "alice" in overview.tenants

    def test_unknown_campaign_raises_service_error(self, service):
        client, _url, _scheduler = service
        with pytest.raises(ServiceError):
            client.results("c9999")
        # and ServiceError still reads as the old CampaignError
        with pytest.raises(CampaignError):
            client.status("c9999")

    def test_unreachable_service_raises_connection_error(self, tmp_path):
        client = ServiceClient(f"unix://{tmp_path / 'missing.sock'}",
                               timeout=2.0)
        with pytest.raises(ServiceConnectionError):
            client.overview()
        # ServiceConnectionError doubles as the stdlib family
        with pytest.raises(OSError):
            client.overview()
        assert client.ping() is False

    def test_socket_watch_streams_to_terminal(self, service):
        client, _url, _scheduler = service
        receipt = client.submit("dummy", config=TINY)
        events = list(client.watch(receipt.campaign))
        assert events[0].stage is not None
        assert events[-1].terminal
        assert events[-1].results is not None
        assert events[-1].results.report_json is not None


class TestDeprecatedShims:
    def test_dict_helpers_warn_and_delegate(self, service):
        _client, url, _scheduler = service
        address = parse_connect(url)
        with pytest.warns(DeprecationWarning):
            cid = client_module.submit(address, "dummy", TINY)
        with pytest.warns(DeprecationWarning):
            row = client_module.wait_for(address, cid, timeout=240)
        assert row["stage"] == "complete"  # still the raw dict
        with pytest.warns(DeprecationWarning):
            status = client_module.status(address)
        assert cid in status["campaigns"]
        with pytest.warns(DeprecationWarning):
            payload = client_module.results(address, cid)
        assert payload["report_json"] is not None

    def test_plumbing_helpers_do_not_warn(self, service):
        _client, url, _scheduler = service
        address = parse_connect(url)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert client_module.ping(address) is True
            client_module.wait_until_up(address, timeout=10)
            response = client_module.request(address, {"op": "ping"})
        assert response["ok"] is True
