"""The service's core contract: reports bit-identical to direct detection.

The scheduler decomposes a campaign into units whose outputs flow through
the store; the terminal unit is a plain ``Owl.detect`` against that warm
store, so these tests assert strict JSON equality against a fresh
single-process run — at ``workers=0``, across ``unit_runs`` partitions,
through a real worker fleet, and across injected worker deaths.
"""

import dataclasses

import pytest

from repro.apps.registry import resolve
from repro.core.pipeline import Owl, OwlConfig
from repro.service import CampaignScheduler, ServiceConfig, WorkerFleet
from repro.service.scheduler import (
    STAGE_COMPLETE, STAGE_FAILED, campaign_identity)

TINY = dict(fixed_runs=5, random_runs=5, seed=13, store_checkpoint_every=2)


def direct_report_json(workload="dummy", overrides=TINY, store=None):
    program, fixed_inputs, random_input = resolve(workload)
    owl = Owl(program, name=workload, config=OwlConfig(**overrides))
    result = owl.detect(fixed_inputs(), random_input=random_input,
                        store=store)
    return result.report.to_json()


def run_service(tmp_path, service_config, workload="dummy", overrides=TINY,
                submissions=1, timeout=240.0):
    fleet = None
    if service_config.workers > 0:
        fleet = WorkerFleet(tmp_path / "queue", tmp_path / "store",
                            workers=service_config.workers,
                            poll_seconds=service_config.poll_seconds,
                            die_after=service_config.die_after,
                            restart_budget=service_config.restart_budget)
    scheduler = CampaignScheduler(tmp_path / "store", tmp_path / "queue",
                                  service_config, fleet=fleet)
    if fleet is not None:
        fleet.start()
    try:
        cids = [scheduler.submit(workload, overrides)
                for _ in range(submissions)]
        assert scheduler.wait(cids, timeout=timeout)
    finally:
        if fleet is not None:
            scheduler.queue.request_stop()
            fleet.stop()
    return scheduler, cids


class TestInProcessIdentity:
    def test_report_matches_direct_detect(self, tmp_path):
        scheduler, (cid,) = run_service(
            tmp_path, ServiceConfig(workers=0, unit_runs=2))
        results = scheduler.results(cid)
        assert results["stage"] == STAGE_COMPLETE
        assert results["report_json"] == direct_report_json(
            store=tmp_path / "direct")

    @pytest.mark.parametrize("unit_runs", [1, 3, 100])
    def test_any_unit_partition_is_identical(self, tmp_path, unit_runs):
        scheduler, (cid,) = run_service(
            tmp_path, ServiceConfig(workers=0, unit_runs=unit_runs))
        assert scheduler.results(cid)["report_json"] == direct_report_json(
            store=tmp_path / "direct")

    def test_early_exit_workload_completes_with_empty_report(self, tmp_path):
        overrides = dict(TINY)
        scheduler, (cid,) = run_service(
            tmp_path, ServiceConfig(workers=0, unit_runs=2),
            workload="aes-ct", overrides=overrides)
        results = scheduler.results(cid)
        assert results["stage"] == STAGE_COMPLETE
        assert results["report_json"] == direct_report_json(
            workload="aes-ct", overrides=overrides,
            store=tmp_path / "direct")
        # constant-time AES filters to one class: no evidence stage ran
        state = scheduler.campaigns[cid]
        assert state.plan["early_exit"]

    def test_unknown_workload_fails_at_submit(self, tmp_path):
        scheduler = CampaignScheduler(tmp_path / "store", tmp_path / "queue",
                                      ServiceConfig(workers=0))
        with pytest.raises(KeyError):
            scheduler.submit("no-such-workload", TINY)


class TestCoalescing:
    def test_duplicate_submissions_share_one_execution(self, tmp_path):
        scheduler, cids = run_service(
            tmp_path, ServiceConfig(workers=0, unit_runs=2), submissions=3)
        primary, *rest = cids
        assert scheduler.campaigns[primary].coalesced_into is None
        assert all(scheduler.campaigns[cid].coalesced_into == primary
                   for cid in rest)
        reports = {scheduler.results(cid)["report_json"] for cid in cids}
        assert len(reports) == 1
        # exactly one set of units was scheduled
        plans = [uid for uid in scheduler.queue.results_dir.glob("*.json")
                 if uid.stem.endswith(".plan")]
        assert len(plans) == 1

    def test_identity_excludes_operational_knobs(self):
        base = OwlConfig(**TINY)
        assert campaign_identity("dummy", base) == campaign_identity(
            "dummy", dataclasses.replace(base, workers=4, columnar=False))
        assert campaign_identity("dummy", base) != campaign_identity(
            "dummy", dataclasses.replace(base, fixed_runs=7))
        assert campaign_identity("dummy", base) != campaign_identity(
            "aes", base)

    def test_no_coalesce_schedules_separately(self, tmp_path):
        scheduler, cids = run_service(
            tmp_path, ServiceConfig(workers=0, unit_runs=2, coalesce=False),
            submissions=2)
        assert all(scheduler.campaigns[cid].coalesced_into is None
                   for cid in cids)
        reports = {scheduler.results(cid)["report_json"] for cid in cids}
        assert len(reports) == 1  # second run is a report cache hit


class TestFleetIdentity:
    def test_fleet_report_identical_and_survives_worker_death(
            self, tmp_path):
        """Acceptance: 2 workers, each injected to die mid-campaign."""
        scheduler, (cid,) = run_service(
            tmp_path,
            ServiceConfig(workers=2, unit_runs=2, die_after=2,
                          lease_seconds=120.0))
        results = scheduler.results(cid)
        assert results["stage"] == STAGE_COMPLETE
        assert results["report_json"] == direct_report_json(
            store=tmp_path / "direct")
        # both injected deaths were observed and survived
        assert scheduler.fleet.restarts == 2
        kinds = [event.kind for event in scheduler.events]
        assert kinds.count("worker_lost") == 2
        state = scheduler.campaigns[cid]
        requeued = [event for event in state.degradations
                    if event.kind == "unit_requeued"]
        assert requeued  # the dead workers' leased units were re-offered


class TestRecovery:
    def test_scheduler_restart_resumes_without_rerunning(self, tmp_path):
        config = ServiceConfig(workers=0, unit_runs=2)
        first = CampaignScheduler(tmp_path / "store", tmp_path / "queue",
                                  config)
        cid = first.submit("dummy", TINY)
        # drive only the trace stage, then "crash" the scheduler
        for _ in range(3):
            first.tick()
        del first

        second = CampaignScheduler(tmp_path / "store", tmp_path / "queue",
                                   config)
        assert second.recover() == [cid]
        assert second.wait([cid], timeout=240)
        results = second.results(cid)
        assert results["stage"] == STAGE_COMPLETE
        assert results["report_json"] == direct_report_json(
            store=tmp_path / "direct")

    def test_requeue_past_budget_degrades_to_scheduler(self, tmp_path):
        """FLEET_TO_LOCAL: a unit the fleet keeps dropping runs locally."""
        config = ServiceConfig(workers=0, unit_runs=2, max_attempts=2)
        scheduler = CampaignScheduler(tmp_path / "store", tmp_path / "queue",
                                      config)
        cid = scheduler.submit("dummy", TINY)
        uid = f"{cid}.trace.0000"
        # simulate the fleet losing the unit past its attempt budget
        scheduler.queue.claim(uid, "w9")
        scheduler._requeue(uid, reason="test loss 1")
        scheduler.queue.claim(uid, "w9")
        scheduler._requeue(uid, reason="test loss 2")
        assert scheduler.queue.result(uid) is not None  # ran locally
        kinds = [event.kind for event in scheduler.events]
        assert "fleet_to_local" in kinds
        assert scheduler.wait([cid], timeout=240)
        assert scheduler.results(cid)["report_json"] == direct_report_json(
            store=tmp_path / "direct")


class TestStatus:
    def test_status_rows(self, tmp_path):
        scheduler, (cid,) = run_service(
            tmp_path, ServiceConfig(workers=0, unit_runs=2))
        row = scheduler.status(cid)
        assert row["stage"] == STAGE_COMPLETE
        assert row["workload"] == "dummy"
        everything = scheduler.status()
        assert cid in everything["campaigns"]

    def test_failed_campaign_reports_error(self, tmp_path, monkeypatch):
        import repro.service.scheduler as scheduler_module

        def explode(unit, store_root):
            raise RuntimeError("unit exploded")

        monkeypatch.setattr(scheduler_module, "execute_unit", explode)
        scheduler = CampaignScheduler(tmp_path / "store", tmp_path / "queue",
                                      ServiceConfig(workers=0))
        cid = scheduler.submit("dummy", TINY)
        assert scheduler.wait([cid], timeout=60)
        state = scheduler.campaigns[cid]
        assert state.stage == STAGE_FAILED
        assert "unit exploded" in state.error
        assert scheduler.results(cid)["stage"] == STAGE_FAILED
