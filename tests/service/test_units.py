"""WorkUnit model: round-trip, builders, chunking arithmetic."""

from repro.service.units import (
    KIND_EVIDENCE, KIND_FOLD, KIND_PLAN, KIND_REPORT, KIND_TRACE, WorkUnit,
    evidence_units, fold_unit, plan_unit, report_unit, trace_units)

SPEC = {"workload": "dummy", "config": {"fixed_runs": 10}}


class TestRoundTrip:
    def test_dict_round_trip(self):
        unit = WorkUnit(uid="c1.trace.0001", kind=KIND_TRACE, campaign="c1",
                        spec=SPEC, params={"index": 1}, attempts=2)
        again = WorkUnit.from_dict(unit.to_dict())
        assert again == unit

    def test_defaults(self):
        unit = WorkUnit.from_dict({"uid": "u", "kind": KIND_PLAN,
                                   "campaign": "c"})
        assert unit.spec == {} and unit.params == {} and unit.attempts == 0


class TestBuilders:
    def test_trace_units_one_per_input(self):
        units = trace_units("c1", SPEC, 3)
        assert [u.uid for u in units] == [
            "c1.trace.0000", "c1.trace.0001", "c1.trace.0002"]
        assert all(u.kind == KIND_TRACE and u.campaign == "c1"
                   for u in units)
        assert [u.params["index"] for u in units] == [0, 1, 2]

    def test_plan_and_report_units(self):
        plan = plan_unit("c1", SPEC, 2)
        assert plan.uid == "c1.plan" and plan.kind == KIND_PLAN
        report = report_unit("c1", SPEC, 2)
        assert report.uid == "c1.report" and report.kind == KIND_REPORT

    def test_evidence_units_cover_all_runs_exactly(self):
        units = evidence_units("c1", SPEC, "fixed", 0, total_runs=25,
                               unit_runs=10)
        spans = [(u.params["start"], u.params["stop"]) for u in units]
        assert spans == [(0, 10), (10, 20), (20, 25)]
        assert [u.params["chunk"] for u in units] == [0, 1, 2]
        assert all(u.kind == KIND_EVIDENCE for u in units)

    def test_evidence_units_single_chunk_when_unit_runs_exceeds(self):
        units = evidence_units("c1", SPEC, "random", -1, total_runs=4,
                               unit_runs=100)
        assert len(units) == 1
        assert (units[0].params["start"], units[0].params["stop"]) == (0, 4)
        assert units[0].params["rep_index"] == -1

    def test_fold_unit_names_side_and_rep(self):
        unit = fold_unit("c1", SPEC, "fixed", 2, num_chunks=3)
        assert unit.uid == "c1.fold.fixed.2"
        assert unit.kind == KIND_FOLD
        assert unit.params == {"side": "fixed", "rep_index": 2,
                               "num_chunks": 3}
