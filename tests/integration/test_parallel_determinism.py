"""Parallel and serial detection must be indistinguishable in output.

The acceptance bar for the worker-pool backend: ``OwlConfig(workers=4)``
yields a bit-identical ``LeakageReport`` (same leaks, same p-values, same
order) to ``workers=1`` on the same seed — the pool may only change *where*
runs execute, never what they observe.
"""

import json

import pytest

from repro.apps import dummy
from repro.apps.libgpucrypto import aes_program, random_key
from repro.cli import main as cli_main
from repro.core import Owl, OwlConfig

RUNS = 6  # enough for stable verdicts on these workloads, cheap enough for CI


def detect(program, name, inputs, random_input, **config_kwargs):
    config = OwlConfig(fixed_runs=RUNS, random_runs=RUNS, **config_kwargs)
    owl = Owl(program, name=name, config=config)
    return owl.detect(inputs=inputs, random_input=random_input)


class TestWorkerDeterminism:
    def test_aes_reports_identical_across_worker_counts(self):
        results = {
            workers: detect(aes_program, "aes",
                            [bytes(range(16)), bytes(range(1, 17))],
                            random_key, workers=workers)
            for workers in (1, 4)
        }
        baseline = results[1].report
        assert baseline.has_leaks  # the table-lookup AES must keep leaking
        assert results[4].report.to_json() == baseline.to_json()

    def test_dummy_reports_identical_across_worker_counts(self):
        inputs = [dummy.fixed_input(), dummy.fixed_input(value=9)]
        reports = [
            detect(dummy.dummy_program, "dummy", inputs, dummy.random_input,
                   workers=workers).report.to_json()
            for workers in (1, 2, 4)
        ]
        assert reports[0] == reports[1] == reports[2]

    def test_per_run_sampling_survives_the_pool(self):
        inputs = [dummy.fixed_input(), dummy.fixed_input(value=9)]
        serial = detect(dummy.dummy_program, "dummy", inputs,
                        dummy.random_input, sampling="per_run", workers=1)
        pooled = detect(dummy.dummy_program, "dummy", inputs,
                        dummy.random_input, sampling="per_run", workers=3)
        assert pooled.report.to_json() == serial.report.to_json()

    def test_auto_workers_accepted(self):
        inputs = [dummy.fixed_input(), dummy.fixed_input(value=9)]
        result = detect(dummy.dummy_program, "dummy", inputs,
                        dummy.random_input, workers="auto")
        assert result.stats.workers >= 1
        assert result.stats.trace_count > 0

    def test_parallel_stats_keep_per_trace_semantics(self):
        result = detect(aes_program, "aes",
                        [bytes(range(16)), bytes(range(1, 17))],
                        random_key, workers=4)
        stats = result.stats
        assert stats.workers == 4
        # summed per-trace cost stays per-trace: the average must look like
        # one AES trace, not like a whole wall-clock phase
        assert stats.avg_trace_seconds * stats.trace_count == pytest.approx(
            stats.trace_seconds_total)
        # wall clock of the recording phases is bounded by the run total,
        # which the summed per-trace time no longer is under workers > 1
        assert stats.trace_wall_seconds <= stats.total_seconds
        assert stats.trace_wall_seconds > 0


class TestCliWorkers:
    def run_cli(self, capsys, *extra):
        code = cli_main(["aes", "--fixed-runs", "4", "--random-runs", "4",
                         "--json", *extra])
        out = capsys.readouterr().out
        return code, json.loads(out)

    def test_workers_flag_is_report_invariant(self, capsys):
        code_serial, report_serial = self.run_cli(capsys)
        code_pooled, report_pooled = self.run_cli(capsys, "--workers", "2")
        assert code_serial == code_pooled == 1  # AES leaks either way
        assert report_pooled == report_serial

    def test_workers_auto_accepted(self, capsys):
        code, report = self.run_cli(capsys, "--workers", "auto")
        assert code == 1
        assert report["leaks"]

    @pytest.mark.parametrize("value", ["many", "0", "-1", ""])
    def test_workers_rejects_garbage(self, capsys, value):
        with pytest.raises(SystemExit):
            cli_main(["aes", "--workers", value])
        assert "--workers takes a positive int" in capsys.readouterr().err
