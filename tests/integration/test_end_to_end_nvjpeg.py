"""End-to-end Owl detection on the nvjpeg codec (Table III's last rows)."""

import pytest

from repro.apps.nvjpeg import (
    decode_program,
    encode_program,
    random_image,
    synthetic_image,
)
from repro.core import Owl, OwlConfig

CONFIG = OwlConfig(fixed_runs=30, random_runs=30)


@pytest.fixture(scope="module")
def encode_result():
    owl = Owl(encode_program, name="nvjpeg_encode", config=CONFIG)
    return owl.detect(
        inputs=[synthetic_image(16, 16, seed=1),
                synthetic_image(16, 16, seed=2)],
        random_input=lambda rng: random_image(rng, 16, 16))


class TestEncoding:
    def test_finds_control_and_data_flow_leaks(self, encode_result):
        counts = encode_result.report.counts()
        assert counts["control_flow"] >= 2
        assert counts["data_flow"] >= 1

    def test_no_kernel_leaks(self, encode_result):
        """The encoder's host code launches the same kernels for every
        image; only the device internals leak."""
        assert encode_result.report.kernel_leaks == []

    def test_all_leaks_in_the_entropy_kernel(self, encode_result):
        kernels = {leak.kernel_name for leak in encode_result.report.leaks}
        assert kernels == {"entropy_kernel"}

    def test_pipeline_stages_before_entropy_are_clean(self, encode_result):
        flagged_blocks = {(l.kernel_name, l.block)
                          for l in encode_result.report.leaks}
        for kernel_name in ("rgb_to_ycbcr_kernel", "extract_luma_kernel",
                            "dct8x8_kernel", "quantize_kernel"):
            assert not any(k == kernel_name for k, _b in flagged_blocks)


class TestDecoding:
    def test_decoder_is_clean(self):
        owl = Owl(decode_program, name="nvjpeg_decode", config=CONFIG)
        result = owl.detect(
            inputs=[synthetic_image(16, 16, seed=1),
                    synthetic_image(16, 16, seed=2)],
            random_input=lambda rng: random_image(rng, 16, 16))
        # same-size images produce identical decode traces: the filtering
        # phase already proves leak-freedom, as the paper found for nvJPEG
        assert result.leak_free_by_filtering
        assert not result.report.has_leaks
