"""Detection verdicts with replica-cohort batching, across the matrix.

Replica batching (DESIGN.md §12) fuses the fixed/random repetitions of a
launch into extra rows of the cohort lane grid and, with ``replica_dedup``,
collapses equal-input repetitions to one recording.  Both are pure
recording optimisations: every report must be byte-identical to the
serial per-run reference across all bundled workloads, and the knobs must
compose with the columnar transport, the cohort engine and the parallel
recording pool.  Because replayed traces are byte-identical, the store
fingerprints must not depend on either knob.
"""

import pytest

from repro.cli import _workloads
from repro.core.pipeline import Owl, OwlConfig
from repro.gpusim.device import DeviceConfig
from repro.store.fingerprint import (
    analysis_fingerprint,
    evidence_fingerprint,
    trace_fingerprint,
)

TINY = dict(fixed_runs=4, random_runs=4, seed=11, always_analyze=True)

#: workloads whose programs draw no per-run randomness of their own, so
#: equal-input deduplication is sound for them (the documented envelope)
DEDUP_SAFE = ["aes", "rsa", "dummy"]


def run_detection(workload, **overrides):
    program, fixed_inputs, random_input = _workloads()[workload]
    config = OwlConfig(**{**TINY, **overrides})
    owl = Owl(program, name=workload, config=config)
    result = owl.detect(inputs=fixed_inputs(), random_input=random_input)
    return result.report.to_json()


class TestAllWorkloads:
    """Every bundled workload, byte-identical — the tentpole's contract."""

    @pytest.mark.parametrize("workload", sorted(_workloads()))
    def test_replica_batching_matches_serial(self, workload):
        reference = run_detection(workload, replica_batch=False)
        report = run_detection(workload, replica_batch=True)
        assert report == reference, (
            f"{workload}: replica batching diverged from serial runs")


class TestEngineMatrix:
    """Replica batching composes with every other recording engine knob."""

    @pytest.mark.parametrize("workload", ["dummy", "rsa", "aes"])
    def test_replica_matrix_matches_reference(self, workload):
        reference = run_detection(workload, replica_batch=False,
                                  cohort=False, columnar=False, workers=1)
        for cohort in (False, True):
            for columnar in (False, True):
                for workers in (1, 2):
                    report = run_detection(
                        workload, replica_batch=True, cohort=cohort,
                        columnar=columnar, workers=workers)
                    assert report == reference, (
                        f"{workload}: replica(cohort={cohort}, "
                        f"columnar={columnar}, workers={workers}) "
                        "diverged from reference")

    @pytest.mark.parametrize("workload", DEDUP_SAFE)
    def test_dedup_matches_reference_on_pure_workloads(self, workload):
        reference = run_detection(workload, replica_batch=False)
        for workers in (1, 2):
            report = run_detection(workload, replica_batch=True,
                                   replica_dedup=True, workers=workers)
            assert report == reference, (
                f"{workload}: replica dedup (workers={workers}) "
                "diverged from reference")


class TestFingerprintInvariance:
    """Byte-identical traces mean the store must not re-record or
    re-analyze when only the replica knobs change."""

    @pytest.mark.parametrize("overrides", [
        dict(replica_batch=False),
        dict(replica_batch=True),
        dict(replica_batch=True, replica_dedup=True),
    ])
    def test_all_fingerprints_unchanged(self, overrides):
        device = DeviceConfig()
        reference = OwlConfig()
        config = OwlConfig(**overrides)
        assert trace_fingerprint(config, device) == \
            trace_fingerprint(reference, device)
        assert evidence_fingerprint(config, device) == \
            evidence_fingerprint(reference, device)
        assert analysis_fingerprint(config, device) == \
            analysis_fingerprint(reference, device)
