"""The service verbs end-to-end through ``owl``: --connect, exit codes.

Exit-code contract under test (cli module docstring): 0 success,
1 campaign failure / leaks / results not ready, 2 configuration or
usage errors, 3 unreachable service or rejected credentials/quota.
"""

import threading

import pytest

from repro.apps.registry import resolve
from repro.cli import main as cli_main
from repro.core.pipeline import Owl, OwlConfig
from repro.errors import CampaignError
from repro.service import (
    CampaignScheduler, ServiceClient, ServiceConfig, TenantQuota)
from repro.service.server import serve_forever

TINY_ARGS = ["--fixed-runs", "4", "--random-runs", "4", "--seed", "21"]
TINY = dict(fixed_runs=4, random_runs=4, seed=21)


def _start(tmp_path, config=None, tokens=None):
    scheduler = CampaignScheduler(
        tmp_path / "store", tmp_path / "queue",
        config or ServiceConfig(workers=0, unit_runs=2))
    url = f"unix://{tmp_path / 'owl.sock'}"
    thread = threading.Thread(
        target=serve_forever,
        args=(scheduler, ("unix", str(tmp_path / "owl.sock"))),
        kwargs={"tokens": tokens}, daemon=True)
    thread.start()
    return scheduler, url, thread


@pytest.fixture
def service(tmp_path):
    scheduler, url, thread = _start(tmp_path)
    client = ServiceClient(url)
    client.wait_until_up(timeout=30)
    yield url, client, scheduler
    try:
        client.shutdown()
    except (CampaignError, OSError):
        pass
    thread.join(timeout=30)
    assert not thread.is_alive()


def _expected_exit(tmp_path) -> int:
    program, fixed_inputs, random_input = resolve("dummy")
    owl = Owl(program, name="dummy", config=OwlConfig(**TINY))
    report = owl.detect(fixed_inputs(), random_input=random_input,
                        store=tmp_path / "direct").report
    return 1 if report.has_leaks else 0


class TestRoundTrip:
    def test_submit_wait_exit_code_tracks_leaks(self, service, tmp_path,
                                                capsys):
        url, _client, _scheduler = service
        code = cli_main(["submit", "dummy", "--connect", url, "--wait",
                         *TINY_ARGS])
        assert code == _expected_exit(tmp_path)
        assert capsys.readouterr().out  # the rendered report

    def test_submit_status_results(self, service, capsys):
        url, client, _scheduler = service
        assert cli_main(["submit", "dummy", "--connect", url,
                         *TINY_ARGS]) == 0
        out = capsys.readouterr().out
        cid = out.split("campaign ")[1].split()[0]
        client.wait_for(cid, timeout=240)
        assert cli_main(["status", "--connect", url]) == 0
        assert cid in capsys.readouterr().out
        code = cli_main(["results", cid, "--connect", url])
        assert code in (0, 1)  # per has_leaks, asserted above
        assert capsys.readouterr().out

    def test_results_watch_streams_then_reports(self, service, tmp_path,
                                                capsys):
        url, _client, _scheduler = service
        assert cli_main(["submit", "dummy", "--connect", url,
                         *TINY_ARGS]) == 0
        cid = capsys.readouterr().out.split("campaign ")[1].split()[0]
        code = cli_main(["results", cid, "--connect", url, "--watch"])
        assert code == _expected_exit(tmp_path)
        out = capsys.readouterr().out
        assert f"{cid}  complete" in out

    def test_watch_reconnects_after_midstream_drop(self, service,
                                                   tmp_path, capsys,
                                                   monkeypatch):
        from repro.errors import ServiceConnectionError
        url, _client, _scheduler = service
        assert cli_main(["submit", "dummy", "--connect", url,
                         *TINY_ARGS]) == 0
        cid = capsys.readouterr().out.split("campaign ")[1].split()[0]

        real_watch = ServiceClient.watch
        calls = {"n": 0}

        def flaky_watch(self, campaign, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                stream = real_watch(self, campaign, **kwargs)
                yield next(stream)  # one event, then the link "drops"
                stream.close()
                raise ServiceConnectionError("simulated mid-stream drop")
            yield from real_watch(self, campaign, **kwargs)

        monkeypatch.setattr(ServiceClient, "watch", flaky_watch)
        code = cli_main(["results", cid, "--connect", url, "--watch"])
        assert code == _expected_exit(tmp_path)
        captured = capsys.readouterr()
        assert calls["n"] >= 2, "never reconnected"
        assert "reconnecting" in captured.err
        assert f"{cid}  complete" in captured.out


class TestExitCodes:
    def test_unreachable_service_exits_3(self, tmp_path, capsys):
        code = cli_main(["status", "--connect",
                         f"unix://{tmp_path / 'missing.sock'}"])
        assert code == 3
        assert "owl:" in capsys.readouterr().err

    def test_bad_connect_scheme_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as info:
            cli_main(["status", "--connect", "ftp://somewhere:21"])
        assert info.value.code == 2

    def test_connect_conflicts_with_socket_flag(self, tmp_path):
        with pytest.raises(SystemExit) as info:
            cli_main(["status", "--connect", f"unix://{tmp_path}/a.sock",
                      "--socket", f"{tmp_path}/b.sock"])
        assert info.value.code == 2

    def test_unknown_campaign_exits_2(self, service, capsys):
        url, _client, _scheduler = service
        assert cli_main(["results", "c9999", "--connect", url]) == 2
        assert "c9999" in capsys.readouterr().err

    def test_pending_results_exit_1(self, tmp_path, capsys):
        # external_workers with nobody attached: campaigns never run
        config = ServiceConfig(workers=0, unit_runs=2,
                               external_workers=True)
        scheduler, url, thread = _start(tmp_path, config=config)
        client = ServiceClient(url)
        client.wait_until_up(timeout=30)
        try:
            assert cli_main(["submit", "dummy", "--connect", url,
                             *TINY_ARGS]) == 0
            cid = capsys.readouterr().out.split("campaign ")[1].split()[0]
            code = cli_main(["results", cid, "--connect", url])
            assert code == 1
            assert "still in stage" in capsys.readouterr().out
        finally:
            try:
                client.shutdown()
            except (CampaignError, OSError):
                pass
            thread.join(timeout=30)

    def test_deprecated_socket_flag_still_works_with_a_hint(
            self, service, capsys):
        url, _client, _scheduler = service
        path = url[len("unix://"):]
        assert cli_main(["status", "--socket", path]) == 0
        captured = capsys.readouterr()
        assert "deprecated" in captured.err
        assert "--connect unix://" in captured.err


class TestAuthAndQuotaExitCodes:
    @pytest.fixture
    def guarded(self, tmp_path):
        config = ServiceConfig(
            workers=0, unit_runs=2,
            quotas={"alice": TenantQuota(max_campaigns=1)})
        scheduler, url, thread = _start(tmp_path, config=config,
                                        tokens={"sekrit": "alice"})
        client = ServiceClient(url, token="sekrit")
        client.wait_until_up(timeout=30)
        yield url, client
        try:
            client.shutdown()
        except (CampaignError, OSError):
            pass
        thread.join(timeout=30)

    def test_missing_token_exits_3(self, guarded, capsys):
        url, _client = guarded
        assert cli_main(["status", "--connect", url]) == 3
        assert "token" in capsys.readouterr().err

    def test_wrong_token_exits_3(self, guarded, capsys):
        url, _client = guarded
        assert cli_main(["submit", "dummy", "--connect", url,
                         "--token", "wrong", *TINY_ARGS]) == 3

    def test_quota_exhaustion_exits_3(self, guarded, capsys):
        url, client = guarded
        assert cli_main(["submit", "dummy", "--connect", url,
                         "--token", "sekrit", *TINY_ARGS]) == 0
        capsys.readouterr()
        code = cli_main(["submit", "dummy", "--connect", url,
                         "--token", "sekrit", "--seed", "99",
                         "--fixed-runs", "4", "--random-runs", "4"])
        assert code == 3
        assert "quota" in capsys.readouterr().err.lower()
