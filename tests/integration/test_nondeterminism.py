"""Owl's central robustness claim: input-independent nondeterminism must not
produce leak reports, while input dependence must survive the filtering."""

import numpy as np
import pytest

from repro.core import Owl, OwlConfig
from repro.core.evidence import Evidence
from repro.core.leakage import LeakageAnalyzer
from repro.gpusim import kernel
from repro.tracing import TraceRecorder

CONFIG = OwlConfig(fixed_runs=30, random_runs=30)


@kernel()
def noisy_kernel(k, data, noise_values, noise_indices, out):
    k.block("entry")
    tid = k.global_tid()
    secret = k.load(data, tid)                      # benign address
    # nondeterministic *addresses*: the noise index array is freshly random
    # every run, independent of the input
    idx = k.load(noise_indices, tid)
    k.load(noise_values, idx % 16)
    k.store(out, tid, secret)
    k.block("exit")


#: seeded noise streams: random per run, reproducible across test runs
#: (an unseeded stream makes the verdicts flake at the distribution test's
#: own ~5%-per-feature false-positive rate)
_NOISE_RNG = np.random.default_rng(99)


def noisy_program(rt, secret):
    rng = _NOISE_RNG
    data = rt.cudaMalloc(32, label="data")
    rt.cudaMemcpyHtoD(data, np.full(32, secret))
    noise_values = rt.cudaMalloc(16, label="noise_values")
    rt.cudaMemcpyHtoD(noise_values, rng.integers(0, 100, 16))
    noise_indices = rt.cudaMalloc(32, label="noise_indices")
    rt.cudaMemcpyHtoD(noise_indices, rng.integers(0, 16, 32))
    out = rt.cudaMalloc(32, label="out")
    rt.cuLaunchKernel(noisy_kernel, 1, 32, data, noise_values,
                      noise_indices, out)


@kernel()
def mixed_kernel(k, table, data, noise_indices, out):
    k.block("entry")
    tid = k.global_tid()
    secret = k.load(data, tid)
    k.load(table, secret % 64)                       # genuine DF leak
    idx = k.load(noise_indices, tid)
    k.load(table, idx % 64)                          # nondet noise access
    k.store(out, tid, secret)
    k.block("exit")


def mixed_program(rt, secret):
    rng = _NOISE_RNG
    table = rt.cudaMalloc(64, label="table")
    rt.cudaMemcpyHtoD(table, np.arange(64))
    data = rt.cudaMalloc(32, label="data")
    rt.cudaMemcpyHtoD(data, np.full(32, secret))
    noise_indices = rt.cudaMalloc(32, label="noise_indices")
    rt.cudaMemcpyHtoD(noise_indices, rng.integers(0, 64, 32))
    out = rt.cudaMalloc(32, label="out")
    rt.cuLaunchKernel(mixed_kernel, 1, 32, table, data, noise_indices, out)


def random_secret(rng):
    return int(rng.integers(0, 64))


class TestNoiseFiltering:
    def test_random_addresses_pass_the_distribution_test(self):
        """Even nondeterministic *addresses* (not just values) are filtered
        when their distribution is input-independent."""
        owl = Owl(noisy_program, name="noisy", config=CONFIG)
        result = owl.detect(inputs=[3, 9], random_input=random_secret)
        # repeated fixed runs differ (so filtering sees multiple classes),
        # but the leakage analysis attributes nothing to the input
        assert not result.report.has_leaks

    def test_genuine_leak_survives_surrounding_noise(self):
        owl = Owl(mixed_program, name="mixed", config=CONFIG)
        result = owl.detect(inputs=[3, 9], random_input=random_secret)
        df = result.report.data_flow_leaks
        assert len(df) == 1
        assert df[0].instr == 1  # the secret-indexed lookup, not the noisy one


class TestNaiveDifferencingStrawman:
    def test_single_trace_differencing_would_false_positive(self):
        """Why the fixed-input repetition matters (the ablation's point):
        two runs of the *same* input already differ, so naive differencing
        flags the noisy program; Owl's distribution test does not."""
        recorder = TraceRecorder()
        first = recorder.record(noisy_program, 3)
        second = recorder.record(noisy_program, 3)
        assert first != second  # naive diff: "leak!"

        analyzer = LeakageAnalyzer()
        fixed = Evidence.from_traces(
            recorder.record(noisy_program, 3) for _ in range(30))
        random = Evidence.from_traces(
            recorder.record(noisy_program, i % 64) for i in range(30))
        report = analyzer.analyze(fixed, random)
        assert not report.has_leaks  # Owl: no leak
