"""Detection verdicts across the full recording-engine matrix.

The cohort engine composes with the columnar transport and the parallel
recording pool; every combination must produce the exact report of the
serial per-warp per-event reference, because all three are pure recording
optimisations with byte-identical traces.
"""

import pytest

from repro.cli import _workloads
from repro.core.pipeline import Owl, OwlConfig

TINY = dict(fixed_runs=4, random_runs=4, seed=11, always_analyze=True)


def run_detection(workload, **overrides):
    program, fixed_inputs, random_input = _workloads()[workload]
    config = OwlConfig(**{**TINY, **overrides})
    owl = Owl(program, name=workload, config=config)
    result = owl.detect(inputs=fixed_inputs(), random_input=random_input)
    return result.report.to_json()


class TestEngineMatrix:
    @pytest.mark.parametrize("workload", ["dummy", "rsa", "aes"])
    def test_cohort_matrix_matches_reference(self, workload):
        reference = run_detection(workload, cohort=False, columnar=False,
                                  workers=1)
        for columnar in (False, True):
            for workers in (1, 2):
                report = run_detection(workload, cohort=True,
                                       columnar=columnar, workers=workers)
                assert report == reference, (
                    f"{workload}: cohort(columnar={columnar}, "
                    f"workers={workers}) diverged from reference")

    @pytest.mark.parametrize("workload", ["dummy", "rsa"])
    def test_no_cohort_parallel_columnar_unchanged(self, workload):
        """The satellite paths still agree with cohort disabled."""
        reference = run_detection(workload, cohort=False, columnar=False,
                                  workers=1)
        report = run_detection(workload, cohort=False, columnar=True,
                               workers=2)
        assert report == reference
