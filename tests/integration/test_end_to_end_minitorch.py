"""End-to-end Owl detection on minitorch (the PyTorch rows of Table III)."""

import numpy as np
import pytest

from repro.apps.minitorch import (
    make_op_program,
    make_random_input,
    serialize_program,
    tensor_repr_program,
)
from repro.apps.minitorch.ops import fixed_op_input
from repro.apps.minitorch.serialize import serialize_random_input
from repro.apps.minitorch.tensor import repr_random_input
from repro.core import Owl, OwlConfig

FAST = OwlConfig(fixed_runs=20, random_runs=20)
THOROUGH = OwlConfig(fixed_runs=100, random_runs=100)

#: ops the paper's reasoning says are constant-observable
CLEAN_OPS = ("relu", "sigmoid", "tanh", "softmax", "avgpool2d", "maxpool2d",
             "linear", "mseloss", "dropout")


@pytest.mark.parametrize("name", CLEAN_OPS)
def test_clean_ops_report_no_leaks(name, rng):
    program = make_op_program(name)
    generate = make_random_input(name)
    owl = Owl(program, name=name, config=FAST)
    result = owl.detect(inputs=[fixed_op_input(name), generate(rng)],
                        random_input=generate)
    assert not result.report.has_leaks


def test_maxpool2d_predication_masks_control_flow(rng):
    """The paper's flagship negative result: the CPU max_pool2d leaks, the
    CUDA one does not, because intra-warp divergence is predicated."""
    generate = make_random_input("maxpool2d")
    owl = Owl(make_op_program("maxpool2d"), name="maxpool2d", config=FAST)
    result = owl.detect(inputs=[fixed_op_input("maxpool2d"), generate(rng)],
                        random_input=generate)
    assert result.report.control_flow_leaks == []


def test_conv2d_sparse_fast_path_is_a_kernel_leak(rng):
    generate = make_random_input("conv2d")
    owl = Owl(make_op_program("conv2d"), name="conv2d", config=FAST)
    result = owl.detect(
        inputs=[np.zeros(64), fixed_op_input("conv2d")],
        random_input=generate)
    kernel_names = {leak.kernel_name for leak in result.report.kernel_leaks}
    assert kernel_names  # zero-input fast path vs dense path
    assert kernel_names <= {"conv2d_kernel", "zero_fill_kernel"}


def test_nllloss_target_gather_is_a_data_flow_leak():
    """Needs the paper-scale run count: the per-item gather shifts the
    offset distribution subtly."""
    generate = make_random_input("nllloss")
    owl = Owl(make_op_program("nllloss"), name="nllloss", config=THOROUGH)
    rng = np.random.default_rng(0)
    result = owl.detect(inputs=[fixed_op_input("nllloss"), generate(rng)],
                        random_input=generate)
    df = result.report.data_flow_leaks
    assert len(df) >= 1
    assert all(leak.kernel_name == "nllloss_kernel" for leak in df)


def test_serialization_kernel_leak(rng):
    owl = Owl(serialize_program, name="serialize", config=FAST)
    result = owl.detect(inputs=[np.zeros(64), np.linspace(-2, 2, 64)],
                        random_input=serialize_random_input)
    kernel_leaks = result.report.kernel_leaks
    assert len(kernel_leaks) == 1
    assert kernel_leaks[0].kernel_name == "copy_kernel"


def test_tensor_repr_kernel_leak(rng):
    owl = Owl(tensor_repr_program, name="repr", config=FAST)
    result = owl.detect(
        inputs=[np.linspace(-2, 2, 64), np.linspace(-2, 2, 64) * 10_000],
        random_input=repr_random_input)
    kernel_leaks = result.report.kernel_leaks
    assert len(kernel_leaks) == 1
    assert kernel_leaks[0].kernel_name == "scale_stats_kernel"


def test_dropout_nondeterminism_not_misattributed(rng):
    """Dropout's random mask makes every trace's *values* differ, but the
    addresses are thread-indexed: the distribution test must filter it."""
    generate = make_random_input("dropout")
    owl = Owl(make_op_program("dropout"), name="dropout", config=FAST)
    result = owl.detect(inputs=[fixed_op_input("dropout"), generate(rng)],
                        random_input=generate)
    assert not result.report.has_leaks
