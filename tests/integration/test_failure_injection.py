"""Failure injection: the pipeline must fail loudly, never silently."""

import numpy as np
import pytest

from repro.gpusim import Device, MemorySpace, kernel
from repro.gpusim.events import KernelBeginEvent, KernelEndEvent
from repro.gpusim.memory import AllocationError
from repro.host import CudaRuntime
from repro.tracing import TraceRecorder
from repro.tracing.monitor import MonitorError, WarpTraceMonitor
from repro.tracing.recorder import RecordingError


@kernel()
def oob_kernel(k, buf):
    k.block("entry")
    k.load(buf, k.global_tid() + 1_000_000)


@kernel()
def good_kernel(k, buf):
    k.block("entry")
    k.load(buf, k.global_tid())


class TestProgramFailures:
    def test_out_of_bounds_access_propagates(self, recorder):
        def program(rt, _secret):
            buf = rt.cudaMalloc(32, label="buf")
            rt.cuLaunchKernel(oob_kernel, 1, 32, buf)

        with pytest.raises(AllocationError):
            recorder.record(program, 0)

    def test_host_exception_propagates(self, recorder):
        def program(rt, _secret):
            raise RuntimeError("victim crashed")

        with pytest.raises(RuntimeError, match="victim crashed"):
            recorder.record(program, 0)

    def test_recorder_is_reusable_after_a_failure(self, recorder):
        def bad(rt, _secret):
            raise RuntimeError("boom")

        def good(rt, _secret):
            buf = rt.cudaMalloc(32, label="buf")
            rt.cuLaunchKernel(good_kernel, 1, 32, buf)

        with pytest.raises(RuntimeError):
            recorder.record(bad, 0)
        trace = recorder.record(good, 0)
        assert len(trace.invocations) == 1

    def test_failed_run_does_not_leak_subscriptions(self, recorder):
        """A crashed victim must not leave the next device listening to a
        dead monitor (the try/finally in record())."""
        def bad(rt, _secret):
            buf = rt.cudaMalloc(32, label="buf")
            rt.cuLaunchKernel(good_kernel, 1, 32, buf)
            raise RuntimeError("after first launch")

        with pytest.raises(RuntimeError):
            recorder.record(bad, 0)
        # two clean runs in a row produce identical traces
        def good(rt, _secret):
            buf = rt.cudaMalloc(32, label="buf")
            rt.cuLaunchKernel(good_kernel, 1, 32, buf)

        assert recorder.record(good, 0) == recorder.record(good, 0)


class TestJoinValidation:
    def test_launch_without_device_trace_detected(self):
        """If the host claims launches the device never executed, the join
        must fail rather than fabricate invocations."""
        recorder = TraceRecorder()

        def program(rt, _secret):
            # bypass the device: forge a host-only launch record
            from repro.host.runtime import LaunchRecord
            from repro.host.callstack import CallStack
            rt._tracer.on_launch(LaunchRecord(
                api="cuLaunchKernel", kernel_name="ghost",
                call_stack=CallStack(frames=()), grid=(1, 1, 1),
                block=(32, 1, 1), seq=99))

        with pytest.raises(RecordingError):
            recorder.record(program, 0)


class TestMonitorRobustness:
    def test_end_without_begin(self):
        monitor = WarpTraceMonitor()
        with pytest.raises(MonitorError):
            monitor.on_event(KernelEndEvent(kernel_name="k"))

    def test_monitor_survives_and_reports_partial_stream(self):
        monitor = WarpTraceMonitor()
        monitor.on_event(KernelBeginEvent(
            kernel_name="k", grid=(1, 1, 1), block=(32, 1, 1),
            total_threads=32, num_warps=1))
        # stream cut off mid-kernel: finish must refuse
        with pytest.raises(MonitorError):
            monitor.finish()
