"""End-to-end fault matrix: every injected fault class must leave the
final leakage report byte-identical to a fault-free reference, with the
survival recorded as structured degradation events — and an interrupted
campaign must resume to the same bytes."""

import dataclasses
import json

import pytest

from repro.cli import _workloads, main
from repro.core.pipeline import Owl, OwlConfig
from repro.errors import WorkerError
from repro.resilience.events import (
    CHUNK_TIMEOUT,
    COHORT_TO_WARP,
    COLUMNAR_TO_OBJECT,
    POOL_RETRY,
    STORE_QUARANTINE,
)
from repro.store import TraceStore, incomplete_campaigns

TINY = dict(fixed_runs=4, random_runs=4, seed=11, store_checkpoint_every=2)
FAST_RETRY = {"backoff_base": 0.01, "backoff_cap": 0.02}


def run_detection(workload="dummy", store=None, **overrides):
    program, fixed_inputs, random_input = _workloads()[workload]
    config = OwlConfig(**{**TINY, **overrides})
    owl = Owl(program, name=workload, config=config)
    return owl.detect(inputs=fixed_inputs(), random_input=random_input,
                      store=store)


def kinds_of(result):
    counts = {}
    for event in result.degradations:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return counts


class TestFaultMatrix:
    """Each fault class, in-pipeline, against a fault-free reference."""

    CASES = [
        pytest.param("worker_crash", dict(workers=2, retry=FAST_RETRY),
                     POOL_RETRY, id="worker_crash"),
        pytest.param("chunk_timeout:sleep=1.2",
                     dict(workers=2,
                          retry={**FAST_RETRY, "chunk_timeout": 0.3}),
                     CHUNK_TIMEOUT, id="chunk_timeout"),
        pytest.param("cohort_violation", dict(), COHORT_TO_WARP,
                     id="cohort_violation"),
        pytest.param("batch_fold_error", dict(), COLUMNAR_TO_OBJECT,
                     id="batch_fold_error"),
    ]

    @pytest.mark.parametrize("plan, overrides, expected_kind", CASES)
    def test_injected_run_is_bit_identical(self, plan, overrides,
                                           expected_kind):
        reference = run_detection()
        injected = run_detection(fault_plan=plan, **overrides)
        assert injected.report.to_json() == reference.report.to_json()
        assert injected.degraded
        assert kinds_of(injected).get(expected_kind, 0) >= 1

    def test_blob_corruption_heals_through_the_store(self, tmp_path):
        reference = run_detection()
        store_dir = tmp_path / "s"
        run_detection(store=TraceStore(store_dir))
        store = TraceStore(store_dir)
        from repro.resilience import FaultPlan
        from repro.resilience.faults import inject_blob_corruption
        assert inject_blob_corruption(
            store, FaultPlan.parse("blob_corruption:kind=evidence"))
        healed = run_detection(store=TraceStore(store_dir),
                               always_analyze=True)
        # a corrupt evidence blob invalidates the cached report path only
        # if analysis re-runs; force it and check the self-heal happened
        assert healed.report.to_json() == reference.report.to_json()

    def test_fault_free_run_reports_no_degradations(self):
        result = run_detection()
        assert not result.degraded
        assert result.degradations == []


class TestResumeAfterFault:
    """A worker crash with degradation forbidden interrupts the campaign;
    a clean rerun resumes from the stored work to identical bytes."""

    def crash_campaign(self, store_dir, cohort=True):
        program, fixed_inputs, random_input = _workloads()["dummy"]
        config = OwlConfig(
            fixed_runs=4, random_runs=4, seed=11,
            workers=3, store_checkpoint_every=3, cohort=cohort,
            fault_plan="worker_crash:chunk=2:attempts=99",
            retry={**FAST_RETRY, "max_attempts": 2,
                   "degrade_to_serial": False},
        )
        owl = Owl(program, name="dummy", config=config)
        with pytest.raises(WorkerError):
            # the 2-input trace phase only has chunks 0 and 1 and
            # survives; the first 3-run evidence batch spans chunks 0-2,
            # so the campaign dies on chunk 2 after the traces (and the
            # campaign-started marker) were persisted to the store
            owl.detect(inputs=fixed_inputs(), random_input=random_input,
                       store=TraceStore(store_dir))
        return program, fixed_inputs, random_input

    @pytest.mark.parametrize("resume_workers", [1, 2])
    @pytest.mark.parametrize("cohort", [True, False])
    def test_resume_matrix_bit_identical(self, resume_workers, cohort,
                                         tmp_path):
        program, fixed_inputs, random_input = self.crash_campaign(
            tmp_path / "s", cohort=cohort)

        reference = Owl(program, name="dummy",
                        config=OwlConfig(**TINY)).detect(
            inputs=fixed_inputs(), random_input=random_input)

        store = TraceStore(tmp_path / "s")
        assert len(incomplete_campaigns(store)) == 1
        resumed = Owl(program, name="dummy",
                      config=OwlConfig(workers=resume_workers,
                                       cohort=cohort, **TINY)).detect(
            inputs=fixed_inputs(), random_input=random_input,
            store=store)
        assert resumed.stats.cached_traces > 0  # pre-crash work survived
        assert resumed.report.to_json() == reference.report.to_json()
        assert incomplete_campaigns(TraceStore(tmp_path / "s")) == []

    def test_cli_resume_strips_the_fault_plan(self, tmp_path, capsys):
        """`owl resume` must finish an interrupted injected campaign
        fault-free (the manifest still carries the fault plan)."""
        store_dir = tmp_path / "s"
        self.crash_campaign(store_dir)

        code = main(["resume", "--store", str(store_dir), "--json"])
        out = capsys.readouterr().out
        assert code == 1  # dummy leaks
        assert "resumed dummy" in out

        reference = run_detection(workers=1)
        payload = out[out.index("{"):]
        assert json.loads(payload) == json.loads(
            reference.report.to_json())


class TestCLIFaultMatrix:
    """The `owl run --inject` surface the CI fault-matrix job drives."""

    RUN_ARGS = ["--fixed-runs", "4", "--random-runs", "4", "--seed", "11"]

    def test_injected_json_matches_fault_free(self, capsys):
        assert main(["dummy", *self.RUN_ARGS, "--json"]) == 1
        reference = capsys.readouterr().out
        assert main(["dummy", *self.RUN_ARGS, "--json",
                     "--inject", "cohort_violation,batch_fold_error"]) == 1
        injected = capsys.readouterr().out
        assert injected == reference

    def test_degradation_log_written(self, tmp_path, capsys):
        log_path = tmp_path / "deep" / "degradations.jsonl"
        assert main(["dummy", *self.RUN_ARGS,
                     "--inject", "cohort_violation",
                     "--degradation-log", str(log_path)]) == 1
        out = capsys.readouterr().out
        assert "[resilience] survived" in out
        events = [json.loads(line)
                  for line in log_path.read_text().splitlines()]
        assert events
        assert all(e["kind"] == COHORT_TO_WARP for e in events)

    def test_worker_crash_via_cli_pool(self, capsys):
        assert main(["dummy", *self.RUN_ARGS, "--json"]) == 1
        reference = capsys.readouterr().out
        assert main(["dummy", *self.RUN_ARGS, "--json", "--workers", "2",
                     "--inject", "worker_crash:chunk=0"]) == 1
        assert capsys.readouterr().out == reference

    def test_blob_corruption_inject_on_warm_store(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["run", "dummy", "--store", store, *self.RUN_ARGS,
                     "--json"]) == 1
        reference = capsys.readouterr().out
        assert main(["run", "dummy", "--store", store, *self.RUN_ARGS,
                     "--no-reuse-report",
                     "--inject", "blob_corruption:kind=trace"]) == 1
        out = capsys.readouterr().out
        assert "[inject] corrupted 1 stored blob(s)" in out
        assert "[resilience] survived" in out
        assert f"1x {STORE_QUARANTINE}" in out
        # the healed store serves the identical report afterwards
        assert main(["run", "dummy", "--store", store, *self.RUN_ARGS,
                     "--json"]) == 1
        assert capsys.readouterr().out == reference

    def test_bad_inject_spec_is_a_clean_parser_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["dummy", *self.RUN_ARGS, "--inject", "disk_full"])
        assert "valid kinds" in capsys.readouterr().err


class TestVerifySubcommand:
    def warm_store(self, tmp_path):
        store = str(tmp_path / "store")
        main(["run", "dummy", "--store", store, *TestCLIFaultMatrix.RUN_ARGS])
        return store

    def test_clean_store_verifies(self, tmp_path, capsys):
        store = self.warm_store(tmp_path)
        capsys.readouterr()
        assert main(["verify", "--store", store]) == 0
        assert "entries verified" in capsys.readouterr().out

    def test_corruption_detected_and_repaired(self, tmp_path, capsys):
        store_dir = self.warm_store(tmp_path)
        store = TraceStore(store_dir)
        from repro.resilience import FaultPlan
        from repro.resilience.faults import inject_blob_corruption
        assert inject_blob_corruption(
            store, FaultPlan.parse("blob_corruption:kind=trace"))
        capsys.readouterr()

        assert main(["verify", "--store", store_dir]) == 1
        out = capsys.readouterr().out
        assert "corrupt: trace/dummy/" in out

        assert main(["verify", "--store", store_dir, "--repair"]) == 0
        assert "quarantined 1 damaged entry" in capsys.readouterr().out

        assert main(["verify", "--store", store_dir]) == 0

    def test_missing_store_is_a_clean_error(self, tmp_path, capsys):
        assert main(["verify", "--store", str(tmp_path / "nowhere")]) == 2
        assert "owl:" in capsys.readouterr().err
