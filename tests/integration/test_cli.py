"""The owl-detect command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults_match_paper_spirit(self):
        args = build_parser().parse_args(["aes"])
        assert args.confidence == 0.95
        assert args.test == "ks"

    def test_unknown_workload_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["definitely-not-a-workload"])

    def test_invalid_test_choice(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["aes", "--test", "chi2"])


class TestExecution:
    def test_list_prints_workloads(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("aes", "rsa", "nvjpeg-encode", "torch-relu",
                     "serialize", "dummy"):
            assert name in out

    def test_no_workload_lists(self, capsys):
        assert main([]) == 0
        assert "aes" in capsys.readouterr().out

    def test_leaky_workload_exits_nonzero(self, capsys):
        code = main(["rsa", "--fixed-runs", "10", "--random-runs", "10"])
        out = capsys.readouterr().out
        assert code == 1
        assert "control-flow leaks" in out
        assert "rsa_modexp_kernel" in out

    def test_clean_workload_exits_zero(self, capsys):
        code = main(["rsa-ct", "--fixed-runs", "5", "--random-runs", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "identical traces" in out

    def test_welch_mode_runs(self, capsys):
        code = main(["rsa", "--fixed-runs", "8", "--random-runs", "8",
                     "--test", "welch"])
        assert code in (0, 1)


class TestCohortFlag:
    def test_cohort_defaults_on(self):
        args = build_parser().parse_args(["aes"])
        assert not args.no_cohort

    def test_no_cohort_verdict_identical(self, capsys):
        """The per-warp reference loop reaches the same verdict and prints
        the same report as the default cohort engine."""
        argv = ["rsa", "--fixed-runs", "8", "--random-runs", "8", "--json"]
        cohort_code = main(argv)
        cohort_out = capsys.readouterr().out
        reference_code = main(argv + ["--no-cohort"])
        reference_out = capsys.readouterr().out
        assert cohort_code == reference_code
        assert cohort_out == reference_out
