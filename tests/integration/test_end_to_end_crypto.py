"""End-to-end Owl detection on the libgpucrypto workloads (Table III)."""

import numpy as np
import pytest

from repro.apps.libgpucrypto import (
    aes_program,
    aes_program_ct,
    random_exponent,
    random_key,
    rsa_program,
    rsa_program_ct,
)
from repro.core import Owl, OwlConfig

CONFIG = OwlConfig(fixed_runs=20, random_runs=20)


@pytest.fixture(scope="module")
def aes_result():
    owl = Owl(aes_program, name="aes", config=CONFIG)
    return owl.detect(inputs=[bytes(range(16)), bytes(range(1, 17))],
                      random_input=random_key)


@pytest.fixture(scope="module")
def rsa_result():
    owl = Owl(rsa_program, name="rsa", config=CONFIG)
    return owl.detect(inputs=[0x6ACF8231, 0x7FD4C9A7],
                      random_input=random_exponent)


class TestAes:
    def test_data_flow_leaks_dominate(self, aes_result):
        counts = aes_result.report.counts()
        assert counts["data_flow"] >= 16  # T-table + final-round lookups
        assert counts["kernel"] == 0

    def test_leaks_are_in_the_table_lookup_instructions(self, aes_result):
        blocks = {leak.block for leak in aes_result.report.data_flow_leaks}
        assert blocks <= {"round", "final_round"}

    def test_benign_state_loads_not_flagged(self, aes_result):
        flagged = {(l.block, l.instr)
                   for l in aes_result.report.data_flow_leaks}
        # the plaintext loads (load_state instrs 0..3) are thread-indexed
        assert not any(block == "load_state" for block, _ in flagged)

    def test_patched_aes_is_clean(self):
        owl = Owl(aes_program_ct, name="aes_ct", config=CONFIG)
        result = owl.detect(inputs=[bytes(range(16)), bytes(range(1, 17))],
                            random_input=random_key)
        assert result.leak_free_by_filtering
        assert not result.report.has_leaks


class TestRsa:
    def test_control_flow_leak_found(self, rsa_result):
        counts = rsa_result.report.counts()
        assert counts["control_flow"] >= 1
        assert counts["data_flow"] == 0

    def test_leak_located_at_the_squaring_loop(self, rsa_result):
        blocks = {leak.block for leak in rsa_result.report.control_flow_leaks}
        assert blocks & {"square", "multiply"}

    def test_patched_rsa_is_clean(self):
        owl = Owl(rsa_program_ct, name="rsa_ct", config=CONFIG)
        result = owl.detect(inputs=[0x6ACF8231, 0x7FD4C9A7],
                            random_input=random_exponent)
        assert result.leak_free_by_filtering
        assert not result.report.has_leaks
