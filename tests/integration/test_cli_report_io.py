"""CLI report output: JSON emission and --save-report round-trips."""

import json

import pytest

from repro.cli import main
from repro.core.report import LeakageReport


class TestJsonOutput:
    def test_json_flag_emits_parseable_report(self, capsys):
        code = main(["rsa", "--fixed-runs", "8", "--random-runs", "8",
                     "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["program_name"] == "rsa"
        assert (code == 1) == bool(payload["leaks"])

    def test_quantify_flag_populates_bits(self, capsys):
        main(["rsa", "--fixed-runs", "10", "--random-runs", "10",
              "--json", "--quantify"])
        payload = json.loads(capsys.readouterr().out)
        if payload["leaks"]:
            assert any(entry["bits"] > 0 for entry in payload["leaks"])

    def test_granularity_flag_accepted(self, capsys):
        code = main(["rsa", "--fixed-runs", "5", "--random-runs", "5",
                     "--granularity", "64"])
        assert code in (0, 1)


class TestSaveReport:
    def test_report_written_and_loadable(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        main(["rsa", "--fixed-runs", "8", "--random-runs", "8",
              "--save-report", str(path)])
        capsys.readouterr()
        report = LeakageReport.from_json(path.read_text())
        assert report.program_name == "rsa"
        assert report.num_fixed_runs == 8

    def test_saved_report_matches_json_output(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        main(["rsa", "--fixed-runs", "8", "--random-runs", "8",
              "--json", "--save-report", str(path)])
        stdout_payload = json.loads(capsys.readouterr().out)
        saved_payload = json.loads(path.read_text())
        assert stdout_payload == saved_payload
