"""CLI report output: JSON emission and --save-report round-trips."""

import json

import pytest

from repro.cli import main
from repro.core.report import LeakageReport


class TestJsonOutput:
    def test_json_flag_emits_parseable_report(self, capsys):
        code = main(["rsa", "--fixed-runs", "8", "--random-runs", "8",
                     "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["program_name"] == "rsa"
        assert (code == 1) == bool(payload["leaks"])

    def test_quantify_flag_populates_bits(self, capsys):
        main(["rsa", "--fixed-runs", "10", "--random-runs", "10",
              "--json", "--quantify"])
        payload = json.loads(capsys.readouterr().out)
        if payload["leaks"]:
            assert any(entry["bits"] > 0 for entry in payload["leaks"])

    def test_granularity_flag_accepted(self, capsys):
        code = main(["rsa", "--fixed-runs", "5", "--random-runs", "5",
                     "--granularity", "64"])
        assert code in (0, 1)


class TestSaveReport:
    def test_report_written_and_loadable(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        main(["rsa", "--fixed-runs", "8", "--random-runs", "8",
              "--save-report", str(path)])
        capsys.readouterr()
        report = LeakageReport.from_json(path.read_text())
        assert report.program_name == "rsa"
        assert report.num_fixed_runs == 8

    def test_saved_report_matches_json_output(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        main(["rsa", "--fixed-runs", "8", "--random-runs", "8",
              "--json", "--save-report", str(path)])
        stdout_payload = json.loads(capsys.readouterr().out)
        saved_payload = json.loads(path.read_text())
        assert stdout_payload == saved_payload


class TestProfile:
    PHASES = ("kernel_execute", "event_emit", "adcfg_fold", "analysis",
              "evidence_fold")

    def test_profile_written_with_all_phases(self, tmp_path, capsys):
        path = tmp_path / "profile.json"
        code = main(["rsa", "--fixed-runs", "8", "--random-runs", "8",
                     "--profile", str(path)])
        capsys.readouterr()
        assert code in (0, 1)
        payload = json.loads(path.read_text())
        assert payload["workload"] == "rsa"
        assert payload["trace_count"] == 18
        assert payload["total_seconds"] > 0
        for phase in self.PHASES:
            assert phase in payload["phases_seconds"]
            assert payload["phases_seconds"][phase] >= 0
        assert payload["phase_counts"]["adcfg_fold"] > 0

    def test_profile_composes_with_save_report(self, tmp_path, capsys):
        profile = tmp_path / "profile.json"
        report = tmp_path / "report.json"
        main(["dummy", "--fixed-runs", "4", "--random-runs", "4",
              "--profile", str(profile), "--save-report", str(report)])
        capsys.readouterr()
        assert json.loads(profile.read_text())["workload"] == "dummy"
        assert json.loads(report.read_text())["program_name"] == "dummy"

    def test_unwritable_profile_path_exits_2(self, tmp_path, capsys):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("")
        code = main(["dummy", "--fixed-runs", "4", "--random-runs", "4",
                     "--profile", str(blocker / "p.json")])
        capsys.readouterr()
        assert code == 2
