"""The ``owl`` subcommand surface: run/resume/diff/ls/gc + report I/O."""

import json

import pytest

from repro.cli import main

RUN_ARGS = ["--fixed-runs", "4", "--random-runs", "4", "--seed", "11"]


def run_store(tmp_path, *extra):
    return main(["run", "dummy", "--store", str(tmp_path / "store"),
                 *RUN_ARGS, *extra])


class TestRunSubcommand:
    def test_flat_invocation_still_works(self, capsys):
        code = main(["dummy", *RUN_ARGS])
        assert code == 1  # dummy leaks
        assert "sbox_lookup_kernel" in capsys.readouterr().out

    def test_run_without_store_matches_flat(self, capsys):
        flat = main(["dummy", *RUN_ARGS, "--json"])
        flat_report = json.loads(capsys.readouterr().out)
        sub = main(["run", "dummy", *RUN_ARGS, "--json"])
        sub_report = json.loads(capsys.readouterr().out)
        assert flat == sub == 1
        assert sub_report == flat_report

    def test_run_list(self, capsys):
        assert main(["run", "dummy", "--list"]) == 0
        out = capsys.readouterr().out
        assert "aes" in out and "dummy" in out

    def test_cold_then_warm_bit_identical(self, tmp_path, capsys):
        assert run_store(tmp_path, "--json") == 1
        cold = capsys.readouterr().out
        assert run_store(tmp_path, "--json") == 1
        warm = capsys.readouterr().out
        assert warm == cold

    def test_warm_run_reports_cache_hit(self, tmp_path, capsys):
        run_store(tmp_path)
        capsys.readouterr()
        run_store(tmp_path)
        assert "[store] report cache hit" in capsys.readouterr().out

    def test_no_reuse_report_reuses_evidence(self, tmp_path, capsys):
        run_store(tmp_path)
        capsys.readouterr()
        run_store(tmp_path, "--no-reuse-report")
        out = capsys.readouterr().out
        assert "reused 2 traces, 8 evidence runs" in out

    def test_unknown_workload_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["run", "no-such-workload", "--store",
                  str(tmp_path / "store")])


class TestSaveReport:
    def test_creates_missing_parent_directories(self, tmp_path, capsys):
        target = tmp_path / "deep" / "nested" / "dir" / "report.json"
        code = main(["dummy", *RUN_ARGS, "--save-report", str(target)])
        assert code == 1
        data = json.loads(target.read_text(encoding="utf-8"))
        assert data["program_name"] == "dummy"

    def test_unwritable_path_is_a_one_line_error(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory", encoding="utf-8")
        target = blocker / "report.json"  # parent is a file: unwritable
        code = main(["dummy", *RUN_ARGS, "--save-report", str(target)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("owl: cannot write report to")
        assert len(err.strip().splitlines()) == 1

    def test_save_report_works_under_subcommand(self, tmp_path):
        target = tmp_path / "out" / "report.json"
        run_store(tmp_path, "--save-report", str(target))
        assert json.loads(target.read_text(encoding="utf-8"))


class TestDiffSubcommand:
    def diff_inputs(self, tmp_path):
        leaky = tmp_path / "leaky.json"
        clean = tmp_path / "clean.json"
        main(["dummy", *RUN_ARGS, "--save-report", str(leaky)])
        main(["aes-ct", *RUN_ARGS, "--save-report", str(clean)])
        return leaky, clean

    def test_fixed_leaks_exit_zero(self, tmp_path, capsys):
        leaky, clean = self.diff_inputs(tmp_path)
        code = main(["diff", str(leaky), str(clean)])
        out = capsys.readouterr().out
        assert code == 0
        assert "introduced: 0" in out
        assert "[fixed]" in out

    def test_introduced_leaks_exit_nonzero(self, tmp_path, capsys):
        leaky, clean = self.diff_inputs(tmp_path)
        code = main(["diff", str(clean), str(leaky)])
        out = capsys.readouterr().out
        assert code == 1
        assert "[introduced]" in out

    def test_json_output(self, tmp_path, capsys):
        leaky, clean = self.diff_inputs(tmp_path)
        capsys.readouterr()  # drain the two generating runs' own output
        main(["diff", str(leaky), str(clean), "--json"])
        data = json.loads(capsys.readouterr().out)
        assert data["counts"]["introduced"] == 0
        assert data["counts"]["fixed"] >= 1

    def test_store_resolved_names(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["run", "dummy", "--store", store, *RUN_ARGS])
        main(["run", "aes-ct", "--store", store, *RUN_ARGS])
        capsys.readouterr()
        code = main(["diff", "dummy", "aes-ct", "--store", store])
        assert code == 0
        assert "fixed" in capsys.readouterr().out

    def test_bare_name_without_store_is_an_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["diff", "dummy", "aes-ct"])


class TestStoreMaintenanceSubcommands:
    def test_ls_lists_artifacts(self, tmp_path, capsys):
        run_store(tmp_path)
        capsys.readouterr()
        assert main(["ls", "--store", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "trace/dummy/" in out
        assert "report/dummy/" in out
        assert "entries" in out

    def test_ls_kind_filter(self, tmp_path, capsys):
        run_store(tmp_path)
        capsys.readouterr()
        main(["ls", "--store", str(tmp_path / "store"), "--kind", "trace"])
        out = capsys.readouterr().out
        assert "trace/dummy/" in out
        assert "report/dummy/" not in out

    def test_gc_reports_removed_blobs(self, tmp_path, capsys):
        run_store(tmp_path)
        capsys.readouterr()
        assert main(["gc", "--store", str(tmp_path / "store")]) == 0
        assert "removed 0 unreferenced blobs" in capsys.readouterr().out

    def test_missing_store_is_a_clean_error(self, tmp_path, capsys):
        for command in (["ls"], ["gc"], ["resume"]):
            code = main([*command, "--store", str(tmp_path / "nowhere")])
            assert code == 2
            assert "owl:" in capsys.readouterr().err


class TestResumeSubcommand:
    def test_resume_with_nothing_pending(self, tmp_path, capsys):
        run_store(tmp_path)
        capsys.readouterr()
        assert main(["resume", "--store", str(tmp_path / "store")]) == 0
        assert "no interrupted campaigns" in capsys.readouterr().out

    def test_resume_finishes_interrupted_campaign(self, tmp_path, capsys,
                                                  monkeypatch):
        from repro.core import pipeline
        store_dir = str(tmp_path / "store")

        # cold reference report from an uninterrupted run elsewhere
        assert run_store(tmp_path / "ref", "--json") == 1
        reference = capsys.readouterr().out

        calls = {"n": 0}
        original = pipeline.Owl._collect_side_checkpointed

        def crashing(self, campaign, side, rep_fp, values, keep_per_run,
                     stats):
            calls["n"] += 1
            if calls["n"] == 2:  # die while recording the random side
                raise KeyboardInterrupt("simulated crash")
            return original(self, campaign, side, rep_fp, values,
                            keep_per_run, stats)

        monkeypatch.setattr(pipeline.Owl, "_collect_side_checkpointed",
                            crashing)
        with pytest.raises(KeyboardInterrupt):
            main(["run", "dummy", "--store", store_dir, *RUN_ARGS])
        monkeypatch.setattr(pipeline.Owl, "_collect_side_checkpointed",
                            original)
        capsys.readouterr()

        code = main(["resume", "--store", store_dir, "--json"])
        out = capsys.readouterr().out
        assert code == 1  # the resumed campaign finds the leak
        assert "resumed dummy" in out
        payload = out[out.index("{"):]
        assert json.loads(payload) == json.loads(reference)
