"""Call-stack capture for kernel-launch identity.

§V-C of the paper explains why the launch address cannot identify a kernel:
the compiler wraps every kernel behind the same ``cuLaunchKernel`` entry, and
the same kernel launched from two different host locations must be told
apart.  Owl's fix is to identify an invocation by the host call stack at the
launch site.  We reproduce that with Python stack introspection, filtering
out the runtime's own frames so only application frames contribute.
"""

from __future__ import annotations

import hashlib
import sys
from dataclasses import dataclass
from typing import List, Tuple

#: Path fragments whose frames belong to the runtime/tracing machinery, not
#: the application; they are excluded from the identifying stack just as Pin
#: excludes its own trampoline frames.
_RUNTIME_PATH_FRAGMENTS = (
    "repro/host/",
    "repro/tracing/",
    "repro/core/",
    "repro/gpusim/",
)


@dataclass(frozen=True)
class CallSite:
    """One frame of an identifying call stack."""

    filename: str
    lineno: int
    function: str

    def __str__(self) -> str:
        return f"{self.filename}:{self.lineno} in {self.function}"


@dataclass(frozen=True)
class CallStack:
    """An ordered stack of application call sites (innermost last)."""

    frames: Tuple[CallSite, ...]

    @property
    def digest(self) -> str:
        """Stable short hash identifying this stack across runs."""
        hasher = hashlib.sha256()
        for frame in self.frames:
            hasher.update(f"{frame.filename}:{frame.lineno}:{frame.function}\n"
                          .encode())
        return hasher.hexdigest()[:16]

    @property
    def innermost(self) -> CallSite:
        if not self.frames:
            return CallSite(filename="<unknown>", lineno=0, function="<unknown>")
        return self.frames[-1]

    def __str__(self) -> str:
        return " -> ".join(str(f) for f in self.frames)


def _is_runtime_frame(filename: str) -> bool:
    normalized = filename.replace("\\", "/")
    return any(fragment in normalized for fragment in _RUNTIME_PATH_FRAGMENTS)


def current_stack_depth() -> int:
    """Depth of the current Python stack (for anchoring, see below)."""
    depth = 0
    frame = sys._getframe(1)
    while frame is not None:
        depth += 1
        frame = frame.f_back
    return depth


def capture_call_stack(skip_innermost: int = 1, max_depth: int = 32,
                       anchor: int = 0) -> CallStack:
    """Capture the current application call stack.

    ``skip_innermost`` drops the runtime wrapper frames nearest to the call
    (the ``cuLaunchKernel`` shim itself); runtime-internal frames are also
    filtered by path so applications see stable, app-only identities.

    ``anchor`` drops the outermost *anchor* frames entirely.  The trace
    recorder sets it to the stack depth at which it invokes the program
    under test, so the identifying stack contains only victim-program
    frames — the analysis driver's own location must not perturb kernel
    identities across repeated executions.
    """
    # A raw frame walk: identical (filename, lineno, function) triples to
    # traceback.extract_stack(), without materialising FrameSummary objects
    # or touching linecache (the launch hot path runs this per launch).
    raw: List[Tuple[str, int, str]] = []
    try:
        frame = sys._getframe(skip_innermost + 1)
    except ValueError:
        frame = None
    while frame is not None:
        code = frame.f_code
        raw.append((code.co_filename, frame.f_lineno or 0, code.co_name))
        frame = frame.f_back
    raw.reverse()
    frames = tuple(
        CallSite(filename=filename, lineno=lineno, function=function)
        for filename, lineno, function in raw[anchor:]
        if not _is_runtime_frame(filename)
    )
    if len(frames) > max_depth:
        frames = frames[-max_depth:]
    return CallStack(frames=frames)
