"""The Pin analogue: host-side observation and address normalisation.

:class:`HostTracer` collects the host events Owl needs — allocation records
and kernel-launch records — and provides the address→offset normalisation
that removes memory-layout (and, when enabled, ASLR) noise from device
traces before any differential analysis runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.gpusim.memory import AllocationError, DeviceMemory
from repro.host.runtime import LaunchRecord, MallocRecord


@dataclass(frozen=True)
class NormalizedAddress:
    """A raw device address rewritten as ``(allocation label, offset)``.

    Offsets are what the leakage analysis histograms; two runs with
    different layouts (or ASLR slides) produce identical normalised
    addresses unless the *access pattern itself* differs.
    """

    alloc_label: str
    offset: int

    def as_key(self) -> Tuple[str, int]:
        return (self.alloc_label, self.offset)


class HostTracer:
    """Observes one program execution's host-side CUDA activity."""

    def __init__(self, memory: DeviceMemory) -> None:
        self._memory = memory
        self.malloc_records: List[MallocRecord] = []
        self.launch_records: List[LaunchRecord] = []
        # address -> (label, offset) memo for normalize_keys.  Stable for
        # the tracer's whole session: the bump allocator never frees or
        # moves an allocation, so a resolved address cannot change meaning.
        self._key_cache: Dict[int, Tuple[str, int]] = {}
        # interned allocation labels and packed-key memo for
        # normalize_key_ids (same session-stability argument)
        self._label_ids: Dict[str, int] = {}
        self._labels_by_id: List[str] = []
        self._label_id_arr = np.empty(0, dtype=np.int64)
        self._label_table_len = 0
        self._packed_keys: Dict[int, Tuple[str, int]] = {}

    # ------------------------------------------------------------------
    # runtime callbacks
    # ------------------------------------------------------------------

    def on_malloc(self, record: MallocRecord) -> None:
        self.malloc_records.append(record)

    def on_launch(self, record: LaunchRecord) -> None:
        self.launch_records.append(record)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def launch_sequence(self) -> Tuple[str, ...]:
        """Ordered kernel identities (name + call-stack digest)."""
        return tuple(r.identity for r in self.launch_records)

    def normalize(self, address: int) -> NormalizedAddress:
        """Rewrite a raw device *address* into ``(label, offset)``.

        Raises :class:`~repro.gpusim.memory.AllocationError` for addresses
        outside every recorded allocation (a wild access the analysis
        should not silently fold in).
        """
        allocation, offset = self._memory.resolve(address)
        return NormalizedAddress(alloc_label=allocation.label, offset=offset)

    def try_normalize(self, address: int) -> Optional[NormalizedAddress]:
        """Like :meth:`normalize` but returns None for unknown addresses."""
        try:
            return self.normalize(address)
        except AllocationError:
            return None

    def normalize_keys(self, addresses: np.ndarray) -> List[Tuple[str, int]]:
        """Vectorised :meth:`normalize` over a whole address array.

        One ``np.searchsorted`` over the base-sorted allocation table maps
        every address to its ``(allocation label, offset)`` key in a single
        shot — the columnar replacement for calling :meth:`normalize` once
        per address.  Keys are memoised across calls: one kernel's warps
        hit the same tables and buffers, so after the first warp's batch
        most addresses resolve from the dictionary instead of re-deriving
        the tuple.  Produces exactly the keys the scalar path would
        (asserted by the edge-case property tests) and raises
        :class:`~repro.gpusim.memory.AllocationError` for any address
        outside every recorded allocation.
        """
        cache = self._key_cache
        addr_list = addresses.tolist()
        keys = [cache.get(address) for address in addr_list]
        if None in keys:
            missing_idx = [i for i, key in enumerate(keys) if key is None]
            allocs, indices, offsets = self._memory.resolve_batch(
                addresses[missing_idx])
            labels = [alloc.label for alloc in allocs]
            for pos, i, o in zip(missing_idx, indices.tolist(),
                                 offsets.tolist()):
                keys[pos] = cache[addr_list[pos]] = (labels[i], o)
        return keys

    #: offsets are packed into the low bits of a normalised-key id; any
    #: allocation bigger than 2**40 bytes falls back to the tuple path
    _OFFSET_BITS = 40

    def normalize_key_ids(self, addresses: np.ndarray
                          ) -> Optional[Tuple[np.ndarray, List[Tuple[str, int]]]]:
        """Map an address array to interned normalised-key ids.

        Returns ``(key_ids, keys)`` where ``keys[key_ids[i]]`` is
        ``addresses[i]``'s normalised key, or None when the packed-id
        representation cannot hold the offsets (absurdly large
        allocations).  Unlike :meth:`normalize_keys` this never walks the
        addresses in Python: resolution is one ``searchsorted``, aliases
        collapse through one ``np.unique`` over packed
        ``(label id, offset)`` integers, and only the distinct keys of the
        call are materialised as tuples (memoised across calls).  Ids are
        call-local; aliased raw addresses — the same shared-memory offset
        in two blocks — share an id exactly as they share a key.
        """
        allocs, indices, offsets = self._memory.resolve_batch(addresses)
        if len(allocs) != self._label_table_len:
            ids = []
            for alloc in allocs:
                lid = self._label_ids.get(alloc.label)
                if lid is None:
                    lid = self._label_ids[alloc.label] = len(self._labels_by_id)
                    self._labels_by_id.append(alloc.label)
                ids.append(lid)
            self._label_id_arr = np.asarray(ids, dtype=np.int64)
            self._label_table_len = len(allocs)
        if offsets.size and int(offsets.max()) >= (1 << self._OFFSET_BITS):
            return None
        packed = ((self._label_id_arr[indices] << self._OFFSET_BITS)
                  | offsets)
        uniq, inv = np.unique(packed, return_inverse=True)
        cache = self._packed_keys
        labels = self._labels_by_id
        mask = (1 << self._OFFSET_BITS) - 1
        keys = []
        for value in uniq.tolist():
            key = cache.get(value)
            if key is None:
                key = cache[value] = (labels[value >> self._OFFSET_BITS],
                                      value & mask)
            keys.append(key)
        return inv, keys

    def malloc_trace_bytes(self) -> int:
        """Serialised size of all allocation records (Fig. 5 series)."""
        return sum(r.size_bytes() for r in self.malloc_records)

    def launch_trace_bytes(self) -> int:
        """Serialised size of all launch records (Fig. 5 series)."""
        return sum(r.size_bytes() for r in self.launch_records)
