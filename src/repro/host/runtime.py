"""The CUDA host-API surface used by applications.

Applications under test call this runtime the way a real CUDA program calls
the driver/runtime API.  Every entry point mirrors a family member from the
paper's footnotes:

* allocation family: ``cudaMalloc``, ``cudaHostAlloc``, ``cudaMallocHost``,
  ``cudaMallocManaged``, ``cudaMallocAsync``, ``cudaMallocFromPoolAsync``;
* launch family: ``cuLaunchKernel``, ``cuLaunchKernel_ptsz``.

The runtime notifies an attached :class:`~repro.host.tracer.HostTracer`
(the Pin analogue) about each call, including the identifying call stack for
launches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.gpusim.device import Device
from repro.gpusim.kernel import Kernel, LaunchConfig
from repro.gpusim.memory import DeviceBuffer, MemorySpace
from repro.host.callstack import CallStack, capture_call_stack


@dataclass(frozen=True)
class MallocRecord:
    """One allocation observed at a ``cudaMalloc``-family call site."""

    api: str
    alloc_id: int
    base: int
    size: int
    label: str

    def size_bytes(self) -> int:
        """Serialised footprint of this record (Fig. 5 bookkeeping)."""
        # api tag + id + base + size are fixed width; the label is ASCII.
        return 4 + 8 + 8 + 8 + len(self.label)


@dataclass(frozen=True)
class LaunchRecord:
    """One kernel launch observed at a ``cuLaunchKernel``-family call site."""

    api: str
    kernel_name: str
    call_stack: CallStack
    grid: Tuple[int, int, int]
    block: Tuple[int, int, int]
    seq: int

    @property
    def identity(self) -> str:
        """The paper's kernel identity: name + launch-site call stack."""
        return f"{self.kernel_name}@{self.call_stack.digest}"

    def size_bytes(self) -> int:
        """Serialised footprint of this record (Fig. 5 bookkeeping)."""
        return 4 + len(self.kernel_name) + 16 + 6 * 4 + 8


class CudaRuntime:
    """Host-side CUDA runtime bound to one simulated :class:`Device`."""

    def __init__(self, device: Device) -> None:
        self.device = device
        self._tracer = None
        self._launch_seq = 0
        #: outermost stack frames to ignore when identifying launch sites
        #: (set by the trace recorder to the program-under-test entry depth)
        self.call_stack_anchor = 0

    def attach_tracer(self, tracer) -> None:
        """Attach the Pin-like host tracer (at most one)."""
        self._tracer = tracer

    def detach_tracer(self) -> None:
        self._tracer = None

    # ------------------------------------------------------------------
    # allocation family
    # ------------------------------------------------------------------

    def _malloc(self, api: str, shape, dtype, space: MemorySpace,
                label: str) -> DeviceBuffer:
        buf = self.device.alloc(shape, dtype=dtype, space=space, label=label)
        if self._tracer is not None:
            self._tracer.on_malloc(MallocRecord(
                api=api, alloc_id=buf.allocation.alloc_id, base=buf.base,
                size=buf.allocation.size, label=buf.label))
        return buf

    def cudaMalloc(self, shape, dtype=np.int64, label: str = "") -> DeviceBuffer:
        return self._malloc("cudaMalloc", shape, dtype, MemorySpace.GLOBAL, label)

    def cudaHostAlloc(self, shape, dtype=np.int64, label: str = "") -> DeviceBuffer:
        return self._malloc("cudaHostAlloc", shape, dtype, MemorySpace.GLOBAL,
                            label)

    def cudaMallocHost(self, shape, dtype=np.int64, label: str = "") -> DeviceBuffer:
        return self._malloc("cudaMallocHost", shape, dtype, MemorySpace.GLOBAL,
                            label)

    def cudaMallocManaged(self, shape, dtype=np.int64,
                          label: str = "") -> DeviceBuffer:
        return self._malloc("cudaMallocManaged", shape, dtype,
                            MemorySpace.GENERIC, label)

    def cudaMallocAsync(self, shape, dtype=np.int64,
                        label: str = "") -> DeviceBuffer:
        return self._malloc("cudaMallocAsync", shape, dtype, MemorySpace.GLOBAL,
                            label)

    def cudaMallocFromPoolAsync(self, shape, dtype=np.int64,
                                label: str = "") -> DeviceBuffer:
        return self._malloc("cudaMallocFromPoolAsync", shape, dtype,
                            MemorySpace.GLOBAL, label)

    def constMalloc(self, shape, dtype=np.int64, label: str = "") -> DeviceBuffer:
        """Allocate constant memory (``__constant__`` analogue)."""
        return self._malloc("constMalloc", shape, dtype, MemorySpace.CONSTANT,
                            label)

    def textureMalloc(self, shape, dtype=np.int64, label: str = "") -> DeviceBuffer:
        """Allocate texture memory (image data per §II-A)."""
        return self._malloc("textureMalloc", shape, dtype, MemorySpace.TEXTURE,
                            label)

    # ------------------------------------------------------------------
    # data movement
    # ------------------------------------------------------------------

    def cudaMemcpyHtoD(self, dst: DeviceBuffer, src: np.ndarray) -> None:
        """Copy host array → device buffer (shapes must match)."""
        src = np.asarray(src)
        if src.shape != dst.data.shape:
            raise ValueError(
                f"memcpy shape mismatch: host {src.shape} vs device "
                f"{dst.data.shape}")
        dst.data[...] = src.astype(dst.data.dtype)

    def cudaMemcpyDtoH(self, src: DeviceBuffer) -> np.ndarray:
        """Copy device buffer → new host array."""
        return src.data.copy()

    # ------------------------------------------------------------------
    # launch family
    # ------------------------------------------------------------------

    def _launch(self, api: str, kern: Kernel, grid, block, args) -> None:
        stack = capture_call_stack(skip_innermost=2,
                                   anchor=self.call_stack_anchor)
        config = LaunchConfig.create(grid, block)
        record = LaunchRecord(
            api=api, kernel_name=kern.name, call_stack=stack,
            grid=config.grid, block=config.block, seq=self._launch_seq)
        self._launch_seq += 1
        if self._tracer is not None:
            self._tracer.on_launch(record)
        self.device.launch(kern, grid, block, *args)

    def cuLaunchKernel(self, kern: Kernel, grid, block, *args) -> None:
        self._launch("cuLaunchKernel", kern, grid, block, args)

    def cuLaunchKernel_ptsz(self, kern: Kernel, grid, block, *args) -> None:
        self._launch("cuLaunchKernel_ptsz", kern, grid, block, args)
