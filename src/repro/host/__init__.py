"""CUDA host-side runtime and Pin-like host tracer.

The Owl paper instruments the *host* half of a CUDA application with Pin to
capture the two pieces of host state the device trace cannot provide:

1. **kernel identity** — the runtime launch entry point (``cuLaunchKernel``
   and friends) is shared by every kernel, so Owl identifies an invocation by
   the host *call stack* at the launch site (§V-C);
2. **allocation records** — ``cudaMalloc``-family return values depend on the
   memory layout, so Owl records ``(base, size)`` per allocation and converts
   traced addresses into offsets.

This package reproduces both: :class:`~repro.host.runtime.CudaRuntime` is the
driver-API surface applications call, and
:class:`~repro.host.tracer.HostTracer` is the Pin analogue that observes it.
"""

from repro.host.callstack import CallSite, CallStack, capture_call_stack
from repro.host.runtime import CudaRuntime, LaunchRecord, MallocRecord
from repro.host.tracer import HostTracer, NormalizedAddress

__all__ = [
    "CallSite",
    "CallStack",
    "CudaRuntime",
    "HostTracer",
    "LaunchRecord",
    "MallocRecord",
    "NormalizedAddress",
    "capture_call_stack",
]
