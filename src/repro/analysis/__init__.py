"""Pluggable leakage detectors beyond the paper's KS test.

The KS detector (:class:`repro.core.leakage.LeakageAnalyzer`) answers
*whether* a feature's fixed/random distributions differ; the detectors
here add other decision rules over the same aligned evidence.  Currently:

* :mod:`repro.analysis.mi` — mutual-information analysis à la MicroWalk,
  quantifying *how much* leaks in bits per code location;
* :mod:`repro.analysis.crossval` — KS-vs-MI cross-validation for
  ``OwlConfig(analyzer="both")``.
"""

from repro.analysis.crossval import cross_validate, ks_view, mi_view
from repro.analysis.multi import analysis_modes, make_analyzer, run_analyzers

__all__ = [
    "analysis_modes",
    "cross_validate",
    "ks_view",
    "make_analyzer",
    "mi_view",
    "run_analyzers",
]
