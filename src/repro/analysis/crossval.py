"""KS-vs-MI cross-validation for ``OwlConfig(analyzer="both")``.

The two detectors answer related but distinct questions (distribution
inequality vs information content), so their findings are joined on code
location: agreements annotate the KS leak with the MI detector's
``mi_bits``, KS-only and MI-only findings are kept as structured
disagreement rows — disagreements are findings, not errors.  The composed
report embeds both single-analyzer reports verbatim, so
:func:`ks_view` / :func:`mi_view` can reconstruct them exactly (the
both-identity tests compare ``ks_view(both_run)`` byte-for-byte against a
plain ``analyzer="ks"`` run).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.core.report import Leak, LeakType, LeakageReport
from repro.errors import ConfigError

#: Join key for cross-detector comparison: leak type + code location.
_Key = Tuple[LeakType, str, str, int]


def _key(leak: Leak) -> _Key:
    return (leak.leak_type,) + leak.location


def _row(leak: Leak) -> Dict:
    """A structured disagreement row (JSON-ready)."""
    return {
        "leak_type": leak.leak_type.value,
        "kernel_name": leak.kernel_name,
        "block": leak.block,
        "instr": leak.instr,
        "p_value": leak.p_value,
        "mi_bits": leak.mi_bits,
    }


def cross_validate(ks_report: LeakageReport,
                   mi_report: LeakageReport) -> LeakageReport:
    """Compose the two detectors' reports into one ``analyzer="both"``.

    The leak list starts from the KS report's order (agreements annotated
    with ``mi_bits``), followed by MI-only findings; the
    ``cross_validation`` section carries the agreement counter, the
    disagreement rows, and both embedded sub-reports.
    """
    mi_index: Dict[_Key, Leak] = {_key(leak): leak
                                  for leak in mi_report.leaks}
    ks_keys = {_key(leak) for leak in ks_report.leaks}
    leaks: List[Leak] = []
    agreements = 0
    ks_only: List[Dict] = []
    mi_only: List[Dict] = []
    for leak in ks_report.leaks:
        mi_leak = mi_index.get(_key(leak))
        if mi_leak is not None:
            agreements += 1
            leaks.append(dataclasses.replace(leak,
                                             mi_bits=mi_leak.mi_bits))
        else:
            ks_only.append(_row(leak))
            leaks.append(leak)
    for leak in mi_report.leaks:
        if _key(leak) not in ks_keys:
            mi_only.append(_row(leak))
            leaks.append(leak)
    composed = LeakageReport(
        program_name=ks_report.program_name,
        num_fixed_runs=ks_report.num_fixed_runs,
        num_random_runs=ks_report.num_random_runs,
        confidence=ks_report.confidence,
        analyzer="both",
        cross_validation={
            "agreements": agreements,
            "ks_only": ks_only,
            "mi_only": mi_only,
            "ks_report": ks_report.to_dict(),
            "mi_report": mi_report.to_dict(),
        })
    composed.leaks = leaks
    return composed


def _embedded_view(report: LeakageReport, which: str) -> LeakageReport:
    if report.analyzer != "both" or report.cross_validation is None:
        raise ConfigError(
            f"report for {report.program_name!r} has analyzer "
            f"{report.analyzer!r}, not 'both'; no embedded {which}")
    return LeakageReport.from_dict(report.cross_validation[which])


def ks_view(report: LeakageReport) -> LeakageReport:
    """The embedded KS sub-report of an ``analyzer="both"`` report."""
    return _embedded_view(report, "ks_report")


def mi_view(report: LeakageReport) -> LeakageReport:
    """The embedded MI sub-report of an ``analyzer="both"`` report."""
    return _embedded_view(report, "mi_report")
