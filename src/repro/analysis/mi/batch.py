"""Vectorized mutual-information testing over many feature pairs.

The MI analog of :func:`~repro.core.kstest.ks_test_batch`: semantically
equivalent to calling :func:`~repro.analysis.mi.estimator.mi_test` per
request (the scalar function stays the reference — the test suite asserts
agreement to 1e-12), but every entropy term and bias correction is
computed in one NumPy pass over zero-padded weight matrices.  Padding
cells carry zero weight and are masked out of the shrinkage sums, so they
never move an estimate.  Only the χ² survival function runs per row (a
few dozen scalar iterations each, negligible next to the entropy pass).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.core.kstest import BatchRequest, DistributionTestError, _ordered_weights
from repro.analysis.mi.estimator import (
    CORRECTIONS,
    DEFAULT_CONFIDENCE,
    MIEstimationError,
    MIResult,
    chi2_sf,
)

_LN2 = math.log(2.0)


def _xlog2x(values: np.ndarray) -> np.ndarray:
    """Elementwise ``v log2 v`` with ``0 log2 0 = 0``."""
    safe = np.where(values > 0, values, 1.0)
    return np.where(values > 0, values * np.log2(safe), 0.0)


def _plugin_entropies(weight_x: np.ndarray, weight_y: np.ndarray,
                      n: np.ndarray, m: np.ndarray):
    """Per-row plug-in entropies H(side), H(value), H(joint) in bits."""
    total = n + m
    sum_x = _xlog2x(weight_x).sum(axis=1)
    sum_y = _xlog2x(weight_y).sum(axis=1)
    cols = _xlog2x(weight_x + weight_y).sum(axis=1)
    sides = _xlog2x(n) + _xlog2x(m)
    log_total = np.log2(total)
    h_side = log_total - sides / total
    h_value = log_total - cols / total
    h_joint = log_total - (sum_x + sum_y) / total
    return h_side, h_value, h_joint


def _jackknife_entropy_rows(cells: np.ndarray, total: np.ndarray,
                            h_ml: np.ndarray) -> np.ndarray:
    """Vectorized closed-form jackknife entropy, one row per request.

    ``cells`` holds each request's count vector zero-padded along axis 1;
    mirrors :func:`repro.analysis.mi.estimator._jackknife_entropy`.
    """
    s = _xlog2x(cells).sum(axis=1)
    reduced = cells - 1.0
    h_k = (np.log2(np.maximum(total - 1.0, 1.0))[:, None]
           - (s[:, None] - _xlog2x(cells) + _xlog2x(reduced))
           / np.maximum(total - 1.0, 1.0)[:, None])
    mean_loo = np.where(cells > 0, cells * h_k, 0.0).sum(axis=1) / total
    jackknifed = total * h_ml - (total - 1.0) * mean_loo
    return np.where(total < 2, h_ml, jackknifed)


def _corrected_mi(weight_x: np.ndarray, weight_y: np.ndarray,
                  n: np.ndarray, m: np.ndarray, lengths: np.ndarray,
                  mi_raw: np.ndarray, correction: str) -> np.ndarray:
    total = n + m
    if correction == "none":
        return mi_raw
    if correction == "miller_madow":
        k_side = (n > 0).astype(float) + (m > 0).astype(float)
        k_value = ((weight_x + weight_y) > 0).sum(axis=1)
        k_joint = (weight_x > 0).sum(axis=1) + (weight_y > 0).sum(axis=1)
        return mi_raw + (k_side + k_value - k_joint - 1.0) / (
            2.0 * total * _LN2)
    if correction == "jackknife":
        h_side, h_value, h_joint = _plugin_entropies(weight_x, weight_y,
                                                     n, m)
        sides = np.stack([n, m], axis=1)
        cols = weight_x + weight_y
        joint = np.concatenate([weight_x, weight_y], axis=1)
        return (_jackknife_entropy_rows(sides, total, h_side)
                + _jackknife_entropy_rows(cols, total, h_value)
                - _jackknife_entropy_rows(joint, total, h_joint))
    if correction == "shrinkage":
        return _shrinkage_mi_rows(weight_x, weight_y, total, lengths)
    raise MIEstimationError(
        f"unknown MI bias correction {correction!r}; "
        f"valid choices: {', '.join(repr(c) for c in CORRECTIONS)}")


def _shrinkage_mi_rows(weight_x: np.ndarray, weight_y: np.ndarray,
                       total: np.ndarray,
                       lengths: np.ndarray) -> np.ndarray:
    """Vectorized James–Stein shrinkage MI, masking the padding cells.

    The uniform target is ``1/(2·support)`` per request — the padded
    width must not leak into the cell count, and padded cells (which the
    scalar table does not have) are excluded from the λ sums and the
    entropy evaluation.
    """
    width = weight_x.shape[1]
    mask = np.arange(width)[None, :] < lengths[:, None]
    p_x = weight_x / total[:, None]
    p_y = weight_y / total[:, None]
    target = (1.0 / (2.0 * lengths))[:, None]
    sum_sq = (p_x ** 2 + p_y ** 2).sum(axis=1)
    denominator = (np.where(mask, (target - p_x) ** 2, 0.0)
                   + np.where(mask, (target - p_y) ** 2, 0.0)).sum(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        lam = (1.0 - sum_sq) / (np.maximum(total - 1.0, 0.0) * denominator)
    lam = np.where((total <= 1) | (denominator == 0.0), 1.0, lam)
    lam = np.clip(lam, 0.0, 1.0)
    shrunk_x = np.where(mask, lam[:, None] * target
                        + (1.0 - lam)[:, None] * p_x, 0.0)
    shrunk_y = np.where(mask, lam[:, None] * target
                        + (1.0 - lam)[:, None] * p_y, 0.0)
    h_side = -(_xlog2x(shrunk_x.sum(axis=1)) + _xlog2x(shrunk_y.sum(axis=1)))
    h_value = -_xlog2x(shrunk_x + shrunk_y).sum(axis=1)
    h_joint = -(_xlog2x(shrunk_x) + _xlog2x(shrunk_y)).sum(axis=1)
    return h_side + h_value - h_joint


def mi_test_batch(requests: Sequence[BatchRequest],
                  confidence: float = DEFAULT_CONFIDENCE,
                  correction: str = "miller_madow",
                  min_bits: float = 0.0,
                  sample_size_cap: Optional[int] = None) -> list:
    """Vectorized MI test over many weighted-histogram pairs.

    Accepts the same request tuples as :func:`ks_test_batch` —
    ``(hist_x, hist_y)`` or ``(hist_x, hist_y, order)`` — and returns one
    :class:`~repro.analysis.mi.estimator.MIResult` per request, with
    ``None`` wherever the scalar :func:`mi_test` would raise (empty
    support or an empty side).
    """
    alpha = 1.0 - confidence
    if not 0.0 < alpha < 1.0:
        raise MIEstimationError(
            f"confidence must be in (0, 1), got {confidence}")
    if correction not in CORRECTIONS:
        raise MIEstimationError(
            f"unknown MI bias correction {correction!r}; "
            f"valid choices: {', '.join(repr(c) for c in CORRECTIONS)}")
    results: list = [None] * len(requests)
    rows: list = []  # (request index, wx, wy)
    for index, request in enumerate(requests):
        if len(request) == 2:
            hist_x, hist_y = request
            order = None
        else:
            hist_x, hist_y, order = request
        try:
            wx, wy = _ordered_weights(hist_x, hist_y, order)
        except DistributionTestError:
            continue
        if wx.sum() == 0 or wy.sum() == 0:
            continue
        rows.append((index, wx, wy))
    if not rows:
        return results

    width = max(len(wx) for _i, wx, _wy in rows)
    weight_x = np.zeros((len(rows), width))
    weight_y = np.zeros((len(rows), width))
    lengths = np.zeros(len(rows))
    for row, (_index, wx, wy) in enumerate(rows):
        weight_x[row, :len(wx)] = wx
        weight_y[row, :len(wy)] = wy
        lengths[row] = len(wx)

    n = weight_x.sum(axis=1)
    m = weight_y.sum(axis=1)
    h_side, h_value, h_joint = _plugin_entropies(weight_x, weight_y, n, m)
    mi_raw = h_side + h_value - h_joint
    corrected = _corrected_mi(weight_x, weight_y, n, m, lengths, mi_raw,
                              correction)
    support = ((weight_x + weight_y) > 0).sum(axis=1)
    ceiling = np.log2(np.minimum(2.0, support))
    mi_bits = np.minimum(ceiling, np.maximum(0.0, corrected))
    if sample_size_cap is not None:
        n_eff = np.minimum(n, sample_size_cap)
        m_eff = np.minimum(m, sample_size_cap)
    else:
        n_eff, m_eff = n, m
    dof = support - 1
    g = 2.0 * (n_eff + m_eff) * _LN2 * np.maximum(0.0, mi_raw)

    for row, (index, _wx, _wy) in enumerate(rows):
        row_dof = int(dof[row])
        p_value = 1.0 if row_dof <= 0 else chi2_sf(float(g[row]), row_dof)
        results[index] = MIResult(
            statistic=float(mi_raw[row]), p_value=p_value,
            n=int(n_eff[row]), m=int(m_eff[row]),
            threshold=float("nan"), confidence=confidence,
            mi_bits=float(mi_bits[row]), mi_raw=float(mi_raw[row]),
            dof=row_dof, min_bits=min_bits)
    return results
