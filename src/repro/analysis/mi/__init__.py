"""Mutual-information leakage analysis (``OwlConfig(analyzer="mi")``)."""

from repro.analysis.mi.analyzer import MIAnalyzer
from repro.analysis.mi.batch import mi_test_batch
from repro.analysis.mi.estimator import (
    CORRECTIONS,
    MIEstimationError,
    MIResult,
    chi2_sf,
    entropy_bits,
    mi_test,
    mutual_information,
)

__all__ = [
    "CORRECTIONS",
    "MIAnalyzer",
    "MIEstimationError",
    "MIResult",
    "chi2_sf",
    "entropy_bits",
    "mi_test",
    "mi_test_batch",
    "mutual_information",
]
