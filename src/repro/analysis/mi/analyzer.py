"""The mutual-information detector over aligned evidence.

:class:`MIAnalyzer` subclasses the KS detector and overrides only the
detector hooks: the per-feature statistical test becomes
:func:`~repro.analysis.mi.estimator.mi_test` (G-test significance, bias-
corrected bits), the batched pass becomes
:func:`~repro.analysis.mi.batch.mi_test_batch`, and flagged leaks carry
``mi_bits``.  The evidence traversal — Myers alignment, the single fold
over kernel/control-flow/data-flow features, emission order — is
inherited unchanged, which is what lets ``analyzer="both"`` replay one
recorded fold under both detectors.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from repro.analysis.mi.batch import mi_test_batch
from repro.analysis.mi.estimator import mi_test
from repro.core.kstest import DistributionTestError, TestResult
from repro.core.leakage import LeakageAnalyzer


class MIAnalyzer(LeakageAnalyzer):
    """Mutual-information leakage analysis (``OwlConfig(analyzer="mi")``).

    A definite finding (a feature present on one side only) is a perfect
    binary distinguisher of the input class, so it reports the full
    ``mi_bits=1.0`` — consistent with the 1-bit ceiling of ``I(S; V)``
    for a binary side variable.
    """

    mode = "mi"
    batch_phase = "analysis_mi"

    def _defer(self) -> bool:
        # MI ignores the `test` knob (it replaces the distribution test
        # outright), so only `vectorized` decides batching
        return self.config.vectorized

    # ------------------------------------------------------------------
    # detector hooks
    # ------------------------------------------------------------------

    def _definite_fields(self) -> Dict[str, float]:
        fields = super()._definite_fields()
        fields["mi_bits"] = 1.0
        return fields

    def _flagged_fields(self, result: TestResult, hist_fixed: Dict,
                        hist_random: Dict) -> Dict[str, float]:
        fields = super()._flagged_fields(result, hist_fixed, hist_random)
        fields["mi_bits"] = getattr(result, "mi_bits", 0.0)
        return fields

    def _batch_test(self, requests: List) -> list:
        return mi_test_batch(requests,
                             confidence=self.config.confidence,
                             correction=self.config.mi_bias_correction,
                             min_bits=self.config.mi_min_bits,
                             sample_size_cap=self.config.sample_size_cap)

    # ------------------------------------------------------------------
    # scalar test dispatch (inline mode, vectorized=False)
    # ------------------------------------------------------------------

    def _plain_test(self, x: List[float], y: List[float]) -> TestResult:
        # a weighted MI table over a sample's value counts is the sample's
        # contingency table, mirroring the KS plain-to-weighted reduction
        return mi_test(Counter(x), Counter(y),
                       confidence=self.config.confidence,
                       correction=self.config.mi_bias_correction,
                       min_bits=self.config.mi_min_bits,
                       sample_size_cap=self.config.sample_size_cap)

    def _categorical_test(self, hist_x: Dict, hist_y: Dict,
                          order: Optional[Dict] = None
                          ) -> Optional[TestResult]:
        try:
            return mi_test(hist_x, hist_y,
                           confidence=self.config.confidence, order=order,
                           correction=self.config.mi_bias_correction,
                           min_bits=self.config.mi_min_bits,
                           sample_size_cap=self.config.sample_size_cap)
        except DistributionTestError:
            return None
