"""Mutual-information leakage estimation (MicroWalk-style).

Where the KS detector asks whether the fixed-input and random-input sides
of a feature follow the same distribution, the MI detector treats the side
as a binary random variable ``S`` (fixed vs random input class) and the
feature value as ``V``, and estimates ``I(S; V)`` — how many bits an
attacker observing the feature learns about the input class.  The two
weighted histograms of a feature *are* the rows of the 2×C joint
contingency table, so the estimate rides the exact evidence structures the
KS test already consumes.

Entropy plug-in estimates are biased low (and MI biased high) at finite
sample sizes, so bias corrections are provided:

* ``"miller_madow"`` — the classic first-order count correction
  ``H_MM = H_ML + (K - 1) / (2 N ln 2)`` applied to each entropy term;
* ``"jackknife"`` — leave-one-out resampling of each entropy term,
  computed in closed form over the count vector (no O(N) loop);
* ``"shrinkage"`` — James–Stein shrinkage of the joint cell probabilities
  toward the uniform distribution with the analytic optimal intensity;
* ``"none"`` — the raw maximum-likelihood (plug-in) estimate.

Significance uses the G-test: under independence the statistic
``G = 2 N ln(2) · I_ML(S; V)`` is asymptotically χ² distributed with
``(R - 1)(C - 1)`` degrees of freedom, giving the same
``p < 1 - confidence`` decision rule as the KS detector.  The χ² survival
function is implemented with the regularized incomplete gamma function
(series + continued fraction), keeping the stats stack dependency-free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Optional

import numpy as np

from repro.core.kstest import (
    DEFAULT_CONFIDENCE,
    DistributionTestError,
    Histogram,
    TestResult,
    _ordered_weights,
)

#: Accepted entropy bias corrections, in the order documented above.
CORRECTIONS = ("none", "miller_madow", "jackknife", "shrinkage")

_LN2 = math.log(2.0)


class MIEstimationError(DistributionTestError):
    """Raised on degenerate inputs (empty sides, empty support)."""


@dataclass(frozen=True)
class MIResult(TestResult):
    """Outcome of one mutual-information test.

    Extends :class:`~repro.core.kstest.TestResult` so the shared evidence
    traversal can treat both detectors' results uniformly: ``statistic``
    is the raw plug-in MI estimate in bits, ``p_value`` comes from the
    G-test, and ``rejected`` additionally requires the bias-corrected
    estimate to clear ``min_bits``.
    """

    #: bias-corrected MI estimate, clamped to [0, log2(min sides/values)]
    mi_bits: float = 0.0
    #: raw plug-in MI estimate (equal to ``statistic``)
    mi_raw: float = 0.0
    #: G-test degrees of freedom, ``(R - 1)(C - 1)`` over nonzero rows/cols
    dof: int = 0
    #: minimum corrected bits required to flag (0 disables the floor)
    min_bits: float = 0.0

    @property
    def rejected(self) -> bool:
        return (self.p_value < (1.0 - self.confidence)
                and self.mi_bits >= self.min_bits)


# ----------------------------------------------------------------------
# χ² survival function (regularized upper incomplete gamma)
# ----------------------------------------------------------------------

_GAMMA_ITERATIONS = 500
_GAMMA_EPS = 1e-15
_GAMMA_TINY = 1e-300


def chi2_sf(x: float, k: float) -> float:
    """``P(X > x)`` for ``X ~ χ²(k)``, i.e. ``Q(k/2, x/2)``.

    Series expansion of the lower regularized gamma below the ``s + 1``
    crossover, modified Lentz continued fraction for the upper tail above
    it — the textbook split that converges over the whole domain.
    """
    if k <= 0:
        raise MIEstimationError(f"chi2_sf needs k > 0, got {k}")
    if x <= 0.0:
        return 1.0
    s = 0.5 * k
    z = 0.5 * x
    log_prefactor = -z + s * math.log(z) - math.lgamma(s)
    if z < s + 1.0:
        # lower regularized gamma P(s, z) by series, return 1 - P
        term = 1.0 / s
        total = term
        a = s
        for _ in range(_GAMMA_ITERATIONS):
            a += 1.0
            term *= z / a
            total += term
            if abs(term) < abs(total) * _GAMMA_EPS:
                break
        p = total * math.exp(log_prefactor)
        return min(1.0, max(0.0, 1.0 - p))
    # upper regularized gamma Q(s, z) by continued fraction
    b = z + 1.0 - s
    c = 1.0 / _GAMMA_TINY
    d = 1.0 / b if b != 0.0 else 1.0 / _GAMMA_TINY
    h = d
    for i in range(1, _GAMMA_ITERATIONS):
        an = -i * (i - s)
        b += 2.0
        d = an * d + b
        if abs(d) < _GAMMA_TINY:
            d = _GAMMA_TINY
        c = b + an / c
        if abs(c) < _GAMMA_TINY:
            c = _GAMMA_TINY
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _GAMMA_EPS:
            break
    q = math.exp(log_prefactor) * h
    return min(1.0, max(0.0, q))


# ----------------------------------------------------------------------
# entropy estimators over count vectors
# ----------------------------------------------------------------------

def _xlog2x_sum(counts: np.ndarray) -> float:
    """``sum n_k log2 n_k`` over the nonzero cells."""
    positive = counts[counts > 0]
    return float((positive * np.log2(positive)).sum())


def entropy_bits(counts: np.ndarray, correction: str = "none") -> float:
    """Entropy (bits) of a count vector under the chosen bias correction.

    ``H_ML = log2 N - (1/N) sum n_k log2 n_k`` with the Miller–Madow or
    closed-form jackknife adjustment on top; shrinkage does not decompose
    per entropy term and is handled in :func:`mutual_information`.
    """
    counts = np.asarray(counts, dtype=float)
    total = float(counts.sum())
    if total <= 0:
        raise MIEstimationError("entropy of an empty count vector")
    h_ml = math.log2(total) - _xlog2x_sum(counts) / total
    if correction == "none" or correction == "shrinkage":
        return h_ml
    if correction == "miller_madow":
        support = int((counts > 0).sum())
        return h_ml + (support - 1) / (2.0 * total * _LN2)
    if correction == "jackknife":
        return _jackknife_entropy(counts, total, h_ml)
    raise MIEstimationError(
        f"unknown MI bias correction {correction!r}; "
        f"valid choices: {', '.join(repr(c) for c in CORRECTIONS)}")


def _jackknife_entropy(counts: np.ndarray, total: float,
                       h_ml: float) -> float:
    """Closed-form leave-one-out jackknife of the plug-in entropy.

    Removing one observation from cell ``k`` yields the entropy ``H_k`` of
    the count vector with ``n_k - 1`` at total ``N - 1``; the jackknife
    estimate is ``N·H_ML - (N-1)/N · sum n_k H_k``.  Each ``H_k`` differs
    from the full-sample sum in one term only, so no resampling loop is
    needed.  Falls back to the plug-in estimate when ``N < 2`` (nothing to
    leave out).
    """
    if total < 2:
        return h_ml
    s = _xlog2x_sum(counts)
    nz = counts[counts > 0]
    reduced = nz - 1.0
    reduced_term = np.where(reduced > 0, reduced * np.log2(
        np.where(reduced > 0, reduced, 1.0)), 0.0)
    # H_k for each nonzero cell, at total N - 1
    h_k = (math.log2(total - 1.0)
           - (s - nz * np.log2(nz) + reduced_term) / (total - 1.0))
    mean_loo = float((nz * h_k).sum()) / total
    return total * h_ml - (total - 1.0) * mean_loo


# ----------------------------------------------------------------------
# mutual information over a joint contingency table
# ----------------------------------------------------------------------

def mutual_information(joint: np.ndarray,
                       correction: str = "miller_madow") -> float:
    """``I(R; C)`` in bits from an R×C joint count table.

    The plug-in estimate is ``H(rows) + H(cols) - H(joint)``; corrections
    apply per entropy term (Miller–Madow, jackknife) or to the joint cell
    probabilities (James–Stein shrinkage toward uniform).  The result is
    *not* clamped — closed-form test cases rely on exact zero/log2(k)
    values under ``correction="none"``; :func:`mi_test` clamps for
    reporting.
    """
    if correction not in CORRECTIONS:
        raise MIEstimationError(
            f"unknown MI bias correction {correction!r}; "
            f"valid choices: {', '.join(repr(c) for c in CORRECTIONS)}")
    joint = np.asarray(joint, dtype=float)
    if joint.ndim != 2:
        raise MIEstimationError("joint table must be 2-dimensional")
    total = float(joint.sum())
    if total <= 0:
        raise MIEstimationError("mutual information of an empty table")
    if correction == "shrinkage":
        return _shrinkage_mi(joint, total)
    rows = joint.sum(axis=1)
    cols = joint.sum(axis=0)
    return (entropy_bits(rows, correction)
            + entropy_bits(cols, correction)
            - entropy_bits(joint.ravel(), correction))


def _shrinkage_mi(joint: np.ndarray, total: float) -> float:
    """MI of the James–Stein-shrunk joint distribution.

    Shrinks the ML cell probabilities toward the uniform target
    ``t = 1/(R·C)`` with the analytic optimal intensity
    ``λ* = (1 - sum p̂²) / ((N - 1) · sum (t - p̂)²)`` clamped to [0, 1]
    (Hausser & Strimmer's entropy shrinkage estimator), then evaluates MI
    exactly on the shrunk distribution.
    """
    p_hat = joint / total
    target = 1.0 / joint.size
    denominator = float(((target - p_hat) ** 2).sum())
    if total <= 1 or denominator == 0.0:
        lam = 1.0
    else:
        lam = (1.0 - float((p_hat ** 2).sum())) / ((total - 1.0)
                                                   * denominator)
        lam = min(1.0, max(0.0, lam))
    p = lam * target + (1.0 - lam) * p_hat
    p_rows = p.sum(axis=1)
    p_cols = p.sum(axis=0)

    def entropy_of(prob: np.ndarray) -> float:
        positive = prob[prob > 0]
        return float(-(positive * np.log2(positive)).sum())

    return (entropy_of(p_rows) + entropy_of(p_cols)
            - entropy_of(p.ravel()))


# ----------------------------------------------------------------------
# the per-feature test
# ----------------------------------------------------------------------

def mi_test(hist_x: Histogram, hist_y: Histogram,
            confidence: float = DEFAULT_CONFIDENCE,
            order: Optional[Dict[Hashable, int]] = None,
            correction: str = "miller_madow",
            min_bits: float = 0.0,
            sample_size_cap: Optional[int] = None) -> MIResult:
    """Mutual-information test between a feature's fixed/random histograms.

    The two histograms form the rows of the 2×C joint table (row 0 =
    fixed side, row 1 = random side) over their ordered common support —
    the same :func:`~repro.core.kstest._ordered_weights` support the KS
    paths use, so both detectors see identical features.  ``order`` only
    fixes the column order; MI is invariant under value permutation.

    Like the KS test, ``sample_size_cap`` bounds the *effective* sample
    sizes used for significance (correlated warp lanes inflate counts):
    the MI estimate comes from the full histograms, the G statistic from
    the capped total.
    """
    alpha = 1.0 - confidence
    if not 0.0 < alpha < 1.0:
        raise MIEstimationError(
            f"confidence must be in (0, 1), got {confidence}")
    wx, wy = _ordered_weights(hist_x, hist_y, order)
    n = int(wx.sum())
    m = int(wy.sum())
    if n == 0 or m == 0:
        raise MIEstimationError("MI test needs non-empty samples")
    joint = np.stack([wx, wy])
    mi_raw = mutual_information(joint, "none")
    corrected = mutual_information(joint, correction)
    support = int(((wx + wy) > 0).sum())
    # I(S; V) <= min(H(S), H(V)) <= log2(min(sides, support values))
    ceiling = math.log2(min(2, support))
    mi_bits = min(ceiling, max(0.0, corrected))
    n_eff = n if sample_size_cap is None else min(n, sample_size_cap)
    m_eff = m if sample_size_cap is None else min(m, sample_size_cap)
    dof = support - 1  # (rows - 1) * (cols - 1) with both rows nonzero
    if dof <= 0:
        p_value = 1.0
    else:
        g = 2.0 * (n_eff + m_eff) * _LN2 * max(0.0, mi_raw)
        p_value = chi2_sf(g, dof)
    return MIResult(statistic=mi_raw, p_value=p_value, n=n_eff, m=m_eff,
                    threshold=float("nan"), confidence=confidence,
                    mi_bits=mi_bits, mi_raw=mi_raw, dof=dof,
                    min_bits=min_bits)
