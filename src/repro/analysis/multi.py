"""Multi-detector orchestration for ``OwlConfig(analyzer=...)``.

``analyzer="both"`` must not double the analysis cost: the evidence is
aligned once, the feature fold runs once, and the recorded deferred sink
is replayed under each detector's batched test
(:meth:`~repro.core.leakage._TestSink.finish` with an explicit analyzer).
Replaying guarantees the KS component of a ``both`` run is *identical* —
same requests, same ``ks_test_batch`` call, same emission order — to a
plain ``analyzer="ks"`` run over the same evidence, which the test suite
asserts byte-for-byte.  When a detector cannot defer (``vectorized=False``
or the Welch ablation), each detector traverses the pairs itself instead.
"""

from __future__ import annotations

import time
from typing import List, Sequence, Tuple

from repro import profiling
from repro.analysis.mi.analyzer import MIAnalyzer
from repro.core.evidence import Evidence, align_evidence
from repro.core.leakage import LeakageAnalyzer, LeakageConfig, _TestSink
from repro.core.report import LeakageReport
from repro.errors import ConfigError

#: Detector registry: analyzer mode -> LeakageAnalyzer subclass.
ANALYZERS = {
    "ks": LeakageAnalyzer,
    "mi": MIAnalyzer,
}


def analysis_modes(analyzer: str) -> Tuple[str, ...]:
    """The detector modes an ``OwlConfig.analyzer`` value expands to."""
    if analyzer == "both":
        return ("ks", "mi")
    return (analyzer,)


def make_analyzer(mode: str, config: LeakageConfig) -> LeakageAnalyzer:
    """Construct one detector; ``mode`` is "ks" or "mi" (not "both")."""
    try:
        analyzer_class = ANALYZERS[mode]
    except KeyError:
        raise ConfigError(
            f"unknown analyzer {mode!r}; valid choices: 'ks', 'mi', 'both'")
    return analyzer_class(config)


def run_analyzers(analyzers: Sequence[LeakageAnalyzer], fixed: Evidence,
                  random: Evidence,
                  program_name: str = "program") -> List[LeakageReport]:
    """Run several detectors over ONE aligned evidence pass.

    Returns one report per analyzer, in order.  All analyzers must share
    one :class:`~repro.core.leakage.LeakageConfig` (the pipeline builds
    them that way), so the fold — which depends only on the config — is
    detector-independent and can be recorded once.
    """
    if len(analyzers) > 1 and all(a._defer() for a in analyzers):
        reports, _results = deferred_analysis(analyzers, fixed, random,
                                              program_name)
        return reports
    prof = profiling.profiler()
    started = time.perf_counter()
    pairs = align_evidence(fixed, random)
    if prof is not None:
        prof.add("analysis_align", time.perf_counter() - started)
    metadata = dict(program_name=program_name,
                    num_fixed_runs=fixed.num_runs,
                    num_random_runs=random.num_runs)
    return [analyzer.analyze_pairs(pairs, **metadata)
            for analyzer in analyzers]


def deferred_analysis(
        analyzers: Sequence[LeakageAnalyzer], fixed: Evidence,
        random: Evidence, program_name: str = "program"
) -> Tuple[List[LeakageReport], List[List]]:
    """One aligned/folded pass, plus every analyzer's raw batch results.

    Same single-traversal machinery as the deferred branch of
    :func:`run_analyzers`, but the batched test runs exactly once per
    analyzer and its full result list — every submitted per-location
    test, not just the flagged subset the report keeps — is returned
    alongside the reports.  The adaptive scheduler's group-sequential
    decisions consume those raw p-values (``raw_results[i][j]`` is
    analyzer *i*'s :class:`~repro.core.kstest.TestResult` — or ``None``
    for a degenerate feature — for submitted test *j*).

    Every analyzer must be able to defer (``_defer()`` true); the
    pipeline guarantees that by rejecting ``adaptive=True`` configs
    whose analyzers cannot.
    """
    for analyzer in analyzers:
        if not analyzer._defer():
            raise ConfigError(
                f"analyzer {analyzer.mode!r} cannot defer its tests "
                f"(vectorized=False or a non-ks test ablation); the "
                f"shared-fold deferred pass requires batched testing")
    prof = profiling.profiler()
    started = time.perf_counter()
    pairs = align_evidence(fixed, random)
    if prof is not None:
        prof.add("analysis_align", time.perf_counter() - started)
    metadata = dict(program_name=program_name,
                    num_fixed_runs=fixed.num_runs,
                    num_random_runs=random.num_runs)
    lead = analyzers[0]
    sink = _TestSink(lead, defer=True)
    started = time.perf_counter()
    lead._fold_pairs(pairs, sink)
    if prof is not None:
        prof.add("analysis_fold", time.perf_counter() - started)
    reports = []
    raw_results = []
    for analyzer in analyzers:
        report = analyzer.new_report(**metadata)
        started = time.perf_counter()
        results = analyzer._batch_test(sink._requests)
        report.extend(sink.finish(analyzer, results=results))
        if prof is not None:
            prof.add(analyzer.batch_phase, time.perf_counter() - started)
        reports.append(report)
        raw_results.append(results)
    return reports, raw_results
