"""Multi-detector orchestration for ``OwlConfig(analyzer=...)``.

``analyzer="both"`` must not double the analysis cost: the evidence is
aligned once, the feature fold runs once, and the recorded deferred sink
is replayed under each detector's batched test
(:meth:`~repro.core.leakage._TestSink.finish` with an explicit analyzer).
Replaying guarantees the KS component of a ``both`` run is *identical* —
same requests, same ``ks_test_batch`` call, same emission order — to a
plain ``analyzer="ks"`` run over the same evidence, which the test suite
asserts byte-for-byte.  When a detector cannot defer (``vectorized=False``
or the Welch ablation), each detector traverses the pairs itself instead.
"""

from __future__ import annotations

import time
from typing import List, Sequence, Tuple

from repro import profiling
from repro.analysis.mi.analyzer import MIAnalyzer
from repro.core.evidence import Evidence, align_evidence
from repro.core.leakage import LeakageAnalyzer, LeakageConfig, _TestSink
from repro.core.report import LeakageReport
from repro.errors import ConfigError

#: Detector registry: analyzer mode -> LeakageAnalyzer subclass.
ANALYZERS = {
    "ks": LeakageAnalyzer,
    "mi": MIAnalyzer,
}


def analysis_modes(analyzer: str) -> Tuple[str, ...]:
    """The detector modes an ``OwlConfig.analyzer`` value expands to."""
    if analyzer == "both":
        return ("ks", "mi")
    return (analyzer,)


def make_analyzer(mode: str, config: LeakageConfig) -> LeakageAnalyzer:
    """Construct one detector; ``mode`` is "ks" or "mi" (not "both")."""
    try:
        analyzer_class = ANALYZERS[mode]
    except KeyError:
        raise ConfigError(
            f"unknown analyzer {mode!r}; valid choices: 'ks', 'mi', 'both'")
    return analyzer_class(config)


def run_analyzers(analyzers: Sequence[LeakageAnalyzer], fixed: Evidence,
                  random: Evidence,
                  program_name: str = "program") -> List[LeakageReport]:
    """Run several detectors over ONE aligned evidence pass.

    Returns one report per analyzer, in order.  All analyzers must share
    one :class:`~repro.core.leakage.LeakageConfig` (the pipeline builds
    them that way), so the fold — which depends only on the config — is
    detector-independent and can be recorded once.
    """
    prof = profiling.profiler()
    started = time.perf_counter()
    pairs = align_evidence(fixed, random)
    if prof is not None:
        prof.add("analysis_align", time.perf_counter() - started)
    metadata = dict(program_name=program_name,
                    num_fixed_runs=fixed.num_runs,
                    num_random_runs=random.num_runs)
    if len(analyzers) > 1 and all(a._defer() for a in analyzers):
        lead = analyzers[0]
        sink = _TestSink(lead, defer=True)
        started = time.perf_counter()
        lead._fold_pairs(pairs, sink)
        if prof is not None:
            prof.add("analysis_fold", time.perf_counter() - started)
        reports = []
        for analyzer in analyzers:
            report = analyzer.new_report(**metadata)
            started = time.perf_counter()
            report.extend(sink.finish(analyzer))
            if prof is not None:
                prof.add(analyzer.batch_phase,
                         time.perf_counter() - started)
            reports.append(report)
        return reports
    return [analyzer.analyze_pairs(pairs, **metadata)
            for analyzer in analyzers]
