"""The bundled-workload registry: one name → (program, inputs, random).

Both front ends resolve workloads here: the ``owl`` CLI (to run one
detection in-process) and the detection service (whose durable work units
reference programs *by name*, because unit specs are JSON and must be
re-materialisable in any worker process).  Everything a unit needs to
reproduce a run bit-identically — the program callable, the deterministic
fixed-input factory, the seeded random-input function — comes from this
table, so a unit spec is just ``(workload name, config dict, indices)``.

Imports are deferred into :func:`workloads` so importing this module (or
the CLI) stays cheap.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

#: name -> (program, fixed-inputs factory, random-input fn)
WorkloadEntry = Tuple[Callable, Callable, Callable]


def workloads() -> Dict[str, WorkloadEntry]:
    """name → (program, fixed-inputs factory, random-input fn)."""
    from repro.apps import dummy
    from repro.apps.libgpucrypto import (
        aes_program, aes_program_ct, random_exponent, random_key,
        rsa_program, rsa_program_ct)
    from repro.apps.minitorch import (
        OP_NAMES, make_op_program, make_random_input, serialize_program,
        tensor_repr_program)
    from repro.apps.minitorch.ops import fixed_op_input
    from repro.apps.minitorch.serialize import serialize_random_input
    from repro.apps.minitorch.tensor import repr_random_input
    from repro.apps.nvjpeg import (
        decode_program, encode_program, random_image, synthetic_image)

    table: Dict[str, WorkloadEntry] = {
        "aes": (aes_program,
                lambda: [bytes(range(16)), bytes(range(1, 17))],
                random_key),
        "aes-ct": (aes_program_ct,
                   lambda: [bytes(range(16)), bytes(range(1, 17))],
                   random_key),
        "rsa": (rsa_program,
                lambda: [0x6ACF8231, 0x7FD4C9A7],
                random_exponent),
        "rsa-ct": (rsa_program_ct,
                   lambda: [0x6ACF8231, 0x7FD4C9A7],
                   random_exponent),
        "serialize": (serialize_program,
                      lambda: [np.zeros(64), np.linspace(-2, 2, 64)],
                      serialize_random_input),
        "tensor-repr": (tensor_repr_program,
                        lambda: [np.linspace(-2, 2, 64),
                                 np.linspace(-2, 2, 64) * 10_000],
                        repr_random_input),
        "nvjpeg-encode": (encode_program,
                          lambda: [synthetic_image(16, 16, seed=1),
                                   synthetic_image(16, 16, seed=2)],
                          lambda rng: random_image(rng, 16, 16)),
        "nvjpeg-decode": (decode_program,
                          lambda: [synthetic_image(16, 16, seed=1),
                                   synthetic_image(16, 16, seed=2)],
                          lambda rng: random_image(rng, 16, 16)),
        "dummy": (dummy.dummy_program,
                  lambda: [dummy.fixed_input(), dummy.fixed_input(value=9)],
                  dummy.random_input),
    }
    for name in OP_NAMES:
        table[f"torch-{name}"] = (
            make_op_program(name),
            (lambda n: lambda: [fixed_op_input(n),
                                make_random_input(n)(
                                    np.random.default_rng(7))])(name),
            make_random_input(name))
    return table


def resolve(name: str) -> WorkloadEntry:
    """Look up one workload, with a one-line error naming valid choices."""
    table = workloads()
    if name not in table:
        known = ", ".join(sorted(table))
        raise KeyError(f"unknown workload {name!r}; valid choices: {known}")
    return table[name]
