"""The minitorch :class:`Tensor` and ``Tensor.__repr__``.

``Tensor.__repr__`` mirrors the PyTorch behaviour the paper measures:

* it launches a *fixed-thread-count* summary kernel that, like PyTorch's
  printing, reads only the tensor's edge items — so both the thread count
  and the trace size are constant in the input size (Fig. 5 pattern ①);
* formatting is value-dependent on the host: tensors containing large
  magnitudes trigger an extra statistics kernel to pick the scientific
  display scale — an input-dependent kernel launch that Owl reports as
  kernel leakage.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps.minitorch import kernels
from repro.gpusim import WARP_SIZE
from repro.host.runtime import CudaRuntime

#: Magnitude beyond which ``__repr__`` switches to scientific formatting
#: (PyTorch's printing heuristic uses a similar threshold).
SCI_THRESHOLD = 1000.0


class Tensor:
    """A host tensor optionally bound to a runtime for device-side repr."""

    def __init__(self, data, rt: Optional[CudaRuntime] = None) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.rt = rt

    @property
    def shape(self):
        return self.data.shape

    @property
    def numel(self) -> int:
        return int(self.data.size)

    def to_host(self) -> np.ndarray:
        return self.data.copy()

    def __repr__(self) -> str:
        if self.rt is None:
            return f"Tensor(shape={self.shape})"
        summary = tensor_summary(self.rt, self.data)
        return (f"Tensor(shape={self.shape}, "
                f"abs_sum={summary:.4g})")


def tensor(data, rt: Optional[CudaRuntime] = None) -> Tensor:
    """Create a :class:`Tensor` (PyTorch-style factory)."""
    return Tensor(data, rt=rt)


def tensor_summary(rt: CudaRuntime, data: np.ndarray) -> float:
    """Device-side summary used by ``__repr__``.

    Always launches the 32-thread summary kernel; additionally launches the
    scale-statistics kernel when any magnitude exceeds the scientific
    threshold — the host-side value dependence that leaks.
    """
    flat = np.asarray(data, dtype=np.float64).reshape(-1)
    xb = rt.cudaMalloc(flat.size, dtype=np.float64, label="repr.x")
    rt.cudaMemcpyHtoD(xb, flat)
    out = rt.cudaMalloc(WARP_SIZE, dtype=np.float64, label="repr.out")
    rt.cuLaunchKernel(kernels.summary_kernel, 1, WARP_SIZE, xb, out, flat.size)
    if np.abs(flat).max(initial=0.0) > SCI_THRESHOLD:
        stats = rt.cudaMalloc(WARP_SIZE, dtype=np.float64, label="repr.stats")
        rt.cuLaunchKernel(kernels.scale_stats_kernel, 1, WARP_SIZE,
                          xb, stats, flat.size)
    return float(rt.cudaMemcpyDtoH(out).sum())


def tensor_repr_program(rt: CudaRuntime, secret) -> str:
    """The Owl program under test for ``Tensor.__repr__``."""
    return repr(Tensor(np.asarray(secret, dtype=np.float64), rt=rt))


def repr_random_input(rng: np.random.Generator, size: int = 64):
    """Random repr inputs; occasionally large-magnitude, like real data."""
    values = rng.standard_normal(size)
    if rng.random() < 0.3:
        values = values * 10_000.0
    return values
