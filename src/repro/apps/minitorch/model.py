"""Sequential DNN models — the model-extraction-attack scenario.

The paper motivates GPU side-channel work with model extraction: "some
sensitive information such as hyperparameters of DNN models is still
susceptible to leakage" through *kernel leakage*, because "differences
between kernels are relatively distinguishable to the attacker" (§IV-A).

This module makes that concrete: a :class:`Sequential` model runs one
device kernel per layer, so the host-visible launch sequence spells out
the architecture.  When the *model* is the secret (MLaaS serving hidden
architectures), Owl reports kernel leakage; and
:func:`extract_architecture` plays the attacker, recovering layer types
and counts from the launch trace alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.apps.minitorch import kernels
from repro.apps.minitorch.ops import _fixed_weights, _grid_for, _upload
from repro.gpusim import Device
from repro.gpusim.events import KernelBeginEvent
from repro.host.runtime import CudaRuntime

#: layer vocabulary: type name → kernel it launches
LAYER_KERNELS = {
    "linear": "linear_kernel",
    "relu": "relu_kernel",
    "sigmoid": "sigmoid_kernel",
    "tanh": "tanh_kernel",
    "dropout": "dropout_kernel",
}


@dataclass(frozen=True)
class Layer:
    """One model layer: a type plus its width (output features)."""

    kind: str
    width: int = 16

    def __post_init__(self) -> None:
        if self.kind not in LAYER_KERNELS:
            raise ValueError(
                f"unknown layer kind {self.kind!r}; "
                f"choose from {sorted(LAYER_KERNELS)}")


class Sequential:
    """A feed-forward model whose forward pass launches one kernel/layer."""

    def __init__(self, layers: Sequence[Layer], seed: int = 11) -> None:
        self.layers = list(layers)
        self._seed = seed

    @property
    def architecture(self) -> Tuple[str, ...]:
        """The hyperparameters an extraction attacker wants."""
        return tuple(layer.kind for layer in self.layers)

    def forward(self, rt: CudaRuntime, x: np.ndarray) -> np.ndarray:
        """Run the model on the device; ``x`` is a flat feature vector."""
        activation = np.asarray(x, dtype=np.float64).reshape(-1)
        for index, layer in enumerate(self.layers):
            activation = self._run_layer(rt, layer, index, activation)
        return activation

    def _run_layer(self, rt: CudaRuntime, layer: Layer, index: int,
                   x: np.ndarray) -> np.ndarray:
        n = x.size
        if layer.kind == "linear":
            weight = _fixed_weights(layer.width * n,
                                    seed=self._seed + index).reshape(
                layer.width, n)
            bias = _fixed_weights(layer.width, seed=self._seed + 100 + index)
            xb = _upload(rt, x, f"model.l{index}.x")
            wb = _upload(rt, weight, f"model.l{index}.w")
            bb = _upload(rt, bias, f"model.l{index}.b")
            out = rt.cudaMalloc(layer.width, dtype=np.float64,
                                label=f"model.l{index}.out")
            rt.cuLaunchKernel(kernels.linear_kernel, _grid_for(layer.width),
                              32, xb, wb, bb, out, n, layer.width)
            return rt.cudaMemcpyDtoH(out)

        xb = _upload(rt, x, f"model.l{index}.x")
        out = rt.cudaMalloc(n, dtype=np.float64, label=f"model.l{index}.out")
        if layer.kind == "dropout":
            mask = np.ones(n)  # inference mode: dropout is the identity
            mb = _upload(rt, mask, f"model.l{index}.mask")
            rt.cuLaunchKernel(kernels.dropout_kernel, _grid_for(n), 32,
                              xb, mb, out, n)
        else:
            kern = {"relu": kernels.relu_kernel,
                    "sigmoid": kernels.sigmoid_kernel,
                    "tanh": kernels.tanh_kernel}[layer.kind]
            rt.cuLaunchKernel(kern, _grid_for(n), 32, xb, out, n)
        return rt.cudaMemcpyDtoH(out)


#: a small architecture zoo for experiments
ARCHITECTURE_ZOO: List[Tuple[Layer, ...]] = [
    (Layer("linear", 16), Layer("relu"), Layer("linear", 8)),
    (Layer("linear", 16), Layer("tanh"), Layer("linear", 8)),
    (Layer("linear", 32), Layer("relu"), Layer("linear", 16),
     Layer("relu"), Layer("linear", 8)),
    (Layer("linear", 16), Layer("sigmoid"), Layer("dropout"),
     Layer("linear", 8)),
]


def model_serving_program(rt: CudaRuntime, secret_architecture) -> np.ndarray:
    """The MLaaS scenario: the *architecture* is the secret input.

    ``secret_architecture`` is an index into the zoo (or a layer tuple);
    the query data is fixed and public.
    """
    if isinstance(secret_architecture, (int, np.integer)):
        layers = ARCHITECTURE_ZOO[int(secret_architecture)
                                  % len(ARCHITECTURE_ZOO)]
    else:
        layers = tuple(secret_architecture)
    model = Sequential(layers)
    query = np.linspace(-1.0, 1.0, 16)
    return model.forward(rt, query)


def random_architecture(rng: np.random.Generator) -> int:
    """A random zoo index (the defender serves an unknown model)."""
    return int(rng.integers(0, len(ARCHITECTURE_ZOO)))


def extract_architecture(model: Sequential,
                         query: np.ndarray) -> Tuple[str, ...]:
    """The attacker: recover layer types from the kernel-launch trace.

    Observes only :class:`KernelBeginEvent` names — the coarse, easily
    distinguishable signal §IV-A describes — and inverts the layer→kernel
    vocabulary.
    """
    device = Device()
    launches: List[str] = []
    device.subscribe(lambda e: launches.append(e.kernel_name)
                     if isinstance(e, KernelBeginEvent) else None)
    model.forward(CudaRuntime(device), query)
    kernel_to_layer = {kernel_name: kind
                       for kind, kernel_name in LAYER_KERNELS.items()}
    return tuple(kernel_to_layer[name] for name in launches)
