"""minitorch: the PyTorch stand-in — a small tensor library on the simulator.

The paper evaluates Owl on twelve PyTorch functions plus ``Tensor.__repr__``
and tensor serialization (§VIII-B, footnote 6).  minitorch reproduces the
behavioural landscape the paper reports:

* most numeric kernels (``relu``, ``sigmoid``, ``tanh``, ``softmax``,
  ``avgpool2d``, ``linear``, ``mseloss``) are constant-observable;
* ``maxpool2d`` compares via predicated selects, so even though its CPU
  twin leaks timing (Shukla et al., cited by the paper), the CUDA version
  shows no control-flow leak — Owl must agree;
* ``conv2d`` and ``serialize`` contain the paper's *kernel leaks*: the host
  code checks for all-zero tensors and launches different kernels;
* ``crossentropy`` and ``nllloss`` gather at target indices: data-flow
  leaks when the targets are secret;
* ``dropout`` is genuinely nondeterministic but input-independent — the
  case Owl's fixed-input repetition must filter out.
"""

from repro.apps.minitorch.ops import (
    OP_NAMES,
    avgpool2d,
    conv2d,
    crossentropy,
    dropout,
    linear,
    make_op_program,
    make_random_input,
    maxpool2d,
    mseloss,
    nllloss,
    relu,
    sigmoid,
    softmax,
    tanh,
)
from repro.apps.minitorch.serialize import serialize_program, serialize_tensor
from repro.apps.minitorch.tensor import Tensor, tensor, tensor_repr_program

__all__ = [
    "OP_NAMES",
    "Tensor",
    "avgpool2d",
    "conv2d",
    "crossentropy",
    "dropout",
    "linear",
    "make_op_program",
    "make_random_input",
    "maxpool2d",
    "mseloss",
    "nllloss",
    "relu",
    "serialize_program",
    "serialize_tensor",
    "sigmoid",
    "softmax",
    "tanh",
    "tensor",
    "tensor_repr_program",
]
