"""Tensor serialization — the paper's flagship kernel leak.

§VIII-B: "one kernel leakage lies in the tensor serialization process,
where PyTorch calls kernels based on whether the tensor is zero: non-zero
tensors trigger additional kernel calls."  Reproduced literally: the host
checks the tensor for content and launches a device-to-device staging copy
only for non-zero tensors, then a header-checksum kernel either way.
"""

from __future__ import annotations

import struct
import numpy as np

from repro.apps.minitorch import kernels
from repro.host.runtime import CudaRuntime

_MAGIC = b"MTSR"


def serialize_tensor(rt: CudaRuntime, data: np.ndarray) -> bytes:
    """Serialise a tensor, staging non-zero payloads through the device.

    The input-dependent kernel launch (the staging copy) is the leak; the
    byte format itself is ordinary: magic, element count, raw float64 data
    (all-zero tensors store no payload, like a sparse fast path).
    """
    flat = np.asarray(data, dtype=np.float64).reshape(-1)
    xb = rt.cudaMalloc(flat.size, dtype=np.float64, label="serialize.x")
    rt.cudaMemcpyHtoD(xb, flat)

    is_dense = bool(flat.any())
    if is_dense:
        staging = rt.cudaMalloc(flat.size, dtype=np.float64,
                                label="serialize.staging")
        rt.cuLaunchKernel(kernels.copy_kernel, max(1, -(-flat.size // 32)), 32,
                          xb, staging, flat.size)
        payload = rt.cudaMemcpyDtoH(staging).tobytes()
    else:
        payload = b""

    header = _MAGIC + struct.pack("<QB", flat.size, int(is_dense))
    return header + payload


def deserialize_tensor(blob: bytes) -> np.ndarray:
    """Inverse of :func:`serialize_tensor` (host-only)."""
    if blob[:4] != _MAGIC:
        raise ValueError("not a minitorch serialized tensor")
    count, is_dense = struct.unpack_from("<QB", blob, 4)
    if not is_dense:
        return np.zeros(count, dtype=np.float64)
    payload = blob[4 + 9:]
    return np.frombuffer(payload, dtype=np.float64, count=count).copy()


def serialize_program(rt: CudaRuntime, secret) -> bytes:
    """The Owl program under test for tensor serialization."""
    return serialize_tensor(rt, np.asarray(secret, dtype=np.float64))


def serialize_random_input(rng: np.random.Generator, size: int = 64):
    """Random serialization inputs; sparse (all-zero) tensors do occur."""
    if rng.random() < 0.3:
        return np.zeros(size)
    return rng.standard_normal(size)
