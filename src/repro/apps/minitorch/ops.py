"""minitorch host-side ops and Owl program factories.

Each op mirrors the host half of a PyTorch CUDA operator: allocate device
buffers, copy inputs, launch kernels, copy the result back.  The module also
exposes :func:`make_op_program` / :func:`make_random_input`, which wrap each
op as a *program under test* whose secret input is the op's data — the form
Owl's pipeline consumes for the Table III / Table IV experiments.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Tuple

import numpy as np

from repro.apps.minitorch import kernels
from repro.gpusim import WARP_SIZE
from repro.host.runtime import CudaRuntime

#: Default problem sizes (kept small: leakage is size-independent here).
VECTOR_SIZE = 64
IMAGE_SIDE = 8
CONV_KSIZE = 3
NUM_CLASSES = 8
BATCH = 8
LINEAR_IN = 16
LINEAR_OUT = 8

_BLOCK = 32


def _grid_for(n: int) -> int:
    return max(1, math.ceil(n / _BLOCK))


def _upload(rt: CudaRuntime, array: np.ndarray, label: str, dtype=np.float64):
    buf = rt.cudaMalloc(array.size, dtype=dtype, label=label)
    rt.cudaMemcpyHtoD(buf, array.astype(dtype).reshape(-1))
    return buf


def _fixed_weights(size: int, seed: int = 97) -> np.ndarray:
    """Deterministic model weights (the model is public; data is secret)."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal(size)


# ---------------------------------------------------------------------------
# elementwise / reduction ops
# ---------------------------------------------------------------------------

def relu(rt: CudaRuntime, x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64).reshape(-1)
    xb = _upload(rt, x, "relu.x")
    out = rt.cudaMalloc(x.size, dtype=np.float64, label="relu.out")
    rt.cuLaunchKernel(kernels.relu_kernel, _grid_for(x.size), _BLOCK,
                      xb, out, x.size)
    return rt.cudaMemcpyDtoH(out)


def sigmoid(rt: CudaRuntime, x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64).reshape(-1)
    xb = _upload(rt, x, "sigmoid.x")
    out = rt.cudaMalloc(x.size, dtype=np.float64, label="sigmoid.out")
    rt.cuLaunchKernel(kernels.sigmoid_kernel, _grid_for(x.size), _BLOCK,
                      xb, out, x.size)
    return rt.cudaMemcpyDtoH(out)


def tanh(rt: CudaRuntime, x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64).reshape(-1)
    xb = _upload(rt, x, "tanh.x")
    out = rt.cudaMalloc(x.size, dtype=np.float64, label="tanh.out")
    rt.cuLaunchKernel(kernels.tanh_kernel, _grid_for(x.size), _BLOCK,
                      xb, out, x.size)
    return rt.cudaMemcpyDtoH(out)


def softmax(rt: CudaRuntime, x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64).reshape(-1)
    if x.size > WARP_SIZE:
        raise ValueError(f"softmax supports up to {WARP_SIZE} elements")
    xb = _upload(rt, x, "softmax.x")
    out = rt.cudaMalloc(x.size, dtype=np.float64, label="softmax.out")
    rt.cuLaunchKernel(kernels.softmax_kernel, 1, _BLOCK, xb, out, x.size)
    return rt.cudaMemcpyDtoH(out)


# ---------------------------------------------------------------------------
# pooling / convolution / linear
# ---------------------------------------------------------------------------

def maxpool2d(rt: CudaRuntime, image: np.ndarray) -> np.ndarray:
    image = np.asarray(image, dtype=np.float64)
    height, width = image.shape
    n = (height // 2) * (width // 2)
    xb = _upload(rt, image, "maxpool2d.x")
    out = rt.cudaMalloc(n, dtype=np.float64, label="maxpool2d.out")
    rt.cuLaunchKernel(kernels.maxpool2d_kernel, _grid_for(n), _BLOCK,
                      xb, out, height, width)
    return rt.cudaMemcpyDtoH(out).reshape(height // 2, width // 2)


def avgpool2d(rt: CudaRuntime, image: np.ndarray) -> np.ndarray:
    image = np.asarray(image, dtype=np.float64)
    height, width = image.shape
    n = (height // 2) * (width // 2)
    xb = _upload(rt, image, "avgpool2d.x")
    out = rt.cudaMalloc(n, dtype=np.float64, label="avgpool2d.out")
    rt.cuLaunchKernel(kernels.avgpool2d_kernel, _grid_for(n), _BLOCK,
                      xb, out, height, width)
    return rt.cudaMemcpyDtoH(out).reshape(height // 2, width // 2)


def conv2d(rt: CudaRuntime, image: np.ndarray,
           weight: np.ndarray = None) -> np.ndarray:
    """Valid 2-D convolution with the *sparse-tensor fast path*.

    Like PyTorch's special-tensor optimisations (§VIII-B), the host checks
    whether the input is all zeros and, if so, launches a cheap zero-fill
    kernel instead of the convolution — an input-dependent kernel choice
    that Owl reports as kernel leakage.
    """
    image = np.asarray(image, dtype=np.float64)
    height, width = image.shape
    if weight is None:
        weight = _fixed_weights(CONV_KSIZE * CONV_KSIZE).reshape(
            CONV_KSIZE, CONV_KSIZE)
    weight = np.asarray(weight, dtype=np.float64)
    ksize = weight.shape[0]
    out_h, out_w = height - ksize + 1, width - ksize + 1
    n = out_h * out_w
    out = rt.cudaMalloc(n, dtype=np.float64, label="conv2d.out")
    if not image.any():
        rt.cuLaunchKernel(kernels.zero_fill_kernel, _grid_for(n), _BLOCK,
                          out, n)
    else:
        xb = _upload(rt, image, "conv2d.x")
        wb = _upload(rt, weight, "conv2d.w")
        rt.cuLaunchKernel(kernels.conv2d_kernel, _grid_for(n), _BLOCK,
                          xb, wb, out, height, width, ksize)
    return rt.cudaMemcpyDtoH(out).reshape(out_h, out_w)


def linear(rt: CudaRuntime, x: np.ndarray,
           weight: np.ndarray = None, bias: np.ndarray = None) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64).reshape(-1)
    if weight is None:
        weight = _fixed_weights(LINEAR_OUT * x.size).reshape(LINEAR_OUT, x.size)
    weight = np.asarray(weight, dtype=np.float64)
    out_features, in_features = weight.shape
    if bias is None:
        bias = _fixed_weights(out_features, seed=53)
    xb = _upload(rt, x, "linear.x")
    wb = _upload(rt, weight, "linear.w")
    bb = _upload(rt, np.asarray(bias, dtype=np.float64), "linear.b")
    out = rt.cudaMalloc(out_features, dtype=np.float64, label="linear.out")
    rt.cuLaunchKernel(kernels.linear_kernel, _grid_for(out_features), _BLOCK,
                      xb, wb, bb, out, in_features, out_features)
    return rt.cudaMemcpyDtoH(out)


# ---------------------------------------------------------------------------
# losses
# ---------------------------------------------------------------------------

def mseloss(rt: CudaRuntime, pred: np.ndarray, target: np.ndarray) -> float:
    pred = np.asarray(pred, dtype=np.float64).reshape(-1)
    target = np.asarray(target, dtype=np.float64).reshape(-1)
    if pred.shape != target.shape:
        raise ValueError("mseloss shapes must match")
    pb = _upload(rt, pred, "mseloss.pred")
    tb = _upload(rt, target, "mseloss.target")
    out = rt.cudaMalloc(pred.size, dtype=np.float64, label="mseloss.out")
    rt.cuLaunchKernel(kernels.mseloss_kernel, _grid_for(pred.size), _BLOCK,
                      pb, tb, out, pred.size)
    return float(rt.cudaMemcpyDtoH(out)[0])


def nllloss(rt: CudaRuntime, log_probs: np.ndarray,
            targets: np.ndarray) -> np.ndarray:
    """Per-item negative log-likelihood (targets are the secret gather
    indices — PyTorch's ``nll_loss`` has the same access pattern)."""
    log_probs = np.asarray(log_probs, dtype=np.float64)
    batch, num_classes = log_probs.shape
    targets = np.asarray(targets, dtype=np.int64).reshape(-1)
    if targets.size != batch:
        raise ValueError("one target per batch item required")
    lb = _upload(rt, log_probs, "nllloss.log_probs")
    tb = _upload(rt, targets, "nllloss.targets", dtype=np.int64)
    out = rt.cudaMalloc(batch, dtype=np.float64, label="nllloss.out")
    rt.cuLaunchKernel(kernels.nllloss_kernel, _grid_for(batch), _BLOCK,
                      lb, tb, out, num_classes, batch)
    return rt.cudaMemcpyDtoH(out)


def crossentropy(rt: CudaRuntime, logits: np.ndarray,
                 targets: np.ndarray) -> np.ndarray:
    """log-softmax followed by NLL, like ``torch.nn.functional.cross_entropy``."""
    logits = np.asarray(logits, dtype=np.float64)
    batch, num_classes = logits.shape
    targets = np.asarray(targets, dtype=np.int64).reshape(-1)
    xb = _upload(rt, logits, "crossentropy.logits")
    log_probs = rt.cudaMalloc(batch * num_classes, dtype=np.float64,
                              label="crossentropy.log_probs")
    rt.cuLaunchKernel(kernels.log_softmax_kernel,
                      _grid_for(batch * num_classes), _BLOCK,
                      xb, log_probs, num_classes, batch)
    tb = _upload(rt, targets, "crossentropy.targets", dtype=np.int64)
    out = rt.cudaMalloc(batch, dtype=np.float64, label="crossentropy.out")
    rt.cuLaunchKernel(kernels.nllloss_kernel, _grid_for(batch), _BLOCK,
                      log_probs, tb, out, num_classes, batch)
    return rt.cudaMemcpyDtoH(out)


def dropout(rt: CudaRuntime, x: np.ndarray, p: float = 0.5,
            rng: np.random.Generator = None) -> np.ndarray:
    """Dropout with a *truly random* host-generated mask.

    Input-independent nondeterminism: the mask's values differ per run but
    its addresses do not, so Owl's distribution test must not flag it.
    """
    x = np.asarray(x, dtype=np.float64).reshape(-1)
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.size) >= p).astype(np.float64) / max(1e-9, 1.0 - p)
    xb = _upload(rt, x, "dropout.x")
    mb = _upload(rt, mask, "dropout.mask")
    out = rt.cudaMalloc(x.size, dtype=np.float64, label="dropout.out")
    rt.cuLaunchKernel(kernels.dropout_kernel, _grid_for(x.size), _BLOCK,
                      xb, mb, out, x.size)
    return rt.cudaMemcpyDtoH(out)


# ---------------------------------------------------------------------------
# Owl program factories
# ---------------------------------------------------------------------------

def _vector_program(op: Callable) -> Callable:
    def program(rt: CudaRuntime, secret) -> np.ndarray:
        return op(rt, np.asarray(secret, dtype=np.float64))
    return program


def _image_program(op: Callable) -> Callable:
    def program(rt: CudaRuntime, secret) -> np.ndarray:
        image = np.asarray(secret, dtype=np.float64).reshape(
            IMAGE_SIDE, IMAGE_SIDE)
        return op(rt, image)
    return program


def _softmax_program(rt: CudaRuntime, secret) -> np.ndarray:
    return softmax(rt, np.asarray(secret, dtype=np.float64)[:WARP_SIZE])


def _mseloss_program(rt: CudaRuntime, secret) -> float:
    pred = np.asarray(secret, dtype=np.float64).reshape(-1)
    target = np.linspace(-1.0, 1.0, pred.size)
    return mseloss(rt, pred, target)


def _nllloss_program(rt: CudaRuntime, secret) -> np.ndarray:
    targets = np.asarray(secret, dtype=np.int64).reshape(-1)[:BATCH]
    log_probs = np.log(np.full((BATCH, NUM_CLASSES), 1.0 / NUM_CLASSES))
    return nllloss(rt, log_probs, targets % NUM_CLASSES)


def _crossentropy_program(rt: CudaRuntime, secret) -> np.ndarray:
    targets = np.asarray(secret, dtype=np.int64).reshape(-1)[:BATCH]
    logits = _fixed_weights(BATCH * NUM_CLASSES, seed=7).reshape(
        BATCH, NUM_CLASSES)
    return crossentropy(rt, logits, targets % NUM_CLASSES)


def _dropout_program(rt: CudaRuntime, secret) -> np.ndarray:
    return dropout(rt, np.asarray(secret, dtype=np.float64))


def _linear_program(rt: CudaRuntime, secret) -> np.ndarray:
    return linear(rt, np.asarray(secret, dtype=np.float64).reshape(-1)[:LINEAR_IN])


#: op name → (program, random-input kind)
_PROGRAMS: Dict[str, Tuple[Callable, str]] = {
    "relu": (_vector_program(relu), "vector"),
    "sigmoid": (_vector_program(sigmoid), "vector"),
    "tanh": (_vector_program(tanh), "vector"),
    "softmax": (_softmax_program, "vector32"),
    "maxpool2d": (_image_program(maxpool2d), "image"),
    "avgpool2d": (_image_program(avgpool2d), "image"),
    "conv2d": (_image_program(conv2d), "image_maybe_zero"),
    "linear": (_linear_program, "vector16"),
    "mseloss": (_mseloss_program, "vector"),
    "nllloss": (_nllloss_program, "classes"),
    "crossentropy": (_crossentropy_program, "classes"),
    "dropout": (_dropout_program, "vector"),
}

OP_NAMES = tuple(sorted(_PROGRAMS))


def make_op_program(name: str) -> Callable:
    """The Owl program under test for op *name*."""
    try:
        return _PROGRAMS[name][0]
    except KeyError:
        raise KeyError(f"unknown minitorch op {name!r}; "
                       f"choose from {OP_NAMES}") from None


def make_random_input(name: str) -> Callable[[np.random.Generator], object]:
    """The matching random-secret generator for op *name*."""
    kind = _PROGRAMS[name][1]

    def generate(rng: np.random.Generator):
        if kind == "vector":
            return rng.standard_normal(VECTOR_SIZE)
        if kind == "vector32":
            return rng.standard_normal(WARP_SIZE)
        if kind == "vector16":
            return rng.standard_normal(LINEAR_IN)
        if kind == "image":
            return rng.standard_normal(IMAGE_SIDE * IMAGE_SIDE)
        if kind == "image_maybe_zero":
            # sparse tensors occur in the wild: make them occur here too
            if rng.random() < 0.3:
                return np.zeros(IMAGE_SIDE * IMAGE_SIDE)
            return rng.standard_normal(IMAGE_SIDE * IMAGE_SIDE)
        if kind == "classes":
            return rng.integers(0, NUM_CLASSES, size=BATCH)
        raise AssertionError(f"unhandled input kind {kind!r}")

    return generate


def fixed_op_input(name: str):
    """A deterministic secret input for op *name* (class representative)."""
    kind = _PROGRAMS[name][1]
    if kind == "vector":
        return np.linspace(-2.0, 2.0, VECTOR_SIZE)
    if kind == "vector32":
        return np.linspace(-2.0, 2.0, WARP_SIZE)
    if kind == "vector16":
        return np.linspace(-2.0, 2.0, LINEAR_IN)
    if kind in ("image", "image_maybe_zero"):
        return np.linspace(-1.0, 1.0, IMAGE_SIDE * IMAGE_SIDE)
    if kind == "classes":
        return np.arange(BATCH) % NUM_CLASSES
    raise AssertionError(f"unhandled input kind {kind!r}")
