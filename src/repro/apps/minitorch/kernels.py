"""minitorch device kernels.

All kernels operate on flat float64 device buffers.  Memory-access indices
are thread-derived unless a kernel's documented leak says otherwise, so the
constant-observable ops genuinely are constant-observable at the trace
level.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim import WARP_SIZE, kernel


@kernel()
def relu_kernel(k, x, out, n):
    k.block("entry")
    tid = k.global_tid()
    guard = k.branch(tid < n)
    for _ in guard.then("body"):
        v = k.load(x, tid)
        k.store(out, tid, k.select(v > 0.0, v, 0.0))
    k.block("exit")


@kernel()
def sigmoid_kernel(k, x, out, n):
    k.block("entry")
    tid = k.global_tid()
    guard = k.branch(tid < n)
    for _ in guard.then("body"):
        v = k.load(x, tid)
        k.store(out, tid, 1.0 / (1.0 + np.exp(-v)))
    k.block("exit")


@kernel()
def tanh_kernel(k, x, out, n):
    k.block("entry")
    tid = k.global_tid()
    guard = k.branch(tid < n)
    for _ in guard.then("body"):
        v = k.load(x, tid)
        k.store(out, tid, np.tanh(v))
    k.block("exit")


@kernel()
def softmax_kernel(k, x, out, n):
    """Numerically stable softmax over one <=32-element vector (one warp)."""
    k.block("entry")
    tid = k.global_tid()
    guard = k.branch(tid < n)
    for _ in guard.then("body"):
        v = k.load(x, tid)
        peak = k.reduce_max(v)
        shifted = np.exp(v - peak)
        total = k.reduce_sum(shifted)
        k.store(out, tid, shifted / total)
    k.block("exit")


@kernel()
def maxpool2d_kernel(k, x, out, height, width):
    """2×2 max pooling; comparisons are predicated selects, never branches.

    This is the paper's ``max_pool2d`` case study: the CPU implementation's
    value-dependent branch becomes branch-free predication on the GPU, so
    no control-flow leak is observable.
    """
    k.block("entry")
    tid = k.global_tid()
    out_w = width // 2
    n = (height // 2) * out_w
    guard = k.branch(tid < n)
    for _ in guard.then("body"):
        oy = tid // out_w
        ox = tid % out_w
        base = (2 * oy) * width + 2 * ox
        best = k.load(x, base)
        for offset in (1, width, width + 1):
            v = k.load(x, base + offset)
            best = k.select(v > best, v, best)
        k.store(out, tid, best)
    k.block("exit")


@kernel()
def avgpool2d_kernel(k, x, out, height, width):
    """2×2 average pooling: pure arithmetic, constant-observable."""
    k.block("entry")
    tid = k.global_tid()
    out_w = width // 2
    n = (height // 2) * out_w
    guard = k.branch(tid < n)
    for _ in guard.then("body"):
        oy = tid // out_w
        ox = tid % out_w
        base = (2 * oy) * width + 2 * ox
        acc = k.load(x, base)
        for offset in (1, width, width + 1):
            acc = acc + k.load(x, base + offset)
        k.store(out, tid, acc / 4.0)
    k.block("exit")


@kernel()
def conv2d_kernel(k, x, weight, out, height, width, ksize):
    """Valid-padding 2-D convolution, one thread per output pixel."""
    k.block("entry")
    tid = k.global_tid()
    out_h = height - ksize + 1
    out_w = width - ksize + 1
    n = out_h * out_w
    guard = k.branch(tid < n)
    for _ in guard.then("body"):
        oy = tid // out_w
        ox = tid % out_w
        acc = k.select(True, 0.0, 0.0)
        for ky in range(ksize):
            for kx in range(ksize):
                pixel = k.load(x, (oy + ky) * width + (ox + kx))
                tap = k.load(weight, ky * ksize + kx)
                acc = acc + pixel * tap
        k.store(out, tid, acc)
    k.block("exit")


@kernel()
def zero_fill_kernel(k, out, n):
    """The sparse fast path: skip the convolution and zero the output."""
    k.block("entry")
    tid = k.global_tid()
    guard = k.branch(tid < n)
    for _ in guard.then("body"):
        k.store(out, tid, 0.0)
    k.block("exit")


@kernel()
def linear_kernel(k, x, weight, bias, out, in_features, out_features):
    """Fully connected layer: one thread per output feature."""
    k.block("entry")
    tid = k.global_tid()
    guard = k.branch(tid < out_features)
    for _ in guard.then("body"):
        acc = k.load(bias, tid)
        for j in range(in_features):
            acc = acc + k.load(weight, tid * in_features + j) * k.load(x, j)
        k.store(out, tid, acc)
    k.block("exit")


@kernel()
def mseloss_kernel(k, pred, target, out, n):
    """Mean-squared error: constant-observable two-level reduction.

    Each warp reduces its lanes with ``reduce_sum`` (warp shuffle model)
    and one lane per warp atomically accumulates into ``out[0]`` — the
    standard CUDA grid-reduction shape.
    """
    k.block("entry")
    tid = k.global_tid()
    guard = k.branch(tid < n)
    for _ in guard.then("body"):
        diff = k.load(pred, tid) - k.load(target, tid)
        warp_total = k.reduce_sum(diff * diff)
        leader = k.branch(tid % WARP_SIZE == 0)
        for _ in leader.then("accumulate"):
            k.atomic_add(out, 0, warp_total / n)
    k.block("exit")


@kernel()
def nllloss_kernel(k, log_probs, targets, out, num_classes, batch):
    """Negative log-likelihood: gathers the log-prob *at the target class*.

    The second load's address is ``item * C + target`` — data-flow leakage
    whenever the targets are secret.
    """
    k.block("entry")
    tid = k.global_tid()
    guard = k.branch(tid < batch)
    for _ in guard.then("body"):
        target = k.load(targets, tid)
        picked = k.load(log_probs, tid * num_classes + target.astype(np.int64))
        k.store(out, tid, -picked)
    k.block("exit")


@kernel()
def log_softmax_kernel(k, x, out, num_classes, batch):
    """Per-item log-softmax over <=32 classes (one item per lane group)."""
    k.block("entry")
    tid = k.global_tid()
    guard = k.branch(tid < batch * num_classes)
    for _ in guard.then("body"):
        item = tid // num_classes
        v = k.load(x, tid)
        # per-lane max/sum over each item's classes, computed in registers
        # from the warp's loaded values (classes per item <= warp size)
        peak = _segment_reduce(k, v, item, np.maximum)
        shifted = v - peak
        total = _segment_reduce(k, np.exp(shifted), item, np.add)
        k.store(out, tid, shifted - np.log(total))
    k.block("exit")


def _segment_reduce(k, values, segments, op):
    """Register-level segmented reduction across the active lanes.

    Lanes with equal ``segments`` values are combined with *op*; every lane
    receives its segment's result.  Pure register traffic: no trace events.

    The reduction is strictly per warp: under the warp-cohort engine lane
    values are ``(num_warps, 32)`` grids and each row folds independently
    (a segment straddling two warps is partially reduced in each, exactly
    as the per-warp loop computes it).
    """
    values = np.asarray(values, dtype=float)
    segments = np.asarray(segments)
    active = np.asarray(k.active)
    squeeze = values.ndim == 1
    source = np.atleast_2d(values)
    result = source.copy()
    seg_rows = np.broadcast_to(np.atleast_2d(segments), source.shape)
    act_rows = np.broadcast_to(np.atleast_2d(active), source.shape)
    for r in range(source.shape[0]):
        segs, act = seg_rows[r], act_rows[r]
        for seg in np.unique(segs[act]):
            lanes = act & (segs == seg)
            combined = source[r][lanes]
            folded = combined[0]
            for item in combined[1:]:
                folded = op(folded, item)
            result[r][lanes] = folded
    return result[0] if squeeze else result


@kernel()
def dropout_kernel(k, x, mask, out, n):
    """Dropout: multiplies by a host-generated random 0/1 mask.

    Addresses are thread-indexed; only the *values* are random — the
    nondeterminism Owl's distribution test must not flag.
    """
    k.block("entry")
    tid = k.global_tid()
    guard = k.branch(tid < n)
    for _ in guard.then("body"):
        v = k.load(x, tid)
        m = k.load(mask, tid)
        k.store(out, tid, v * m)
    k.block("exit")


def _edge_accumulate(k, x, n, combine):
    """Shared edge-item walk for the ``__repr__`` kernels.

    Like PyTorch's tensor printing, only the *edge items* are read: the
    first 32 and last 32 elements (covering everything for n <= 64).  The
    access count is therefore constant in the input size — Fig. 5's
    pattern ① — while the thread count is pinned at one warp.
    """
    lane = k.global_tid()
    acc = k.select(True, 0.0, 0.0)
    head = k.branch(lane < n)
    for _ in head.then("head"):
        acc = combine(acc, k.load(x, lane))
    tail_idx = n - WARP_SIZE + lane
    tail = k.branch(tail_idx >= WARP_SIZE)
    for _ in tail.then("tail"):
        acc = combine(acc, k.load(x, tail_idx))
    return lane, acc


@kernel()
def summary_kernel(k, x, out, n):
    """``Tensor.__repr__`` helper: fixed 32 threads over the edge items."""
    k.block("entry")
    lane, acc = _edge_accumulate(
        k, x, n, lambda acc, v: acc + np.abs(v))
    k.block("writeback")
    k.store(out, lane % WARP_SIZE, acc)


@kernel()
def scale_stats_kernel(k, x, out, n):
    """Extra formatting pass ``__repr__`` runs only for large-magnitude
    tensors (host-side decision — the kernel-leak trigger)."""
    k.block("entry")
    lane, acc = _edge_accumulate(
        k, x, n, lambda acc, v: k.select(np.abs(v) > acc, np.abs(v), acc))
    k.block("writeback")
    k.store(out, lane % WARP_SIZE, acc)


@kernel()
def copy_kernel(k, src, dst, n):
    """Plain device-to-device copy (used by serialization's dense path)."""
    k.block("entry")
    tid = k.global_tid()
    guard = k.branch(tid < n)
    for _ in guard.then("body"):
        k.store(dst, tid, k.load(src, tid))
    k.block("exit")
