"""The dummy scalability workload (§VIII-C, Fig. 5).

The paper's dummy program "performs random array accesses to simulate the
S-box lookup operation in the AES algorithm", and its trace size *plateaus*
as threads grow: once every S-box entry has been touched, additional
threads only bump access counters on already-known addresses.

To reproduce that growth pattern, every buffer here is fixed-size: threads
derive their lookup index from a 256-byte seed (the secret input) combined
with their thread id, look it up in the 256-entry table, and fold the
result into a fixed-size output with atomics.  The *thread count* scales
with the input size; the *distinct address set* does not.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim import kernel
from repro.host.runtime import CudaRuntime

#: S-box-like table size (matches AES's 256-entry S-box).
TABLE_SIZE = 256

#: Fixed seed/output buffer sizes — the reason the trace saturates.
SEED_SIZE = 256
OUT_SIZE = 256


@kernel()
def sbox_lookup_kernel(k, seed, table, out, n):
    """Each thread substitutes a seed-derived byte through the table.

    All three buffers are fixed-size, so the set of distinct addresses this
    kernel can touch is bounded by ``SEED_SIZE + TABLE_SIZE + OUT_SIZE``
    regardless of how many threads run.
    """
    k.block("entry")
    tid = k.global_tid()
    guard = k.branch(tid < n)
    for _ in guard.then("body"):
        byte = k.load(seed, tid % SEED_SIZE)
        index = (byte + tid) % TABLE_SIZE
        value = k.load(table, index)
        k.atomic_add(out, (index + value) % OUT_SIZE, 1)
    k.block("exit")


def dummy_program(rt: CudaRuntime, secret) -> np.ndarray:
    """Run the dummy lookup over *secret* (a byte array).

    The input length determines the thread count (one thread per byte,
    mirroring how the paper scales the dummy through its input size); the
    first :data:`SEED_SIZE` bytes seed the lookups.
    """
    data_host = np.asarray(secret, dtype=np.int64) % TABLE_SIZE
    n = int(data_host.size)
    if n == 0:
        raise ValueError("dummy program needs a non-empty input")
    seed_host = np.zeros(SEED_SIZE, dtype=np.int64)
    seed_host[:min(n, SEED_SIZE)] = data_host[:SEED_SIZE]

    seed = rt.cudaMalloc(SEED_SIZE, label="seed")
    rt.cudaMemcpyHtoD(seed, seed_host)
    table = rt.cudaMalloc(TABLE_SIZE, label="sbox")
    rt.cudaMemcpyHtoD(table, np.arange(TABLE_SIZE, dtype=np.int64))
    out = rt.cudaMalloc(OUT_SIZE, label="output")

    threads_per_block = 128
    num_blocks = -(-n // threads_per_block)
    rt.cuLaunchKernel(sbox_lookup_kernel, num_blocks, threads_per_block,
                      seed, table, out, n)
    return rt.cudaMemcpyDtoH(out)


def random_input(rng: np.random.Generator, size: int = 64) -> np.ndarray:
    """A fresh random dummy input of *size* bytes."""
    return rng.integers(0, TABLE_SIZE, size=size, dtype=np.int64)


def fixed_input(size: int = 64, value: int = 7) -> np.ndarray:
    """A deterministic dummy input of *size* bytes."""
    return np.full(size, value % TABLE_SIZE, dtype=np.int64)
