"""Colour conversion: RGB ↔ YCbCr (BT.601, the JPEG convention).

Host references plus per-pixel device kernels.  Every device access is
thread-indexed, so the conversion stage is constant-observable.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim import kernel


def rgb_to_ycbcr_reference(rgb: np.ndarray) -> np.ndarray:
    """BT.601 full-range RGB→YCbCr on the host (float64 result)."""
    rgb = np.asarray(rgb, dtype=np.float64)
    r, g, b = rgb[..., 0], rgb[..., 1], rgb[..., 2]
    y = 0.299 * r + 0.587 * g + 0.114 * b
    cb = 128.0 - 0.168736 * r - 0.331264 * g + 0.5 * b
    cr = 128.0 + 0.5 * r - 0.418688 * g - 0.081312 * b
    return np.stack([y, cb, cr], axis=-1)


def ycbcr_to_rgb_reference(ycbcr: np.ndarray) -> np.ndarray:
    """BT.601 YCbCr→RGB on the host (float64, unclipped)."""
    ycbcr = np.asarray(ycbcr, dtype=np.float64)
    y, cb, cr = ycbcr[..., 0], ycbcr[..., 1] - 128.0, ycbcr[..., 2] - 128.0
    r = y + 1.402 * cr
    g = y - 0.344136 * cb - 0.714136 * cr
    b = y + 1.772 * cb
    return np.stack([r, g, b], axis=-1)


@kernel()
def rgb_to_ycbcr_kernel(k, rgb, ycbcr, num_pixels):
    """One thread per pixel; planar interleaved layout (3 floats/pixel)."""
    k.block("entry")
    tid = k.global_tid()
    guard = k.branch(tid < num_pixels)
    for _ in guard.then("body"):
        r = k.load(rgb, 3 * tid + 0)
        g = k.load(rgb, 3 * tid + 1)
        b = k.load(rgb, 3 * tid + 2)
        k.store(ycbcr, 3 * tid + 0, 0.299 * r + 0.587 * g + 0.114 * b)
        k.store(ycbcr, 3 * tid + 1,
                128.0 - 0.168736 * r - 0.331264 * g + 0.5 * b)
        k.store(ycbcr, 3 * tid + 2,
                128.0 + 0.5 * r - 0.418688 * g - 0.081312 * b)
    k.block("exit")


@kernel()
def ycbcr_to_rgb_kernel(k, ycbcr, rgb, num_pixels):
    """Inverse conversion, same constant-observable structure."""
    k.block("entry")
    tid = k.global_tid()
    guard = k.branch(tid < num_pixels)
    for _ in guard.then("body"):
        y = k.load(ycbcr, 3 * tid + 0)
        cb = k.load(ycbcr, 3 * tid + 1) - 128.0
        cr = k.load(ycbcr, 3 * tid + 2) - 128.0
        k.store(rgb, 3 * tid + 0, y + 1.402 * cr)
        k.store(rgb, 3 * tid + 1, y - 0.344136 * cb - 0.714136 * cr)
        k.store(rgb, 3 * tid + 2, y + 1.772 * cb)
    k.block("exit")
