"""nvjpeg: the closed-source JPEG codec stand-in.

The paper runs Owl on nvJPEG's encode and decode paths (§VIII-B) using
fixed-size images from COCO-2014, finding many control-flow and data-flow
leaks in *encoding* and none in *decoding*.  This package implements a
JPEG-style codec on the simulator with the same structure:

* the encoder's colour conversion, DCT, and quantisation kernels are
  constant-observable, but its *entropy kernel* has value-dependent control
  flow (zero-run scanning, magnitude-category bit loops — warp trip counts
  are the max over lanes, so they leak at warp granularity) and
  value-dependent store offsets (the growing symbol stream);
* the decoder (dequantise → IDCT → colour conversion) is constant-observable
  for fixed-size images.

Owl sees only the traces, never this source — reproducing the paper's
closed-source analysis setting.
"""

from repro.apps.nvjpeg.decoder import decode_program, nvjpeg_decode
from repro.apps.nvjpeg.encoder import encode_program, nvjpeg_encode
from repro.apps.nvjpeg.images import random_image, synthetic_image

__all__ = [
    "decode_program",
    "encode_program",
    "nvjpeg_decode",
    "nvjpeg_encode",
    "random_image",
    "synthetic_image",
]
