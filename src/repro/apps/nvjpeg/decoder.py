"""The nvjpeg decoder: constant-observable device pipeline + Owl program.

Decode path: entropy-decode on the host (stream parsing is host code, as in
nvJPEG's CPU bitstream stage), then on the device dequantise → inverse DCT
→ YCbCr→RGB.  Every device access is thread-derived for a fixed image size,
which is why the paper finds no leaks in nvJPEG decoding — and why Owl must
report this pipeline clean.
"""

from __future__ import annotations

import numpy as np

from repro.apps.nvjpeg import huffman
from repro.apps.nvjpeg.color import ycbcr_to_rgb_kernel, ycbcr_to_rgb_reference
from repro.apps.nvjpeg.dct import BLOCK_PIXELS, BLOCK_SIDE, idct8x8_kernel
from repro.apps.nvjpeg.encoder import (
    LEVEL_SHIFT,
    encode_reference,
    unpack_stream,
)
from repro.apps.nvjpeg.quant import LUMA_QUANT_TABLE, dequantize_kernel
from repro.gpusim import kernel
from repro.host.runtime import CudaRuntime

_BLOCK_THREADS = 32


@kernel()
def luma_to_ycbcr_kernel(k, luma, ycbcr, num_pixels):
    """Re-interleave the Y plane (grayscale: neutral chroma), un-shifted."""
    k.block("entry")
    tid = k.global_tid()
    guard = k.branch(tid < num_pixels)
    for _ in guard.then("body"):
        y = k.load(luma, tid) + LEVEL_SHIFT
        k.store(ycbcr, 3 * tid + 0, y)
        k.store(ycbcr, 3 * tid + 1, 128.0)
        k.store(ycbcr, 3 * tid + 2, 128.0)
    k.block("exit")


def nvjpeg_decode(rt: CudaRuntime, blob: bytes) -> np.ndarray:
    """Decode a stream produced by the encoder; returns an (H, W, 3) array."""
    height, width, block_symbols = unpack_stream(blob)
    num_pixels = height * width
    blocks_x = width // BLOCK_SIDE
    num_blocks = len(block_symbols)
    grid = max(1, -(-num_pixels // _BLOCK_THREADS))
    block_grid = max(1, -(-num_blocks // _BLOCK_THREADS))

    # host bitstream stage: symbols -> quantised coefficient plane
    quantized_host = np.concatenate([
        huffman.decode_block_symbols(symbols).astype(np.float64)
        for symbols in block_symbols
    ])

    quantized = rt.cudaMalloc(num_blocks * BLOCK_PIXELS, dtype=np.float64,
                              label="jpeg.quantized")
    rt.cudaMemcpyHtoD(quantized, quantized_host)
    qtable = rt.constMalloc(BLOCK_PIXELS, dtype=np.float64,
                            label="jpeg.qtable")
    rt.cudaMemcpyHtoD(qtable, LUMA_QUANT_TABLE)
    coeffs = rt.cudaMalloc(num_blocks * BLOCK_PIXELS, dtype=np.float64,
                           label="jpeg.coeffs")
    rt.cuLaunchKernel(dequantize_kernel,
                      max(1, -(-(num_blocks * BLOCK_PIXELS)
                               // _BLOCK_THREADS)), _BLOCK_THREADS,
                      quantized, qtable, coeffs, num_blocks * BLOCK_PIXELS)

    luma = rt.cudaMalloc(num_pixels, dtype=np.float64, label="jpeg.luma")
    rt.cuLaunchKernel(idct8x8_kernel, block_grid, _BLOCK_THREADS,
                      coeffs, luma, blocks_x, num_blocks)

    ycbcr = rt.cudaMalloc(num_pixels * 3, dtype=np.float64, label="jpeg.ycbcr")
    rt.cuLaunchKernel(luma_to_ycbcr_kernel, grid, _BLOCK_THREADS,
                      luma, ycbcr, num_pixels)
    rgb = rt.cudaMalloc(num_pixels * 3, dtype=np.float64, label="jpeg.rgb")
    rt.cuLaunchKernel(ycbcr_to_rgb_kernel, grid, _BLOCK_THREADS,
                      ycbcr, rgb, num_pixels)

    image = rt.cudaMemcpyDtoH(rgb).reshape(height, width, 3)
    return np.clip(image, 0.0, 255.0)


def decode_reference(blob: bytes) -> np.ndarray:
    """Pure-host reference decoder (for tests)."""
    from repro.apps.nvjpeg.dct import idct2_reference
    from repro.apps.nvjpeg.quant import dequantize_reference

    height, width, block_symbols = unpack_stream(blob)
    blocks_x = width // BLOCK_SIDE
    luma = np.zeros((height, width))
    for b, symbols in enumerate(block_symbols):
        quantized = huffman.decode_block_symbols(symbols)
        tile = idct2_reference(dequantize_reference(quantized))
        by, bx = divmod(b, blocks_x)
        luma[by * BLOCK_SIDE:(by + 1) * BLOCK_SIDE,
             bx * BLOCK_SIDE:(bx + 1) * BLOCK_SIDE] = tile
    ycbcr = np.stack([luma + LEVEL_SHIFT,
                      np.full_like(luma, 128.0),
                      np.full_like(luma, 128.0)], axis=-1)
    return np.clip(ycbcr_to_rgb_reference(ycbcr), 0.0, 255.0)


def decode_program(rt: CudaRuntime, secret) -> np.ndarray:
    """The Owl program under test for decoding.

    The secret input is the image; its (host-side, untraced) reference
    encoding supplies the stream the device pipeline decodes — matching the
    paper's setup where the decode path is probed with secret images.
    """
    blob = encode_reference(np.asarray(secret, dtype=np.float64))
    return nvjpeg_decode(rt, blob)
