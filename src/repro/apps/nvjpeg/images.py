"""Synthetic image generation — the COCO-2014 substitute.

The paper preprocesses COCO images to a fixed size and samples them as
secret inputs.  Only the pixel-value variety matters to the leakage
analysis (not the image semantics), so we synthesise deterministic
photograph-like images: smooth gradients plus seeded texture noise, resized
to the requested fixed size.
"""

from __future__ import annotations

import numpy as np


def synthetic_image(height: int = 16, width: int = 16,
                    seed: int = 0) -> np.ndarray:
    """A deterministic RGB uint8 image of the requested fixed size.

    The generator varies *content statistics* — brightness, contrast,
    texture energy, and spatial frequency — between seeds, because a photo
    dataset like COCO is heterogeneous and that heterogeneity is exactly
    what drives the encoder's value-dependent entropy coding.
    """
    rng = np.random.default_rng(seed)
    brightness = rng.uniform(0.15, 0.85)
    contrast = rng.uniform(0.1, 0.5)
    noise_scale = rng.uniform(0.0, 0.3)
    frequency = rng.uniform(0.5, 4.0)
    y_axis = np.linspace(0.0, 1.0, height)[:, None]
    x_axis = np.linspace(0.0, 1.0, width)[None, :]
    base = brightness + contrast * (y_axis - 0.5) + 0.6 * contrast * (x_axis - 0.5)
    channels = []
    for c in range(3):
        texture = rng.normal(0.0, noise_scale, size=(height, width))
        wave = contrast * np.sin(
            2 * np.pi * frequency * (x_axis * (c + 1) + y_axis * (3 - c)))
        channel = np.clip(base + wave + texture, 0.0, 1.0)
        channels.append((channel * 255).astype(np.uint8))
    return np.stack(channels, axis=-1)


def random_image(rng: np.random.Generator, height: int = 16,
                 width: int = 16) -> np.ndarray:
    """A fresh random synthetic image (a random COCO draw analogue)."""
    return synthetic_image(height, width, seed=int(rng.integers(0, 2 ** 31)))


def to_fixed_size(image: np.ndarray, height: int, width: int) -> np.ndarray:
    """Nearest-neighbour resize to the analysis' fixed dimensions."""
    image = np.asarray(image)
    src_h, src_w = image.shape[:2]
    rows = (np.arange(height) * src_h // height).clip(0, src_h - 1)
    cols = (np.arange(width) * src_w // width).clip(0, src_w - 1)
    return image[rows][:, cols]
