"""The nvjpeg encoder: pipeline kernels, host driver, and Owl program.

Pipeline (luma-only, like a grayscale JPEG):

1. ``rgb_to_ycbcr_kernel`` — constant-observable colour conversion;
2. ``extract_luma_kernel`` — Y-plane extraction with the −128 level shift;
3. ``dct8x8_kernel`` — per-tile forward DCT (constant-observable);
4. ``quantize_kernel`` — Annex-K style quantisation (constant-observable);
5. ``entropy_kernel`` — **the leaky stage**: zero-run scanning and
   magnitude-category bit loops whose warp trip counts depend on the
   coefficient values (control-flow leaks), and symbol stores whose
   addresses depend on how many symbols were already emitted (data-flow
   leaks).

The host assembles the final byte stream from the device symbol buffer;
:func:`encode_reference` is the pure-host reference used by tests and by
the decoder's input preparation.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.apps.nvjpeg import huffman
from repro.apps.nvjpeg.color import rgb_to_ycbcr_kernel, rgb_to_ycbcr_reference
from repro.apps.nvjpeg.dct import (
    BLOCK_PIXELS,
    BLOCK_SIDE,
    dct2_reference,
    dct8x8_kernel,
)
from repro.apps.nvjpeg.huffman import MAX_SYMBOLS, ZIGZAG_LINEAR, Symbol
from repro.apps.nvjpeg.quant import (
    LUMA_QUANT_TABLE,
    quantize_kernel,
    quantize_reference,
)
from repro.gpusim import kernel
from repro.host.runtime import CudaRuntime

#: JPEG level shift applied to samples before the DCT.
LEVEL_SHIFT = 128.0

_BLOCK_THREADS = 32


@kernel()
def extract_luma_kernel(k, ycbcr, luma, num_pixels):
    """Copy the Y channel out of the interleaved plane, level-shifted."""
    k.block("entry")
    tid = k.global_tid()
    guard = k.branch(tid < num_pixels)
    for _ in guard.then("body"):
        k.store(luma, tid, k.load(ycbcr, 3 * tid) - LEVEL_SHIFT)
    k.block("exit")


@kernel()
def entropy_kernel(k, quantized, symbols, counts, num_blocks):
    """Run-length / magnitude-category coding, one thread per 8×8 tile.

    Leak anatomy (all by design, mirroring real entropy coders):

    * the ``dc_size`` / ``ac_size`` loops shift the coefficient magnitude
      down to zero — a warp iterates ``max(bit length)`` times, so the trip
      count observable in the trace depends on the data (control flow);
    * emitted symbols go to ``(tile, symbol_index)`` slots where
      ``symbol_index`` depends on how many non-zeros were seen so far —
      value-dependent store addresses (data flow);
    * the per-coefficient non-zero branch itself diverges across lanes and
      is therefore predication-masked, like every intra-warp branch.
    """
    k.block("entry")
    tid = k.global_tid()
    guard = k.branch(tid < num_blocks)
    for _ in guard.then("body"):
        base = tid * BLOCK_PIXELS

        # --- DC coefficient ------------------------------------------------
        dc = k.load(quantized, base + int(ZIGZAG_LINEAR[0])).astype(np.int64)
        magnitude = np.abs(dc)
        size = np.zeros_like(magnitude)
        for _ in k.while_("dc_size", lambda: magnitude > 0):
            size = k.select(magnitude > 0, size + 1, size)
            magnitude = k.select(magnitude > 0, magnitude // 2, magnitude)
        k.block("dc_store")
        out_base = tid * MAX_SYMBOLS * 3
        k.store(symbols, out_base + 0, 0)
        k.store(symbols, out_base + 1, size)
        k.store(symbols, out_base + 2, dc)

        # --- AC scan --------------------------------------------------------
        emitted = np.ones(size.shape, dtype=np.int64)  # symbols so far
        run = np.zeros_like(emitted)
        for i in k.range_("scan", 1, BLOCK_PIXELS):
            coef = k.load(quantized,
                          base + int(ZIGZAG_LINEAR[i])).astype(np.int64)
            nonzero = coef != 0
            br = k.branch(nonzero)
            for _ in br.then("emit"):
                magnitude = np.abs(coef)
                size = np.zeros_like(magnitude)
                for _ in k.while_("ac_size", lambda: magnitude > 0):
                    size = k.select(magnitude > 0, size + 1, size)
                    magnitude = k.select(magnitude > 0, magnitude // 2,
                                         magnitude)
                k.block("emit_store")
                slot = (tid * MAX_SYMBOLS + emitted) * 3
                k.store(symbols, slot + 0, run)
                k.store(symbols, slot + 1, size)
                k.store(symbols, slot + 2, coef)
            emitted = k.select(nonzero, emitted + 1, emitted)
            run = k.select(nonzero, 0, run + 1)

        # --- EOB for blocks with trailing zeros ------------------------------
        trailing = k.branch(run > 0)
        for _ in trailing.then("eob"):
            slot = (tid * MAX_SYMBOLS + emitted) * 3
            k.store(symbols, slot + 0, 0)
            k.store(symbols, slot + 1, 0)
            k.store(symbols, slot + 2, 0)
        emitted = k.select(run > 0, emitted + 1, emitted)
        k.store(counts, tid, emitted)
    k.block("exit")


# ---------------------------------------------------------------------------
# host driver
# ---------------------------------------------------------------------------

def _check_dimensions(image: np.ndarray) -> Tuple[int, int]:
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError(f"expected an (H, W, 3) image, got {image.shape}")
    height, width = image.shape[:2]
    if height % BLOCK_SIDE or width % BLOCK_SIDE:
        raise ValueError(
            f"image dimensions must be multiples of {BLOCK_SIDE}, "
            f"got {height}x{width}")
    return height, width


def nvjpeg_encode(rt: CudaRuntime, image: np.ndarray) -> bytes:
    """Encode an RGB image through the device pipeline; returns the stream."""
    image = np.asarray(image, dtype=np.float64)
    height, width = _check_dimensions(image)
    num_pixels = height * width
    blocks_x = width // BLOCK_SIDE
    num_blocks = (height // BLOCK_SIDE) * blocks_x
    grid = max(1, -(-num_pixels // _BLOCK_THREADS))
    block_grid = max(1, -(-num_blocks // _BLOCK_THREADS))

    rgb = rt.cudaMalloc(num_pixels * 3, dtype=np.float64, label="jpeg.rgb")
    rt.cudaMemcpyHtoD(rgb, image.reshape(-1))
    ycbcr = rt.cudaMalloc(num_pixels * 3, dtype=np.float64, label="jpeg.ycbcr")
    rt.cuLaunchKernel(rgb_to_ycbcr_kernel, grid, _BLOCK_THREADS,
                      rgb, ycbcr, num_pixels)

    luma = rt.cudaMalloc(num_pixels, dtype=np.float64, label="jpeg.luma")
    rt.cuLaunchKernel(extract_luma_kernel, grid, _BLOCK_THREADS,
                      ycbcr, luma, num_pixels)

    coeffs = rt.cudaMalloc(num_blocks * BLOCK_PIXELS, dtype=np.float64,
                           label="jpeg.coeffs")
    rt.cuLaunchKernel(dct8x8_kernel, block_grid, _BLOCK_THREADS,
                      luma, coeffs, blocks_x, num_blocks)

    qtable = rt.constMalloc(BLOCK_PIXELS, dtype=np.float64,
                            label="jpeg.qtable")
    rt.cudaMemcpyHtoD(qtable, LUMA_QUANT_TABLE)
    quantized = rt.cudaMalloc(num_blocks * BLOCK_PIXELS, dtype=np.float64,
                              label="jpeg.quantized")
    rt.cuLaunchKernel(quantize_kernel, max(1, -(-(num_blocks * BLOCK_PIXELS)
                                                // _BLOCK_THREADS)),
                      _BLOCK_THREADS, coeffs, qtable, quantized,
                      num_blocks * BLOCK_PIXELS)

    symbols = rt.cudaMalloc(num_blocks * MAX_SYMBOLS * 3, dtype=np.int64,
                            label="jpeg.symbols")
    counts = rt.cudaMalloc(num_blocks, dtype=np.int64, label="jpeg.counts")
    rt.cuLaunchKernel(entropy_kernel, block_grid, _BLOCK_THREADS,
                      quantized, symbols, counts, num_blocks)

    symbol_data = rt.cudaMemcpyDtoH(symbols).reshape(num_blocks, MAX_SYMBOLS, 3)
    count_data = rt.cudaMemcpyDtoH(counts)
    per_block = [
        [tuple(int(v) for v in symbol_data[b, s]) for s in range(count_data[b])]
        for b in range(num_blocks)
    ]
    return pack_stream(height, width, per_block)


def pack_stream(height: int, width: int,
                block_symbols: List[List[Symbol]]) -> bytes:
    """Assemble the byte stream: header, per-block symbol sections."""
    out = bytearray(b"NVJS")
    out += int(height).to_bytes(4, "little")
    out += int(width).to_bytes(4, "little")
    out += len(block_symbols).to_bytes(4, "little")
    for symbols in block_symbols:
        out += len(symbols).to_bytes(2, "little")
        for run, size, amplitude in symbols:
            out += int(run).to_bytes(1, "little")
            out += int(size).to_bytes(1, "little")
            out += int(amplitude).to_bytes(4, "little", signed=True)
    return bytes(out)


def unpack_stream(blob: bytes) -> Tuple[int, int, List[List[Symbol]]]:
    """Inverse of :func:`pack_stream`."""
    if blob[:4] != b"NVJS":
        raise ValueError("not an nvjpeg stream")
    height = int.from_bytes(blob[4:8], "little")
    width = int.from_bytes(blob[8:12], "little")
    num_blocks = int.from_bytes(blob[12:16], "little")
    offset = 16
    blocks: List[List[Symbol]] = []
    for _ in range(num_blocks):
        count = int.from_bytes(blob[offset:offset + 2], "little")
        offset += 2
        symbols: List[Symbol] = []
        for _ in range(count):
            run = blob[offset]
            size = blob[offset + 1]
            amplitude = int.from_bytes(blob[offset + 2:offset + 6], "little",
                                       signed=True)
            offset += 6
            symbols.append((run, size, amplitude))
        blocks.append(symbols)
    return height, width, blocks


def encode_reference(image: np.ndarray) -> bytes:
    """Pure-host reference encoder (same stream format as the device path)."""
    image = np.asarray(image, dtype=np.float64)
    height, width = _check_dimensions(image)
    luma = rgb_to_ycbcr_reference(image)[..., 0] - LEVEL_SHIFT
    blocks: List[List[Symbol]] = []
    for by in range(height // BLOCK_SIDE):
        for bx in range(width // BLOCK_SIDE):
            tile = luma[by * BLOCK_SIDE:(by + 1) * BLOCK_SIDE,
                        bx * BLOCK_SIDE:(bx + 1) * BLOCK_SIDE]
            quantized = quantize_reference(dct2_reference(tile))
            blocks.append(huffman.encode_block_symbols(quantized))
    return pack_stream(height, width, blocks)


def encode_program(rt: CudaRuntime, secret) -> bytes:
    """The Owl program under test: the secret input is the image."""
    return nvjpeg_encode(rt, np.asarray(secret, dtype=np.float64))
