"""Quantisation: the standard JPEG luminance table and device kernels.

One thread per coefficient; the quantisation-table index is
``tid mod 64`` — thread-derived, hence constant-observable.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim import kernel

#: Annex-K luminance quantisation table (quality 50), raster order.
LUMA_QUANT_TABLE = np.array([
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99,
], dtype=np.float64)


def quantize_reference(coeffs: np.ndarray,
                       table: np.ndarray = LUMA_QUANT_TABLE) -> np.ndarray:
    """Round-to-nearest quantisation of one 8×8 coefficient block."""
    return np.rint(np.asarray(coeffs, dtype=np.float64).reshape(8, 8)
                   / table.reshape(8, 8)).astype(np.int64)


def dequantize_reference(quantized: np.ndarray,
                         table: np.ndarray = LUMA_QUANT_TABLE) -> np.ndarray:
    """Inverse of :func:`quantize_reference`."""
    return (np.asarray(quantized, dtype=np.float64).reshape(8, 8)
            * table.reshape(8, 8))


@kernel()
def quantize_kernel(k, coeffs, qtable, out, n):
    """Quantise a whole coefficient plane, one thread per coefficient.

    The plane is laid out block-contiguously (64 coefficients per 8×8
    block), so ``tid % 64`` is the in-block raster position.
    """
    k.block("entry")
    tid = k.global_tid()
    guard = k.branch(tid < n)
    for _ in guard.then("body"):
        value = k.load(coeffs, tid)
        q = k.load(qtable, tid % 64)
        k.store(out, tid, np.rint(value / q))
    k.block("exit")


@kernel()
def dequantize_kernel(k, quantized, qtable, out, n):
    """Dequantise a plane; same constant-observable structure."""
    k.block("entry")
    tid = k.global_tid()
    guard = k.branch(tid < n)
    for _ in guard.then("body"):
        value = k.load(quantized, tid)
        q = k.load(qtable, tid % 64)
        k.store(out, tid, value * q)
    k.block("exit")
