"""8×8 orthonormal 2-D DCT (type II) and its inverse.

Host references (used by the tests and by the decoder's input preparation)
plus device kernels: one thread per 8×8 block, separable row/column passes.
Row data is loaded once per row and all per-pass arithmetic happens in
registers, so the access pattern is fully determined by the block index —
constant-observable.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim import kernel

BLOCK_SIDE = 8
BLOCK_PIXELS = BLOCK_SIDE * BLOCK_SIDE


def _dct_matrix() -> np.ndarray:
    """The orthonormal 8-point DCT-II matrix ``C`` (rows = frequencies)."""
    n = BLOCK_SIDE
    matrix = np.zeros((n, n))
    for u in range(n):
        scale = np.sqrt(1.0 / n) if u == 0 else np.sqrt(2.0 / n)
        for x in range(n):
            matrix[u, x] = scale * np.cos((2 * x + 1) * u * np.pi / (2 * n))
    return matrix


#: Orthonormal DCT matrix; ``C @ block @ C.T`` is the forward transform.
DCT_MATRIX = _dct_matrix()


def dct2_reference(block: np.ndarray) -> np.ndarray:
    """Forward 2-D DCT of one 8×8 block."""
    block = np.asarray(block, dtype=np.float64)
    if block.shape != (BLOCK_SIDE, BLOCK_SIDE):
        raise ValueError(f"expected an 8x8 block, got {block.shape}")
    return DCT_MATRIX @ block @ DCT_MATRIX.T


def idct2_reference(coeffs: np.ndarray) -> np.ndarray:
    """Inverse 2-D DCT of one 8×8 coefficient block."""
    coeffs = np.asarray(coeffs, dtype=np.float64)
    if coeffs.shape != (BLOCK_SIDE, BLOCK_SIDE):
        raise ValueError(f"expected an 8x8 block, got {coeffs.shape}")
    return DCT_MATRIX.T @ coeffs @ DCT_MATRIX


def _raster_index(tid, blocks_x: int, r: int, c: int):
    """Plane-raster element index of tile *tid*'s (r, c) pixel."""
    by = tid // blocks_x
    bx = tid % blocks_x
    width = blocks_x * BLOCK_SIDE
    return (by * BLOCK_SIDE + r) * width + bx * BLOCK_SIDE + c


def _blocked_index(tid, r: int, c: int):
    """Block-contiguous element index (64 coefficients per tile)."""
    return tid * BLOCK_PIXELS + r * BLOCK_SIDE + c


def _transform_tile(k, tid, src, src_index, dst, dst_index, matrix):
    """Per-thread 8×8 separable transform by *matrix*, registers only.

    ``src_index`` / ``dst_index`` map ``(tid, r, c)`` to element indices, so
    the forward kernel can read raster planes and write block-contiguous
    coefficients (and the inverse kernel the reverse) — all addresses are
    thread-derived either way.
    """
    tile = [[k.load(src, src_index(tid, r, c))
             for c in range(BLOCK_SIDE)] for r in range(BLOCK_SIDE)]
    row_pass = [[sum(matrix[u][x] * tile[r][x] for x in range(BLOCK_SIDE))
                 for u in range(BLOCK_SIDE)] for r in range(BLOCK_SIDE)]
    col_pass = [[sum(matrix[v][y] * row_pass[y][u]
                     for y in range(BLOCK_SIDE))
                 for u in range(BLOCK_SIDE)] for v in range(BLOCK_SIDE)]
    for r in range(BLOCK_SIDE):
        for c in range(BLOCK_SIDE):
            k.store(dst, dst_index(tid, r, c), col_pass[r][c])


@kernel()
def dct8x8_kernel(k, plane, coeffs, blocks_x, num_blocks):
    """Forward DCT: raster plane in, block-contiguous coefficients out."""
    k.block("entry")
    tid = k.global_tid()
    guard = k.branch(tid < num_blocks)
    for _ in guard.then("body"):
        _transform_tile(k, tid, plane,
                        lambda t, r, c: _raster_index(t, blocks_x, r, c),
                        coeffs, _blocked_index, DCT_MATRIX)
    k.block("exit")


@kernel()
def idct8x8_kernel(k, coeffs, plane, blocks_x, num_blocks):
    """Inverse DCT: block-contiguous coefficients in, raster plane out."""
    k.block("entry")
    tid = k.global_tid()
    guard = k.branch(tid < num_blocks)
    for _ in guard.then("body"):
        _transform_tile(k, tid, coeffs, _blocked_index, plane,
                        lambda t, r, c: _raster_index(t, blocks_x, r, c),
                        DCT_MATRIX.T)
    k.block("exit")
