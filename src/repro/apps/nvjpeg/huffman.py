"""Entropy-coding reference: zigzag scan, run-length symbols, code sizes.

Host-side reference for the encoder's entropy stage (the device kernel in
:mod:`repro.apps.nvjpeg.encoder` mirrors its control flow) and for the
decoder's input preparation.  Symbols are JPEG-style ``(run, size,
amplitude)`` triples: *run* zeros precede a coefficient whose magnitude
category (bit length) is *size*; ``(0, 0, 0)`` is the end-of-block marker.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.apps.nvjpeg.dct import BLOCK_PIXELS, BLOCK_SIDE

Symbol = Tuple[int, int, int]

#: End-of-block marker.
EOB: Symbol = (0, 0, 0)

#: Longest zero run a single symbol may carry.  Real JPEG caps runs at 15
#: and inserts ZRL symbols; our simplified format carries the run directly
#: (the kernel and the reference stay exactly symbol-compatible this way).
MAX_RUN = 62

#: Worst-case symbols per block: DC + 63 AC + EOB.
MAX_SYMBOLS = 65


def _zigzag_positions() -> List[Tuple[int, int]]:
    order: List[Tuple[int, int]] = []
    for s in range(2 * BLOCK_SIDE - 1):
        if s % 2 == 0:
            rows = range(min(s, BLOCK_SIDE - 1),
                         max(0, s - BLOCK_SIDE + 1) - 1, -1)
        else:
            rows = range(max(0, s - BLOCK_SIDE + 1),
                         min(s, BLOCK_SIDE - 1) + 1)
        for r in rows:
            order.append((r, s - r))
    return order


#: Zigzag scan order as (row, col) pairs.
ZIGZAG_POSITIONS: List[Tuple[int, int]] = _zigzag_positions()

#: Zigzag scan order as raster indices into a flattened 8×8 block.
ZIGZAG_LINEAR: np.ndarray = np.array(
    [r * BLOCK_SIDE + c for r, c in ZIGZAG_POSITIONS], dtype=np.int64)


def magnitude_size(value: int) -> int:
    """JPEG magnitude category: the bit length of ``|value|`` (0 for 0)."""
    return int(abs(int(value))).bit_length()


def code_length_bits(run: int, size: int) -> int:
    """Deterministic pseudo-Huffman code length for a ``(run, size)`` symbol.

    A stand-in for the Annex-K tables: frequent symbols (small run and
    size) get short codes.  Only relative sizes matter to the experiments.
    """
    if not (0 <= run <= MAX_RUN and 0 <= size <= 16):
        raise ValueError(f"invalid symbol ({run}, {size})")
    return 2 + run // 4 + size


def encode_block_symbols(quantized_block: Sequence[int]) -> List[Symbol]:
    """RLE-encode one quantised 8×8 block (raster order in, symbols out)."""
    flat = np.asarray(quantized_block, dtype=np.int64).reshape(-1)
    if flat.size != BLOCK_PIXELS:
        raise ValueError(f"expected {BLOCK_PIXELS} coefficients, got {flat.size}")
    zigzagged = flat[ZIGZAG_LINEAR]
    dc = int(zigzagged[0])
    symbols: List[Symbol] = [(0, magnitude_size(dc), dc)]
    run = 0
    for coef in (int(v) for v in zigzagged[1:]):
        if coef == 0:
            run += 1
            continue
        symbols.append((run, magnitude_size(coef), coef))
        run = 0
    if run > 0:
        symbols.append(EOB)
    return symbols


def decode_block_symbols(symbols: Sequence[Symbol]) -> np.ndarray:
    """Rebuild the raster-order quantised block from its symbols."""
    zigzagged = np.zeros(BLOCK_PIXELS, dtype=np.int64)
    zigzagged[0] = symbols[0][2]
    position = 1
    for run, size, amplitude in symbols[1:]:
        if (run, size, amplitude) == EOB:
            break
        position += run
        if position >= BLOCK_PIXELS:
            raise ValueError("symbol stream overruns the block")
        zigzagged[position] = amplitude
        position += 1
    block = np.zeros(BLOCK_PIXELS, dtype=np.int64)
    block[ZIGZAG_LINEAR] = zigzagged
    return block


def bitstream_length_bits(symbols: Sequence[Symbol]) -> int:
    """Total coded length: code bits plus *size* amplitude bits per symbol."""
    return sum(code_length_bits(run, size) + size
               for run, size, _amplitude in symbols)
