"""The evaluated workloads (§VIII): libgpucrypto, minitorch, nvjpeg, dummy.

Each workload exposes *programs under test* — callables ``program(rt,
secret)`` driving a :class:`~repro.host.runtime.CudaRuntime` — mirroring the
applications the paper runs Owl on:

* :mod:`repro.apps.libgpucrypto` — AES-128 (T-table) and RSA
  (square-and-multiply) GPU encryption, plus constant-flow patched variants;
* :mod:`repro.apps.minitorch` — a small tensor library whose twelve public
  ops launch simulator kernels (the PyTorch stand-in), including the
  serialization kernel leak and the predication-masked ``maxpool2d``;
* :mod:`repro.apps.nvjpeg` — a JPEG-style encoder/decoder (the closed-source
  nvJPEG stand-in) with value-dependent entropy coding in the encoder;
* :mod:`repro.apps.dummy` — the random-array-access program used for the
  Fig. 5 scalability study.
"""
