"""Libgpucrypto stand-in: GPU AES-128 and RSA with known side channels.

The paper evaluates Owl on libgpucrypto's AES and RSA (§VIII-B): T-table
lookups give AES its data-flow leaks; the square-and-multiply branch gives
RSA its control-flow leaks.  This package implements both ciphers for real
(AES-128 validated against FIPS-197, RSA against Python's ``pow``) as
simulator kernels, each with a constant-flow patched variant that Owl must
report clean.
"""

from repro.apps.libgpucrypto.aes import (
    aes_program,
    aes_program_ct,
    aes128_encrypt_blocks,
    aes128_encrypt_block_reference,
    expand_key,
    random_key,
)
from repro.apps.libgpucrypto.rsa import (
    RSA_DEFAULT_MODULUS,
    modexp_reference,
    random_exponent,
    rsa_program,
    rsa_program_ct,
)

__all__ = [
    "RSA_DEFAULT_MODULUS",
    "aes128_encrypt_block_reference",
    "aes128_encrypt_blocks",
    "aes_program",
    "aes_program_ct",
    "expand_key",
    "modexp_reference",
    "random_exponent",
    "random_key",
    "rsa_program",
    "rsa_program_ct",
]
