"""AES-128: reference implementation, T-table GPU kernel, and programs.

Three layers:

* a pure-Python reference (`aes128_encrypt_block_reference`) built from the
  textbook round operations, validated against the FIPS-197 vector in the
  tests;
* the **leaky** T-table kernel (:data:`aes128_ttable_kernel`) — each thread
  encrypts one 16-byte block, and every round does 16 table lookups whose
  indices depend on ``key ⊕ state``: the classic data-flow side channel Owl
  reports for libgpucrypto;
* the **patched** kernel (:data:`aes128_ct_kernel`) computing the identical
  function with table lookups folded into register arithmetic (modelling a
  bitsliced implementation): its only memory accesses are thread-indexed
  plaintext loads and ciphertext stores, so Owl must report it clean.

The host programs (`aes_program`, `aes_program_ct`) treat the 16-byte key
as the secret input and encrypt a fixed 64-block plaintext, mirroring the
libgpucrypto benchmark drivers.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from repro.apps.libgpucrypto.tables import (
    RCON,
    SBOX,
    SBOX_ARRAY,
    T_TABLES,
    gf_mul,
)
from repro.gpusim import kernel
from repro.host.runtime import CudaRuntime

KeyLike = Union[bytes, bytearray, Sequence[int], np.ndarray]

#: Number of 16-byte blocks each program encrypts (256 blocks = 8 warps).
#: Sized as a real multi-warp launch — libgpucrypto's AES drivers encrypt
#: large batches, and one block per thread across several warps is the
#: shape the warp-cohort engine (and the per-warp reference) must handle.
NUM_BLOCKS = 256

_MASK32 = 0xFFFFFFFF


def _as_key_bytes(key: KeyLike) -> bytes:
    data = bytes(bytearray(int(b) & 0xFF for b in key))
    if len(data) != 16:
        raise ValueError(f"AES-128 key must be 16 bytes, got {len(data)}")
    return data


def random_key(rng: np.random.Generator) -> bytes:
    """A fresh random AES-128 key."""
    return bytes(int(b) for b in rng.integers(0, 256, size=16))


# ---------------------------------------------------------------------------
# key expansion
# ---------------------------------------------------------------------------

def expand_key(key: KeyLike) -> np.ndarray:
    """FIPS-197 AES-128 key expansion: 44 big-endian 32-bit words."""
    data = _as_key_bytes(key)
    words: List[int] = []
    for i in range(4):
        words.append(int.from_bytes(data[4 * i:4 * i + 4], "big"))
    for i in range(4, 44):
        temp = words[i - 1]
        if i % 4 == 0:
            temp = ((temp << 8) | (temp >> 24)) & _MASK32  # RotWord
            temp = ((SBOX[(temp >> 24) & 0xFF] << 24)
                    | (SBOX[(temp >> 16) & 0xFF] << 16)
                    | (SBOX[(temp >> 8) & 0xFF] << 8)
                    | SBOX[temp & 0xFF])                   # SubWord
            temp ^= RCON[i // 4 - 1] << 24
        words.append(words[i - 4] ^ temp)
    return np.array(words, dtype=np.int64)


# ---------------------------------------------------------------------------
# pure-Python reference (textbook round operations)
# ---------------------------------------------------------------------------

def _sub_bytes(state: List[int]) -> List[int]:
    return [SBOX[b] for b in state]


def _shift_rows(state: List[int]) -> List[int]:
    # state is column-major: state[4*c + r]
    out = list(state)
    for r in range(1, 4):
        row = [state[4 * c + r] for c in range(4)]
        row = row[r:] + row[:r]
        for c in range(4):
            out[4 * c + r] = row[c]
    return out


def _mix_columns(state: List[int]) -> List[int]:
    out = list(state)
    for c in range(4):
        col = state[4 * c:4 * c + 4]
        out[4 * c + 0] = (gf_mul(col[0], 2) ^ gf_mul(col[1], 3)
                          ^ col[2] ^ col[3])
        out[4 * c + 1] = (col[0] ^ gf_mul(col[1], 2)
                          ^ gf_mul(col[2], 3) ^ col[3])
        out[4 * c + 2] = (col[0] ^ col[1]
                          ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3))
        out[4 * c + 3] = (gf_mul(col[0], 3) ^ col[1]
                          ^ col[2] ^ gf_mul(col[3], 2))
    return out


def _add_round_key(state: List[int], round_words: Sequence[int]) -> List[int]:
    out = list(state)
    for c in range(4):
        word = int(round_words[c])
        for r in range(4):
            out[4 * c + r] ^= (word >> (24 - 8 * r)) & 0xFF
    return out


def aes128_encrypt_block_reference(key: KeyLike, block: bytes) -> bytes:
    """Encrypt one 16-byte block with the textbook round functions."""
    if len(block) != 16:
        raise ValueError(f"AES block must be 16 bytes, got {len(block)}")
    round_keys = expand_key(key)
    state = list(block)
    state = _add_round_key(state, round_keys[0:4])
    for rnd in range(1, 10):
        state = _sub_bytes(state)
        state = _shift_rows(state)
        state = _mix_columns(state)
        state = _add_round_key(state, round_keys[4 * rnd:4 * rnd + 4])
    state = _sub_bytes(state)
    state = _shift_rows(state)
    state = _add_round_key(state, round_keys[40:44])
    return bytes(state)


def aes128_encrypt_blocks(key: KeyLike, data: bytes) -> bytes:
    """ECB-encrypt a multiple-of-16-byte buffer with the reference."""
    if len(data) % 16:
        raise ValueError("data length must be a multiple of 16")
    return b"".join(aes128_encrypt_block_reference(key, data[i:i + 16])
                    for i in range(0, len(data), 16))


# ---------------------------------------------------------------------------
# word-level helpers shared by both kernels
# ---------------------------------------------------------------------------

def _byte(vec, shift: int):
    """Extract byte ``(vec >> shift) & 0xFF`` from a lane vector."""
    return (vec >> shift) & 0xFF


def _t_round(load0, load1, load2, load3, s0, s1, s2, s3, rk0, rk1, rk2, rk3):
    """One T-table round over lane vectors.

    ``load*`` are callables mapping a byte-index lane vector to the looked-up
    table value, so the same formula serves the leaky kernel (device loads)
    and the patched kernel (register arithmetic).
    """
    t0 = (load0(_byte(s0, 24)) ^ load1(_byte(s1, 16))
          ^ load2(_byte(s2, 8)) ^ load3(_byte(s3, 0)) ^ rk0)
    t1 = (load0(_byte(s1, 24)) ^ load1(_byte(s2, 16))
          ^ load2(_byte(s3, 8)) ^ load3(_byte(s0, 0)) ^ rk1)
    t2 = (load0(_byte(s2, 24)) ^ load1(_byte(s3, 16))
          ^ load2(_byte(s0, 8)) ^ load3(_byte(s1, 0)) ^ rk2)
    t3 = (load0(_byte(s3, 24)) ^ load1(_byte(s0, 16))
          ^ load2(_byte(s1, 8)) ^ load3(_byte(s2, 0)) ^ rk3)
    return t0 & _MASK32, t1 & _MASK32, t2 & _MASK32, t3 & _MASK32


def _final_round(sub, s0, s1, s2, s3, rk0, rk1, rk2, rk3):
    """The last AES round (SubBytes + ShiftRows + AddRoundKey)."""
    o0 = ((sub(_byte(s0, 24)) << 24) | (sub(_byte(s1, 16)) << 16)
          | (sub(_byte(s2, 8)) << 8) | sub(_byte(s3, 0))) ^ rk0
    o1 = ((sub(_byte(s1, 24)) << 24) | (sub(_byte(s2, 16)) << 16)
          | (sub(_byte(s3, 8)) << 8) | sub(_byte(s0, 0))) ^ rk1
    o2 = ((sub(_byte(s2, 24)) << 24) | (sub(_byte(s3, 16)) << 16)
          | (sub(_byte(s0, 8)) << 8) | sub(_byte(s1, 0))) ^ rk2
    o3 = ((sub(_byte(s3, 24)) << 24) | (sub(_byte(s0, 16)) << 16)
          | (sub(_byte(s1, 8)) << 8) | sub(_byte(s2, 0))) ^ rk3
    return o0 & _MASK32, o1 & _MASK32, o2 & _MASK32, o3 & _MASK32


# ---------------------------------------------------------------------------
# kernels
# ---------------------------------------------------------------------------

@kernel()
def aes128_ttable_kernel(k, t0, t1, t2, t3, sbox, round_keys, pt, ct):
    """Leaky AES: every table index is ``f(key, state)`` and every lookup is
    a traced device load — data-flow leakage at each T-table access."""
    k.block("load_state")
    tid = k.global_tid()
    s0 = k.load(pt, 4 * tid + 0) ^ k.load(round_keys, 0)
    s1 = k.load(pt, 4 * tid + 1) ^ k.load(round_keys, 1)
    s2 = k.load(pt, 4 * tid + 2) ^ k.load(round_keys, 2)
    s3 = k.load(pt, 4 * tid + 3) ^ k.load(round_keys, 3)

    loads = (lambda idx: k.load(t0, idx), lambda idx: k.load(t1, idx),
             lambda idx: k.load(t2, idx), lambda idx: k.load(t3, idx))
    for rnd in k.range_("round", 1, 10):
        rk = [k.load(round_keys, 4 * rnd + j) for j in range(4)]
        s0, s1, s2, s3 = _t_round(*loads, s0, s1, s2, s3, *rk)

    k.block("final_round")
    rk = [k.load(round_keys, 40 + j) for j in range(4)]
    s0, s1, s2, s3 = _final_round(lambda idx: k.load(sbox, idx),
                                  s0, s1, s2, s3, *rk)
    k.store(ct, 4 * tid + 0, s0)
    k.store(ct, 4 * tid + 1, s1)
    k.store(ct, 4 * tid + 2, s2)
    k.store(ct, 4 * tid + 3, s3)


@kernel()
def aes128_ct_kernel(k, round_keys_host, pt, ct):
    """Patched AES: identical function, but substitutions happen in
    registers (bitsliced-implementation model) — the only traced accesses
    are thread-indexed, so the kernel is constant-observable."""
    k.block("load_state")
    tid = k.global_tid()
    rk = round_keys_host  # plain ndarray: register-resident key schedule
    s0 = k.load(pt, 4 * tid + 0) ^ int(rk[0])
    s1 = k.load(pt, 4 * tid + 1) ^ int(rk[1])
    s2 = k.load(pt, 4 * tid + 2) ^ int(rk[2])
    s3 = k.load(pt, 4 * tid + 3) ^ int(rk[3])

    loads = tuple((lambda table: lambda idx: table[np.asarray(idx, dtype=np.int64)])(t)
                  for t in T_TABLES)
    for rnd in k.range_("round", 1, 10):
        rk_words = [int(rk[4 * rnd + j]) for j in range(4)]
        s0, s1, s2, s3 = _t_round(*loads, s0, s1, s2, s3, *rk_words)

    k.block("final_round")
    rk_words = [int(rk[40 + j]) for j in range(4)]
    s0, s1, s2, s3 = _final_round(
        lambda idx: SBOX_ARRAY[np.asarray(idx, dtype=np.int64)],
        s0, s1, s2, s3, *rk_words)
    k.store(ct, 4 * tid + 0, s0)
    k.store(ct, 4 * tid + 1, s1)
    k.store(ct, 4 * tid + 2, s2)
    k.store(ct, 4 * tid + 3, s3)


# ---------------------------------------------------------------------------
# host programs
# ---------------------------------------------------------------------------

def fixed_plaintext(num_blocks: int = NUM_BLOCKS) -> bytes:
    """The deterministic plaintext every program run encrypts."""
    return bytes(i % 256 for i in range(16 * num_blocks))


def _plaintext_words(num_blocks: int) -> np.ndarray:
    data = fixed_plaintext(num_blocks)
    words = [int.from_bytes(data[4 * i:4 * i + 4], "big")
             for i in range(4 * num_blocks)]
    return np.array(words, dtype=np.int64)


def _ct_words_to_bytes(words: np.ndarray) -> bytes:
    return b"".join(int(w).to_bytes(4, "big") for w in words)


def aes_program(rt: CudaRuntime, secret_key: KeyLike) -> bytes:
    """Encrypt the fixed plaintext under *secret_key* with the leaky kernel."""
    round_keys = expand_key(secret_key)
    t_bufs = []
    for i, table in enumerate(T_TABLES):
        buf = rt.constMalloc(256, label=f"aes.T{i}")
        rt.cudaMemcpyHtoD(buf, table)
        t_bufs.append(buf)
    sbox = rt.constMalloc(256, label="aes.sbox")
    rt.cudaMemcpyHtoD(sbox, SBOX_ARRAY)
    rk = rt.cudaMalloc(44, label="aes.round_keys")
    rt.cudaMemcpyHtoD(rk, round_keys)
    pt = rt.cudaMalloc(4 * NUM_BLOCKS, label="aes.plaintext")
    rt.cudaMemcpyHtoD(pt, _plaintext_words(NUM_BLOCKS))
    ct = rt.cudaMalloc(4 * NUM_BLOCKS, label="aes.ciphertext")

    rt.cuLaunchKernel(aes128_ttable_kernel, NUM_BLOCKS // 32, 32,
                      *t_bufs, sbox, rk, pt, ct)
    return _ct_words_to_bytes(rt.cudaMemcpyDtoH(ct))


def aes_program_ct(rt: CudaRuntime, secret_key: KeyLike) -> bytes:
    """Encrypt the fixed plaintext with the constant-flow patched kernel."""
    round_keys = expand_key(secret_key)
    pt = rt.cudaMalloc(4 * NUM_BLOCKS, label="aes.plaintext")
    rt.cudaMemcpyHtoD(pt, _plaintext_words(NUM_BLOCKS))
    ct = rt.cudaMalloc(4 * NUM_BLOCKS, label="aes.ciphertext")

    rt.cuLaunchKernel(aes128_ct_kernel, NUM_BLOCKS // 32, 32,
                      round_keys, pt, ct)
    return _ct_words_to_bytes(rt.cudaMemcpyDtoH(ct))
