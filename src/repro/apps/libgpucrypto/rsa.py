"""RSA modular exponentiation: leaky square-and-multiply vs Montgomery ladder.

The paper's RSA finding is the classic one: an unprotected square-and-
multiply loop branches on each private-exponent bit, so the warp's
basic-block sequence spells out the key (§VIII-B, "if-else branches in
RSA").  Two kernels:

* :data:`rsa_modexp_kernel` — **leaky**: the loop trip count is the
  exponent's bit length and the *multiply* block executes only for set
  bits; with the exponent shared by every thread the branches are
  warp-uniform and therefore fully observable;
* :data:`rsa_ladder_kernel` — **patched** Montgomery ladder: a fixed
  iteration count and a branch-free select, so control flow is
  exponent-independent.

The modulus is a product of two ~16-bit primes (a toy size, but the control
flow — which is what leaks — is identical to a full-width bignum loop, and
``int64`` lane arithmetic stays exact).
"""

from __future__ import annotations

import numpy as np

from repro.gpusim import kernel
from repro.host.runtime import CudaRuntime

#: Toy RSA modulus: 46337 × 46349 (two primes), ≈ 2^31; int64-exact squares.
RSA_PRIME_P = 46337
RSA_PRIME_Q = 46349
RSA_DEFAULT_MODULUS = RSA_PRIME_P * RSA_PRIME_Q

#: Fixed bit width for the patched ladder (covers any exponent < 2^32).
LADDER_BITS = 32

#: Messages per run: 64 threads = 2 warps.
NUM_MESSAGES = 64


def modexp_reference(base: int, exponent: int, modulus: int) -> int:
    """Reference modular exponentiation (delegates to Python's pow)."""
    return pow(base, exponent, modulus)


def random_exponent(rng: np.random.Generator, bits: int = 31) -> int:
    """A fresh random odd private exponent with the top bit set."""
    value = int(rng.integers(1 << (bits - 1), 1 << bits))
    return value | 1


def exponent_bits_msb_first(exponent: int) -> np.ndarray:
    """The exponent's bits, most significant first."""
    if exponent <= 0:
        raise ValueError(f"exponent must be positive, got {exponent}")
    return np.array([int(b) for b in bin(exponent)[2:]], dtype=np.int64)


@kernel()
def rsa_modexp_kernel(k, bits, nbits, modulus, messages, out):
    """Leaky left-to-right square-and-multiply.

    Per bit: always square (block ``square``); multiply only when the bit is
    set (block ``multiply``) — the control-flow side channel.
    """
    k.block("entry")
    tid = k.global_tid()
    base = k.load(messages, tid) % modulus
    acc = k.select(True, 1, 1)  # lane vector of ones

    for i in k.range_("square", nbits):
        acc = (acc * acc) % modulus
        bit = k.load(bits, i)
        br = k.branch(bit == 1)
        for _ in br.then("multiply"):
            acc = (acc * base) % modulus

    k.block("writeback")
    k.store(out, tid, acc)


@kernel()
def rsa_ladder_kernel(k, bits, modulus, messages, out):
    """Patched Montgomery ladder: fixed trip count, branch-free swap."""
    k.block("entry")
    tid = k.global_tid()
    base = k.load(messages, tid) % modulus
    r0 = k.select(True, 1, 1)
    r1 = base

    for i in k.range_("ladder", LADDER_BITS):
        bit = k.load(bits, i)
        taken = bit == 1
        # Both multiplications happen every iteration; only the routing of
        # the results depends on the bit, and routing is register-level.
        prod = (r0 * r1) % modulus
        sq0 = (r0 * r0) % modulus
        sq1 = (r1 * r1) % modulus
        r0 = k.select(taken, prod, sq0)
        r1 = k.select(taken, sq1, prod)

    k.block("writeback")
    k.store(out, tid, r0)


def fixed_messages(num: int = NUM_MESSAGES,
                   modulus: int = RSA_DEFAULT_MODULUS) -> np.ndarray:
    """The deterministic message vector every program run decrypts."""
    return (np.arange(num, dtype=np.int64) * 2654435761 + 12345) % modulus


def rsa_program(rt: CudaRuntime, secret_exponent: int,
                modulus: int = RSA_DEFAULT_MODULUS) -> np.ndarray:
    """Decrypt the fixed messages with the leaky kernel; the secret input is
    the private exponent."""
    exponent = int(secret_exponent)
    bit_array = exponent_bits_msb_first(exponent)
    # Fixed-size allocation: a secret-dependent malloc size would itself be
    # a host-visible difference unrelated to the device leak under study.
    bits_padded = np.zeros(LADDER_BITS, dtype=np.int64)
    bits_padded[:bit_array.size] = bit_array
    bits = rt.cudaMalloc(LADDER_BITS, label="rsa.exponent_bits")
    rt.cudaMemcpyHtoD(bits, bits_padded)
    messages = rt.cudaMalloc(NUM_MESSAGES, label="rsa.messages")
    rt.cudaMemcpyHtoD(messages, fixed_messages(modulus=modulus))
    out = rt.cudaMalloc(NUM_MESSAGES, label="rsa.output")

    rt.cuLaunchKernel(rsa_modexp_kernel, NUM_MESSAGES // 32, 32,
                      bits, int(bit_array.size), modulus, messages, out)
    return rt.cudaMemcpyDtoH(out)


def rsa_program_ct(rt: CudaRuntime, secret_exponent: int,
                   modulus: int = RSA_DEFAULT_MODULUS) -> np.ndarray:
    """Decrypt the fixed messages with the Montgomery-ladder kernel."""
    exponent = int(secret_exponent)
    if exponent >= 1 << LADDER_BITS:
        raise ValueError(f"exponent must fit in {LADDER_BITS} bits")
    # MSB-first bits padded at the *front* so the ladder's fixed 32
    # iterations compute the same value for any exponent width.
    bit_array = exponent_bits_msb_first(exponent)
    bits_padded = np.zeros(LADDER_BITS, dtype=np.int64)
    bits_padded[LADDER_BITS - bit_array.size:] = bit_array
    bits = rt.cudaMalloc(LADDER_BITS, label="rsa.exponent_bits")
    rt.cudaMemcpyHtoD(bits, bits_padded)
    messages = rt.cudaMalloc(NUM_MESSAGES, label="rsa.messages")
    rt.cudaMemcpyHtoD(messages, fixed_messages(modulus=modulus))
    out = rt.cudaMalloc(NUM_MESSAGES, label="rsa.output")

    rt.cuLaunchKernel(rsa_ladder_kernel, NUM_MESSAGES // 32, 32,
                      bits, modulus, messages, out)
    return rt.cudaMemcpyDtoH(out)
