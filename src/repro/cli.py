"""``owl-detect``: run the Owl pipeline on a bundled workload from the shell.

Examples::

    owl-detect aes --fixed-runs 40 --random-runs 40
    owl-detect nvjpeg-encode --confidence 0.99
    owl-detect --list
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core import Owl, OwlConfig


def _workloads() -> Dict[str, Tuple[Callable, Callable, Callable]]:
    """name → (program, fixed-inputs factory, random-input fn)."""
    from repro.apps import dummy
    from repro.apps.libgpucrypto import (
        aes_program, aes_program_ct, random_exponent, random_key,
        rsa_program, rsa_program_ct)
    from repro.apps.minitorch import (
        OP_NAMES, make_op_program, make_random_input, serialize_program,
        tensor_repr_program)
    from repro.apps.minitorch.ops import fixed_op_input
    from repro.apps.minitorch.serialize import serialize_random_input
    from repro.apps.minitorch.tensor import repr_random_input
    from repro.apps.nvjpeg import (
        decode_program, encode_program, random_image, synthetic_image)

    table: Dict[str, Tuple[Callable, Callable, Callable]] = {
        "aes": (aes_program,
                lambda: [bytes(range(16)), bytes(range(1, 17))],
                random_key),
        "aes-ct": (aes_program_ct,
                   lambda: [bytes(range(16)), bytes(range(1, 17))],
                   random_key),
        "rsa": (rsa_program,
                lambda: [0x6ACF8231, 0x7FD4C9A7],
                random_exponent),
        "rsa-ct": (rsa_program_ct,
                   lambda: [0x6ACF8231, 0x7FD4C9A7],
                   random_exponent),
        "serialize": (serialize_program,
                      lambda: [np.zeros(64), np.linspace(-2, 2, 64)],
                      serialize_random_input),
        "tensor-repr": (tensor_repr_program,
                        lambda: [np.linspace(-2, 2, 64),
                                 np.linspace(-2, 2, 64) * 10_000],
                        repr_random_input),
        "nvjpeg-encode": (encode_program,
                          lambda: [synthetic_image(16, 16, seed=1),
                                   synthetic_image(16, 16, seed=2)],
                          lambda rng: random_image(rng, 16, 16)),
        "nvjpeg-decode": (decode_program,
                          lambda: [synthetic_image(16, 16, seed=1),
                                   synthetic_image(16, 16, seed=2)],
                          lambda rng: random_image(rng, 16, 16)),
        "dummy": (dummy.dummy_program,
                  lambda: [dummy.fixed_input(), dummy.fixed_input(value=9)],
                  dummy.random_input),
    }
    for name in OP_NAMES:
        table[f"torch-{name}"] = (
            make_op_program(name),
            (lambda n: lambda: [fixed_op_input(n),
                                make_random_input(n)(
                                    np.random.default_rng(7))])(name),
            make_random_input(name))
    return table


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="owl-detect",
        description="Owl side-channel leakage detection on bundled workloads")
    parser.add_argument("workload", nargs="?",
                        help="workload name (see --list)")
    parser.add_argument("--list", action="store_true",
                        help="list available workloads and exit")
    parser.add_argument("--fixed-runs", type=int, default=40,
                        help="fixed-input executions (paper: 100)")
    parser.add_argument("--random-runs", type=int, default=40,
                        help="random-input executions (paper: 100)")
    parser.add_argument("--confidence", type=float, default=0.95,
                        help="KS confidence level (paper: 0.95)")
    parser.add_argument("--test", choices=("ks", "welch"), default="ks",
                        help="distribution test to apply")
    parser.add_argument("--seed", type=int, default=2024,
                        help="seed for the random-input generator")
    parser.add_argument("--workers", default="1", metavar="N|auto",
                        help="trace-recording worker processes: a positive "
                             "int or 'auto' for one per CPU core; any value "
                             "yields bit-identical reports (default: 1)")
    parser.add_argument("--no-columnar", action="store_true",
                        help="record traces through the per-event object "
                             "pipeline instead of the (default) columnar "
                             "fast path; both produce identical traces")
    parser.add_argument("--all-representatives", action="store_true",
                        help="analyze every input class, not just the first")
    parser.add_argument("--granularity", type=int, default=1,
                        metavar="BYTES",
                        help="attacker spatial resolution in bytes "
                             "(1 = byte-level probe, 64 = cache line)")
    parser.add_argument("--quantify", action="store_true",
                        help="estimate each leak's strength in bits per "
                             "observation")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON instead of text")
    parser.add_argument("--save-report", metavar="PATH", default=None,
                        help="also write the JSON report to PATH")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    workloads = _workloads()

    if args.list or not args.workload:
        for name in sorted(workloads):
            print(name)
        return 0

    if args.workload not in workloads:
        parser.error(f"unknown workload {args.workload!r}; see --list")
    program, fixed_inputs, random_input = workloads[args.workload]

    workers = args.workers if args.workers == "auto" else None
    if workers is None:
        try:
            workers = int(args.workers)
        except ValueError:
            workers = 0
        if workers < 1:
            parser.error(f"--workers takes a positive int or 'auto', "
                         f"got {args.workers!r}")
    config = OwlConfig(
        fixed_runs=args.fixed_runs, random_runs=args.random_runs,
        confidence=args.confidence, test=args.test, seed=args.seed,
        analyze_all_representatives=args.all_representatives,
        offset_granularity=args.granularity, quantify=args.quantify,
        workers=workers, columnar=not args.no_columnar)
    owl = Owl(program, name=args.workload, config=config)
    result = owl.detect(inputs=fixed_inputs(), random_input=random_input)

    if args.save_report:
        with open(args.save_report, "w", encoding="utf-8") as handle:
            handle.write(result.report.to_json() + "\n")
    if args.json:
        print(result.report.to_json())
        return 1 if result.report.has_leaks else 0
    if result.leak_free_by_filtering:
        print(f"{args.workload}: all inputs produced identical traces — "
              "no potential leakage (add more diverse inputs to widen "
              "coverage)")
        return 0
    print(result.report.render())
    return 1 if result.report.has_leaks else 0


if __name__ == "__main__":
    sys.exit(main())
