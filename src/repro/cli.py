"""``owl``: run the Owl pipeline on a bundled workload from the shell.

Two invocation styles are supported.  The original flat form runs one
detection and exits::

    owl-detect aes --fixed-runs 40 --random-runs 40
    owl-detect nvjpeg-encode --confidence 0.99
    owl-detect --list

The subcommand form adds persistent campaigns on top of the same
options::

    owl run aes --store ./owl-store          # cached + checkpointed
    owl resume --store ./owl-store           # finish interrupted campaigns
    owl diff baseline.json candidate.json    # cross-version regression diff
    owl ls --store ./owl-store               # inspect stored artifacts
    owl gc --store ./owl-store               # drop unreferenced blobs

as well as the multi-tenant detection service (every service verb takes
one ``--connect URL`` — ``unix:///path``, ``tcp://host:port``, or
``http://host:port`` for the HTTP/JSON front end)::

    owl serve --store ./owl-store --workers 4    # scheduler + worker fleet
    owl serve --store ./owl-store --connect http://0.0.0.0:8750 \
        --token secret=alice --quota alice=max_inflight:4
    owl submit aes --connect unix://./owl-store/service/owl.sock --wait
    owl status --connect http://127.0.0.1:8750
    owl results c0001 --connect http://127.0.0.1:8750 --watch
    owl worker --queue /mnt/shared/service --store /mnt/shared/store

Exit codes are uniform across the service verbs: 0 success, 1 campaign
failure (or leaks found, or results not ready), 2 configuration/usage
errors, 3 the service is unreachable or rejected the credentials/quota.

``owl run WORKLOAD`` without ``--store`` behaves exactly like the flat
form, and the flat form keeps working unchanged — existing scripts never
see the subcommands.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro import profiling
from repro.core import Owl, OwlConfig

#: First CLI token that selects the subcommand form instead of the flat one.
SUBCOMMANDS = ("run", "resume", "diff", "ls", "gc", "verify",
               "serve", "submit", "status", "results", "worker")

#: Uniform service-verb exit codes (see the module docstring).
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_CONFIG = 2
EXIT_UNAVAILABLE = 3


def _workloads() -> Dict[str, Tuple[Callable, Callable, Callable]]:
    """name → (program, fixed-inputs factory, random-input fn).

    Canonical table lives in :mod:`repro.apps.registry` (shared with the
    detection service); this alias keeps the CLI's historical import site.
    """
    from repro.apps.registry import workloads
    return workloads()


def _add_detect_options(parser: argparse.ArgumentParser) -> None:
    """The detection options shared by the flat form and ``owl run``."""
    parser.add_argument("--fixed-runs", type=int, default=40,
                        help="fixed-input executions (paper: 100)")
    parser.add_argument("--random-runs", type=int, default=40,
                        help="random-input executions (paper: 100)")
    parser.add_argument("--confidence", type=float, default=0.95,
                        help="KS confidence level (paper: 0.95)")
    parser.add_argument("--test", choices=("ks", "welch"), default="ks",
                        help="distribution test to apply")
    parser.add_argument("--analyzer", choices=("ks", "mi", "both"),
                        default="ks",
                        help="leakage detector: the differential KS test, "
                             "MicroWalk-style mutual information (bits "
                             "leaked per location), or both over one "
                             "shared evidence pass with a KS-vs-MI "
                             "cross-validation section")
    parser.add_argument("--mi-bias",
                        choices=("none", "miller_madow", "jackknife",
                                 "shrinkage"),
                        default="miller_madow",
                        help="entropy bias correction for the MI detector")
    parser.add_argument("--mi-min-bits", type=float, default=0.0,
                        metavar="BITS",
                        help="minimum bias-corrected MI (bits) the MI "
                             "detector requires before flagging a feature")
    parser.add_argument("--adaptive", action="store_true",
                        help="group-sequential replica scheduling: record "
                             "replicas in growing rounds, test after each "
                             "under an O'Brien-Fleming-style alpha-spending "
                             "rule, and stop early once every location is "
                             "confidently flagged or clean (the run budgets "
                             "become caps; the flagged leak set matches the "
                             "full-budget run)")
    parser.add_argument("--adaptive-rounds", metavar="N|B1,B2,...",
                        default=None,
                        help="adaptive look schedule: an int (number of "
                             "geometrically spaced looks) or explicit "
                             "comma-separated replica boundaries, e.g. "
                             "'16,32,64' (default: double from 16 to the "
                             "budget)")
    parser.add_argument("--adaptive-alpha-spend", type=float, default=0.5,
                        metavar="RHO",
                        help="alpha-spending exponent: interim looks test "
                             "at z(1-a/2)/t**RHO; larger RHO spends less "
                             "alpha early (default: 0.5)")
    parser.add_argument("--seed", type=int, default=2024,
                        help="seed for the random-input generator")
    parser.add_argument("--workers", default="1", metavar="N|auto",
                        help="trace-recording worker processes: a positive "
                             "int or 'auto' for one per CPU core; any value "
                             "yields bit-identical reports (default: 1)")
    parser.add_argument("--no-columnar", action="store_true",
                        help="record traces through the per-event object "
                             "pipeline instead of the (default) columnar "
                             "fast path; both produce identical traces")
    parser.add_argument("--no-cohort", action="store_true",
                        help="execute kernels with the per-warp reference "
                             "loop instead of the (default) warp-cohort "
                             "engine that runs all warps of a launch in one "
                             "NumPy pass; both produce identical traces")
    parser.add_argument("--no-replica-batch", action="store_true",
                        help="record each repetition of a launch "
                             "separately instead of (the default) fusing "
                             "fixed-input replicas into one cohort grid; "
                             "both produce identical reports")
    parser.add_argument("--replica-dedup", action="store_true",
                        help="record each group of equal inputs once and "
                             "reuse the trace for the whole group; only "
                             "sound for programs that are pure functions "
                             "of their input (no per-run randomness), so "
                             "it is opt-in")
    parser.add_argument("--all-representatives", action="store_true",
                        help="analyze every input class, not just the first")
    parser.add_argument("--granularity", type=int, default=1,
                        metavar="BYTES",
                        help="attacker spatial resolution in bytes "
                             "(1 = byte-level probe, 64 = cache line)")
    parser.add_argument("--quantify", action="store_true",
                        help="estimate each leak's strength in bits per "
                             "observation")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON instead of text")
    parser.add_argument("--save-report", metavar="PATH", default=None,
                        help="also write the JSON report to PATH "
                             "(parent directories are created)")
    parser.add_argument("--profile", metavar="PATH", default=None,
                        help="write a per-phase timing breakdown (kernel "
                             "execute / event emit / A-DCFG fold / "
                             "analysis) as JSON to PATH; phases inside "
                             "worker processes are not captured, so use "
                             "--workers 1 for a complete breakdown")
    parser.add_argument("--inject", metavar="FAULTS", action="append",
                        default=None,
                        help="deterministically inject faults to exercise "
                             "the degradation ladder, e.g. "
                             "'worker_crash:chunk=1,cohort_violation' "
                             "(repeatable; see repro.resilience.faults). "
                             "Reports stay bit-identical to a fault-free "
                             "run")
    parser.add_argument("--degradation-log", metavar="PATH", default=None,
                        help="write every degradation event the run "
                             "survived (worker retries, cohort→warp, "
                             "quarantined blobs, ...) as JSON lines to "
                             "PATH")
    parser.add_argument("--retry", metavar="KEY=VALUE", action="append",
                        default=None,
                        help="override a worker RetryPolicy field, e.g. "
                             "--retry max_attempts=5 --retry "
                             "chunk_timeout=30 (see "
                             "repro.resilience.RetryPolicy)")


def build_parser() -> argparse.ArgumentParser:
    """The original flat ``owl-detect`` parser (kept for compatibility)."""
    parser = argparse.ArgumentParser(
        prog="owl-detect",
        description="Owl side-channel leakage detection on bundled workloads")
    parser.add_argument("workload", nargs="?",
                        help="workload name (see --list)")
    parser.add_argument("--list", action="store_true",
                        help="list available workloads and exit")
    _add_detect_options(parser)
    return parser


def build_subcommand_parser() -> argparse.ArgumentParser:
    """The ``owl`` subcommand parser (run / resume / diff / ls / gc)."""
    parser = argparse.ArgumentParser(
        prog="owl",
        description="Owl side-channel leakage detection with persistent "
                    "campaign stores")
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="run detection on a workload, optionally store-backed")
    run.add_argument("workload", help="workload name (see 'owl run --list')")
    run.add_argument("--list", action="store_true",
                     help="list available workloads and exit")
    run.add_argument("--store", metavar="DIR", default=None,
                     help="campaign store directory: cache traces, "
                          "checkpoint evidence, persist the report")
    run.add_argument("--no-reuse-report", action="store_true",
                     help="re-analyse even when the store already holds "
                          "this campaign's report (caches still apply)")
    _add_detect_options(run)

    resume = commands.add_parser(
        "resume", help="finish every interrupted campaign in a store")
    resume.add_argument("--store", metavar="DIR", required=True,
                        help="campaign store directory")
    resume.add_argument("--json", action="store_true",
                        help="emit each finished report as JSON")

    diff = commands.add_parser(
        "diff", help="cross-version leakage regression diff of two reports")
    diff.add_argument("baseline",
                      help="report JSON file, or a workload name with "
                           "--store (its most recent stored report)")
    diff.add_argument("candidate", help="same, for the patched version")
    diff.add_argument("--store", metavar="DIR", default=None,
                      help="resolve bare names against this store")
    diff.add_argument("--json", action="store_true",
                      help="emit the diff as JSON")

    ls = commands.add_parser("ls", help="list a store's artifacts")
    ls.add_argument("--store", metavar="DIR", required=True,
                    help="campaign store directory")
    ls.add_argument("--kind", default=None,
                    choices=("trace", "evidence", "checkpoint", "report",
                             "campaign"),
                    help="only list entries of this kind")

    gc = commands.add_parser(
        "gc", help="drop blobs no manifest entry references")
    gc.add_argument("--store", metavar="DIR", required=True,
                    help="campaign store directory")
    gc.add_argument("--dry-run", action="store_true",
                    help="only report what would be collected "
                         "(blob digests and sizes); delete nothing")

    verify = commands.add_parser(
        "verify", help="integrity-check a store's artifacts")
    verify.add_argument("--store", metavar="DIR", required=True,
                        help="campaign store directory")
    verify.add_argument("--repair", action="store_true",
                        help="quarantine damaged blobs (moved to "
                             "quarantine/, manifest entries dropped) so "
                             "the next campaign run re-records the loss")

    serve = commands.add_parser(
        "serve", help="run the multi-tenant detection service")
    serve.add_argument("--store", metavar="DIR", required=True,
                       help="shared campaign store the fleet writes to")
    serve.add_argument("--queue", metavar="DIR", default=None,
                       help="job queue directory "
                            "(default: <store>/service)")
    _add_service_connection(serve, for_serve=True)
    serve.add_argument("--workers", type=int, default=2,
                       help="worker processes to spawn (0 executes every "
                            "unit in the scheduler process; reports are "
                            "bit-identical at any count)")
    serve.add_argument("--unit-runs", type=int, default=25,
                       help="phase-3 runs per evidence work unit")
    serve.add_argument("--lease-seconds", type=float, default=30.0,
                       help="silence window after which a worker's leased "
                            "units are re-queued")
    serve.add_argument("--max-attempts", type=int, default=3,
                       help="fleet dispatches per unit before it degrades "
                            "to in-scheduler execution")
    serve.add_argument("--restart-budget", type=int, default=8,
                       help="worker restarts before the fleet stops "
                            "replacing dead processes")
    serve.add_argument("--no-coalesce", action="store_true",
                       help="schedule duplicate submissions separately "
                            "instead of attaching them to the in-flight "
                            "identical campaign")
    serve.add_argument("--die-after", type=int, default=None,
                       metavar="N",
                       help="fault injection: each initially spawned "
                            "worker exits right after claiming its Nth "
                            "unit (replacements run fault-free)")
    serve.add_argument("--recover", action="store_true",
                       help="resume campaigns persisted in the queue by a "
                            "previous scheduler (completed units are not "
                            "re-run)")
    serve.add_argument("--token", metavar="TOKEN=TENANT", action="append",
                       default=None,
                       help="accept this bearer token as this tenant "
                            "(repeatable); with any --token the service "
                            "rejects unauthenticated requests")
    serve.add_argument("--quota", metavar="TENANT=SPEC", action="append",
                       default=None,
                       help="admission quota for one tenant, e.g. "
                            "'alice=max_inflight:4,max_campaigns:2,"
                            "weight:2' (repeatable)")
    serve.add_argument("--default-quota", metavar="SPEC", default=None,
                       help="quota for tenants without an explicit "
                            "--quota entry")
    serve.add_argument("--admission-window", type=int, default=None,
                       metavar="N",
                       help="fleet-wide cap on queued units; backlogged "
                            "tenants interleave by weighted fair stride")
    serve.add_argument("--external-workers", action="store_true",
                       help="workers attach from other hosts (owl worker "
                            "against the shared queue/store); the "
                            "scheduler process executes nothing itself")

    submit = commands.add_parser(
        "submit", help="submit a workload to a running service")
    submit.add_argument("workload", help="workload name (see 'owl run "
                                         "--list')")
    _add_service_connection(submit)
    submit.add_argument("--fixed-runs", type=int, default=40)
    submit.add_argument("--random-runs", type=int, default=40)
    submit.add_argument("--confidence", type=float, default=0.95)
    submit.add_argument("--test", choices=("ks", "welch"), default="ks")
    submit.add_argument("--analyzer", choices=("ks", "mi", "both"),
                        default="ks")
    submit.add_argument("--mi-bias",
                        choices=("none", "miller_madow", "jackknife",
                                 "shrinkage"),
                        default="miller_madow")
    submit.add_argument("--mi-min-bits", type=float, default=0.0,
                        metavar="BITS")
    submit.add_argument("--adaptive", action="store_true")
    submit.add_argument("--adaptive-rounds", metavar="N|B1,B2,...",
                        default=None)
    submit.add_argument("--adaptive-alpha-spend", type=float, default=0.5,
                        metavar="RHO")
    submit.add_argument("--seed", type=int, default=2024)
    submit.add_argument("--granularity", type=int, default=1,
                        metavar="BYTES")
    submit.add_argument("--quantify", action="store_true")
    submit.add_argument("--all-representatives", action="store_true")
    submit.add_argument("--wait", action="store_true",
                        help="block until the campaign completes and print "
                             "its report (exit 1 if it found leaks)")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="--wait deadline in seconds")
    submit.add_argument("--json", action="store_true",
                        help="emit the report (with --wait) or the "
                             "campaign id as JSON")

    status = commands.add_parser(
        "status", help="show a running service's campaigns and fleet")
    status.add_argument("campaign", nargs="?", default=None,
                        help="only this campaign id")
    _add_service_connection(status)
    status.add_argument("--json", action="store_true")

    results = commands.add_parser(
        "results", help="fetch a completed campaign's report")
    results.add_argument("campaign", help="campaign id from 'owl submit'")
    _add_service_connection(results)
    results.add_argument("--json", action="store_true",
                         help="emit the raw report JSON")
    results.add_argument("--watch", action="store_true",
                         help="hold a stream open: print each stage "
                              "transition as it happens, then the final "
                              "report (reconnects automatically if the "
                              "stream drops)")

    worker = commands.add_parser(
        "worker", help="join a service fleet from this host")
    worker.add_argument("--queue", metavar="DIR", required=True,
                        help="the service's job queue directory (shared "
                             "filesystem for multi-host fleets)")
    worker.add_argument("--store", metavar="DIR", required=True,
                        help="the service's shared campaign store")
    worker.add_argument("--worker-id", default=None,
                        help="unique worker name "
                             "(default: <hostname>-<pid>)")
    worker.add_argument("--poll", type=float, default=0.05,
                        help="idle poll cadence in seconds")
    worker.add_argument("--lease-seconds", type=float, default=30.0,
                        help="the serving scheduler's lease window; held "
                             "claims heartbeat at a quarter of this")
    worker.add_argument("--die-after", type=int, default=None, metavar="N",
                        help="fault injection: exit after the Nth claim")

    return parser


def _add_service_connection(parser: argparse.ArgumentParser,
                            for_serve: bool = False) -> None:
    """``--connect URL`` (plus deprecated aliases), shared by the verbs."""
    parser.add_argument("--connect", metavar="URL", default=None,
                        help="service endpoint as a URL: unix:///path, "
                             "tcp://host:port, or http://host:port "
                             + ("(default: unix socket at "
                                "<queue>/owl.sock)" if for_serve
                                else "(must match what owl serve "
                                     "listens on)"))
    parser.add_argument("--socket", metavar="PATH", default=None,
                        help="deprecated: use --connect unix://PATH")
    parser.add_argument("--host", default="127.0.0.1",
                        help="deprecated: use --connect tcp://HOST:PORT")
    parser.add_argument("--port", type=int, default=None,
                        help="deprecated: use --connect tcp://HOST:PORT")
    if not for_serve:
        parser.add_argument("--token", default=None,
                            help="bearer token for an authenticated "
                                 "service")
        parser.add_argument("--tenant", default=None,
                            help="tenant name to bill on an *open* "
                                 "service (authenticated services derive "
                                 "it from the token)")


def _resolve_workers(parser: argparse.ArgumentParser, value: str):
    if value == "auto":
        return "auto"
    try:
        workers = int(value)
    except ValueError:
        workers = 0
    if workers < 1:
        parser.error(f"--workers takes a positive int or 'auto', "
                     f"got {value!r}")
    return workers


def _parse_adaptive_rounds(parser: argparse.ArgumentParser, value):
    """``--adaptive-rounds``: an int or comma-separated boundaries."""
    if value is None:
        return None
    text = str(value).strip()
    try:
        if "," in text:
            return tuple(int(part) for part in text.split(",") if part.strip())
        return int(text)
    except ValueError:
        parser.error(f"--adaptive-rounds takes an int or comma-separated "
                     f"replica boundaries, got {value!r}")


def _config_from_args(parser: argparse.ArgumentParser,
                      args: argparse.Namespace) -> OwlConfig:
    fault_plan = None
    if getattr(args, "inject", None):
        from repro.resilience import FaultError, FaultPlan
        try:
            fault_plan = FaultPlan.parse(args.inject)
        except FaultError as error:
            parser.error(f"--inject: {error}")
    retry = None
    if getattr(args, "retry", None):
        from repro.errors import ConfigError
        from repro.resilience import RetryPolicy
        from repro.resilience.faults import _parse_scalar
        fields = {}
        for item in args.retry:
            key, sep, raw = item.partition("=")
            if not sep:
                parser.error(f"--retry: {item!r} is not key=value")
            fields[key.strip()] = _parse_scalar(raw.strip())
        try:
            retry = RetryPolicy(**fields)
        except (ConfigError, TypeError) as error:
            parser.error(f"--retry: {error}")
    return OwlConfig(
        adaptive=getattr(args, "adaptive", False),
        adaptive_rounds=_parse_adaptive_rounds(
            parser, getattr(args, "adaptive_rounds", None)),
        adaptive_alpha_spend=getattr(args, "adaptive_alpha_spend", 0.5),
        fixed_runs=args.fixed_runs, random_runs=args.random_runs,
        confidence=args.confidence, test=args.test, seed=args.seed,
        analyzer=args.analyzer, mi_bias_correction=args.mi_bias,
        mi_min_bits=args.mi_min_bits,
        analyze_all_representatives=args.all_representatives,
        offset_granularity=args.granularity, quantify=args.quantify,
        workers=_resolve_workers(parser, args.workers),
        columnar=not args.no_columnar,
        cohort=not args.no_cohort,
        replica_batch=not args.no_replica_batch,
        replica_dedup=args.replica_dedup,
        retry=retry, fault_plan=fault_plan)


def _write_report(path: str, report) -> bool:
    """Write the report JSON to *path*; False (after a one-line error
    message) when the destination is unwritable."""
    target = Path(path)
    try:
        if str(target.parent) not in ("", "."):
            target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(report.to_json() + "\n")
    except OSError as error:
        reason = error.strerror or str(error)
        print(f"owl: cannot write report to {path}: {reason}",
              file=sys.stderr)
        return False
    return True


def _profile_payload(profiler, result, workload: str) -> dict:
    """Assemble the ``--profile`` JSON: hook-timed device phases plus the
    analysis phases the pipeline already accounts in PhaseStats."""
    stats = result.stats
    emit = profiler.get("event_emit")
    fold = profiler.get("adcfg_fold")
    payload = {
        "workload": workload,
        "phases_seconds": {
            "kernel_execute": profiler.get("kernel_execute"),
            # _emit dispatch includes the fold when delivery is eager;
            # report transport and folding separately
            "event_emit": max(0.0, emit - fold),
            "adcfg_fold": fold,
            "analysis": stats.test_seconds,
            "evidence_fold": stats.evidence_seconds,
            # analysis sub-phases: signature filtering, evidence alignment,
            # histogram folding, and the batched KS resolution
            "analysis_filter": profiler.get("analysis_filter"),
            "analysis_align": profiler.get("analysis_align"),
            "analysis_fold": profiler.get("analysis_fold"),
            "analysis_ks": profiler.get("analysis_ks"),
            "analysis_mi": profiler.get("analysis_mi"),
        },
        "phase_counts": dict(profiler.counts),
        "replica_batching": {
            "dedup_runs": stats.replica_dedup_runs,
            "fused_groups": stats.replica_fused_groups,
            "fused_launches": stats.replica_fused_launches,
            "fallback_launches": stats.replica_fallback_launches,
        },
        "total_seconds": stats.total_seconds,
        "trace_count": stats.trace_count,
        "workers": stats.workers,
    }
    if result.adaptive is not None:
        payload["adaptive"] = result.adaptive.to_dict()
    return payload


def _write_profile(path: str, payload: dict) -> bool:
    """Write the profile JSON to *path*; False (after a one-line error
    message) when the destination is unwritable."""
    target = Path(path)
    try:
        if str(target.parent) not in ("", "."):
            target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError as error:
        reason = error.strerror or str(error)
        print(f"owl: cannot write profile to {path}: {reason}",
              file=sys.stderr)
        return False
    return True


def _emit_result(args: argparse.Namespace, workload: str, result) -> int:
    if args.save_report and not _write_report(args.save_report,
                                              result.report):
        return 2
    if args.json:
        print(result.report.to_json())
        return 1 if result.report.has_leaks else 0
    if result.leak_free_by_filtering and not result.report.has_leaks:
        print(f"{workload}: all inputs produced identical traces — "
              "no potential leakage (add more diverse inputs to widen "
              "coverage)")
        return 0
    print(result.report.render())
    return 1 if result.report.has_leaks else 0


def _write_degradation_log(path: str, events) -> bool:
    """Write degradation events as JSON lines; False when unwritable."""
    target = Path(path)
    try:
        if str(target.parent) not in ("", "."):
            target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event.to_dict(), sort_keys=True))
                handle.write("\n")
    except OSError as error:
        reason = error.strerror or str(error)
        print(f"owl: cannot write degradation log to {path}: {reason}",
              file=sys.stderr)
        return False
    return True


def _run_workload(parser: argparse.ArgumentParser, args: argparse.Namespace,
                  store=None, reuse_report: bool = True) -> int:
    workloads = _workloads()
    if args.workload not in workloads:
        parser.error(f"unknown workload {args.workload!r}; see --list")
    program, fixed_inputs, random_input = workloads[args.workload]
    config = _config_from_args(parser, args)
    if store is not None and config.fault_plan is not None:
        # store-directed faults damage blobs up front; the campaign's
        # self-healing loads then quarantine and re-record them
        from repro.resilience.faults import inject_blob_corruption
        corrupted = inject_blob_corruption(store, config.fault_plan)
        if corrupted and not args.json:
            print(f"[inject] corrupted {len(corrupted)} stored blob(s)")
    owl = Owl(program, name=args.workload, config=config)
    profiler = profiling.enable() if args.profile else None
    try:
        result = owl.detect(inputs=fixed_inputs(), random_input=random_input,
                            store=store, reuse_report=reuse_report)
    finally:
        if profiler is not None:
            profiling.disable()
    if profiler is not None and not _write_profile(
            args.profile,
            _profile_payload(profiler, result, args.workload)):
        return 2
    if args.degradation_log is not None and not _write_degradation_log(
            args.degradation_log, result.degradations):
        return 2
    if result.degradations and not args.json:
        kinds: Dict[str, int] = {}
        for event in result.degradations:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        summary = ", ".join(f"{count}x {kind}"
                            for kind, count in sorted(kinds.items()))
        print(f"[resilience] survived {len(result.degradations)} "
              f"degradation(s): {summary}")
    if result.adaptive is not None and not args.json:
        summary = result.adaptive
        print(f"[adaptive] {summary.outcome} after "
              f"{summary.rounds_executed} round(s): recorded "
              f"{summary.fixed_recorded}/{summary.fixed_budget} fixed + "
              f"{summary.random_recorded}/{summary.random_budget} random "
              f"replicas ({summary.replicas_saved} saved)")
    if store is not None and not args.json:
        stats = result.stats
        if stats.report_cache_hit:
            print(f"[store] report cache hit for {args.workload}")
        elif stats.cached_traces or stats.cached_runs:
            print(f"[store] reused {stats.cached_traces} traces, "
                  f"{stats.cached_runs} evidence runs")
    return _emit_result(args, args.workload, result)


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------

def _cmd_run(parser: argparse.ArgumentParser,
             args: argparse.Namespace) -> int:
    if args.list:
        for name in sorted(_workloads()):
            print(name)
        return 0
    store = None
    if args.store is not None:
        from repro.store import TraceStore
        store = TraceStore(args.store)
    return _run_workload(parser, args, store=store,
                         reuse_report=not args.no_reuse_report)


def _cmd_resume(parser: argparse.ArgumentParser,
                args: argparse.Namespace) -> int:
    from repro.store import StoreError, TraceStore, incomplete_campaigns
    try:
        store = TraceStore(args.store, create=False)
    except StoreError as error:
        print(f"owl: {error}", file=sys.stderr)
        return 2
    pending = incomplete_campaigns(store)
    if not pending:
        print(f"{args.store}: no interrupted campaigns")
        return 0
    workloads = _workloads()
    exit_code = 0
    for entry in pending:
        body = store.get_json(entry.key)
        name = body.get("workload") if isinstance(body, dict) else None
        if name not in workloads:
            print(f"owl: skipping {entry.key}: unknown workload {name!r}",
                  file=sys.stderr)
            exit_code = max(exit_code, 2)
            continue
        program, fixed_inputs, random_input = workloads[name]
        config = OwlConfig(**body["config"])
        if config.fault_plan is not None:
            # an interrupted *injected* campaign must not re-crash on
            # resume: the stored artifacts are sound (bit-identity holds
            # under faults), so finish the remainder fault-free
            import dataclasses
            config = dataclasses.replace(config, fault_plan=None)
        owl = Owl(program, name=name, config=config)
        result = owl.detect(inputs=fixed_inputs(),
                            random_input=random_input, store=store)
        stats = result.stats
        print(f"resumed {name}: reused {stats.cached_traces} traces, "
              f"{stats.cached_runs} evidence runs")
        if args.json:
            print(result.report.to_json())
        else:
            print(result.report.render())
        if result.report.has_leaks:
            exit_code = max(exit_code, 1)
    return exit_code


def _load_report_for_diff(parser: argparse.ArgumentParser, ref: str, store):
    from repro.core.report import LeakageReport
    if os.path.exists(ref):
        try:
            return LeakageReport.from_json(
                Path(ref).read_text(encoding="utf-8"))
        except (OSError, ValueError, KeyError) as error:
            parser.error(f"cannot load report {ref!r}: {error}")
    if store is None:
        parser.error(f"{ref!r} is not a report file (pass --store to "
                     f"resolve workload names)")
    entries = [entry for entry in store.entries(kind="report")
               if entry.meta.get("workload") == ref]
    if not entries:
        parser.error(f"store holds no report for workload {ref!r}")
    latest = max(entries, key=lambda entry: entry.created_at)
    return store.get_report(latest.key)


def _cmd_diff(parser: argparse.ArgumentParser,
              args: argparse.Namespace) -> int:
    import json as json_module

    from repro.errors import ConfigError
    from repro.store import StoreError, TraceStore, diff_reports
    store = None
    if args.store is not None:
        try:
            store = TraceStore(args.store, create=False)
        except StoreError as error:
            print(f"owl: {error}", file=sys.stderr)
            return 2
    baseline = _load_report_for_diff(parser, args.baseline, store)
    candidate = _load_report_for_diff(parser, args.candidate, store)
    try:
        diff = diff_reports(baseline, candidate)
    except ConfigError as error:
        print(f"owl: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json_module.dumps(diff.to_dict(), indent=2))
    else:
        print(diff.render())
    return 1 if diff.is_regression else 0


def _cmd_ls(parser: argparse.ArgumentParser,
            args: argparse.Namespace) -> int:
    from repro.store import StoreError, TraceStore
    try:
        store = TraceStore(args.store, create=False)
    except StoreError as error:
        print(f"owl: {error}", file=sys.stderr)
        return 2
    entries = store.entries(kind=args.kind)
    for entry in entries:
        print(f"{entry.kind:<10} {entry.size:>10}  {entry.key}")
    kinds: Dict[str, int] = {}
    for entry in entries:
        kinds[entry.kind] = kinds.get(entry.kind, 0) + 1
    summary = ", ".join(f"{count} {kind}"
                        for kind, count in sorted(kinds.items()))
    print(f"{len(entries)} entries ({summary})" if entries else "0 entries")
    return 0


def _render_layout(layout: Dict) -> str:
    version = layout.get("version")
    flat = layout.get("flat_blobs", 0)
    sharded = layout.get("sharded_blobs", 0)
    if version == "1+2":
        return (f"layout v1+v2 (mixed: {flat} flat blobs pending lazy "
                f"migration, {sharded} sharded)")
    if version == 1:
        return f"layout v1 (flat, {flat} blobs; migrates lazily on access)"
    return f"layout v2 (digest-prefix sharded, {sharded} blobs)"


def _cmd_gc(parser: argparse.ArgumentParser,
            args: argparse.Namespace) -> int:
    from repro.store import StoreError, TraceStore
    try:
        store = TraceStore(args.store, create=False)
    except StoreError as error:
        print(f"owl: {error}", file=sys.stderr)
        return 2
    result = store.gc(dry_run=args.dry_run)
    print(_render_layout(result["layout"]))
    if args.dry_run:
        for digest, size in result["candidates"]:
            print(f"would remove {size:>10}  {digest}")
        print(f"dry run: would remove {len(result['candidates'])} "
              f"unreferenced blobs ({result['reclaimed_bytes']} bytes), "
              f"keep {result['kept']}")
        return 0
    print(f"removed {result['removed']} unreferenced blobs "
          f"({result['reclaimed_bytes']} bytes), kept {result['kept']}")
    return 0


def _cmd_verify(parser: argparse.ArgumentParser,
                args: argparse.Namespace) -> int:
    from repro.store import StoreError, TraceStore
    try:
        store = TraceStore(args.store, create=False)
    except StoreError as error:
        print(f"owl: {error}", file=sys.stderr)
        return 2
    print(_render_layout(store.blobs.layout()))
    bad = store.verify(repair=args.repair)
    if not bad:
        print(f"{args.store}: all {len(store)} entries verified")
        return 0
    for key in bad:
        print(f"corrupt: {key}")
    if args.repair:
        print(f"quarantined {len(bad)} damaged entr"
              f"{'y' if len(bad) == 1 else 'ies'}; the next campaign run "
              f"re-records the loss")
        return 0
    print(f"{len(bad)} corrupt entries (re-run with --repair to "
          f"quarantine them)")
    return 1


# ----------------------------------------------------------------------
# detection service verbs
# ----------------------------------------------------------------------

def _service_address(parser: argparse.ArgumentParser,
                     args: argparse.Namespace,
                     queue_dir: Optional[Path] = None):
    from repro.errors import ConfigError
    from repro.service.address import parse_address, parse_connect
    if args.connect is not None:
        if args.socket is not None or args.port is not None:
            parser.error("--connect replaces --socket/--host/--port; "
                         "pass only one form")
        try:
            return parse_connect(args.connect)
        except ConfigError as error:
            parser.error(str(error))
    if args.socket is not None:
        print(f"owl: --socket is deprecated; use "
              f"--connect unix://{args.socket}", file=sys.stderr)
        return parse_address(socket_path=args.socket)
    if args.port is not None:
        print(f"owl: --host/--port are deprecated; use "
              f"--connect tcp://{args.host}:{args.port}", file=sys.stderr)
        return parse_address(host=args.host, port=args.port)
    if queue_dir is None:
        parser.error("pass --connect URL to reach the service")
    return parse_address(socket_path=str(queue_dir / "owl.sock"))


def _service_client(parser: argparse.ArgumentParser,
                    args: argparse.Namespace):
    from repro.service.client import ServiceClient
    address = _service_address(parser, args)
    return ServiceClient(address, token=getattr(args, "token", None),
                         tenant=getattr(args, "tenant", None))


def _service_error_exit(error: BaseException) -> int:
    """Map a service-layer exception to the uniform exit codes."""
    from repro.errors import (
        AuthError, ConfigError, QuotaError, ServiceConnectionError)
    print(f"owl: {error}", file=sys.stderr)
    if isinstance(error, (AuthError, QuotaError, ServiceConnectionError)):
        return EXIT_UNAVAILABLE
    if isinstance(error, ConfigError):
        return EXIT_CONFIG
    if isinstance(error, OSError):
        return EXIT_UNAVAILABLE
    return EXIT_CONFIG


def _parse_serve_tokens(parser: argparse.ArgumentParser,
                        items) -> Optional[Dict[str, str]]:
    if not items:
        return None
    tokens: Dict[str, str] = {}
    for item in items:
        token, sep, tenant = str(item).partition("=")
        if not sep or not token or not tenant:
            parser.error(f"--token takes TOKEN=TENANT, got {item!r}")
        tokens[token] = tenant
    return tokens


def _parse_serve_quotas(parser: argparse.ArgumentParser, args):
    from repro.errors import ConfigError
    from repro.service import TenantQuota
    quotas = None
    if args.quota:
        quotas = {}
        for item in args.quota:
            tenant, sep, spec = str(item).partition("=")
            if not sep or not tenant:
                parser.error(f"--quota takes TENANT=SPEC, got {item!r}")
            try:
                quotas[tenant] = TenantQuota.parse(spec)
            except ConfigError as error:
                parser.error(f"--quota {tenant}: {error}")
    default_quota = None
    if args.default_quota is not None:
        try:
            default_quota = TenantQuota.parse(args.default_quota)
        except ConfigError as error:
            parser.error(f"--default-quota: {error}")
    return quotas, default_quota


def _cmd_serve(parser: argparse.ArgumentParser,
               args: argparse.Namespace) -> int:
    from repro.errors import ConfigError
    from repro.service import CampaignScheduler, ServiceConfig, WorkerFleet
    from repro.service.server import serve_forever

    queue_dir = Path(args.queue if args.queue is not None
                     else Path(args.store) / "service")
    tokens = _parse_serve_tokens(parser, args.token)
    quotas, default_quota = _parse_serve_quotas(parser, args)
    try:
        service_config = ServiceConfig(
            workers=args.workers, unit_runs=args.unit_runs,
            lease_seconds=args.lease_seconds,
            max_attempts=args.max_attempts,
            restart_budget=args.restart_budget,
            coalesce=not args.no_coalesce, die_after=args.die_after,
            quotas=quotas, default_quota=default_quota,
            admission_window=args.admission_window,
            external_workers=args.external_workers)
    except ConfigError as error:
        parser.error(str(error))
    address = _service_address(parser, args, queue_dir=queue_dir)
    fleet = None
    if service_config.workers > 0 and not service_config.external_workers:
        fleet = WorkerFleet(queue_dir, args.store,
                            workers=service_config.workers,
                            poll_seconds=service_config.poll_seconds,
                            lease_seconds=service_config.lease_seconds,
                            die_after=service_config.die_after,
                            restart_budget=service_config.restart_budget)
    scheduler = CampaignScheduler(args.store, queue_dir,
                                  config=service_config, fleet=fleet)
    scheduler.queue.clear_stop()
    if args.recover:
        recovered = scheduler.recover()
        if recovered:
            print(f"recovered {len(recovered)} campaign(s): "
                  + ", ".join(recovered))
    if fleet is not None:
        fleet.start()
    from repro.service.address import format_address
    workers_note = ("external" if service_config.external_workers
                    else str(service_config.workers))
    auth_note = " auth=token" if tokens else ""
    print(f"owl service: store={args.store} queue={queue_dir} "
          f"workers={workers_note}{auth_note} listening on "
          f"{format_address(address)}", flush=True)
    try:
        serve_forever(scheduler, address,
                      tick_seconds=service_config.poll_seconds,
                      tokens=tokens)
    except KeyboardInterrupt:
        pass
    finally:
        if fleet is not None or service_config.external_workers:
            scheduler.queue.request_stop()
        if fleet is not None:
            fleet.stop()
    return 0


def _cmd_worker(parser: argparse.ArgumentParser,
                args: argparse.Namespace) -> int:
    from repro.service.worker import default_worker_id, worker_loop
    worker_id = args.worker_id or default_worker_id()
    print(f"owl worker {worker_id}: queue={args.queue} "
          f"store={args.store}", flush=True)
    try:
        executed = worker_loop(args.queue, args.store, worker_id,
                               poll_seconds=args.poll,
                               lease_seconds=args.lease_seconds,
                               die_after=args.die_after)
    except KeyboardInterrupt:
        return 0
    print(f"owl worker {worker_id}: executed {executed} unit(s), "
          f"stop requested")
    return 0


def _emit_campaign_results(args: argparse.Namespace, results) -> int:
    """Print a terminal campaign's report; returns the exit code."""
    from repro.core.report import LeakageReport
    if results.stage == "failed":
        print(f"owl: campaign {results.campaign} failed: {results.error}",
              file=sys.stderr)
        return EXIT_FAILURE
    if results.stage != "complete":
        print(f"campaign {results.campaign} is still in stage "
              f"{results.stage!r}")
        return EXIT_FAILURE
    if results.report_json is None:
        print(f"owl: campaign {results.campaign} completed but its "
              f"report is missing from the store", file=sys.stderr)
        return EXIT_CONFIG
    if args.json:
        print(results.report_json)
    else:
        print(LeakageReport.from_json(results.report_json).render())
    return EXIT_FAILURE if results.has_leaks else EXIT_OK


def _cmd_submit(parser: argparse.ArgumentParser,
                args: argparse.Namespace) -> int:
    from repro.errors import CampaignError

    client = _service_client(parser, args)
    overrides = dict(
        fixed_runs=args.fixed_runs, random_runs=args.random_runs,
        confidence=args.confidence, test=args.test, seed=args.seed,
        analyzer=args.analyzer, mi_bias_correction=args.mi_bias,
        mi_min_bits=args.mi_min_bits,
        adaptive=args.adaptive,
        adaptive_rounds=_parse_adaptive_rounds(parser, args.adaptive_rounds),
        adaptive_alpha_spend=args.adaptive_alpha_spend,
        offset_granularity=args.granularity, quantify=args.quantify,
        analyze_all_representatives=args.all_representatives)
    try:
        receipt = client.submit(args.workload, config=overrides)
        if not args.wait:
            print(json.dumps({"campaign": receipt.campaign,
                              "tenant": receipt.tenant})
                  if args.json
                  else f"submitted {args.workload} as campaign "
                       f"{receipt.campaign} (tenant {receipt.tenant})")
            return EXIT_OK
        client.wait_for(receipt.campaign, timeout=args.timeout)
        results = client.results(receipt.campaign)
    except (OSError, CampaignError) as error:
        return _service_error_exit(error)
    return _emit_campaign_results(args, results)


def _cmd_status(parser: argparse.ArgumentParser,
                args: argparse.Namespace) -> int:
    import dataclasses

    from repro.errors import CampaignError

    client = _service_client(parser, args)
    try:
        if args.campaign is not None:
            row = client.status(args.campaign)
            rows = {row.campaign: row}
            overview = None
        else:
            overview = client.overview()
            rows = overview.campaigns
    except (OSError, CampaignError) as error:
        return _service_error_exit(error)
    if args.json:
        payload = {cid: dataclasses.asdict(row)
                   for cid, row in rows.items()}
        if overview is not None:
            payload = {"campaigns": payload,
                       "fleet": (dataclasses.asdict(overview.fleet)
                                 if overview.fleet is not None else {}),
                       "tenants": {name: dataclasses.asdict(tenant)
                                   for name, tenant
                                   in overview.tenants.items()}}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return EXIT_OK
    for cid in sorted(rows):
        row = rows[cid]
        extra = ""
        if row.coalesced_into:
            extra = f" (coalesced into {row.coalesced_into})"
        if row.error:
            extra += f" error: {row.error}"
        print(f"{cid}  {row.workload:<14} {row.stage:<10} "
              f"tenant={row.tenant} pending={row.pending_units} "
              f"backlog={row.backlog_units} "
              f"degradations={row.degradations}{extra}")
    if overview is not None:
        if overview.fleet is not None:
            fleet = overview.fleet
            print(f"fleet: {len(fleet.live_workers)} live workers, "
                  f"{fleet.spawned} spawned, {fleet.restarts} restarts")
        for name in sorted(overview.tenants):
            tenant = overview.tenants[name]
            print(f"tenant {name}: {tenant.active_campaigns} active, "
                  f"{tenant.inflight_units} in flight, "
                  f"{tenant.backlog_units} backlogged "
                  f"(weight {tenant.weight:g})")
        print(f"{len(rows)} campaign(s)")
    return EXIT_OK


def _watch_campaign(args: argparse.Namespace, client) -> int:
    """``owl results --watch``: stream transitions, then the report.

    A dropped stream (service restart, network blip) reconnects and
    re-synchronises off the first event of the new stream; only
    *repeated* failures give up with the connection exit code.
    """
    import time as time_module

    from repro.errors import ServiceConnectionError
    attempts_left = 5
    while True:
        try:
            for event in client.watch(args.campaign):
                if event.terminal:
                    if not args.json:
                        print(f"{event.campaign}  {event.event}")
                    if event.results is None:
                        print(f"owl: terminal event for {event.campaign} "
                              f"carried no results", file=sys.stderr)
                        return EXIT_CONFIG
                    return _emit_campaign_results(args, event.results)
                if not args.json:
                    print(f"{event.campaign}  {event.stage:<10} "
                          f"pending={event.pending_units} "
                          f"backlog={event.backlog_units}", flush=True)
            # stream ended with no terminal event: treat as a drop
            raise ServiceConnectionError(
                f"watch stream for campaign {args.campaign} ended early")
        except ServiceConnectionError as error:
            attempts_left -= 1
            if attempts_left <= 0:
                return _service_error_exit(error)
            if not args.json:
                print(f"owl: watch stream dropped ({error}); "
                      f"reconnecting", file=sys.stderr)
            time_module.sleep(0.2)


def _cmd_results(parser: argparse.ArgumentParser,
                 args: argparse.Namespace) -> int:
    from repro.errors import CampaignError

    client = _service_client(parser, args)
    try:
        if args.watch:
            return _watch_campaign(args, client)
        results = client.results(args.campaign)
    except (OSError, CampaignError) as error:
        return _service_error_exit(error)
    return _emit_campaign_results(args, results)


_COMMANDS = {"run": _cmd_run, "resume": _cmd_resume, "diff": _cmd_diff,
             "ls": _cmd_ls, "gc": _cmd_gc, "verify": _cmd_verify,
             "serve": _cmd_serve, "submit": _cmd_submit,
             "status": _cmd_status, "results": _cmd_results,
             "worker": _cmd_worker}


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)

    if argv and argv[0] in SUBCOMMANDS:
        parser = build_subcommand_parser()
        args = parser.parse_args(argv)
        return _COMMANDS[args.command](parser, args)

    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list or not args.workload:
        for name in sorted(_workloads()):
            print(name)
        return 0
    return _run_workload(parser, args)


if __name__ == "__main__":
    sys.exit(main())
