"""A DATA-like dynamic differential analyzer (Weiser et al., USENIX '18).

Two faithful aspects are modelled:

**Host-only visibility.**  DATA instruments the CPU binary with Pin, so on a
CUDA application it observes kernel *launches* (library calls) and host
allocations but nothing inside the GPU.  :func:`data_tool_analyze` performs
DATA-style trace differencing over that host view: it finds kernel leaks
(launch-sequence differences between inputs) and is structurally blind to
device control-flow and data-flow leaks — the paper's RQ3 observation.

**Per-thread recording cost.**  DATA's multi-threading support records one
trace per thread and differences them pairwise.  "The memory consumption
increases proportionally with the number of threads" (§I);
:class:`PerThreadTraceRecorder` implements exactly that representation so
the aggregation ablation can measure the blow-up against Owl's A-DCFG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.alignment import EditOp, myers_diff
from repro.gpusim.device import Device, DeviceConfig
from repro.gpusim.events import (
    BasicBlockEvent,
    KernelBeginEvent,
    KernelEndEvent,
    MemoryAccessEvent,
    SyncEvent,
    TraceEvent,
)
from repro.host.callstack import current_stack_depth
from repro.host.runtime import CudaRuntime
from repro.host.tracer import HostTracer
from repro.tracing.recorder import Program

#: Serialised bytes per per-thread trace entry (label id + payload), the
#: same order of magnitude as DATA's address-trace entries.
PER_THREAD_ENTRY_BYTES = 12


# ---------------------------------------------------------------------------
# host-only differential analysis
# ---------------------------------------------------------------------------

@dataclass
class DataToolReport:
    """Outcome of DATA-style host-trace differencing."""

    kernel_differences: List[str] = field(default_factory=list)
    device_findings: List[str] = field(default_factory=list)  # always empty

    @property
    def found_kernel_leak(self) -> bool:
        return bool(self.kernel_differences)

    @property
    def can_see_device_leaks(self) -> bool:
        """Structurally false: the host trace has no device content."""
        return False


def _host_trace(program: Program, value: object,
                device_config: DeviceConfig = None) -> Tuple[str, ...]:
    """The Pin view of one execution: the launch-call sequence only."""
    device = Device(device_config or DeviceConfig())
    tracer = HostTracer(device.memory)
    rt = CudaRuntime(device)
    rt.attach_tracer(tracer)
    rt.call_stack_anchor = current_stack_depth()
    try:
        program(rt, value)
    finally:
        rt.detach_tracer()
    return tracer.launch_sequence


def data_tool_analyze(program: Program, inputs: Sequence[object],
                      device_config: DeviceConfig = None) -> DataToolReport:
    """Pairwise-diff the host traces of *inputs*, DATA style."""
    traces = [_host_trace(program, value, device_config) for value in inputs]
    report = DataToolReport()
    reference = traces[0]
    for index, trace in enumerate(traces[1:], start=1):
        for step in myers_diff(reference, trace):
            if step.op is EditOp.EQUAL:
                continue
            side = ("input 0" if step.op is EditOp.DELETE
                    else f"input {index}")
            identity = (reference[step.a_index]
                        if step.op is EditOp.DELETE
                        else trace[step.b_index])
            report.kernel_differences.append(
                f"launch {identity} present only under {side}")
    return report


# ---------------------------------------------------------------------------
# per-thread recording (the scalability strawman)
# ---------------------------------------------------------------------------

class PerThreadTraceRecorder:
    """Records one (basic block, address) event list per GPU thread.

    This is the representation Owl's A-DCFG replaces: every active lane of
    every warp event becomes one per-thread entry, so memory grows linearly
    with the thread count while Owl's aggregated graph saturates.
    """

    def __init__(self) -> None:
        #: thread id → list of entries ("bb:<label>" or "mem:<addr>")
        self.threads: Dict[int, List[str]] = {}
        self._launch = None

    # -- device event intake ------------------------------------------------

    def on_event(self, event: TraceEvent) -> None:
        if isinstance(event, KernelBeginEvent):
            self._launch = event
        elif isinstance(event, KernelEndEvent):
            self._launch = None
        elif isinstance(event, BasicBlockEvent):
            # every thread of the warp logs the block entry separately —
            # the redundancy Owl aggregates away
            for thread_id in self._warp_threads(event.block_id, event.warp_id,
                                                event.active_lanes):
                self._entry(thread_id).append(f"bb:{event.label}")
        elif isinstance(event, MemoryAccessEvent):
            threads = self._warp_threads(event.block_id, event.warp_id,
                                         len(event.addresses))
            for thread_id, address in zip(threads, event.addresses):
                self._entry(thread_id).append(f"mem:{address:#x}")
        elif isinstance(event, SyncEvent):
            pass
        else:
            raise TypeError(f"unknown trace event {event!r}")

    def _warp_threads(self, block_id: int, warp_id: int,
                      count: int) -> List[int]:
        if self._launch is None:
            raise RuntimeError("device event outside any kernel launch")
        threads_per_block = (self._launch.block[0] * self._launch.block[1]
                             * self._launch.block[2])
        base = block_id * threads_per_block + warp_id * 32
        return [base + lane for lane in range(count)]

    def _entry(self, thread_id: int) -> List[str]:
        found = self.threads.get(thread_id)
        if found is None:
            found = []
            self.threads[thread_id] = found
        return found

    # -- accounting ----------------------------------------------------------

    @property
    def num_threads(self) -> int:
        return len(self.threads)

    @property
    def total_entries(self) -> int:
        return sum(len(entries) for entries in self.threads.values())

    def memory_bytes(self) -> int:
        """Approximate resident size of the per-thread representation."""
        return self.total_entries * PER_THREAD_ENTRY_BYTES

    # -- DATA-style differential analysis ------------------------------------

    def diff_against(self, other: "PerThreadTraceRecorder") -> int:
        """Pairwise per-thread differencing; returns differing-thread count.

        One Myers diff per thread — the n-fold analysis cost the paper
        calls "a daunting task for solutions like DATA".
        """
        differing = 0
        for thread_id in sorted(set(self.threads) | set(other.threads)):
            mine = self.threads.get(thread_id, [])
            theirs = other.threads.get(thread_id, [])
            if any(step.op is not EditOp.EQUAL
                   for step in myers_diff(mine, theirs)):
                differing += 1
        return differing


def record_per_thread(program: Program, value: object,
                      device_config: DeviceConfig = None
                      ) -> PerThreadTraceRecorder:
    """Run *program* once while recording DATA-style per-thread traces."""
    device = Device(device_config or DeviceConfig())
    recorder = PerThreadTraceRecorder()
    device.subscribe(recorder.on_event)
    rt = CudaRuntime(device)
    rt.call_stack_anchor = current_stack_depth()
    try:
        program(rt, value)
    finally:
        device.unsubscribe(recorder.on_event)
    return recorder


def per_thread_memory_bytes(program: Program, value: object,
                            device_config: DeviceConfig = None) -> int:
    """Memory footprint of the per-thread representation for one run."""
    return record_per_thread(program, value, device_config).memory_bytes()
