"""A pitchfork-like static taint analysis of CUDA kernels.

haybale-pitchfork symbolically executes LLVM IR and flags secret-dependent
memory addresses and branch conditions.  Applied to CUDA kernels the paper
observes two systematic false-positive classes (§VIII-D):

* it "erroneously flags array accesses determined by thread IDs" — the
  thread index is just another unconstrained input to the symbolic state;
* it "misidentifies control flow leaks as it fails to account for predicate
  execution" — a divergent branch is flagged even though the warp visits
  both sides regardless of the data.

This module reproduces that decision procedure as a taint analysis over one
exploration of the kernel: thread identifiers and caller-marked secret
buffers are taint sources; taint propagates through all arithmetic; any
load/store with a tainted index and any branch/loop with a tainted
condition is a finding.  Both arms of every branch are explored
(path coverage, like symbolic execution), predication is *not* modelled,
and the dynamic-differential machinery of Owl is deliberately absent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.gpusim.context import BranchHandle, WarpContext
from repro.gpusim.kernel import Kernel, LaunchConfig
from repro.gpusim.memory import DeviceBuffer
from repro.host.callstack import current_stack_depth
from repro.host.runtime import CudaRuntime
from repro.gpusim.device import Device, DeviceConfig
from repro.tracing.recorder import Program

#: Taint label for thread identifiers (always a source, per the paper's
#: observation that the tool cannot distinguish tid-derived indices).
TID_TAINT = "<tid>"

Taint = FrozenSet[str]
_EMPTY: Taint = frozenset()


class TaintedArray(np.lib.mixins.NDArrayOperatorsMixin):
    """A lane vector carrying a set of taint-source labels.

    Arithmetic, comparisons, and NumPy ufuncs/functions propagate the union
    of the operands' taints.
    """

    __array_priority__ = 1000  # win binops against plain ndarrays

    def __init__(self, data, taint: Taint = _EMPTY) -> None:
        self.data = np.asarray(data)
        self.taint: Taint = frozenset(taint)

    # -- numpy protocol ------------------------------------------------------

    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        if method != "__call__" or kwargs.get("out") is not None:
            return NotImplemented
        taint = frozenset().union(*(i.taint for i in inputs
                                    if isinstance(i, TaintedArray)))
        raw = [i.data if isinstance(i, TaintedArray) else i for i in inputs]
        result = getattr(ufunc, method)(*raw, **kwargs)
        return TaintedArray(result, taint)

    def __array_function__(self, func, types, args, kwargs):
        taint = _collect_taint(args) | _collect_taint(tuple(kwargs.values()))
        raw_args = _strip(args)
        raw_kwargs = {key: _strip(val) for key, val in kwargs.items()}
        result = func(*raw_args, **raw_kwargs)
        if isinstance(result, np.ndarray):
            return TaintedArray(result, taint)
        return result

    # -- ndarray-ish surface --------------------------------------------------

    @property
    def shape(self):
        return self.data.shape

    @property
    def dtype(self):
        return self.data.dtype

    def astype(self, dtype):
        return TaintedArray(self.data.astype(dtype), self.taint)

    def __getitem__(self, item):
        return TaintedArray(self.data[item], self.taint)

    def __len__(self):
        return len(self.data)

    def __repr__(self):
        return f"TaintedArray(taint={sorted(self.taint)}, data={self.data!r})"


def _collect_taint(value) -> Taint:
    if isinstance(value, TaintedArray):
        return value.taint
    if isinstance(value, (tuple, list)):
        return frozenset().union(_EMPTY,
                                 *(_collect_taint(v) for v in value))
    return _EMPTY


def _strip(value):
    if isinstance(value, TaintedArray):
        return value.data
    if isinstance(value, tuple):
        return tuple(_strip(v) for v in value)
    if isinstance(value, list):
        return [_strip(v) for v in value]
    return value


def taint_of(value) -> Taint:
    return _collect_taint(value)


# ---------------------------------------------------------------------------
# findings
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PitchforkFinding:
    """One flagged instruction or branch."""

    kind: str                  # "memory" or "control"
    kernel_name: str
    block: str
    detail: str
    taint: Tuple[str, ...]

    @property
    def tid_only(self) -> bool:
        """True when the only taint source is the thread id — the paper's
        first false-positive class."""
        return set(self.taint) == {TID_TAINT}


@dataclass
class PitchforkReport:
    """All findings for one program."""

    findings: List[PitchforkFinding] = field(default_factory=list)

    def of_kind(self, kind: str) -> List[PitchforkFinding]:
        return [f for f in self.findings if f.kind == kind]

    @property
    def memory_findings(self) -> List[PitchforkFinding]:
        return self.of_kind("memory")

    @property
    def control_findings(self) -> List[PitchforkFinding]:
        return self.of_kind("control")

    @property
    def tid_false_positives(self) -> List[PitchforkFinding]:
        return [f for f in self.findings if f.tid_only]


# ---------------------------------------------------------------------------
# the exploring, taint-tracking warp context
# ---------------------------------------------------------------------------

class _ExploringBranch(BranchHandle):
    """Branch handle that explores both arms regardless of lane masks."""

    def _arm(self, label, taken):
        ctx = self._ctx
        saved = ctx.active
        mask = taken if taken.any() else self._outer
        ctx._set_active(mask)
        try:
            ctx.block(label)
            yield None
        finally:
            ctx._set_active(saved)


class TaintContext(WarpContext):
    """A :class:`WarpContext` that tracks taint instead of tracing.

    Loops are capped (path exploration, not execution) and memory safety is
    relaxed — indices are wrapped into the buffer — because the analysis
    explores paths with unconstrained values.
    """

    #: exploration bound for data-dependent loops
    LOOP_BOUND = 4

    def __init__(self, launch: LaunchConfig, kernel_name: str,
                 secret_labels: Set[str], report: PitchforkReport) -> None:
        super().__init__(launch=launch, block_id=0, warp_id=0,
                         emit=lambda event: None,
                         shared_alloc=self._shared_alloc)
        self._kernel_name = kernel_name
        self._secret_labels = set(secret_labels)
        self._report = report
        self._shared_buffers = {}

    def _shared_alloc(self, block_id, name, shape, dtype):
        key = (block_id, name)
        if key not in self._shared_buffers:
            from repro.gpusim.memory import (
                Allocation, DeviceBuffer, MemorySpace)
            data = np.zeros(shape, dtype=dtype)
            allocation = Allocation(alloc_id=-1 - len(self._shared_buffers),
                                    base=0, size=max(1, data.nbytes),
                                    space=MemorySpace.SHARED,
                                    label=f"shared.{name}")
            self._shared_buffers[key] = DeviceBuffer(allocation=allocation,
                                                     data=data)
        return self._shared_buffers[key]

    # -- taint sources ---------------------------------------------------------

    def global_tid(self):
        return TaintedArray(super().global_tid(), frozenset({TID_TAINT}))

    def thread_idx(self):
        x, y, z = super().thread_idx()
        tid = frozenset({TID_TAINT})
        return (TaintedArray(x, tid), TaintedArray(y, tid),
                TaintedArray(z, tid))

    # -- flagged operations ------------------------------------------------------

    def _flag(self, kind: str, detail: str, taint: Taint) -> None:
        self._report.findings.append(PitchforkFinding(
            kind=kind, kernel_name=self._kernel_name,
            block=self._current_label or "<entry>", detail=detail,
            taint=tuple(sorted(taint))))

    def _relevant(self, taint: Taint) -> Taint:
        """Taint sources pitchfork would treat as secret-bearing."""
        return frozenset(t for t in taint
                         if t == TID_TAINT or t in self._secret_labels)

    def _wrap_index(self, buf: DeviceBuffer, index):
        raw = index.data if isinstance(index, TaintedArray) else index
        raw = np.asarray(raw, dtype=np.int64) % max(1, buf.num_elements)
        return raw

    def load(self, buf: DeviceBuffer, index, space=None):
        relevant = self._relevant(taint_of(index))
        if relevant:
            self._flag("memory",
                       f"load from {buf.label!r} with tainted index",
                       relevant)
        value = super().load(buf, self._wrap_index(buf, index), space=space)
        taint = taint_of(index)
        if buf.label in self._secret_labels:
            taint = taint | frozenset({buf.label})
        return TaintedArray(value, taint)

    def store(self, buf: DeviceBuffer, index, values, space=None):
        relevant = self._relevant(taint_of(index))
        if relevant:
            self._flag("memory",
                       f"store to {buf.label!r} with tainted index",
                       relevant)
        super().store(buf, self._wrap_index(buf, index), _strip(values),
                      space=space)

    def atomic_add(self, buf: DeviceBuffer, index, values):
        relevant = self._relevant(taint_of(index))
        if relevant:
            self._flag("memory",
                       f"atomic to {buf.label!r} with tainted index",
                       relevant)
        super().atomic_add(buf, self._wrap_index(buf, index), _strip(values))

    def branch(self, cond):
        relevant = self._relevant(taint_of(cond))
        if relevant:
            # predication is not modelled: every tainted branch is flagged
            self._flag("control", "branch on tainted condition", relevant)
        from repro.gpusim.warp import lane_bool
        return _ExploringBranch(self, lane_bool(_strip(cond)))

    def while_(self, label, cond_fn, max_iter=1_000_000):
        first = cond_fn()
        relevant = self._relevant(taint_of(first))
        if relevant:
            self._flag("control", f"loop {label!r} on tainted condition",
                       relevant)
        iterations = 0
        for value in super().while_(label,
                                    lambda: _strip(cond_fn()),
                                    max_iter=max_iter):
            yield value
            iterations += 1
            if iterations >= self.LOOP_BOUND:
                break

    # -- unwrapping intrinsics ----------------------------------------------------

    def select(self, cond, if_true, if_false):
        taint = taint_of(cond) | taint_of(if_true) | taint_of(if_false)
        result = super().select(_strip(cond), _strip(if_true),
                                _strip(if_false))
        return TaintedArray(result, taint)

    def uniform(self, values):
        return super().uniform(_strip(values))

    def any(self, cond):
        return super().any(_strip(cond))

    def all(self, cond):
        return super().all(_strip(cond))

    def ballot(self, cond):
        return super().ballot(_strip(cond))

    def reduce_sum(self, values):
        return TaintedArray(np.asarray(super().reduce_sum(_strip(values))),
                            taint_of(values))

    def reduce_max(self, values):
        return TaintedArray(np.asarray(super().reduce_max(_strip(values))),
                            taint_of(values))

    def reduce_min(self, values):
        return TaintedArray(np.asarray(super().reduce_min(_strip(values))),
                            taint_of(values))

    def shfl(self, values, src_lane):
        return TaintedArray(super().shfl(_strip(values), src_lane),
                            taint_of(values))


# ---------------------------------------------------------------------------
# program-level driver
# ---------------------------------------------------------------------------

class _PitchforkRuntime(CudaRuntime):
    """Runtime that taint-analyzes each launched kernel instead of running it."""

    def __init__(self, device: Device, secret_labels: Set[str],
                 report: PitchforkReport) -> None:
        super().__init__(device)
        self._secret_labels = secret_labels
        self._report = report

    def _launch(self, api: str, kern: Kernel, grid, block, args) -> None:
        launch = LaunchConfig.create(grid, block)
        ctx = TaintContext(launch=launch, kernel_name=kern.name,
                           secret_labels=self._secret_labels,
                           report=self._report)
        kern(ctx, *args)


def pitchfork_analyze(program: Program, value: object,
                      secret_labels: Sequence[str],
                      device_config: Optional[DeviceConfig] = None
                      ) -> PitchforkReport:
    """Analyze every kernel *program* launches, pitchfork style.

    ``secret_labels`` marks the device buffers holding secrets (the user
    annotation a symbolic tool requires).  Thread identifiers are always
    treated as tainted, matching the tool's behaviour on CUDA IR.
    """
    report = PitchforkReport()
    device = Device(device_config or DeviceConfig())
    rt = _PitchforkRuntime(device, set(secret_labels), report)
    rt.call_stack_anchor = current_stack_depth()
    program(rt, value)
    return report
