"""Baselines from RQ3 (§VIII-D): DATA-style and pitchfork-style analyses.

Both comparators are implemented against the same simulator so their
failure modes can be measured, not merely asserted:

* :mod:`repro.baselines.data_tool` — a DATA-like dynamic differential
  analyzer.  Its host-only mode sees just Pin-visible events (it can find
  kernel leaks but is blind inside kernels); its per-thread mode records
  one trace per GPU thread, demonstrating the linear memory blow-up that
  motivates Owl's A-DCFG aggregation;
* :mod:`repro.baselines.pitchfork` — a pitchfork-like static taint
  analysis over the kernels.  It treats thread indices as unconstrained
  secret inputs and ignores predicated execution, reproducing the two
  false-positive classes the paper reports.
"""

from repro.baselines.data_tool import (
    DataToolReport,
    PerThreadTraceRecorder,
    data_tool_analyze,
    per_thread_memory_bytes,
)
from repro.baselines.pitchfork import (
    PitchforkFinding,
    PitchforkReport,
    pitchfork_analyze,
)

__all__ = [
    "DataToolReport",
    "PerThreadTraceRecorder",
    "PitchforkFinding",
    "PitchforkReport",
    "data_tool_analyze",
    "per_thread_memory_bytes",
    "pitchfork_analyze",
]
