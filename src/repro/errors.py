"""Owl's unified exception hierarchy.

Every error the reproduction raises on purpose descends from
:class:`OwlError`, so callers can write one ``except repro.OwlError`` around
a whole campaign.  The hierarchy is *dual-rooted* for one release: each class
also keeps the builtin type it historically was (``ValueError`` for bad
arguments, ``RuntimeError`` for broken invariants) as a parent, so existing
``except ValueError`` / ``except RuntimeError`` clauses keep catching exactly
what they caught before the migration.

The layout mirrors the subsystems::

    OwlError
    ├── ConfigError            (ValueError)   bad configuration / arguments
    ├── TraceError             (RuntimeError) recording & event-stream faults
    │   └── CohortEnvelopeError               cohort engine left its
    │                                         race-free envelope
    ├── WorkerError            (RuntimeError) worker-pool supervision gave up
    └── StoreError                            persistent store faults
        ├── StoreCorruptionError              integrity check failed on load
        ├── SerializationError (ValueError)   canonical codec rejected bytes
        └── CampaignError      (RuntimeError) campaign state inconsistency
            └── ServiceError                  detection-service faults
                ├── AuthError                 rejected credentials
                ├── QuotaError                tenant quota exhausted
                └── ServiceConnectionError (ConnectionError)
                                              service unreachable / hung up

This module must stay import-free of the rest of :mod:`repro` — it is the
one module every layer (gpusim, tracing, store, core) can depend on without
creating a cycle.
"""

from __future__ import annotations


class OwlError(Exception):
    """Base class of every intentional error raised by the Owl pipeline."""


class ConfigError(OwlError, ValueError):
    """A configuration value or argument is invalid.

    Raised eagerly (``OwlConfig.__post_init__``, CLI parsing, launch
    geometry) with a one-line message that names the valid choices, instead
    of failing deep inside phase 3.
    """


class TraceError(OwlError, RuntimeError):
    """Trace recording or the device event stream violated an invariant."""


class CohortEnvelopeError(TraceError):
    """The warp-cohort engine left its race-free equivalence envelope.

    Raised when a cohort launch cannot be proven equivalent to the per-warp
    reference loop — non-convergent splitting, a tripped runaway-kernel step
    budget, or an injected envelope violation.  The device catches this and
    transparently re-executes the launch on the per-warp reference engine
    (recording a :class:`~repro.resilience.events.DegradationEvent`), so it
    only escapes to callers when the reference path fails too.
    """


class WorkerError(OwlError, RuntimeError):
    """Worker-pool supervision exhausted its retry budget for a chunk."""


class StoreError(OwlError):
    """Base error for the persistent artifact store."""


class StoreCorruptionError(StoreError):
    """A stored artifact failed its integrity check on load."""


class SerializationError(StoreError, ValueError):
    """Canonical (de)serialisation rejected malformed or truncated bytes."""


class CampaignError(StoreError, RuntimeError):
    """Campaign state in the store contradicts the requested configuration."""


class ServiceError(CampaignError):
    """The detection service rejected or could not complete a request.

    Subclasses :class:`CampaignError` so pre-redesign ``except
    CampaignError`` clauses around service clients keep catching every
    transport-level failure they historically caught.
    """


class AuthError(ServiceError):
    """The service rejected the request's credentials (HTTP 401)."""


class QuotaError(ServiceError):
    """The tenant's quota is exhausted; retry after work drains (HTTP 429)."""


class ServiceConnectionError(ServiceError, ConnectionError):
    """The service is unreachable, or hung up mid-request (exit code 3)."""
