"""Merging A-DCFGs.

Two uses in the paper:

* trace recording folds every warp into one graph (done incrementally by
  :class:`~repro.adcfg.builder.ADCFGBuilder`);
* evidence collection (§VII-A step 2) merges the A-DCFGs of *aligned* kernel
  invocations across repeated executions: node/edge attributes are summed,
  memory records aggregated per (visit, instruction) slot.

Merging is only meaningful for invocations of the same kernel identity;
merging across identities is a usage error and raises.
"""

from __future__ import annotations

from repro.adcfg.graph import ADCFG


class MergeError(Exception):
    """Raised when incompatible A-DCFGs are merged."""


def merge_adcfg_into(target: ADCFG, source: ADCFG, scale: int = 1) -> ADCFG:
    """Fold *source* into *target* in place and return *target*.

    ``scale`` folds *source* in as *scale* identical repetitions in one
    pass — used by replica batching, where a deduplicated trace stands
    for several byte-identical runs.  Equivalent to calling this function
    *scale* times (all merged attributes are additive counts).
    """
    if target.kernel_identity != source.kernel_identity:
        raise MergeError(
            f"cannot merge {source.kernel_identity!r} into "
            f"{target.kernel_identity!r}: different kernel identities")
    target.total_threads = max(target.total_threads, source.total_threads)
    target.num_warps = max(target.num_warps, source.num_warps)

    for label, src_node in source.nodes.items():
        dst_node = target.node(label)
        dst_node.record_entry(src_node.entries * scale)
        for visit, instr, record in src_node.iter_instructions():
            # ensure the slot exists, then merge counts wholesale
            dst_node.record_access(visit=visit, instr=instr,
                                   space=record.space,
                                   is_store=record.is_store, keys=())
            dst_node.visits[visit][instr].merge(record, scale=scale)

    for key, src_edge in source.edges.items():
        target.edge(*key).merge(src_edge, scale=scale)
    return target


def merge_adcfg(first: ADCFG, second: ADCFG) -> ADCFG:
    """Return a new A-DCFG that is the aggregation of both inputs."""
    return merge_adcfg_into(first.copy(), second)
