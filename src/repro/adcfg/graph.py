"""A-DCFG node, edge, and graph types.

Structure (following §V-B of the paper):

* a :class:`Node` per basic block, extended with memory-access information:
  for the *j*-th visit of the block, one :class:`MemoryRecord` per memory
  instruction, each holding ``(normalised address -> access count)`` pairs
  aggregated over **all warps** — the de-duplication that keeps trace size
  bounded under massive threading;
* an :class:`Edge` per observed ``(src, dst)`` transition, with a traversal
  count and a histogram of the edge that *preceded* it (the "previous edge"
  attribute the paper stores for the leakage analysis — it is exactly what
  the per-node control-flow transition matrix of §VII-C is built from);
* multiple start/end points are allowed: the virtual :data:`START_LABEL` /
  :data:`END_LABEL` blocks absorb them, and unexecuted blocks simply never
  appear.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

#: Virtual predecessor of each warp's first basic block.
START_LABEL = "<START>"
#: Virtual successor of each warp's last basic block.
END_LABEL = "<END>"

#: A normalised memory location: (allocation label, byte offset).
AddressKey = Tuple[str, int]


@dataclass
class MemoryRecord:
    """Aggregated accesses of one memory instruction at one block visit.

    ``counts`` maps normalised addresses to the number of lanes (across all
    warps) that accessed them; ``space`` is the NVBit memory-space tag value
    and ``is_store`` distinguishes loads from stores.
    """

    space: int = 0
    is_store: bool = False
    counts: Dict[AddressKey, int] = field(default_factory=dict)

    def add(self, keys: Iterable[AddressKey]) -> None:
        """Count one access per key occurrence."""
        for key in keys:
            self.counts[key] = self.counts.get(key, 0) + 1

    def add_counts(self, keys: Sequence[AddressKey],
                   counts: Sequence[int]) -> None:
        """Bulk variant of :meth:`add`: fold pre-aggregated key counts.

        The columnar pipeline collapses one instruction's address vector
        into unique keys with multiplicities and lands the result here in
        one call instead of one :meth:`add` per lane.  *keys* must not
        contain duplicates (the empty-record fast path folds them with a
        single ``dict`` construction); *counts* must be plain ints.
        """
        existing = self.counts
        if not existing:
            self.counts = dict(zip(keys, counts))
            return
        get = existing.get
        for key, count in zip(keys, counts):
            existing[key] = get(key, 0) + count

    def merge(self, other: "MemoryRecord", scale: int = 1) -> None:
        """Fold *other*'s counts into this record (*scale* repetitions)."""
        for key, count in other.counts.items():
            self.counts[key] = self.counts.get(key, 0) + count * scale

    @property
    def total_accesses(self) -> int:
        return sum(self.counts.values())

    @property
    def distinct_addresses(self) -> int:
        return len(self.counts)

    def copy(self) -> "MemoryRecord":
        return MemoryRecord(space=self.space, is_store=self.is_store,
                            counts=dict(self.counts))

    def __eq__(self, other) -> bool:
        if not isinstance(other, MemoryRecord):
            return NotImplemented
        return (self.space == other.space and self.is_store == other.is_store
                and self.counts == other.counts)


@dataclass
class Node:
    """One basic block with its attributed memory information.

    ``visits[j][i]`` is the aggregated :class:`MemoryRecord` of memory
    instruction *i* during the *j*-th visit of the block (the paper's
    ``m_j`` compilation across warps).
    """

    label: str
    entries: int = 0
    visits: List[List[MemoryRecord]] = field(default_factory=list)

    def record_entry(self, count: int = 1) -> None:
        self.entries += count

    def record_access(self, visit: int, instr: int, space: int,
                      is_store: bool, keys: Iterable[AddressKey]) -> None:
        """Aggregate one warp's accesses into slot ``(visit, instr)``."""
        while len(self.visits) <= visit:
            self.visits.append([])
        slot_list = self.visits[visit]
        while len(slot_list) <= instr:
            slot_list.append(MemoryRecord())
        record = slot_list[instr]
        if not record.counts:
            record.space = space
            record.is_store = is_store
        record.add(keys)

    def record_access_bulk(self, visit: int, instr: int, space: int,
                           is_store: bool, keys: Sequence[AddressKey],
                           counts: Sequence[int]) -> None:
        """Bulk :meth:`record_access`: fold pre-counted keys into a slot."""
        while len(self.visits) <= visit:
            self.visits.append([])
        slot_list = self.visits[visit]
        while len(slot_list) <= instr:
            slot_list.append(MemoryRecord())
        record = slot_list[instr]
        if not record.counts:
            record.space = space
            record.is_store = is_store
        record.add_counts(keys, counts)

    def iter_instructions(self):
        """Yield ``(visit, instr, record)`` for every non-empty slot."""
        for visit, slots in enumerate(self.visits):
            for instr, record in enumerate(slots):
                if record.total_accesses:
                    yield visit, instr, record

    @property
    def total_accesses(self) -> int:
        return sum(record.total_accesses
                   for _v, _i, record in self.iter_instructions())

    def copy(self) -> "Node":
        return Node(label=self.label, entries=self.entries,
                    visits=[[r.copy() for r in slots] for slots in self.visits])

    def __eq__(self, other) -> bool:
        if not isinstance(other, Node):
            return NotImplemented
        return (self.label == other.label and self.entries == other.entries
                and self.visits == other.visits)


@dataclass
class Edge:
    """One observed control-flow transition ``src -> dst``.

    ``prev_counts[k]`` counts how often the traversal was immediately
    preceded by edge ``k -> src`` (with :data:`START_LABEL` for warp entry).
    """

    src: str
    dst: str
    count: int = 0
    prev_counts: Dict[str, int] = field(default_factory=dict)

    def record(self, prev_src: str, count: int = 1) -> None:
        self.count += count
        self.prev_counts[prev_src] = self.prev_counts.get(prev_src, 0) + count

    def merge(self, other: "Edge", scale: int = 1) -> None:
        if (self.src, self.dst) != (other.src, other.dst):
            raise ValueError("cannot merge edges with different endpoints")
        self.count += other.count * scale
        for prev, count in other.prev_counts.items():
            self.prev_counts[prev] = (self.prev_counts.get(prev, 0)
                                      + count * scale)

    def copy(self) -> "Edge":
        return Edge(src=self.src, dst=self.dst, count=self.count,
                    prev_counts=dict(self.prev_counts))

    def __eq__(self, other) -> bool:
        if not isinstance(other, Edge):
            return NotImplemented
        return (self.src == other.src and self.dst == other.dst
                and self.count == other.count
                and self.prev_counts == other.prev_counts)


class ADCFG:
    """One kernel invocation's attributed dynamic control-flow graph."""

    def __init__(self, kernel_identity: str, kernel_name: str = "",
                 total_threads: int = 0, num_warps: int = 0) -> None:
        self.kernel_identity = kernel_identity
        self.kernel_name = kernel_name or kernel_identity
        self.total_threads = total_threads
        self.num_warps = num_warps
        self.nodes: Dict[str, Node] = {}
        self.edges: Dict[Tuple[str, str], Edge] = {}
        # adjacency indexes: src -> [edges], dst -> [edges], maintained by
        # edge() so in_edges/out_edges are O(degree) instead of O(E) scans
        # (the transition-matrix construction queries them per node)
        self._out_index: Dict[str, List[Edge]] = {}
        self._in_index: Dict[str, List[Edge]] = {}
        self._indexed_edges = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def node(self, label: str) -> Node:
        """Get or create the node for *label*."""
        found = self.nodes.get(label)
        if found is None:
            found = Node(label=label)
            self.nodes[label] = found
        return found

    def edge(self, src: str, dst: str) -> Edge:
        """Get or create the edge ``src -> dst``."""
        key = (src, dst)
        found = self.edges.get(key)
        if found is None:
            self._ensure_indexes()
            found = Edge(src=src, dst=dst)
            self.edges[key] = found
            self._out_index.setdefault(src, []).append(found)
            self._in_index.setdefault(dst, []).append(found)
            self._indexed_edges = len(self.edges)
        return found

    def _ensure_indexes(self) -> None:
        """Rebuild the adjacency indexes after out-of-band edge insertion.

        Deserialisation populates ``self.edges`` directly; a count mismatch
        detects that and triggers one O(E) rebuild, after which queries are
        O(degree) again.
        """
        if self._indexed_edges == len(self.edges):
            return
        self._out_index = {}
        self._in_index = {}
        for edge in self.edges.values():
            self._out_index.setdefault(edge.src, []).append(edge)
            self._in_index.setdefault(edge.dst, []).append(edge)
        self._indexed_edges = len(self.edges)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def in_edges(self, label: str) -> List[Edge]:
        self._ensure_indexes()
        return list(self._in_index.get(label, ()))

    def out_edges(self, label: str) -> List[Edge]:
        self._ensure_indexes()
        return list(self._out_index.get(label, ()))

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def total_memory_accesses(self) -> int:
        return sum(node.total_accesses for node in self.nodes.values())

    def start_labels(self) -> List[str]:
        """Labels reached directly from warp entry (multiple allowed)."""
        return sorted({e.dst for e in self.out_edges(START_LABEL)})

    def end_labels(self) -> List[str]:
        """Labels from which warps exited (multiple allowed)."""
        return sorted({e.src for e in self.in_edges(END_LABEL)})

    def copy(self) -> "ADCFG":
        clone = ADCFG(kernel_identity=self.kernel_identity,
                      kernel_name=self.kernel_name,
                      total_threads=self.total_threads,
                      num_warps=self.num_warps)
        clone.nodes = {label: node.copy() for label, node in self.nodes.items()}
        clone.edges = {key: edge.copy() for key, edge in self.edges.items()}
        clone._ensure_indexes()
        return clone

    def __eq__(self, other) -> bool:
        if not isinstance(other, ADCFG):
            return NotImplemented
        return (self.kernel_identity == other.kernel_identity
                and self.nodes == other.nodes
                and self.edges == other.edges)

    def __repr__(self) -> str:
        return (f"ADCFG({self.kernel_identity!r}, nodes={self.num_nodes}, "
                f"edges={self.num_edges}, "
                f"accesses={self.total_memory_accesses})")
