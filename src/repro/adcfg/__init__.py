"""Attributed Dynamic Control Flow Graphs (A-DCFG).

The A-DCFG is the paper's central data structure (§V-B): a DCFG whose nodes
are basic blocks carrying per-visit, per-instruction memory-access
histograms, and whose edges carry traversal counts plus the distribution of
the *previous* edge (used to build the control-flow transition matrices of
§VII-C).  Folding every warp of a kernel into a single A-DCFG is what gives
Owl its scalability: redundant per-thread information is aggregated away
while the multiplicities (counts) are preserved.
"""

from repro.adcfg.builder import ADCFGBuilder
from repro.adcfg.graph import (
    END_LABEL,
    START_LABEL,
    ADCFG,
    Edge,
    MemoryRecord,
    Node,
)
from repro.adcfg.merge import merge_adcfg, merge_adcfg_into
from repro.adcfg.serialize import (
    adcfg_size_bytes,
    deserialize_adcfg,
    serialize_adcfg,
)

__all__ = [
    "ADCFG",
    "ADCFGBuilder",
    "Edge",
    "END_LABEL",
    "MemoryRecord",
    "Node",
    "START_LABEL",
    "adcfg_size_bytes",
    "deserialize_adcfg",
    "merge_adcfg",
    "merge_adcfg_into",
    "serialize_adcfg",
]
