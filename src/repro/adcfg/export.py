"""A-DCFG export: NetworkX graphs and Graphviz DOT.

Owl's leak reports name basic blocks; developers patching a kernel want to
*see* the control-flow neighbourhood of a flagged block.  This module turns
an A-DCFG into

* a :class:`networkx.DiGraph` with node/edge attributes (entries, traversal
  counts, memory-access totals) for programmatic analysis, and
* a Graphviz DOT string with leak highlighting for rendering.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

import networkx as nx

from repro.adcfg.graph import ADCFG, END_LABEL, START_LABEL


def to_networkx(graph: ADCFG) -> "nx.DiGraph":
    """Convert an A-DCFG into a NetworkX digraph.

    Node attributes: ``entries``, ``memory_accesses``, ``instructions``.
    Edge attributes: ``count``, ``prev_counts`` (dict).  The virtual
    START/END nodes are included when any edge references them.
    """
    out = nx.DiGraph(kernel_identity=graph.kernel_identity,
                     kernel_name=graph.kernel_name,
                     total_threads=graph.total_threads,
                     num_warps=graph.num_warps)
    for label, node in graph.nodes.items():
        instructions = sum(1 for _ in node.iter_instructions())
        out.add_node(label, entries=node.entries,
                     memory_accesses=node.total_accesses,
                     instructions=instructions)
    for (src, dst), edge in graph.edges.items():
        for endpoint in (src, dst):
            if endpoint not in out:
                out.add_node(endpoint, entries=0, memory_accesses=0,
                             instructions=0, virtual=endpoint in
                             (START_LABEL, END_LABEL))
        out.add_edge(src, dst, count=edge.count,
                     prev_counts=dict(edge.prev_counts))
    return out


def hot_paths(graph: ADCFG, top: int = 5):
    """The *top* most-traversed edges (excluding the virtual endpoints)."""
    real = [edge for (src, dst), edge in graph.edges.items()
            if src not in (START_LABEL, END_LABEL)
            and dst not in (START_LABEL, END_LABEL)]
    real.sort(key=lambda edge: edge.count, reverse=True)
    return [(edge.src, edge.dst, edge.count) for edge in real[:top]]


def _dot_escape(label: str) -> str:
    return label.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(graph: ADCFG,
           leaking_blocks: Optional[Iterable[str]] = None) -> str:
    """Render the A-DCFG as Graphviz DOT, highlighting *leaking_blocks*."""
    leaks: Set[str] = set(leaking_blocks or ())
    lines = [f'digraph "{_dot_escape(graph.kernel_name)}" {{',
             "  rankdir=TB;",
             '  node [shape=box, fontname="monospace"];']
    for label, node in sorted(graph.nodes.items()):
        text = (f"{label}\\nentries={node.entries}"
                f"\\naccesses={node.total_accesses}")
        style = ', style=filled, fillcolor="#f4cccc"' if label in leaks \
            else ""
        lines.append(f'  "{_dot_escape(label)}" [label="{text}"{style}];')
    for virtual in (START_LABEL, END_LABEL):
        if any(virtual in key for key in graph.edges):
            lines.append(f'  "{_dot_escape(virtual)}" '
                         f'[shape=ellipse, label="{_dot_escape(virtual)}"];')
    for (src, dst), edge in sorted(graph.edges.items()):
        lines.append(f'  "{_dot_escape(src)}" -> "{_dot_escape(dst)}" '
                     f'[label="{edge.count}"];')
    lines.append("}")
    return "\n".join(lines)
