"""Compact binary (de)serialisation of A-DCFGs.

Two jobs:

* persistence — traces are recorded once and analysed many times, so the
  graphs must round-trip losslessly;
* **trace-size accounting** — Fig. 5 and Table IV of the paper report trace
  sizes; :func:`adcfg_size_bytes` measures the serialised footprint, which is
  the honest equivalent of the paper's on-disk trace size.

Format (little-endian, versioned):

``magic "ADCF" | u16 version | u32 threads | u32 warps |``
``string table (u32 count, then u16 length + UTF-8 each) |``
``u32 identity-index | u32 name-index |``
``nodes (label, entries, visits -> instrs -> (space, is_store, pairs)) |``
``edges (src, dst, count, prev histogram)``
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from repro.adcfg.graph import ADCFG, Edge, MemoryRecord, Node
# canonical definition lives in repro.errors (shared hierarchy); this module
# remains its historical import location
from repro.errors import SerializationError

_MAGIC = b"ADCF"
_VERSION = 1


class Writer:
    """Little-endian struct writer shared by the binary trace formats."""

    def __init__(self) -> None:
        self._chunks: List[bytes] = []

    def pack(self, fmt: str, *values) -> None:
        self._chunks.append(struct.pack("<" + fmt, *values))

    def raw(self, data: bytes) -> None:
        self._chunks.append(data)

    def string(self, value: str) -> None:
        """Length-prefixed UTF-8 string (u32 length)."""
        encoded = value.encode("utf-8")
        self.pack("I", len(encoded))
        self.raw(encoded)

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)


class Reader:
    """Bounds-checked reader: every short read raises SerializationError.

    The store loads these payloads from disk, where they count as untrusted
    bytes (partial writes, bit rot), so besides truncation checks the reader
    offers :meth:`ensure_capacity` to reject absurd declared element counts
    *before* looping over them or allocating for them.
    """

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def unpack(self, fmt: str) -> Tuple:
        fmt = "<" + fmt
        size = struct.calcsize(fmt)
        if self._pos + size > len(self._data):
            raise SerializationError("truncated payload")
        values = struct.unpack_from(fmt, self._data, self._pos)
        self._pos += size
        return values

    def raw(self, size: int) -> bytes:
        if size < 0 or self._pos + size > len(self._data):
            raise SerializationError("truncated payload")
        chunk = self._data[self._pos:self._pos + size]
        self._pos += size
        return chunk

    def string(self) -> str:
        """Length-prefixed UTF-8 string (u32 length)."""
        (length,) = self.unpack("I")
        try:
            return self.raw(length).decode("utf-8")
        except UnicodeDecodeError as error:
            raise SerializationError(
                f"malformed UTF-8 string: {error}") from error

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def ensure_capacity(self, count: int, min_size: int, what: str) -> int:
        """Reject a declared element count that cannot possibly fit.

        Each element of *what* occupies at least *min_size* encoded bytes;
        a corrupt count field claiming more elements than the remaining
        payload could hold must fail here, not after a giant allocation or
        a billion-iteration parse loop.
        """
        if count < 0 or count * min_size > self.remaining:
            raise SerializationError(
                f"declared {count} {what} exceed the {self.remaining} "
                f"remaining payload bytes")
        return count

    @property
    def exhausted(self) -> bool:
        return self._pos == len(self._data)


#: Backwards-compatible aliases (pre-store internal names).
_Writer = Writer
_Reader = Reader


def _collect_strings(graph: ADCFG) -> List[str]:
    strings = {graph.kernel_identity, graph.kernel_name}
    strings.update(graph.nodes.keys())
    for (src, dst), edge in graph.edges.items():
        strings.add(src)
        strings.add(dst)
        strings.update(edge.prev_counts.keys())
    for node in graph.nodes.values():
        for _visit, _instr, record in node.iter_instructions():
            for label, _offset in record.counts:
                strings.add(label)
    return sorted(strings)


def serialize_adcfg(graph: ADCFG) -> bytes:
    """Serialise *graph* to bytes."""
    table = _collect_strings(graph)
    index: Dict[str, int] = {s: i for i, s in enumerate(table)}

    w = Writer()
    w.raw(_MAGIC)
    w.pack("HII", _VERSION, graph.total_threads, graph.num_warps)

    w.pack("I", len(table))
    for s in table:
        encoded = s.encode("utf-8")
        w.pack("H", len(encoded))
        w.raw(encoded)

    w.pack("II", index[graph.kernel_identity], index[graph.kernel_name])

    w.pack("I", len(graph.nodes))
    for label in sorted(graph.nodes):
        node = graph.nodes[label]
        w.pack("IQI", index[label], node.entries, len(node.visits))
        for slots in node.visits:
            w.pack("I", len(slots))
            for record in slots:
                w.pack("BBI", record.space, int(record.is_store),
                       len(record.counts))
                for (alloc_label, offset) in sorted(record.counts):
                    w.pack("IqQ", index[alloc_label], offset,
                           record.counts[(alloc_label, offset)])

    w.pack("I", len(graph.edges))
    for (src, dst) in sorted(graph.edges):
        edge = graph.edges[(src, dst)]
        w.pack("IIQI", index[src], index[dst], edge.count,
               len(edge.prev_counts))
        for prev in sorted(edge.prev_counts):
            w.pack("IQ", index[prev], edge.prev_counts[prev])

    return w.getvalue()


def _lookup(table: List[str], index: int) -> str:
    """String-table access with validation (corrupt payloads carry
    out-of-range indices; they must surface as SerializationError)."""
    if not 0 <= index < len(table):
        raise SerializationError(
            f"string index {index} outside table of {len(table)} entries")
    return table[index]


def deserialize_adcfg(data: bytes) -> ADCFG:
    """Reconstruct an :class:`ADCFG` from :func:`serialize_adcfg` output.

    Every malformed input — short reads, out-of-range table indices,
    implausible element counts — raises :class:`SerializationError`; the
    store feeds this function bytes straight from disk, so a corrupt blob
    must never surface as a bare ``struct.error`` or ``IndexError``.
    """
    try:
        return _deserialize_adcfg_unchecked(data)
    except SerializationError:
        raise
    except (struct.error, IndexError, KeyError, OverflowError,
            MemoryError) as error:
        # belt-and-braces: the explicit checks below should make this
        # unreachable, but a corrupt payload must never escape as a bare
        # parsing exception
        raise SerializationError(
            f"malformed A-DCFG payload: {error}") from error


def _deserialize_adcfg_unchecked(data: bytes) -> ADCFG:
    r = Reader(data)
    if r.raw(4) != _MAGIC:
        raise SerializationError("bad magic: not an A-DCFG payload")
    version, total_threads, num_warps = r.unpack("HII")
    if version != _VERSION:
        raise SerializationError(f"unsupported A-DCFG version {version}")

    (table_len,) = r.unpack("I")
    r.ensure_capacity(table_len, 2, "string-table entries")
    table: List[str] = []
    for _ in range(table_len):
        (str_len,) = r.unpack("H")
        try:
            table.append(r.raw(str_len).decode("utf-8"))
        except UnicodeDecodeError as error:
            raise SerializationError(
                f"malformed UTF-8 in string table: {error}") from error

    identity_idx, name_idx = r.unpack("II")
    graph = ADCFG(kernel_identity=_lookup(table, identity_idx),
                  kernel_name=_lookup(table, name_idx),
                  total_threads=total_threads, num_warps=num_warps)

    (num_nodes,) = r.unpack("I")
    r.ensure_capacity(num_nodes, 16, "nodes")
    for _ in range(num_nodes):
        label_idx, entries, num_visits = r.unpack("IQI")
        r.ensure_capacity(num_visits, 4, "node visits")
        node = Node(label=_lookup(table, label_idx), entries=entries)
        for _v in range(num_visits):
            (num_instrs,) = r.unpack("I")
            r.ensure_capacity(num_instrs, 6, "memory instructions")
            slots = []
            for _i in range(num_instrs):
                space, is_store, num_pairs = r.unpack("BBI")
                r.ensure_capacity(num_pairs, 20, "access-count pairs")
                record = MemoryRecord(space=space, is_store=bool(is_store))
                for _p in range(num_pairs):
                    alloc_idx, offset, count = r.unpack("IqQ")
                    record.counts[(_lookup(table, alloc_idx), offset)] = count
                slots.append(record)
            node.visits.append(slots)
        graph.nodes[node.label] = node

    (num_edges,) = r.unpack("I")
    r.ensure_capacity(num_edges, 20, "edges")
    for _ in range(num_edges):
        src_idx, dst_idx, count, num_prev = r.unpack("IIQI")
        r.ensure_capacity(num_prev, 12, "predecessor counts")
        edge = Edge(src=_lookup(table, src_idx),
                    dst=_lookup(table, dst_idx), count=count)
        for _p in range(num_prev):
            prev_idx, prev_count = r.unpack("IQ")
            edge.prev_counts[_lookup(table, prev_idx)] = prev_count
        graph.edges[(edge.src, edge.dst)] = edge

    if not r.exhausted:
        raise SerializationError("trailing bytes after A-DCFG payload")
    return graph


def adcfg_size_bytes(graph: ADCFG) -> int:
    """Serialised size of *graph* (trace-size accounting for Fig. 5).

    Computed analytically from the element counts — the format is fixed
    little-endian with no padding, so the size is fully determined without
    materialising the payload.  Always equals
    ``len(serialize_adcfg(graph))`` (asserted by the serialisation tests);
    the recording pool sizes every trace it touches, which made the
    build-and-discard serialisation a measurable slice of replica-batched
    recording.
    """
    # header: magic + (version u16, threads u32, warps u32)
    size = 4 + 10
    # string table: u32 count, then u16 length + UTF-8 bytes each
    size += 4
    for s in _collect_strings(graph):
        size += 2 + len(s.encode("utf-8"))
    # identity + name indices
    size += 8
    # nodes: u32 count; per node (IQI)=16, per visit u32, per record
    # (BBI)=6 plus (IqQ)=20 per access-count pair
    size += 4
    for node in graph.nodes.values():
        size += 16
        for slots in node.visits:
            size += 4
            for record in slots:
                size += 6 + 20 * len(record.counts)
    # edges: u32 count; per edge (IIQI)=20 plus (IQ)=12 per predecessor
    size += 4
    for edge in graph.edges.values():
        size += 20 + 12 * len(edge.prev_counts)
    return size
