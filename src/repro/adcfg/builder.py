"""Fold per-warp trace events into a single A-DCFG.

The builder consumes the event stream of one kernel invocation — basic-block
entries and memory accesses tagged with ``(block id, warp id)`` — and
aggregates all warps into one graph, eliminating the per-thread redundancy
that makes naive multi-thread tracing (à la DATA) blow up in memory.

Per warp, the builder tracks the previous basic block so it can record
edges with their predecessor-edge histogram.  Warp entry and exit are
bracketed with the virtual :data:`~repro.adcfg.graph.START_LABEL` /
:data:`~repro.adcfg.graph.END_LABEL` blocks (the paper treats the first
``src`` and last ``dst`` as a special basic-block type).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.adcfg.graph import ADCFG, END_LABEL, START_LABEL, AddressKey
from repro.gpusim.events import (
    BasicBlockEvent,
    MemoryAccessEvent,
)

#: Maps a raw device byte address to a normalised (label, offset) key.
Normalizer = Callable[[int], AddressKey]


def identity_normalizer(address: int) -> AddressKey:
    """Fallback normaliser: keep raw addresses (single anonymous region)."""
    return ("<raw>", address)


class ADCFGBuilder:
    """Incremental A-DCFG construction for one kernel invocation."""

    def __init__(self, kernel_identity: str, kernel_name: str = "",
                 total_threads: int = 0, num_warps: int = 0,
                 normalizer: Optional[Normalizer] = None) -> None:
        self.graph = ADCFG(kernel_identity=kernel_identity,
                           kernel_name=kernel_name,
                           total_threads=total_threads, num_warps=num_warps)
        self._normalizer = normalizer or identity_normalizer
        # per-warp control-flow context: (prev_prev_label, prev_label)
        self._warp_state: Dict[Tuple[int, int], Tuple[str, str]] = {}

    # ------------------------------------------------------------------
    # event intake
    # ------------------------------------------------------------------

    def on_basic_block(self, event: BasicBlockEvent) -> None:
        """Record a warp's entry into a basic block."""
        warp_key = (event.block_id, event.warp_id)
        prev_prev, prev = self._warp_state.get(warp_key,
                                               (START_LABEL, START_LABEL))
        node = self.graph.node(event.label)
        node.record_entry()
        edge = self.graph.edge(prev, event.label)
        edge.record(prev_src=prev_prev)
        self._warp_state[warp_key] = (prev, event.label)

    def on_memory_access(self, event: MemoryAccessEvent) -> None:
        """Record a warp's memory instruction into its (visit, instr) slot."""
        node = self.graph.node(event.label)
        keys = [self._normalizer(address) for address in event.addresses]
        node.record_access(visit=event.visit, instr=event.instr,
                           space=event.space.value, is_store=event.is_store,
                           keys=keys)

    # ------------------------------------------------------------------
    # finalisation
    # ------------------------------------------------------------------

    def finish(self) -> ADCFG:
        """Close every warp's trace with the virtual END block and return
        the completed graph."""
        for (prev_prev, prev) in self._warp_state.values():
            self.graph.edge(prev, END_LABEL).record(prev_src=prev_prev)
        self._warp_state = {}
        return self.graph
