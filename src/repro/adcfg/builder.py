"""Fold per-warp trace events into a single A-DCFG.

The builder consumes the event stream of one kernel invocation — basic-block
entries and memory accesses tagged with ``(block id, warp id)`` — and
aggregates all warps into one graph, eliminating the per-thread redundancy
that makes naive multi-thread tracing (à la DATA) blow up in memory.

Per warp, the builder tracks the previous basic block so it can record
edges with their predecessor-edge histogram.  Warp entry and exit are
bracketed with the virtual :data:`~repro.adcfg.graph.START_LABEL` /
:data:`~repro.adcfg.graph.END_LABEL` blocks (the paper treats the first
``src`` and last ``dst`` as a special basic-block type).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.adcfg.graph import ADCFG, END_LABEL, START_LABEL, AddressKey
from repro.gpusim.events import (
    BasicBlockEvent,
    MemoryAccessEvent,
    MemoryBatchEvent,
)

#: Maps a raw device byte address to a normalised (label, offset) key.
Normalizer = Callable[[int], AddressKey]

#: Maps a whole address array to its normalised keys in one call.
BatchNormalizer = Callable[[np.ndarray], List[AddressKey]]


def identity_normalizer(address: int) -> AddressKey:
    """Fallback normaliser: keep raw addresses (single anonymous region)."""
    return ("<raw>", address)


class ADCFGBuilder:
    """Incremental A-DCFG construction for one kernel invocation."""

    def __init__(self, kernel_identity: str, kernel_name: str = "",
                 total_threads: int = 0, num_warps: int = 0,
                 normalizer: Optional[Normalizer] = None,
                 batch_normalizer: Optional[BatchNormalizer] = None) -> None:
        self.graph = ADCFG(kernel_identity=kernel_identity,
                           kernel_name=kernel_name,
                           total_threads=total_threads, num_warps=num_warps)
        self._normalizer = normalizer or identity_normalizer
        self._batch_normalizer = batch_normalizer
        # per-warp control-flow context: (prev_prev_label, prev_label)
        self._warp_state: Dict[Tuple[int, int], Tuple[str, str]] = {}

    # ------------------------------------------------------------------
    # event intake
    # ------------------------------------------------------------------

    def on_basic_block(self, event: BasicBlockEvent) -> None:
        """Record a warp's entry into a basic block."""
        warp_key = (event.block_id, event.warp_id)
        prev_prev, prev = self._warp_state.get(warp_key,
                                               (START_LABEL, START_LABEL))
        node = self.graph.node(event.label)
        node.record_entry()
        edge = self.graph.edge(prev, event.label)
        edge.record(prev_src=prev_prev)
        self._warp_state[warp_key] = (prev, event.label)

    def on_memory_access(self, event: MemoryAccessEvent) -> None:
        """Record a warp's memory instruction into its (visit, instr) slot."""
        node = self.graph.node(event.label)
        keys = [self._normalizer(address) for address in event.addresses]
        node.record_access(visit=event.visit, instr=event.instr,
                           space=event.space.value, is_store=event.is_store,
                           keys=keys)

    def on_memory_batch(self, event: MemoryBatchEvent) -> None:
        """Bulk-fold one warp's columnar memory batch.

        The whole batch collapses in three vectorised steps: one
        ``lexsort`` over ``(instruction, address)`` groups every
        instruction's repeated addresses into runs, the run starts yield
        unique ``(instruction, address)`` pairs with multiplicities
        (address → (allocation, offset) is injective, so counting raw
        addresses counts normalised keys), and the unique addresses of
        *all* instructions are normalised with a single batch-normaliser
        call.  Only the per-slot dict folds remain per-instruction.  The
        result is identical to folding the expanded per-instruction events
        one lane at a time (asserted by the equality tests).
        """
        addresses = event.addresses
        extents = event.extents
        n_instr = event.num_instructions
        total = addresses.shape[0]
        if total == 0:
            return
        instr_of_addr = np.repeat(np.arange(n_instr), np.diff(extents))
        low = int(addresses.min())
        span = int(addresses.max()) - low + 1
        if n_instr * span < 2 ** 63:
            # Pack (instruction, address) into one int64 and sort the packed
            # values directly — one non-stable value sort instead of
            # lexsort's two stable argsorts (equal keys are identical pairs,
            # so stability is irrelevant), and the unique pairs unpack
            # straight from the sorted keys.
            packed = instr_of_addr * span + (addresses - low)
            packed.sort()
            run_start = np.empty(total, dtype=bool)
            run_start[0] = True
            run_start[1:] = packed[1:] != packed[:-1]
            starts = np.flatnonzero(run_start)
            unique_packed = packed[starts]
            unique_instr = unique_packed // span
            unique_addr = unique_packed % span + low
        else:
            order = np.lexsort((addresses, instr_of_addr))
            sorted_addr = addresses[order]
            sorted_instr = instr_of_addr[order]
            run_start = np.empty(total, dtype=bool)
            run_start[0] = True
            run_start[1:] = ((sorted_addr[1:] != sorted_addr[:-1])
                             | (sorted_instr[1:] != sorted_instr[:-1]))
            starts = np.flatnonzero(run_start)
            unique_addr = sorted_addr[starts]
            unique_instr = sorted_instr[starts]
        counts = np.diff(starts, append=total).tolist()
        if self._batch_normalizer is not None:
            keys = self._batch_normalizer(unique_addr)
        else:
            keys = [self._normalizer(address)
                    for address in unique_addr.tolist()]
        # slice boundaries of each instruction's unique keys
        bounds = np.searchsorted(unique_instr,
                                 np.arange(n_instr + 1)).tolist()

        labels = event.labels
        label_ids = event.label_ids.tolist()
        visits = event.visits.tolist()
        instrs = event.instrs.tolist()
        spaces = event.spaces.tolist()
        stores = event.is_stores.tolist()
        node = self.graph.node
        # one node lookup per distinct label, not per instruction
        nodes = [node(label) for label in labels]
        for i, label_id in enumerate(label_ids):
            lo, hi = bounds[i], bounds[i + 1]
            nodes[label_id].record_access_bulk(
                visit=visits[i], instr=instrs[i], space=spaces[i],
                is_store=stores[i], keys=keys[lo:hi], counts=counts[lo:hi])

    # ------------------------------------------------------------------
    # finalisation
    # ------------------------------------------------------------------

    def finish(self) -> ADCFG:
        """Close every warp's trace with the virtual END block and return
        the completed graph."""
        for (prev_prev, prev) in self._warp_state.values():
            self.graph.edge(prev, END_LABEL).record(prev_src=prev_prev)
        self._warp_state = {}
        return self.graph
