"""Fold per-warp trace events into a single A-DCFG.

The builder consumes the event stream of one kernel invocation — basic-block
entries and memory accesses tagged with ``(block id, warp id)`` — and
aggregates all warps into one graph, eliminating the per-thread redundancy
that makes naive multi-thread tracing (à la DATA) blow up in memory.

Per warp, the builder tracks the previous basic block so it can record
edges with their predecessor-edge histogram.  Warp entry and exit are
bracketed with the virtual :data:`~repro.adcfg.graph.START_LABEL` /
:data:`~repro.adcfg.graph.END_LABEL` blocks (the paper treats the first
``src`` and last ``dst`` as a special basic-block type).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.adcfg.graph import ADCFG, END_LABEL, START_LABEL, AddressKey
from repro.gpusim.events import (
    BasicBlockEvent,
    MemoryAccessEvent,
    MemoryBatchEvent,
)

#: Maps a raw device byte address to a normalised (label, offset) key.
Normalizer = Callable[[int], AddressKey]

#: Maps a whole address array to its normalised keys in one call.
BatchNormalizer = Callable[[np.ndarray], List[AddressKey]]

#: Maps a whole address array to interned key ids plus the id → key table
#: (may return None when the packed representation cannot hold the keys).
KeyIdNormalizer = Callable[
    [np.ndarray], Optional[Tuple[np.ndarray, List[AddressKey]]]]


def identity_normalizer(address: int) -> AddressKey:
    """Fallback normaliser: keep raw addresses (single anonymous region)."""
    return ("<raw>", address)


class ADCFGBuilder:
    """Incremental A-DCFG construction for one kernel invocation."""

    def __init__(self, kernel_identity: str, kernel_name: str = "",
                 total_threads: int = 0, num_warps: int = 0,
                 normalizer: Optional[Normalizer] = None,
                 batch_normalizer: Optional[BatchNormalizer] = None,
                 key_id_normalizer: Optional[KeyIdNormalizer] = None) -> None:
        self.graph = ADCFG(kernel_identity=kernel_identity,
                           kernel_name=kernel_name,
                           total_threads=total_threads, num_warps=num_warps)
        self._normalizer = normalizer or identity_normalizer
        self._batch_normalizer = batch_normalizer
        self._key_id_normalizer = key_id_normalizer
        # per-warp control-flow context: (prev_prev_label, prev_label)
        self._warp_state: Dict[Tuple[int, int], Tuple[str, str]] = {}
        # columnar batches buffered for the kernel-wide fold
        self._pending_batches: List[MemoryBatchEvent] = []

    # ------------------------------------------------------------------
    # event intake
    # ------------------------------------------------------------------

    def on_basic_block(self, event: BasicBlockEvent) -> None:
        """Record a warp's entry into a basic block."""
        warp_key = (event.block_id, event.warp_id)
        prev_prev, prev = self._warp_state.get(warp_key,
                                               (START_LABEL, START_LABEL))
        node = self.graph.node(event.label)
        node.record_entry()
        edge = self.graph.edge(prev, event.label)
        edge.record(prev_src=prev_prev)
        self._warp_state[warp_key] = (prev, event.label)

    def on_memory_access(self, event: MemoryAccessEvent) -> None:
        """Record a warp's memory instruction into its (visit, instr) slot."""
        node = self.graph.node(event.label)
        keys = [self._normalizer(address) for address in event.addresses]
        node.record_access(visit=event.visit, instr=event.instr,
                           space=event.space.value, is_store=event.is_store,
                           keys=keys)

    def on_memory_batch(self, event: MemoryBatchEvent) -> None:
        """Buffer one warp's columnar memory batch for the kernel-wide fold.

        Batches are not folded as they arrive: they accumulate until
        :meth:`fold_pending_batches` (called by :meth:`finish`) collapses
        every warp of the invocation in a single vectorised pass.  Folding
        kernel-wide instead of per warp means each ``(visit, instr)`` slot
        is written exactly once — the counts dict is built with one
        ``dict(zip(...))`` instead of one get-and-add per key per warp —
        and addresses shared between warps (lookup tables, broadcast
        buffers) are normalised and counted once.  The result is identical
        to folding each batch on arrival (asserted by the equality tests).
        """
        self._pending_batches.append(event)

    def take_pending_batches(self) -> List[MemoryBatchEvent]:
        """Hand back (and clear) the buffered batches.

        Degradation hook: when the kernel-wide fold fails, the monitor
        takes the untouched batches and replays them per event.
        """
        batches = self._pending_batches
        self._pending_batches = []
        return batches

    def fold_pending_batches(self) -> None:
        """Fold every buffered batch into the graph in one vectorised pass.

        All warps' instruction slots are interned into one table, the
        concatenated ``(slot, address)`` pairs collapse to unique pairs
        with multiplicities through one packed sort, and the unique
        addresses of the whole kernel are normalised with a single
        batch-normaliser call.  Each populated slot then receives exactly
        one :meth:`~repro.adcfg.graph.Node.record_access_bulk` call.  Any
        failure happens before the graph is touched (packing, sorting and
        normalisation all precede the apply loop), so the caller can fall
        back to per-event replay from a clean slate; the buffer is cleared
        only on success.
        """
        batches = [event for event in self._pending_batches
                   if event.addresses.shape[0] > 0]
        if not batches:
            self._pending_batches = []
            return
        label_table: List[str] = []
        label_index: Dict[str, int] = {}
        glabel_parts = []
        for event in batches:
            ids = []
            for label in event.labels:
                idx = label_index.get(label)
                if idx is None:
                    idx = label_index[label] = len(label_table)
                    label_table.append(label)
                ids.append(idx)
            glabel_parts.append(
                np.asarray(ids, dtype=np.int64)[event.label_ids])
        glabels = np.concatenate(glabel_parts)
        visits = np.concatenate(
            [e.visits for e in batches]).astype(np.int64, copy=False)
        instrs = np.concatenate(
            [e.instrs for e in batches]).astype(np.int64, copy=False)
        spaces = np.concatenate(
            [e.spaces for e in batches]).astype(np.int64, copy=False)
        stores = np.concatenate(
            [e.is_stores for e in batches]).astype(np.int64, copy=False)
        visit_span = int(visits.max()) + 1
        instr_span = int(instrs.max()) + 1
        if len(label_table) * visit_span * instr_span >= 2 ** 63:
            # slot packing would overflow int64 (absurd visit/instr counts);
            # fall back to folding each batch separately
            for event in batches:
                self._fold_single_batch(event)
            self._pending_batches = []
            return
        packed_slot = (glabels * visit_span + visits) * instr_span + instrs
        slot_keys, slot_ids = np.unique(packed_slot, return_inverse=True)
        n_slots = int(slot_keys.shape[0])
        slot_space = np.zeros(n_slots, dtype=np.int64)
        slot_space[slot_ids] = spaces
        slot_store = np.zeros(n_slots, dtype=np.int64)
        slot_store[slot_ids] = stores
        slot_glabel = (slot_keys // (visit_span * instr_span)).tolist()
        slot_visit = (slot_keys // instr_span % visit_span).tolist()
        slot_instr = (slot_keys % instr_span).tolist()

        addresses = np.concatenate([e.addresses for e in batches])
        lane_counts = np.concatenate([np.diff(e.extents) for e in batches])
        slot_of_addr = np.repeat(slot_ids, lane_counts)
        total = addresses.shape[0]
        low = int(addresses.min())
        span = int(addresses.max()) - low + 1
        if n_slots * span < 2 ** 63:
            packed = slot_of_addr * span + (addresses - low)
            packed.sort()
            run_start = np.empty(total, dtype=bool)
            run_start[0] = True
            run_start[1:] = packed[1:] != packed[:-1]
            starts = np.flatnonzero(run_start)
            unique_packed = packed[starts]
            unique_slot = unique_packed // span
            unique_addr = unique_packed % span + low
        else:
            order = np.lexsort((addresses, slot_of_addr))
            sorted_addr = addresses[order]
            sorted_slot = slot_of_addr[order]
            run_start = np.empty(total, dtype=bool)
            run_start[0] = True
            run_start[1:] = ((sorted_addr[1:] != sorted_addr[:-1])
                             | (sorted_slot[1:] != sorted_slot[:-1]))
            starts = np.flatnonzero(run_start)
            unique_addr = sorted_addr[starts]
            unique_slot = sorted_slot[starts]
        counts = np.diff(starts, append=total)
        # normalise each pair's address to an interned key id.  Address →
        # key is only injective within a block — shared memory maps offset
        # 0 of every block to the same key — so kernel-wide pairs must
        # re-aggregate by key id before the per-slot dict fold
        ids_result = (self._key_id_normalizer(unique_addr)
                      if self._key_id_normalizer is not None else None)
        if ids_result is not None:
            pair_key_ids, key_objects = ids_result
        else:
            addr_vals, val_inv = np.unique(unique_addr, return_inverse=True)
            if self._batch_normalizer is not None:
                val_keys = self._batch_normalizer(addr_vals)
            else:
                val_keys = [self._normalizer(address)
                            for address in addr_vals.tolist()]
            key_index: Dict[AddressKey, int] = {}
            key_objects = []
            val_key_ids = np.empty(len(val_keys), dtype=np.int64)
            for i, key in enumerate(val_keys):
                kid = key_index.get(key)
                if kid is None:
                    kid = key_index[key] = len(key_objects)
                    key_objects.append(key)
                val_key_ids[i] = kid
            pair_key_ids = val_key_ids[val_inv]
        n_keys = len(key_objects)
        if n_slots * n_keys >= 2 ** 63:
            for event in batches:
                self._fold_single_batch(event)
            self._pending_batches = []
            return
        pair_packed = unique_slot * n_keys + pair_key_ids
        order = np.argsort(pair_packed)
        sorted_pairs = pair_packed[order]
        pair_start = np.empty(sorted_pairs.shape[0], dtype=bool)
        pair_start[0] = True
        pair_start[1:] = sorted_pairs[1:] != sorted_pairs[:-1]
        pair_starts = np.flatnonzero(pair_start)
        agg_counts = np.add.reduceat(counts[order], pair_starts).tolist()
        agg_pairs = sorted_pairs[pair_starts]
        agg_slot = agg_pairs // n_keys
        agg_key_ids = (agg_pairs % n_keys).tolist()
        bounds = np.searchsorted(agg_slot,
                                 np.arange(n_slots + 1)).tolist()
        node = self.graph.node
        for sid in range(n_slots):
            lo, hi = bounds[sid], bounds[sid + 1]
            node(label_table[slot_glabel[sid]]).record_access_bulk(
                visit=slot_visit[sid], instr=slot_instr[sid],
                space=int(slot_space[sid]), is_store=bool(slot_store[sid]),
                keys=[key_objects[k] for k in agg_key_ids[lo:hi]],
                counts=agg_counts[lo:hi])
        self._pending_batches = []

    def _fold_single_batch(self, event: MemoryBatchEvent) -> None:
        """Fold one warp's batch immediately (kernel-wide fold fallback).

        The original per-batch fold: one ``lexsort`` over
        ``(instruction, address)`` groups every instruction's repeated
        addresses into runs, the run starts yield unique pairs with
        multiplicities, and the unique addresses are normalised with a
        single batch-normaliser call.
        """
        addresses = event.addresses
        extents = event.extents
        n_instr = event.num_instructions
        total = addresses.shape[0]
        if total == 0:
            return
        instr_of_addr = np.repeat(np.arange(n_instr), np.diff(extents))
        low = int(addresses.min())
        span = int(addresses.max()) - low + 1
        if n_instr * span < 2 ** 63:
            # Pack (instruction, address) into one int64 and sort the packed
            # values directly — one non-stable value sort instead of
            # lexsort's two stable argsorts (equal keys are identical pairs,
            # so stability is irrelevant), and the unique pairs unpack
            # straight from the sorted keys.
            packed = instr_of_addr * span + (addresses - low)
            packed.sort()
            run_start = np.empty(total, dtype=bool)
            run_start[0] = True
            run_start[1:] = packed[1:] != packed[:-1]
            starts = np.flatnonzero(run_start)
            unique_packed = packed[starts]
            unique_instr = unique_packed // span
            unique_addr = unique_packed % span + low
        else:
            order = np.lexsort((addresses, instr_of_addr))
            sorted_addr = addresses[order]
            sorted_instr = instr_of_addr[order]
            run_start = np.empty(total, dtype=bool)
            run_start[0] = True
            run_start[1:] = ((sorted_addr[1:] != sorted_addr[:-1])
                             | (sorted_instr[1:] != sorted_instr[:-1]))
            starts = np.flatnonzero(run_start)
            unique_addr = sorted_addr[starts]
            unique_instr = sorted_instr[starts]
        counts = np.diff(starts, append=total).tolist()
        if self._batch_normalizer is not None:
            keys = self._batch_normalizer(unique_addr)
        else:
            keys = [self._normalizer(address)
                    for address in unique_addr.tolist()]
        # slice boundaries of each instruction's unique keys
        bounds = np.searchsorted(unique_instr,
                                 np.arange(n_instr + 1)).tolist()

        labels = event.labels
        label_ids = event.label_ids.tolist()
        visits = event.visits.tolist()
        instrs = event.instrs.tolist()
        spaces = event.spaces.tolist()
        stores = event.is_stores.tolist()
        node = self.graph.node
        # one node lookup per distinct label, not per instruction
        nodes = [node(label) for label in labels]
        for i, label_id in enumerate(label_ids):
            lo, hi = bounds[i], bounds[i + 1]
            nodes[label_id].record_access_bulk(
                visit=visits[i], instr=instrs[i], space=spaces[i],
                is_store=stores[i], keys=keys[lo:hi], counts=counts[lo:hi])

    # ------------------------------------------------------------------
    # finalisation
    # ------------------------------------------------------------------

    def finish(self) -> ADCFG:
        """Close every warp's trace with the virtual END block and return
        the completed graph."""
        self.fold_pending_batches()
        for (prev_prev, prev) in self._warp_state.values():
            self.graph.edge(prev, END_LABEL).record(prev_src=prev_prev)
        self._warp_state = {}
        return self.graph
