"""Lightweight per-phase wall-clock profiling for the pipeline.

The ``--profile`` CLI flag enables a process-global :class:`PhaseProfiler`;
instrumented hot spots (device launch, event emission, A-DCFG folding)
record into it only while one is active, so the default path pays a single
``None`` check per event.  Phases are plain string keys:

* ``kernel_execute`` — time inside ``Device.launch`` minus event emission;
* ``event_emit``     — trace-listener dispatch (includes folding; the CLI
  reports it net of ``adcfg_fold``);
* ``adcfg_fold``     — the A-DCFG monitor's per-event folding work;
* the analysis phases (``analysis``, ``evidence_fold``) come from the
  pipeline's existing :class:`PhaseStats` rather than from hooks.

This module must stay dependency-free (stdlib only): it is imported by
:mod:`repro.gpusim.device`, which sits below everything else in the
package's import graph.
"""

from __future__ import annotations

from typing import Dict, Optional


class PhaseProfiler:
    """Accumulates wall-clock seconds and hit counts per phase."""

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}

    def add(self, phase: str, seconds: float, count: int = 1) -> None:
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds
        self.counts[phase] = self.counts.get(phase, 0) + count

    def get(self, phase: str) -> float:
        return self.seconds.get(phase, 0.0)


_active: Optional[PhaseProfiler] = None


def profiler() -> Optional[PhaseProfiler]:
    """The active profiler, or None when profiling is off (the fast path)."""
    return _active


def enable(existing: Optional[PhaseProfiler] = None) -> PhaseProfiler:
    """Install (and return) a process-global profiler."""
    global _active
    _active = existing if existing is not None else PhaseProfiler()
    return _active


def disable() -> Optional[PhaseProfiler]:
    """Deactivate profiling and return the profiler that was active."""
    global _active
    previous = _active
    _active = None
    return previous
