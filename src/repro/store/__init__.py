"""Persistent trace store + campaign engine.

Turns one-shot ``Owl.detect`` calls into cached, resumable, diffable
campaigns:

* :class:`TraceStore` — a content-addressed, versioned on-disk artifact
  store (compressed trace/evidence blobs, JSON manifest, atomic writes,
  corruption detection, ``gc``);
* :class:`Campaign` — binds a store to one named program + configuration
  and gives the pipeline trace caching, evidence checkpoints and report
  reuse (``Owl.detect(store=...)``);
* :func:`diff_reports` — cross-version leakage regression diffs
  (introduced / fixed / persisting), the detect → patch → re-audit loop.
"""

from repro.store.blobs import BlobStore, StoreCorruptionError, StoreError
from repro.store.campaign import (
    Campaign,
    RegressionDiff,
    diff_reports,
    incomplete_campaigns,
)
from repro.store.fingerprint import FingerprintError, fingerprint_value
from repro.store.serialize import (
    deserialize_evidence,
    deserialize_trace,
    serialize_evidence,
    serialize_trace,
)
from repro.store.store import Entry, TraceStore

__all__ = [
    "BlobStore",
    "Campaign",
    "Entry",
    "FingerprintError",
    "RegressionDiff",
    "StoreCorruptionError",
    "StoreError",
    "TraceStore",
    "deserialize_evidence",
    "deserialize_trace",
    "diff_reports",
    "fingerprint_value",
    "incomplete_campaigns",
    "serialize_evidence",
    "serialize_trace",
]
